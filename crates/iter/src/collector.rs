//! The collector encoding: imperative, mergeable sinks.
//!
//! A collector is the paper's imperative fold variant (§3.1): a worker that
//! updates its output value by side effect. It is the only encoding that
//! supports mutation — Triolet "uses collectors in sequential code for
//! histogramming and for packing variable-length output skeletons' results
//! into an array." Parallel skeletons give each thread a *private* collector
//! and [`Collector::merge`] the partials (the paper's per-thread histograms,
//! §3.4), so collectors never need to be thread-safe themselves.

/// An imperative accumulation sink.
pub trait Collector: Send {
    /// Element type consumed.
    type Item;
    /// Final result produced.
    type Out;

    /// Absorb one element.
    fn feed(&mut self, item: Self::Item);

    /// Absorb another collector of the same kind (parallel combination).
    fn merge(&mut self, other: Self);

    /// Finish and extract the result.
    fn finish(self) -> Self::Out;
}

/// Packs elements into a vector in arrival order — the paper's
/// variable-length output packing.
#[derive(Debug, Clone, Default)]
pub struct VecCollector<T> {
    items: Vec<T>,
}

impl<T> VecCollector<T> {
    /// Empty collector.
    pub fn new() -> Self {
        VecCollector { items: Vec::new() }
    }

    /// Empty collector with capacity reserved.
    pub fn with_capacity(cap: usize) -> Self {
        VecCollector { items: Vec::with_capacity(cap) }
    }

    /// Elements collected so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing collected yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<T: Send> Collector for VecCollector<T> {
    type Item = T;
    type Out = Vec<T>;

    fn feed(&mut self, item: T) {
        self.items.push(item);
    }

    fn merge(&mut self, other: Self) {
        self.items.extend(other.items);
    }

    fn finish(self) -> Vec<T> {
        self.items
    }
}

/// Integer-count histogram over `bins` buckets (tpacf's accumulator).
///
/// Out-of-range bin indices are counted in an `overflow` cell rather than
/// dropped silently, so totals always balance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountHist {
    bins: Vec<u64>,
    overflow: u64,
}

impl CountHist {
    /// Histogram with `bins` buckets, all zero.
    pub fn new(bins: usize) -> Self {
        CountHist { bins: vec![0; bins], overflow: 0 }
    }

    /// Bucket counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of fed indices that were out of range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Sum of all buckets plus overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.overflow
    }
}

impl Collector for CountHist {
    type Item = usize;
    type Out = Vec<u64>;

    fn feed(&mut self, bin: usize) {
        match self.bins.get_mut(bin) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(self.bins.len(), other.bins.len(), "histograms must have equal bin counts");
        for (a, b) in self.bins.iter_mut().zip(other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
    }

    fn finish(self) -> Vec<u64> {
        self.bins
    }
}

/// Floating-point weighted histogram / scatter-add grid (cutcp's
/// accumulator — the paper calls cutcp "essentially a floating-point
/// histogram").
#[derive(Debug, Clone, PartialEq)]
pub struct WeightHist {
    bins: Vec<f64>,
}

impl WeightHist {
    /// Grid with `bins` cells, all zero.
    pub fn new(bins: usize) -> Self {
        WeightHist { bins: vec![0.0; bins] }
    }

    /// Wrap existing cell values.
    pub fn from_vec(bins: Vec<f64>) -> Self {
        WeightHist { bins }
    }

    /// Cell values.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }
}

impl Collector for WeightHist {
    type Item = (usize, f64);
    type Out = Vec<f64>;

    fn feed(&mut self, (bin, w): (usize, f64)) {
        if let Some(b) = self.bins.get_mut(bin) {
            *b += w;
        }
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(self.bins.len(), other.bins.len(), "grids must have equal sizes");
        for (a, b) in self.bins.iter_mut().zip(other.bins) {
            *a += b;
        }
    }

    fn finish(self) -> Vec<f64> {
        self.bins
    }
}

/// Scalar sum collector.
#[derive(Debug, Clone, Default)]
pub struct SumCollector<T> {
    total: T,
}

impl<T: Default> SumCollector<T> {
    /// Zero-initialized sum.
    pub fn new() -> Self {
        SumCollector { total: T::default() }
    }
}

impl<T> Collector for SumCollector<T>
where
    T: std::ops::AddAssign + Default + Send,
{
    type Item = T;
    type Out = T;

    fn feed(&mut self, item: T) {
        self.total += item;
    }

    fn merge(&mut self, other: Self) {
        self.total += other.total;
    }

    fn finish(self) -> T {
        self.total
    }
}

// ---------------------------------------------------------------------------
// Wire framing: collectors are the partial results that nodes send back to
// the root (per-node histograms, packed output fragments), so they must be
// serializable.
// ---------------------------------------------------------------------------

use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

impl<T: Wire + Send> Wire for VecCollector<T> {
    fn pack(&self, w: &mut WireWriter) {
        self.items.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(VecCollector { items: Vec::<T>::unpack(r)? })
    }
    fn packed_size(&self) -> usize {
        self.items.packed_size()
    }
}

impl Wire for CountHist {
    fn pack(&self, w: &mut WireWriter) {
        self.bins.pack(w);
        self.overflow.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(CountHist { bins: Vec::<u64>::unpack(r)?, overflow: u64::unpack(r)? })
    }
    fn packed_size(&self) -> usize {
        self.bins.packed_size() + 8
    }
}

impl Wire for WeightHist {
    fn pack(&self, w: &mut WireWriter) {
        self.bins.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(WeightHist { bins: Vec::<f64>::unpack(r)? })
    }
    fn packed_size(&self) -> usize {
        self.bins.packed_size()
    }
}

impl<T: Wire + Default> Wire for SumCollector<T> {
    fn pack(&self, w: &mut WireWriter) {
        self.total.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(SumCollector { total: T::unpack(r)? })
    }
    fn packed_size(&self) -> usize {
        self.total.packed_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet_serial::{packed, unpack_all};

    #[test]
    fn collectors_wire_roundtrip() {
        let mut h = CountHist::new(3);
        h.feed(1);
        h.feed(5); // overflow
        let back = unpack_all::<CountHist>(packed(&h)).unwrap();
        assert_eq!(back, h);

        let mut g = WeightHist::new(2);
        g.feed((0, 1.5));
        assert_eq!(unpack_all::<WeightHist>(packed(&g)).unwrap(), g);

        let mut v = VecCollector::<f32>::new();
        v.feed(1.0);
        v.feed(2.0);
        assert_eq!(unpack_all::<VecCollector<f32>>(packed(&v)).unwrap().finish(), vec![1.0, 2.0]);
    }

    #[test]
    fn vec_collector_orders_and_merges() {
        let mut a = VecCollector::new();
        a.feed(1);
        a.feed(2);
        let mut b = VecCollector::new();
        b.feed(3);
        a.merge(b);
        assert_eq!(a.finish(), vec![1, 2, 3]);
    }

    #[test]
    fn count_hist_feeds_and_overflows() {
        let mut h = CountHist::new(3);
        for b in [0, 1, 1, 2, 2, 2, 99] {
            h.feed(b);
        }
        assert_eq!(h.bins(), &[1, 2, 3]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn count_hist_merge_is_elementwise_sum() {
        let mut a = CountHist::new(2);
        a.feed(0);
        let mut b = CountHist::new(2);
        b.feed(0);
        b.feed(1);
        a.merge(b);
        assert_eq!(a.bins(), &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "equal bin counts")]
    fn count_hist_merge_size_mismatch_panics() {
        let mut a = CountHist::new(2);
        a.merge(CountHist::new(3));
    }

    #[test]
    fn weight_hist_scatter_add() {
        let mut g = WeightHist::new(4);
        g.feed((1, 0.5));
        g.feed((1, 0.25));
        g.feed((3, 2.0));
        g.feed((100, 9.0)); // out of range: ignored (off-grid potential)
        assert_eq!(g.bins(), &[0.0, 0.75, 0.0, 2.0]);
    }

    #[test]
    fn weight_hist_merge() {
        let mut a = WeightHist::new(2);
        a.feed((0, 1.0));
        let mut b = WeightHist::new(2);
        b.feed((0, 2.0));
        b.feed((1, 3.0));
        a.merge(b);
        assert_eq!(a.bins(), &[3.0, 3.0]);
    }

    #[test]
    fn sum_collector() {
        let mut s = SumCollector::<f64>::new();
        s.feed(1.5);
        s.feed(2.5);
        let mut t = SumCollector::<f64>::new();
        t.feed(6.0);
        s.merge(t);
        assert_eq!(s.finish(), 10.0);
    }
}
