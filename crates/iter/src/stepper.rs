//! The stepper encoding and the named function objects that drive fusion.
//!
//! A stepper is a coroutine that yields one element per step (paper §3.1) —
//! in Rust, exactly [`Iterator`]. This module provides:
//!
//! * [`ElemFn`] / [`ElemPred`] — statically dispatched function objects.
//!   Plain closures implement them via blanket impls; the library also
//!   defines *named* functors ([`MapInner`], [`FilterInner`], …) for the
//!   recursive equations of the paper's Figure 2, which stable Rust cannot
//!   express with closures (no user impls of the `Fn` traits).
//! * [`IdxStepper`] — drives an indexer over a domain [`Part`] as a stepper
//!   (the paper's `idxToStep` conversion).
//! * [`MapStep`] / [`FilterStep`] — fused stepper adapters used by the
//!   `StepFlat`/`StepNest` equations.

use triolet_domain::{Domain, Part};

use crate::indexer::Indexer;
use crate::shapes::TrioIter;

/// A cloneable, statically dispatched unary function. The analogue of the
/// functions Triolet's optimizer inlines during fusion: because the concrete
/// type is known, rustc inlines the body into the consuming loop.
pub trait ElemFn<In>: Clone + Send + Sync + 'static {
    /// Result type.
    type Out;
    /// Apply the function.
    fn call(&self, x: In) -> Self::Out;
}

impl<In, O, F> ElemFn<In> for F
where
    F: Fn(In) -> O + Clone + Send + Sync + 'static,
{
    type Out = O;
    fn call(&self, x: In) -> O {
        self(x)
    }
}

/// A cloneable, statically dispatched function returning an *iterator* —
/// the argument of `concat_map`. The `TrioIter` bound lives on the
/// associated type, so downstream code never needs a separate
/// `F::Out: TrioIter` side-condition.
pub trait IterFn<In>: Clone + Send + Sync + 'static {
    /// The inner iterator produced per element.
    type OutIter: TrioIter;
    /// Apply the function.
    fn call_iter(&self, x: In) -> Self::OutIter;
}

impl<In, R, F> IterFn<In> for F
where
    R: TrioIter,
    F: Fn(In) -> R + Clone + Send + Sync + 'static,
{
    type OutIter = R;
    fn call_iter(&self, x: In) -> R {
        self(x)
    }
}

/// The identity [`IterFn`]: `flatten` is `concat_map(IdentityIter)`.
#[derive(Clone, Copy, Default)]
pub struct IdentityIter;

impl<R: TrioIter> IterFn<R> for IdentityIter {
    type OutIter = R;
    fn call_iter(&self, x: R) -> R {
        x
    }
}

/// Adapter presenting an [`IterFn`] as an [`ElemFn`] so it can live inside
/// `MapIdx`/`MapStep` (named functors cannot implement the `Fn` traits on
/// stable Rust).
#[derive(Clone)]
pub struct IterFnAdapter<F> {
    pub(crate) f: F,
}

impl<In, F> ElemFn<In> for IterFnAdapter<F>
where
    F: IterFn<In>,
{
    type Out = F::OutIter;
    fn call(&self, x: In) -> F::OutIter {
        self.f.call_iter(x)
    }
}

/// A cloneable, statically dispatched predicate over borrowed elements.
pub trait ElemPred<T>: Clone + Send + Sync + 'static {
    /// Test the element.
    fn test(&self, x: &T) -> bool;
}

impl<T, F> ElemPred<T> for F
where
    F: Fn(&T) -> bool + Clone + Send + Sync + 'static,
{
    fn test(&self, x: &T) -> bool {
        self(x)
    }
}

// ---------------------------------------------------------------------------
// Named functors for the recursive Figure 2 equations
// ---------------------------------------------------------------------------

/// Functor mapping `f` over a *nested* iterator: the `mapIdx (map f)` /
/// `mapStep (map f)` halves of Figure 2's nested-shape equations.
#[derive(Clone)]
pub struct MapInner<F> {
    pub(crate) f: F,
}

impl<R, F> ElemFn<R> for MapInner<F>
where
    R: TrioIter,
    F: ElemFn<R::Item>,
{
    type Out = R::Mapped<F>;
    fn call(&self, inner: R) -> Self::Out {
        inner.map(self.f.clone())
    }
}

/// Functor filtering a nested iterator: `mapIdx (filter f)` of Figure 2.
#[derive(Clone)]
pub struct FilterInner<P> {
    pub(crate) p: P,
}

impl<R, P> ElemFn<R> for FilterInner<P>
where
    R: TrioIter,
    P: ElemPred<R::Item>,
{
    type Out = R::Filtered<P>;
    fn call(&self, inner: R) -> Self::Out {
        inner.filter(self.p.clone())
    }
}

/// Functor concat-mapping a nested iterator: `mapIdx (concatMap f)`.
#[derive(Clone)]
pub struct ConcatMapInner<F> {
    pub(crate) f: F,
}

impl<R, F> ElemFn<R> for ConcatMapInner<F>
where
    R: TrioIter,
    F: IterFn<R::Item>,
{
    type Out = R::ConcatMapped<F>;
    fn call(&self, inner: R) -> Self::Out {
        inner.concat_map(self.f.clone())
    }
}

/// Functor turning one element into a zero-or-one-element stepper: the
/// `StepFlat . filterStep f . unitStep` composition in Figure 2's `filter`
/// equation for flat indexers. Each input index yields its element if the
/// predicate holds, else nothing — indices are never reassigned, which is
/// what keeps the outer loop partitionable.
#[derive(Clone)]
pub struct FilterToStep<P> {
    pub(crate) p: P,
}

impl<T, P> ElemFn<T> for FilterToStep<P>
where
    P: ElemPred<T>,
{
    type Out = crate::shapes::StepFlat<std::option::IntoIter<T>>;
    fn call(&self, x: T) -> Self::Out {
        let keep = self.p.test(&x);
        crate::shapes::StepFlat::new(if keep { Some(x) } else { None }.into_iter())
    }
}

// ---------------------------------------------------------------------------
// Stepper adapters
// ---------------------------------------------------------------------------

/// Drive an indexer over a part as a stepper: the paper's `idxToStep`.
pub struct IdxStepper<I: Indexer> {
    idx: I,
    part: <I::Dom as Domain>::Part,
    k: usize,
}

impl<I: Indexer> IdxStepper<I> {
    /// Step through `idx` restricted to `part`, in the part's row-major
    /// order.
    pub fn over_part(idx: I, part: <I::Dom as Domain>::Part) -> Self {
        IdxStepper { idx, part, k: 0 }
    }

    /// Step through the whole domain of `idx`.
    pub fn over_all(idx: I) -> Self {
        let part = idx.domain().whole_part();
        IdxStepper { idx, part, k: 0 }
    }
}

impl<I: Indexer> Iterator for IdxStepper<I> {
    type Item = I::Out;

    fn next(&mut self) -> Option<I::Out> {
        if self.k >= self.part.count() {
            return None;
        }
        let idx = self.part.index_at(self.k);
        self.k += 1;
        Some(self.idx.get(idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.part.count() - self.k;
        (rem, Some(rem))
    }
}

impl<I: Indexer> ExactSizeIterator for IdxStepper<I> {}

/// Fused `map` over a stepper using an [`ElemFn`] (std's `Map` requires a
/// closure type, which the named functors are not).
pub struct MapStep<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F> Iterator for MapStep<S, F>
where
    S: Iterator,
    F: ElemFn<S::Item>,
{
    type Item = F::Out;

    fn next(&mut self) -> Option<F::Out> {
        self.inner.next().map(|x| self.f.call(x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Fused `filter` over a stepper using an [`ElemPred`] — the paper's
/// `filterStep`.
pub struct FilterStep<S, P> {
    pub(crate) inner: S,
    pub(crate) p: P,
}

impl<S, P> Iterator for FilterStep<S, P>
where
    S: Iterator,
    P: ElemPred<S::Item>,
{
    type Item = S::Item;

    fn next(&mut self) -> Option<S::Item> {
        loop {
            let x = self.inner.next()?;
            if self.p.test(&x) {
                return Some(x);
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, self.inner.size_hint().1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexer::ArrayIdx;
    use triolet_domain::SeqPart;

    #[test]
    fn idx_stepper_whole_domain() {
        let s = IdxStepper::over_all(ArrayIdx::new(vec![5u32, 6, 7]));
        assert_eq!(s.collect::<Vec<_>>(), vec![5, 6, 7]);
    }

    #[test]
    fn idx_stepper_part_only() {
        let idx = ArrayIdx::new((0..10i64).collect());
        let s = IdxStepper::over_part(idx, SeqPart::new(4, 3));
        assert_eq!(s.collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    fn idx_stepper_exact_size() {
        let idx = ArrayIdx::new((0..10i64).collect());
        let mut s = IdxStepper::over_part(idx, SeqPart::new(0, 5));
        assert_eq!(s.len(), 5);
        s.next();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn map_step_applies() {
        let m = MapStep { inner: vec![1, 2, 3].into_iter(), f: |x: i32| x * 10 };
        assert_eq!(m.collect::<Vec<_>>(), vec![10, 20, 30]);
    }

    #[test]
    fn filter_step_skips() {
        let f = FilterStep {
            inner: (0..10).collect::<Vec<i32>>().into_iter(),
            p: |x: &i32| x % 3 == 0,
        };
        assert_eq!(f.collect::<Vec<_>>(), vec![0, 3, 6, 9]);
    }
}
