//! The indexer encoding: random-access virtual data structures.
//!
//! An indexer is the paper's `(domain, lookup-function)` pair (§3.1), with
//! the §3.5 refinement that the lookup function is split into a *data source*
//! (the arrays it reads — potentially large, shipped over the wire) and an
//! *extractor* (code — free to ship). The [`Indexer::slice`] method builds a
//! new indexer whose data source holds only the elements a
//! [`Part`](triolet_domain::Part) touches; distributed skeletons use it to
//! send each node exactly the data its tasks read, with no compile-time
//! array-reference analysis.

use std::ops::Index;
use std::sync::Arc;

use triolet_domain::{Dim2, Dim2Part, Domain, Seq, SeqPart};
use triolet_serial::{packed, unpack_all, Wire};

/// Random-access virtual collection over a [`Domain`].
///
/// Cloning an indexer is cheap (data sources are reference-counted); slicing
/// copies out only the addressed window. `source_size` and
/// `roundtrip_source` exist for the distributed engine: the former is the
/// number of bytes this indexer's data occupies on the wire, the latter
/// actually pushes the data through pack/unpack — the moment at which, in a
/// real cluster, the bytes would cross the network.
pub trait Indexer: Clone + Send + Sync + 'static {
    /// The iteration space.
    type Dom: Domain;
    /// Element produced per index point.
    type Out;

    /// The domain this indexer answers.
    fn domain(&self) -> Self::Dom;

    /// Retrieve the element at `idx`. Indices use *global* coordinates even
    /// after slicing: a sliced indexer answers exactly the indices inside its
    /// part and must not be asked about others.
    fn get(&self, idx: <Self::Dom as Domain>::Index) -> Self::Out;

    /// Extract an indexer owning only the data `part` touches (paper §3.5).
    fn slice(&self, part: &<Self::Dom as Domain>::Part) -> Self;

    /// Packed byte size of the data sources (what the wire would carry).
    fn source_size(&self) -> usize;

    /// Push every data source through pack/unpack, yielding an equivalent
    /// indexer whose data provably survived serialization. The distributed
    /// engine calls this on the slice it ships to a node.
    fn roundtrip_source(self) -> Self;
}

// ---------------------------------------------------------------------------
// ArrayIdx: a 1-D array as an indexer
// ---------------------------------------------------------------------------

/// A one-dimensional array viewed as an indexer: the workhorse data source.
///
/// Holds the backing data behind an [`Arc`]; `base` is the global index of
/// `data[0]`, so a sliced `ArrayIdx` still answers global indices.
pub struct ArrayIdx<T> {
    data: Arc<Vec<T>>,
    base: usize,
    dom: Seq,
}

impl<T> Clone for ArrayIdx<T> {
    fn clone(&self) -> Self {
        ArrayIdx { data: Arc::clone(&self.data), base: self.base, dom: self.dom }
    }
}

impl<T: Clone + Send + Sync + 'static> ArrayIdx<T> {
    /// Wrap an owned vector; the domain is its full length.
    pub fn new(data: Vec<T>) -> Self {
        let dom = Seq::new(data.len());
        ArrayIdx { data: Arc::new(data), base: 0, dom }
    }

    /// Wrap an already shared vector without copying.
    pub fn from_arc(data: Arc<Vec<T>>) -> Self {
        let dom = Seq::new(data.len());
        ArrayIdx { data, base: 0, dom }
    }

    /// Global index of the first locally held element.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Locally held elements (the current window).
    pub fn local_data(&self) -> &[T] {
        &self.data
    }
}

impl<T: Wire + Clone + Send + Sync + 'static> Indexer for ArrayIdx<T> {
    type Dom = Seq;
    type Out = T;

    fn domain(&self) -> Seq {
        self.dom
    }

    fn get(&self, idx: usize) -> T {
        debug_assert!(
            idx >= self.base && idx - self.base < self.data.len(),
            "index {idx} outside held window [{}, {})",
            self.base,
            self.base + self.data.len()
        );
        self.data[idx - self.base].clone()
    }

    fn slice(&self, part: &SeqPart) -> Self {
        debug_assert!(part.start >= self.base && part.end() <= self.base + self.data.len());
        let lo = part.start - self.base;
        let window = self.data[lo..lo + part.len].to_vec();
        ArrayIdx { data: Arc::new(window), base: part.start, dom: self.dom }
    }

    fn source_size(&self) -> usize {
        T::slice_packed_size(&self.data) + self.base.packed_size() + self.dom.packed_size()
    }

    fn roundtrip_source(self) -> Self {
        let bytes = packed(&*self.data);
        let data: Vec<T> = unpack_all(bytes).expect("pack/unpack of own data cannot fail");
        ArrayIdx { data: Arc::new(data), base: self.base, dom: self.dom }
    }
}

// ---------------------------------------------------------------------------
// RowsIdx: a row-major 2-D array as a 1-D indexer of rows
// ---------------------------------------------------------------------------

/// A cheap, shareable view of one array row; what the paper's `rows`
/// function yields per element.
pub struct RowRef<T> {
    data: Arc<Vec<T>>,
    offset: usize,
    len: usize,
}

impl<T> Clone for RowRef<T> {
    fn clone(&self) -> Self {
        RowRef { data: Arc::clone(&self.data), offset: self.offset, len: self.len }
    }
}

impl<T> RowRef<T> {
    /// Number of elements in the row.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the row has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The row's elements as a contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl<T> Index<usize> for RowRef<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.as_slice()[i]
    }
}

/// A row-major matrix exposed as a `Seq` indexer whose elements are rows —
/// the paper's `rows(A)` (§2): "reinterpret the two-dimensional arrays as
/// one-dimensional iterators over array rows".
///
/// Slicing by a row range copies out only those rows, which is what makes the
/// two-line sgemm block decomposition send each node only the rows it needs.
pub struct RowsIdx<T> {
    data: Arc<Vec<T>>,
    base_row: usize,
    cols: usize,
    dom: Seq,
}

impl<T> Clone for RowsIdx<T> {
    fn clone(&self) -> Self {
        RowsIdx {
            data: Arc::clone(&self.data),
            base_row: self.base_row,
            cols: self.cols,
            dom: self.dom,
        }
    }
}

impl<T: Clone + Send + Sync + 'static> RowsIdx<T> {
    /// View `data` (row-major, `rows * cols` elements) as `rows` rows.
    pub fn new(data: Arc<Vec<T>>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data must fill the matrix");
        RowsIdx { data, base_row: 0, cols, dom: Seq::new(rows) }
    }

    /// Row length.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

// ---------------------------------------------------------------------------
// StripsIdx: a row-major 2-D array as a 1-D indexer of row strips
// ---------------------------------------------------------------------------

/// A cheap, shareable view of a contiguous band of matrix rows; what
/// [`row_strips`](crate::sources::row_strips) yields per element. Carries its
/// global row coordinates so consumers (tiled block kernels) know which
/// output block the strip covers.
pub struct StripRef<T> {
    data: Arc<Vec<T>>,
    offset: usize,
    row0: usize,
    rows: usize,
    cols: usize,
}

impl<T> Clone for StripRef<T> {
    fn clone(&self) -> Self {
        StripRef {
            data: Arc::clone(&self.data),
            offset: self.offset,
            row0: self.row0,
            rows: self.rows,
            cols: self.cols,
        }
    }
}

impl<T> StripRef<T> {
    /// Global index of the strip's first row.
    pub fn row0(&self) -> usize {
        self.row0
    }

    /// Number of rows in the strip.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row length.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The strip's elements as one contiguous row-major slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data[self.offset..self.offset + self.rows * self.cols]
    }
}

/// A row-major matrix exposed as a `Seq` indexer over fixed-height row
/// *strips* (the last strip may be shorter). The strip-level analogue of
/// [`RowsIdx`]: `outerproduct(row_strips(A), row_strips(BT))` yields the
/// 2-D *block* decomposition directly, with each cell holding exactly the
/// input strips a tiled block kernel consumes.
pub struct StripsIdx<T> {
    data: Arc<Vec<T>>,
    base_strip: usize,
    strip_rows: usize,
    total_rows: usize,
    cols: usize,
    dom: Seq,
}

impl<T> Clone for StripsIdx<T> {
    fn clone(&self) -> Self {
        StripsIdx {
            data: Arc::clone(&self.data),
            base_strip: self.base_strip,
            strip_rows: self.strip_rows,
            total_rows: self.total_rows,
            cols: self.cols,
            dom: self.dom,
        }
    }
}

impl<T: Clone + Send + Sync + 'static> StripsIdx<T> {
    /// View `data` (row-major, `rows * cols` elements) as ceil(rows/h)
    /// strips of `h` rows each.
    pub fn new(data: Arc<Vec<T>>, rows: usize, cols: usize, strip_rows: usize) -> Self {
        assert!(strip_rows > 0, "strip height must be positive");
        assert_eq!(data.len(), rows * cols, "row-major data must fill the matrix");
        let nstrips = rows.div_ceil(strip_rows);
        StripsIdx {
            data,
            base_strip: 0,
            strip_rows,
            total_rows: rows,
            cols,
            dom: Seq::new(nstrips),
        }
    }

    /// Rows in strip `s` (global strip index): `strip_rows`, except a short
    /// final strip.
    fn rows_of(&self, s: usize) -> usize {
        self.strip_rows.min(self.total_rows - s * self.strip_rows)
    }
}

impl<T: Wire + Clone + Send + Sync + 'static> Indexer for StripsIdx<T> {
    type Dom = Seq;
    type Out = StripRef<T>;

    fn domain(&self) -> Seq {
        self.dom
    }

    fn get(&self, strip: usize) -> StripRef<T> {
        debug_assert!(strip >= self.base_strip);
        let offset = (strip - self.base_strip) * self.strip_rows * self.cols;
        let rows = self.rows_of(strip);
        debug_assert!(offset + rows * self.cols <= self.data.len());
        StripRef {
            data: Arc::clone(&self.data),
            offset,
            row0: strip * self.strip_rows,
            rows,
            cols: self.cols,
        }
    }

    fn slice(&self, part: &SeqPart) -> Self {
        debug_assert!(part.start >= self.base_strip);
        let lo = (part.start - self.base_strip) * self.strip_rows * self.cols;
        let rows_covered: usize = (part.start..part.end()).map(|s| self.rows_of(s)).sum();
        let window = self.data[lo..lo + rows_covered * self.cols].to_vec();
        StripsIdx {
            data: Arc::new(window),
            base_strip: part.start,
            strip_rows: self.strip_rows,
            total_rows: self.total_rows,
            cols: self.cols,
            dom: self.dom,
        }
    }

    fn source_size(&self) -> usize {
        T::slice_packed_size(&self.data) + 40 // base_strip + strip_rows + total_rows + cols + dom
    }

    fn roundtrip_source(self) -> Self {
        let bytes = packed(&*self.data);
        let data: Vec<T> = unpack_all(bytes).expect("pack/unpack of own data cannot fail");
        StripsIdx {
            data: Arc::new(data),
            base_strip: self.base_strip,
            strip_rows: self.strip_rows,
            total_rows: self.total_rows,
            cols: self.cols,
            dom: self.dom,
        }
    }
}

impl<T: Wire + Clone + Send + Sync + 'static> Indexer for RowsIdx<T> {
    type Dom = Seq;
    type Out = RowRef<T>;

    fn domain(&self) -> Seq {
        self.dom
    }

    fn get(&self, row: usize) -> RowRef<T> {
        debug_assert!(
            row >= self.base_row && (row - self.base_row + 1) * self.cols <= self.data.len()
        );
        RowRef {
            data: Arc::clone(&self.data),
            offset: (row - self.base_row) * self.cols,
            len: self.cols,
        }
    }

    fn slice(&self, part: &SeqPart) -> Self {
        debug_assert!(part.start >= self.base_row);
        let lo = (part.start - self.base_row) * self.cols;
        let window = self.data[lo..lo + part.len * self.cols].to_vec();
        RowsIdx { data: Arc::new(window), base_row: part.start, cols: self.cols, dom: self.dom }
    }

    fn source_size(&self) -> usize {
        T::slice_packed_size(&self.data) + 24 // base_row + cols + dom
    }

    fn roundtrip_source(self) -> Self {
        let bytes = packed(&*self.data);
        let data: Vec<T> = unpack_all(bytes).expect("pack/unpack of own data cannot fail");
        RowsIdx { data: Arc::new(data), base_row: self.base_row, cols: self.cols, dom: self.dom }
    }
}

// ---------------------------------------------------------------------------
// RangeIdx: a domain's own indices as elements
// ---------------------------------------------------------------------------

/// The identity indexer: element at index `i` is `i` itself. No data source,
/// so slicing is free — the paper's `indices(domain(...))` idiom.
#[derive(Clone)]
pub struct RangeIdx<D: Domain> {
    dom: D,
}

impl<D: Domain> RangeIdx<D> {
    /// Indexer over all indices of `dom`.
    pub fn new(dom: D) -> Self {
        RangeIdx { dom }
    }
}

impl<D: Domain> Indexer for RangeIdx<D> {
    type Dom = D;
    type Out = D::Index;

    fn domain(&self) -> D {
        self.dom.clone()
    }

    fn get(&self, idx: D::Index) -> D::Index {
        idx
    }

    fn slice(&self, _part: &D::Part) -> Self {
        self.clone()
    }

    fn source_size(&self) -> usize {
        self.dom.packed_size()
    }

    fn roundtrip_source(self) -> Self {
        let dom: D = unpack_all(packed(&self.dom)).expect("domain roundtrip");
        RangeIdx { dom }
    }
}

// ---------------------------------------------------------------------------
// FnIdx: an arbitrary computed indexer (pure code, no shippable data)
// ---------------------------------------------------------------------------

/// An indexer computed by a function of the index. It carries no data source
/// (captured state rides with the code), so `slice` is the identity — used
/// for computed collections such as transpose views and stencil neighbour
/// generators.
#[derive(Clone)]
pub struct FnIdx<D: Domain, F> {
    dom: D,
    f: F,
}

impl<D: Domain, F> FnIdx<D, F> {
    /// Indexer whose element at `i` is `f(i)`.
    pub fn new(dom: D, f: F) -> Self {
        FnIdx { dom, f }
    }
}

impl<D, F, O> Indexer for FnIdx<D, F>
where
    D: Domain,
    F: Fn(D::Index) -> O + Clone + Send + Sync + 'static,
{
    type Dom = D;
    type Out = O;

    fn domain(&self) -> D {
        self.dom.clone()
    }

    fn get(&self, idx: D::Index) -> O {
        (self.f)(idx)
    }

    fn slice(&self, _part: &D::Part) -> Self {
        self.clone()
    }

    fn source_size(&self) -> usize {
        self.dom.packed_size()
    }

    fn roundtrip_source(self) -> Self {
        self
    }
}

// ---------------------------------------------------------------------------
// MapIdx: the fused map
// ---------------------------------------------------------------------------

/// `map` over an indexer: the new lookup calls the old lookup then `f`
/// (the paper's `mapIdx`). Slicing passes through to the inner indexer; the
/// mapping function is code and ships for free.
#[derive(Clone)]
pub struct MapIdx<I, F> {
    inner: I,
    f: F,
}

impl<I, F> MapIdx<I, F> {
    /// Map `f` over `inner`.
    pub fn new(inner: I, f: F) -> Self {
        MapIdx { inner, f }
    }
}

impl<I, F> Indexer for MapIdx<I, F>
where
    I: Indexer,
    F: crate::stepper::ElemFn<I::Out>,
{
    type Dom = I::Dom;
    type Out = F::Out;

    fn domain(&self) -> I::Dom {
        self.inner.domain()
    }

    fn get(&self, idx: <I::Dom as Domain>::Index) -> F::Out {
        self.f.call(self.inner.get(idx))
    }

    fn slice(&self, part: &<I::Dom as Domain>::Part) -> Self {
        MapIdx { inner: self.inner.slice(part), f: self.f.clone() }
    }

    fn source_size(&self) -> usize {
        self.inner.source_size()
    }

    fn roundtrip_source(self) -> Self {
        MapIdx { inner: self.inner.roundtrip_source(), f: self.f }
    }
}

// ---------------------------------------------------------------------------
// ZipIdx / Zip3Idx: index-aligned pairing
// ---------------------------------------------------------------------------

/// `zip` of two indexers over the same domain shape: element `i` is
/// `(a[i], b[i])`, over the intersection of the two domains (the paper's
/// `zipIdx`). Both sources are sliced together — "data sources may involve
/// multiple arrays … without requiring a step of data copying and
/// reorganization" (§3.5).
#[derive(Clone)]
pub struct ZipIdx<A, B> {
    a: A,
    b: B,
}

impl<A, B> ZipIdx<A, B> {
    /// Pair `a` and `b` elementwise.
    pub fn new(a: A, b: B) -> Self {
        ZipIdx { a, b }
    }
}

impl<A, B> Indexer for ZipIdx<A, B>
where
    A: Indexer,
    B: Indexer<Dom = A::Dom>,
{
    type Dom = A::Dom;
    type Out = (A::Out, B::Out);

    fn domain(&self) -> A::Dom {
        self.a.domain().intersect(&self.b.domain())
    }

    fn get(&self, idx: <A::Dom as Domain>::Index) -> (A::Out, B::Out) {
        (self.a.get(idx), self.b.get(idx))
    }

    fn slice(&self, part: &<A::Dom as Domain>::Part) -> Self {
        ZipIdx { a: self.a.slice(part), b: self.b.slice(part) }
    }

    fn source_size(&self) -> usize {
        self.a.source_size() + self.b.source_size()
    }

    fn roundtrip_source(self) -> Self {
        ZipIdx { a: self.a.roundtrip_source(), b: self.b.roundtrip_source() }
    }
}

/// Three-way [`ZipIdx`] (the paper's mri-q uses `zip3(x, y, z)`).
#[derive(Clone)]
pub struct Zip3Idx<A, B, C> {
    a: A,
    b: B,
    c: C,
}

impl<A, B, C> Zip3Idx<A, B, C> {
    /// Triple `a`, `b` and `c` elementwise.
    pub fn new(a: A, b: B, c: C) -> Self {
        Zip3Idx { a, b, c }
    }
}

impl<A, B, C> Indexer for Zip3Idx<A, B, C>
where
    A: Indexer,
    B: Indexer<Dom = A::Dom>,
    C: Indexer<Dom = A::Dom>,
{
    type Dom = A::Dom;
    type Out = (A::Out, B::Out, C::Out);

    fn domain(&self) -> A::Dom {
        self.a.domain().intersect(&self.b.domain()).intersect(&self.c.domain())
    }

    fn get(&self, idx: <A::Dom as Domain>::Index) -> (A::Out, B::Out, C::Out) {
        (self.a.get(idx), self.b.get(idx), self.c.get(idx))
    }

    fn slice(&self, part: &<A::Dom as Domain>::Part) -> Self {
        Zip3Idx { a: self.a.slice(part), b: self.b.slice(part), c: self.c.slice(part) }
    }

    fn source_size(&self) -> usize {
        self.a.source_size() + self.b.source_size() + self.c.source_size()
    }

    fn roundtrip_source(self) -> Self {
        Zip3Idx {
            a: self.a.roundtrip_source(),
            b: self.b.roundtrip_source(),
            c: self.c.roundtrip_source(),
        }
    }
}

// ---------------------------------------------------------------------------
// OuterProductIdx: the 2-D cross of two 1-D indexers
// ---------------------------------------------------------------------------

/// The paper's `outerproduct(a, b)` (§2): a 2-D indexer whose element at
/// `(r, c)` is `(a[r], b[c])`.
///
/// Slicing by a 2-D block extracts the `a`-range covering the block's rows
/// and the `b`-range covering its columns — so a node computing one output
/// block of a matrix product receives only the `A` rows and `B^T` rows it
/// needs. This is the two-line sgemm decomposition.
#[derive(Clone)]
pub struct OuterProductIdx<A, B> {
    a: A,
    b: B,
}

impl<A, B> OuterProductIdx<A, B> {
    /// Cross `a` (rows) with `b` (columns).
    pub fn new(a: A, b: B) -> Self {
        OuterProductIdx { a, b }
    }
}

impl<A, B> Indexer for OuterProductIdx<A, B>
where
    A: Indexer<Dom = Seq>,
    B: Indexer<Dom = Seq>,
{
    type Dom = Dim2;
    type Out = (A::Out, B::Out);

    fn domain(&self) -> Dim2 {
        Dim2::new(self.a.domain().len(), self.b.domain().len())
    }

    fn get(&self, (r, c): (usize, usize)) -> (A::Out, B::Out) {
        (self.a.get(r), self.b.get(c))
    }

    fn slice(&self, part: &Dim2Part) -> Self {
        OuterProductIdx {
            a: self.a.slice(&SeqPart::new(part.row0, part.rows)),
            b: self.b.slice(&SeqPart::new(part.col0, part.cols)),
        }
    }

    fn source_size(&self) -> usize {
        self.a.source_size() + self.b.source_size()
    }

    fn roundtrip_source(self) -> Self {
        OuterProductIdx { a: self.a.roundtrip_source(), b: self.b.roundtrip_source() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet_domain::Dim2;

    #[test]
    fn array_idx_global_indexing_after_slice() {
        let idx = ArrayIdx::new((0..100i64).collect());
        let part = SeqPart::new(40, 10);
        let sub = idx.slice(&part);
        assert_eq!(sub.base(), 40);
        assert_eq!(sub.local_data().len(), 10);
        for i in 40..50 {
            assert_eq!(sub.get(i), i as i64, "sliced indexer answers global indices");
        }
    }

    #[test]
    fn array_idx_roundtrip_preserves_data() {
        let idx = ArrayIdx::new(vec![1.5f32, 2.5, 3.5]).roundtrip_source();
        assert_eq!(idx.get(1), 2.5);
        assert_eq!(idx.domain(), Seq::new(3));
    }

    #[test]
    fn slice_of_slice_composes() {
        let idx = ArrayIdx::new((0..1000u32).collect());
        let sub = idx.slice(&SeqPart::new(100, 500));
        let subsub = sub.slice(&SeqPart::new(300, 50));
        for i in 300..350 {
            assert_eq!(subsub.get(i), i as u32);
        }
        assert_eq!(subsub.local_data().len(), 50, "only the window is held");
    }

    #[test]
    fn source_size_shrinks_with_slice() {
        let idx = ArrayIdx::new(vec![0f64; 1000]);
        let sub = idx.slice(&SeqPart::new(0, 10));
        assert!(sub.source_size() < idx.source_size() / 50);
    }

    #[test]
    fn rows_idx_yields_rows() {
        // 3x4 matrix 0..12.
        let m = RowsIdx::new(Arc::new((0..12i32).collect()), 3, 4);
        assert_eq!(m.domain(), Seq::new(3));
        assert_eq!(m.get(1).as_slice(), &[4, 5, 6, 7]);
        assert_eq!(m.get(2)[3], 11);
    }

    #[test]
    fn rows_idx_slice_holds_only_rows() {
        let m = RowsIdx::new(Arc::new((0..20i32).collect()), 5, 4);
        let sub = m.slice(&SeqPart::new(2, 2));
        assert_eq!(sub.get(2).as_slice(), &[8, 9, 10, 11]);
        assert_eq!(sub.get(3).as_slice(), &[12, 13, 14, 15]);
        // Data footprint: exactly 2 rows of 4 i32 plus small headers.
        assert_eq!(sub.source_size(), 8 + 8 * 4 + 24);
    }

    #[test]
    fn map_idx_composes_and_slices() {
        let idx = MapIdx::new(ArrayIdx::new((0..10i64).collect()), |x: i64| x * x);
        assert_eq!(idx.get(3), 9);
        let sub = idx.slice(&SeqPart::new(5, 5));
        assert_eq!(sub.get(7), 49);
    }

    #[test]
    fn zip_idx_intersects_domains() {
        let a = ArrayIdx::new(vec![1u32, 2, 3, 4, 5]);
        let b = ArrayIdx::new(vec![10u32, 20, 30]);
        let z = ZipIdx::new(a, b);
        assert_eq!(z.domain(), Seq::new(3));
        assert_eq!(z.get(2), (3, 30));
    }

    #[test]
    fn zip3_idx() {
        let a = ArrayIdx::new(vec![1f32, 2.0]);
        let b = ArrayIdx::new(vec![3f32, 4.0]);
        let c = ArrayIdx::new(vec![5f32, 6.0]);
        let z = Zip3Idx::new(a, b, c);
        assert_eq!(z.get(1), (2.0, 4.0, 6.0));
        assert_eq!(z.roundtrip_source().get(0), (1.0, 3.0, 5.0));
    }

    #[test]
    fn outerproduct_block_slice_extracts_both_ranges() {
        // 4x4 outer product of rows 0..4 and cols 0..4.
        let a = ArrayIdx::new((0..4i64).collect());
        let b = ArrayIdx::new((10..14i64).collect());
        let op = OuterProductIdx::new(a, b);
        assert_eq!(op.domain(), Dim2::new(4, 4));
        let block = Dim2Part::new(1, 2, 2, 2);
        let sub = op.slice(&block);
        // The block covers rows {1,2} and cols {2,3}.
        assert_eq!(sub.get((1, 2)), (1, 12));
        assert_eq!(sub.get((2, 3)), (2, 13));
        // Sliced footprint is 4 elements instead of 8.
        assert!(sub.source_size() < op.source_size());
    }

    #[test]
    fn fn_idx_and_range_idx() {
        let sq = FnIdx::new(Seq::new(5), |i: usize| i * i);
        assert_eq!(sq.get(4), 16);
        let r = RangeIdx::new(Dim2::new(2, 2));
        assert_eq!(r.get((1, 0)), (1, 0));
        // Slicing data-free indexers is identity.
        let sub = sq.slice(&SeqPart::new(2, 2));
        assert_eq!(sub.get(3), 9);
    }
}
