//! The four hybrid iterator shapes and the [`TrioIter`] trait.
//!
//! The paper's `Iter` GADT (§3.2):
//!
//! ```text
//! data Iter a where
//!   IdxFlat  :: Idx a          -> Iter a
//!   StepFlat :: Step a         -> Iter a
//!   IdxNest  :: Idx (Iter a)   -> Iter a
//!   StepNest :: Step (Iter a)  -> Iter a
//! ```
//!
//! Here each constructor is a generic struct and each Figure 2 equation is
//! one trait-impl method: "a function's output loop structure is always
//! determined solely by its input loop structure, ensuring that any
//! composition of known function calls can be simplified statically." In
//! Rust, "statically simplified" is monomorphization + inlining; the
//! recursion through nested shapes terminates because each impl consumes one
//! level of statically known nesting, mirroring the paper's constructor-aware
//! inlining control.

use triolet_domain::{Domain, Part};

use crate::collector::Collector;
use crate::indexer::{Indexer, MapIdx};
use crate::stepper::{
    ConcatMapInner, ElemFn, ElemPred, FilterInner, FilterStep, FilterToStep, IdxStepper, IterFn,
    IterFnAdapter, MapInner, MapStep,
};

/// Degree of parallelism requested for an iterator (paper §3.4): the flag
/// set by `par` (distributed + threaded), `localpar` (threads of one node),
/// or left at `Sequential`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ParHint {
    /// Execute sequentially (the default).
    #[default]
    Sequential,
    /// Parallelize across the threads of the local node only.
    LocalPar,
    /// Parallelize across all cluster nodes and their threads.
    Par,
}

/// A fusible, possibly nested loop: the paper's `Iter`.
///
/// Consuming methods ([`TrioIter::fold_items`], the derived `sum`/`reduce`/
/// `collect` family) turn every level of nesting into a loop. Transforming
/// methods (`map`, `filter`, `concat_map`) return a new shape determined by
/// the input shape. Conversions to the lower-control encodings of the
/// paper's Figure 1 are [`TrioIter::into_step`] (stepper) and
/// [`TrioIter::collect_into`] (collector).
pub trait TrioIter: Sized {
    /// Element type produced by the loop nest.
    type Item;

    /// The parallelism flag carried by the outermost level.
    fn hint(&self) -> ParHint;

    /// Replace the parallelism flag.
    fn with_hint(self, h: ParHint) -> Self;

    /// Fold every element in order. `g` is taken by `&mut` so nested shapes
    /// can thread one closure through all inner loops.
    fn fold_items<B, G: FnMut(B, Self::Item) -> B>(self, init: B, g: &mut G) -> B;

    /// Convert to a stepper: the paper's `toStep`. Loses parallelism, keeps
    /// fusion.
    fn into_step(self) -> impl Iterator<Item = Self::Item>;

    /// Exact element count if statically countable (flat indexers only):
    /// nested shapes produce data-dependent counts.
    fn size_hint_exact(&self) -> Option<usize> {
        None
    }

    /// Output shape of [`TrioIter::map`].
    type Mapped<F: ElemFn<Self::Item>>: TrioIter<Item = F::Out>;

    /// Apply `f` to every element; preserves shape and the parallelism hint.
    fn map<F: ElemFn<Self::Item>>(self, f: F) -> Self::Mapped<F>;

    /// Output shape of [`TrioIter::filter`].
    type Filtered<P: ElemPred<Self::Item>>: TrioIter<Item = Self::Item>;

    /// Keep only elements satisfying `p`. On a flat indexer this produces an
    /// indexer *of steppers* (each index yields zero or one elements), which
    /// keeps the outer loop partitionable — the paper's key fusion move.
    fn filter<P: ElemPred<Self::Item>>(self, p: P) -> Self::Filtered<P>;

    /// Output shape of [`TrioIter::concat_map`].
    type ConcatMapped<F: IterFn<Self::Item>>: TrioIter<Item = <F::OutIter as TrioIter>::Item>;

    /// Replace each element by a whole inner iterator and flatten one level:
    /// the nested-traversal skeleton.
    fn concat_map<F: IterFn<Self::Item>>(self, f: F) -> Self::ConcatMapped<F>;

    /// Flatten one level of nesting: `concat_map` with the identity
    /// (for iterators whose elements are themselves iterators).
    fn flatten(self) -> Self::ConcatMapped<crate::stepper::IdentityIter>
    where
        Self::Item: TrioIter,
    {
        self.concat_map(crate::stepper::IdentityIter)
    }

    // -- derived consumers --------------------------------------------------

    /// Run `g` on every element.
    fn for_each<G: FnMut(Self::Item)>(self, mut g: G) {
        self.fold_items((), &mut |(), x| g(x));
    }

    /// Number of elements produced.
    fn count_items(self) -> usize {
        self.fold_items(0usize, &mut |n, _| n + 1)
    }

    /// Sum the elements starting from `Default::default()`.
    fn sum_scalar(self) -> Self::Item
    where
        Self::Item: Default + std::ops::Add<Output = Self::Item>,
    {
        self.fold_items(Self::Item::default(), &mut |a, x| a + x)
    }

    /// Combine all elements with `g`; `None` when empty.
    fn reduce_items<G: FnMut(Self::Item, Self::Item) -> Self::Item>(
        self,
        mut g: G,
    ) -> Option<Self::Item> {
        self.fold_items(None, &mut |acc, x| match acc {
            None => Some(x),
            Some(a) => Some(g(a, x)),
        })
    }

    /// Materialize into a vector.
    fn collect_vec(self) -> Vec<Self::Item> {
        let mut out = Vec::with_capacity(self.size_hint_exact().unwrap_or(0));
        self.fold_items((), &mut |(), x| out.push(x));
        out
    }

    /// Drain into a collector (the paper's imperative encoding — the only
    /// one that supports mutation, §3.1).
    fn collect_into<C: Collector<Item = Self::Item>>(self, c: &mut C) {
        self.fold_items((), &mut |(), x| c.feed(x));
    }

    // -- parallelism hints --------------------------------------------------

    /// Request distributed + threaded execution (the paper's `par`).
    fn par(self) -> Self {
        self.with_hint(ParHint::Par)
    }

    /// Request single-node threaded execution (the paper's `localpar`).
    fn localpar(self) -> Self {
        self.with_hint(ParHint::LocalPar)
    }
}

// ===========================================================================
// IdxFlat
// ===========================================================================

/// A flat indexer: a regular, random-access, partitionable loop.
#[derive(Clone)]
pub struct IdxFlat<I> {
    idx: I,
    hint: ParHint,
}

impl<I: Indexer> IdxFlat<I> {
    /// Wrap an indexer as a sequential iterator.
    pub fn new(idx: I) -> Self {
        IdxFlat { idx, hint: ParHint::Sequential }
    }

    /// The underlying indexer.
    pub fn indexer(&self) -> &I {
        &self.idx
    }

    /// Unwrap into the underlying indexer, discarding the hint.
    pub fn into_indexer(self) -> I {
        self.idx
    }

    /// The iteration domain.
    pub fn domain(&self) -> I::Dom {
        self.idx.domain()
    }

    /// Restrict to a part of the domain, keeping only that part's data
    /// (paper §3.5). The distributed engine calls this per node.
    pub fn slice_part(&self, part: &<I::Dom as Domain>::Part) -> Self {
        IdxFlat { idx: self.idx.slice(part), hint: self.hint }
    }

    /// Fold the elements of one part only (a node's or thread's share).
    pub fn fold_part<B, G: FnMut(B, I::Out) -> B>(
        &self,
        part: &<I::Dom as Domain>::Part,
        init: B,
        g: &mut G,
    ) -> B {
        let mut acc = init;
        for k in 0..part.count() {
            acc = g(acc, self.idx.get(part.index_at(k)));
        }
        acc
    }

    /// Packed byte size of the data sources (what would cross the wire).
    pub fn source_bytes(&self) -> usize {
        self.idx.source_size()
    }

    /// Push all data sources through pack/unpack — the node-boundary
    /// crossing (see [`crate::indexer::Indexer::roundtrip_source`]).
    pub fn roundtrip_data(self) -> Self {
        IdxFlat { idx: self.idx.roundtrip_source(), hint: self.hint }
    }
}

impl<I: Indexer> TrioIter for IdxFlat<I> {
    type Item = I::Out;

    fn hint(&self) -> ParHint {
        self.hint
    }

    fn with_hint(self, h: ParHint) -> Self {
        IdxFlat { idx: self.idx, hint: h }
    }

    fn fold_items<B, G: FnMut(B, I::Out) -> B>(self, init: B, g: &mut G) -> B {
        let dom = self.idx.domain();
        let mut acc = init;
        for k in 0..dom.count() {
            acc = g(acc, self.idx.get(dom.index_at(k)));
        }
        acc
    }

    fn into_step(self) -> impl Iterator<Item = I::Out> {
        IdxStepper::over_all(self.idx)
    }

    fn size_hint_exact(&self) -> Option<usize> {
        Some(self.idx.domain().count())
    }

    type Mapped<F: ElemFn<I::Out>> = IdxFlat<MapIdx<I, F>>;
    fn map<F: ElemFn<I::Out>>(self, f: F) -> Self::Mapped<F> {
        IdxFlat { idx: MapIdx::new(self.idx, f), hint: self.hint }
    }

    type Filtered<P: ElemPred<I::Out>> = IdxNest<MapIdx<I, FilterToStep<P>>>;
    fn filter<P: ElemPred<I::Out>>(self, p: P) -> Self::Filtered<P> {
        IdxNest { idx: MapIdx::new(self.idx, FilterToStep { p }), hint: self.hint }
    }

    type ConcatMapped<F: IterFn<I::Out>> = IdxNest<MapIdx<I, IterFnAdapter<F>>>;
    fn concat_map<F: IterFn<I::Out>>(self, f: F) -> Self::ConcatMapped<F> {
        IdxNest { idx: MapIdx::new(self.idx, IterFnAdapter { f }), hint: self.hint }
    }
}

// ===========================================================================
// StepFlat
// ===========================================================================

/// A flat stepper: a sequential, variable-length loop.
pub struct StepFlat<S> {
    it: S,
    hint: ParHint,
}

impl<S: Iterator> StepFlat<S> {
    /// Wrap a stepper as a sequential iterator.
    pub fn new(it: S) -> Self {
        StepFlat { it, hint: ParHint::Sequential }
    }
}

impl<S: Iterator> TrioIter for StepFlat<S> {
    type Item = S::Item;

    fn hint(&self) -> ParHint {
        self.hint
    }

    fn with_hint(self, h: ParHint) -> Self {
        StepFlat { it: self.it, hint: h }
    }

    fn fold_items<B, G: FnMut(B, S::Item) -> B>(self, init: B, g: &mut G) -> B {
        let mut acc = init;
        for x in self.it {
            acc = g(acc, x);
        }
        acc
    }

    fn into_step(self) -> impl Iterator<Item = S::Item> {
        self.it
    }

    type Mapped<F: ElemFn<S::Item>> = StepFlat<MapStep<S, F>>;
    fn map<F: ElemFn<S::Item>>(self, f: F) -> Self::Mapped<F> {
        StepFlat { it: MapStep { inner: self.it, f }, hint: self.hint }
    }

    type Filtered<P: ElemPred<S::Item>> = StepFlat<FilterStep<S, P>>;
    fn filter<P: ElemPred<S::Item>>(self, p: P) -> Self::Filtered<P> {
        StepFlat { it: FilterStep { inner: self.it, p }, hint: self.hint }
    }

    type ConcatMapped<F: IterFn<S::Item>> = StepNest<MapStep<S, IterFnAdapter<F>>>;
    fn concat_map<F: IterFn<S::Item>>(self, f: F) -> Self::ConcatMapped<F> {
        StepNest { it: MapStep { inner: self.it, f: IterFnAdapter { f } }, hint: self.hint }
    }
}

// ===========================================================================
// IdxNest
// ===========================================================================

/// An indexer of inner iterators: a partitionable outer loop whose inner
/// loops may be irregular. This is the shape that lets `filter` and
/// `concat_map` fuse *and* parallelize (paper §3.2).
#[derive(Clone)]
pub struct IdxNest<I> {
    idx: I,
    hint: ParHint,
}

impl<I: Indexer> IdxNest<I>
where
    I::Out: TrioIter,
{
    /// Wrap an indexer whose elements are iterators.
    pub fn new(idx: I) -> Self {
        IdxNest { idx, hint: ParHint::Sequential }
    }

    /// The underlying outer indexer.
    pub fn indexer(&self) -> &I {
        &self.idx
    }

    /// The outer iteration domain (inner lengths are data-dependent).
    pub fn outer_domain(&self) -> I::Dom {
        self.idx.domain()
    }

    /// Restrict the outer loop to a part, keeping only that part's data.
    pub fn slice_part(&self, part: &<I::Dom as Domain>::Part) -> Self {
        IdxNest { idx: self.idx.slice(part), hint: self.hint }
    }

    /// Fold the elements generated by one outer part only.
    pub fn fold_part<B, G: FnMut(B, <I::Out as TrioIter>::Item) -> B>(
        &self,
        part: &<I::Dom as Domain>::Part,
        init: B,
        g: &mut G,
    ) -> B {
        let mut acc = init;
        for k in 0..part.count() {
            let inner = self.idx.get(part.index_at(k));
            acc = inner.fold_items(acc, g);
        }
        acc
    }

    /// Packed byte size of the data sources (what would cross the wire).
    pub fn source_bytes(&self) -> usize {
        self.idx.source_size()
    }

    /// Push all data sources through pack/unpack — the node-boundary
    /// crossing (see [`crate::indexer::Indexer::roundtrip_source`]).
    pub fn roundtrip_data(self) -> Self {
        IdxNest { idx: self.idx.roundtrip_source(), hint: self.hint }
    }
}

impl<I: Indexer> TrioIter for IdxNest<I>
where
    I::Out: TrioIter,
{
    type Item = <I::Out as TrioIter>::Item;

    fn hint(&self) -> ParHint {
        self.hint
    }

    fn with_hint(self, h: ParHint) -> Self {
        IdxNest { idx: self.idx, hint: h }
    }

    fn fold_items<B, G: FnMut(B, Self::Item) -> B>(self, init: B, g: &mut G) -> B {
        let dom = self.idx.domain();
        let mut acc = init;
        for k in 0..dom.count() {
            let inner = self.idx.get(dom.index_at(k));
            acc = inner.fold_items(acc, g);
        }
        acc
    }

    fn into_step(self) -> impl Iterator<Item = Self::Item> {
        IdxStepper::over_all(self.idx).flat_map(|inner| inner.into_step())
    }

    type Mapped<F: ElemFn<Self::Item>> = IdxNest<MapIdx<I, MapInner<F>>>;
    fn map<F: ElemFn<Self::Item>>(self, f: F) -> Self::Mapped<F> {
        IdxNest { idx: MapIdx::new(self.idx, MapInner { f }), hint: self.hint }
    }

    type Filtered<P: ElemPred<Self::Item>> = IdxNest<MapIdx<I, FilterInner<P>>>;
    fn filter<P: ElemPred<Self::Item>>(self, p: P) -> Self::Filtered<P> {
        IdxNest { idx: MapIdx::new(self.idx, FilterInner { p }), hint: self.hint }
    }

    type ConcatMapped<F: IterFn<Self::Item>> = IdxNest<MapIdx<I, ConcatMapInner<F>>>;
    fn concat_map<F: IterFn<Self::Item>>(self, f: F) -> Self::ConcatMapped<F> {
        IdxNest { idx: MapIdx::new(self.idx, ConcatMapInner { f }), hint: self.hint }
    }
}

// ===========================================================================
// StepNest
// ===========================================================================

/// A stepper of inner iterators: a fully sequential nested loop.
pub struct StepNest<S> {
    it: S,
    hint: ParHint,
}

impl<S: Iterator> StepNest<S>
where
    S::Item: TrioIter,
{
    /// Wrap a stepper whose elements are iterators.
    pub fn new(it: S) -> Self {
        StepNest { it, hint: ParHint::Sequential }
    }
}

impl<S: Iterator> TrioIter for StepNest<S>
where
    S::Item: TrioIter,
{
    type Item = <S::Item as TrioIter>::Item;

    fn hint(&self) -> ParHint {
        self.hint
    }

    fn with_hint(self, h: ParHint) -> Self {
        StepNest { it: self.it, hint: h }
    }

    fn fold_items<B, G: FnMut(B, Self::Item) -> B>(self, init: B, g: &mut G) -> B {
        let mut acc = init;
        for inner in self.it {
            acc = inner.fold_items(acc, g);
        }
        acc
    }

    fn into_step(self) -> impl Iterator<Item = Self::Item> {
        self.it.flat_map(|inner| inner.into_step())
    }

    type Mapped<F: ElemFn<Self::Item>> = StepNest<MapStep<S, MapInner<F>>>;
    fn map<F: ElemFn<Self::Item>>(self, f: F) -> Self::Mapped<F> {
        StepNest { it: MapStep { inner: self.it, f: MapInner { f } }, hint: self.hint }
    }

    type Filtered<P: ElemPred<Self::Item>> = StepNest<MapStep<S, FilterInner<P>>>;
    fn filter<P: ElemPred<Self::Item>>(self, p: P) -> Self::Filtered<P> {
        StepNest { it: MapStep { inner: self.it, f: FilterInner { p } }, hint: self.hint }
    }

    type ConcatMapped<F: IterFn<Self::Item>> = StepNest<MapStep<S, ConcatMapInner<F>>>;
    fn concat_map<F: IterFn<Self::Item>>(self, f: F) -> Self::ConcatMapped<F> {
        StepNest { it: MapStep { inner: self.it, f: ConcatMapInner { f } }, hint: self.hint }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexer::ArrayIdx;

    fn arr(v: Vec<i64>) -> IdxFlat<ArrayIdx<i64>> {
        IdxFlat::new(ArrayIdx::new(v))
    }

    #[test]
    fn idxflat_fold_and_sum() {
        let s: i64 = arr(vec![1, 2, 3, 4]).sum_scalar();
        assert_eq!(s, 10);
    }

    #[test]
    fn map_fuses_with_sum() {
        let s: i64 = arr((1..=5).collect()).map(|x: i64| x * x).sum_scalar();
        assert_eq!(s, 55);
    }

    #[test]
    fn filter_produces_partitionable_nest_with_right_elements() {
        // sum . filter over an indexer: the paper's running example (§3.2).
        let it = arr(vec![1, -2, -4, 1, 3, 4]).filter(|x: &i64| *x > 0);
        assert_eq!(it.collect_vec(), vec![1, 1, 3, 4]);
    }

    #[test]
    fn filter_then_sum() {
        let s: i64 = arr(vec![1, -2, -4, 1, 3, 4]).filter(|x: &i64| *x > 0).sum_scalar();
        assert_eq!(s, 9);
    }

    #[test]
    fn filter_part_folding_matches_partition() {
        // Partition the outer loop of a filtered iterator: the two halves'
        // results concatenate to the whole — the property that makes
        // irregular loops parallelizable.
        let it = arr(vec![1, -2, -4, 1, 3, 4]).filter(|x: &i64| *x > 0);
        let dom = it.outer_domain();
        let parts = dom.split_parts(2);
        let mut combined = Vec::new();
        for p in &parts {
            let sub = it.slice_part(p);
            sub.fold_part(p, (), &mut |(), x| combined.push(x));
        }
        assert_eq!(combined, vec![1, 1, 3, 4]);
    }

    #[test]
    fn concat_map_nested_traversal() {
        // Each x expands to [x, x, x] (a computed inner loop).
        let it = arr(vec![1, 2, 3])
            .concat_map(|x: i64| StepFlat::new(std::iter::repeat_n(x, x as usize)));
        assert_eq!(it.collect_vec(), vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn concat_map_then_filter_then_sum() {
        let s: i64 = arr(vec![1, 2, 3, 4])
            .concat_map(|x: i64| StepFlat::new((0..x).map(move |y| x * 10 + y)))
            .filter(|v: &i64| v % 2 == 0)
            .sum_scalar();
        // Elements: 10, 20,21, 30,31,32, 40,41,42,43 → even: 10,20,30,32,40,42
        assert_eq!(s, 174);
    }

    #[test]
    fn map_after_filter_recurses_into_nest() {
        let v =
            arr(vec![1, -1, 2, -2, 3]).filter(|x: &i64| *x > 0).map(|x: i64| x * 100).collect_vec();
        assert_eq!(v, vec![100, 200, 300]);
    }

    #[test]
    fn filter_after_filter() {
        let v = arr((0..20).collect())
            .filter(|x: &i64| x % 2 == 0)
            .filter(|x: &i64| x % 3 == 0)
            .collect_vec();
        assert_eq!(v, vec![0, 6, 12, 18]);
    }

    #[test]
    fn into_step_flattens_nests() {
        let steps: Vec<i64> =
            arr(vec![3, 1, 2]).concat_map(|x: i64| StepFlat::new(0..x)).into_step().collect();
        assert_eq!(steps, vec![0, 1, 2, 0, 0, 1]);
    }

    #[test]
    fn hints_propagate_through_map() {
        let it = arr(vec![1, 2]).par().map(|x: i64| x);
        assert_eq!(it.hint(), ParHint::Par);
        let it = arr(vec![1, 2]).localpar().filter(|_: &i64| true);
        assert_eq!(it.hint(), ParHint::LocalPar);
    }

    #[test]
    fn size_hint_exact_flat_only() {
        assert_eq!(arr(vec![1, 2, 3]).size_hint_exact(), Some(3));
        assert_eq!(arr(vec![1, 2, 3]).filter(|_: &i64| true).size_hint_exact(), None);
    }

    #[test]
    fn reduce_and_count() {
        assert_eq!(arr(vec![4, 7, 1]).reduce_items(i64::max), Some(7));
        assert_eq!(arr(vec![]).reduce_items(i64::max), None);
        assert_eq!(arr(vec![5, 5]).count_items(), 2);
        assert_eq!(arr(vec![1, -1, 1]).filter(|x: &i64| *x > 0).count_items(), 2);
    }

    #[test]
    fn stepflat_combinators() {
        let it = StepFlat::new(0i64..10);
        let v = it.map(|x: i64| x + 1).filter(|x: &i64| x % 2 == 0).collect_vec();
        assert_eq!(v, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn stepnest_via_concat_map_on_stepflat() {
        let it =
            StepFlat::new(1i64..4).concat_map(|x: i64| StepFlat::new(std::iter::repeat_n(x, 2)));
        assert_eq!(it.collect_vec(), vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn flatten_equals_concat_map_identity() {
        let it = arr(vec![1, 2, 3]).map(|x: i64| StepFlat::new(0..x)).flatten();
        assert_eq!(it.collect_vec(), vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn deep_nesting_three_levels() {
        // concat_map of concat_map: IdxNest of nested inner shapes.
        let v = arr(vec![2, 3])
            .concat_map(|x: i64| {
                StepFlat::new(0..x).concat_map(|y: i64| StepFlat::new(std::iter::once(y * 2)))
            })
            .collect_vec();
        assert_eq!(v, vec![0, 2, 0, 2, 4]);
    }
}
