//! Dense unboxed arrays: the in-memory data structures behind indexers.
//!
//! The paper's runtime "stor[es] data in arrays" and serializes pointer-free
//! arrays with a block copy. [`Array2`] and [`Array3`] are row-major dense
//! matrices/grids with [`Wire`] framing whose element payload takes the
//! block-copy fast path for pod element types.

use std::ops::{Index, IndexMut};
use std::sync::Arc;

use triolet_domain::{Dim2, Dim3, Domain};
use triolet_serial::{Wire, WireError, WireReader, WireResult, WireWriter};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Array2<T> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
}

impl<T> Array2<T> {
    /// Build from row-major data; `data.len()` must equal `rows * cols`.
    pub fn from_vec(data: Vec<T>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data must fill the matrix");
        Array2 { data, rows, cols }
    }

    /// Build element-by-element from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Array2 { data, rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The matrix's iteration domain.
    pub fn domain(&self) -> Dim2 {
        Dim2::new(self.rows, self.cols)
    }

    /// Row `r` as a contiguous slice.
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// All elements, row-major.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// All elements, row-major, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Share the backing data (for [`crate::indexer::RowsIdx`] sources).
    pub fn to_shared(&self) -> Arc<Vec<T>>
    where
        T: Clone,
    {
        Arc::new(self.data.clone())
    }
}

impl<T: Clone + Default> Array2<T> {
    /// Matrix of default-valued elements.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Array2 { data: vec![T::default(); rows * cols], rows, cols }
    }

    /// The transposed matrix (sgemm transposes `B` "for faster memory
    /// access" before multiplying, §2).
    pub fn transpose(&self) -> Array2<T> {
        let mut out = Array2::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)].clone();
            }
        }
        out
    }
}

impl<T> Index<(usize, usize)> for Array2<T> {
    type Output = T;
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Array2<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Wire> Wire for Array2<T> {
    fn pack(&self, w: &mut WireWriter) {
        self.rows.pack(w);
        self.cols.pack(w);
        T::pack_slice(&self.data, w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        let rows = usize::unpack(r)?;
        let cols = usize::unpack(r)?;
        let data = T::unpack_vec(r)?;
        if data.len() != rows * cols {
            return Err(WireError::BadLength { len: data.len(), remaining: r.remaining() });
        }
        Ok(Array2 { data, rows, cols })
    }
    fn packed_size(&self) -> usize {
        16 + T::slice_packed_size(&self.data)
    }
}

/// A dense 3-D grid, `z` innermost (cutcp's potential lattice).
#[derive(Debug, Clone, PartialEq)]
pub struct Array3<T> {
    data: Vec<T>,
    dom: Dim3,
}

impl<T> Array3<T> {
    /// Build from linearized data; length must equal the domain size.
    pub fn from_vec(data: Vec<T>, dom: Dim3) -> Self {
        assert_eq!(data.len(), dom.count(), "linearized data must fill the grid");
        Array3 { data, dom }
    }

    /// The grid's iteration domain.
    pub fn domain(&self) -> Dim3 {
        self.dom
    }

    /// All cells, linearized.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// All cells, linearized, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: Clone + Default> Array3<T> {
    /// Grid of default-valued cells.
    pub fn zeros(dom: Dim3) -> Self {
        Array3 { data: vec![T::default(); dom.count()], dom }
    }
}

impl<T> Index<(usize, usize, usize)> for Array3<T> {
    type Output = T;
    fn index(&self, idx: (usize, usize, usize)) -> &T {
        &self.data[self.dom.linear_of(idx)]
    }
}

impl<T> IndexMut<(usize, usize, usize)> for Array3<T> {
    fn index_mut(&mut self, idx: (usize, usize, usize)) -> &mut T {
        let k = self.dom.linear_of(idx);
        &mut self.data[k]
    }
}

impl<T: Wire> Wire for Array3<T> {
    fn pack(&self, w: &mut WireWriter) {
        self.dom.pack(w);
        T::pack_slice(&self.data, w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        let dom = Dim3::unpack(r)?;
        let data = T::unpack_vec(r)?;
        if data.len() != dom.count() {
            return Err(WireError::BadLength { len: data.len(), remaining: r.remaining() });
        }
        Ok(Array3 { data, dom })
    }
    fn packed_size(&self) -> usize {
        self.dom.packed_size() + T::slice_packed_size(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet_serial::{packed, unpack_all};

    #[test]
    fn array2_from_fn_and_index() {
        let a = Array2::from_fn(3, 4, |r, c| (r * 10 + c) as i32);
        assert_eq!(a[(0, 0)], 0);
        assert_eq!(a[(2, 3)], 23);
        assert_eq!(a.row(1), &[10, 11, 12, 13]);
    }

    #[test]
    fn array2_transpose() {
        let a = Array2::from_fn(2, 3, |r, c| (r, c));
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(t[(c, r)], a[(r, c)]);
            }
        }
    }

    #[test]
    fn array2_double_transpose_is_identity() {
        let a = Array2::from_fn(5, 7, |r, c| (r * 31 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn array2_wire_roundtrip() {
        let a = Array2::from_fn(4, 3, |r, c| (r + c) as f64 * 0.5);
        assert_eq!(unpack_all::<Array2<f64>>(packed(&a)).unwrap(), a);
    }

    #[test]
    fn array2_wire_rejects_inconsistent_shape() {
        let a = Array2::from_fn(2, 2, |r, c| (r + c) as u32);
        let mut w = WireWriter::new();
        // Corrupt: claim 3x3 but pack 4 elements.
        3usize.pack(&mut w);
        3usize.pack(&mut w);
        u32::pack_slice(a.as_slice(), &mut w);
        assert!(unpack_all::<Array2<u32>>(w.finish()).is_err());
    }

    #[test]
    fn array3_index_and_roundtrip() {
        let dom = Dim3::new(2, 3, 4);
        let mut g = Array3::<f32>::zeros(dom);
        g[(1, 2, 3)] = 7.5;
        g[(0, 0, 0)] = -1.0;
        assert_eq!(g[(1, 2, 3)], 7.5);
        assert_eq!(unpack_all::<Array3<f32>>(packed(&g)).unwrap(), g);
    }

    #[test]
    #[should_panic(expected = "fill the matrix")]
    fn array2_from_vec_wrong_len_panics() {
        let _ = Array2::from_vec(vec![1, 2, 3], 2, 2);
    }
}
