//! User-facing constructors: the library functions application code calls to
//! start a loop (paper §2's `zip`, `rows`, `outerproduct`, `range`, …).

use std::sync::Arc;

use triolet_domain::{Dim2, Domain, Seq};
use triolet_serial::Wire;

use crate::array::Array2;
use crate::indexer::{
    ArrayIdx, Indexer, OuterProductIdx, RangeIdx, RowsIdx, StripsIdx, Zip3Idx, ZipIdx,
};
use crate::shapes::{IdxFlat, StepFlat, TrioIter};

/// Iterate an owned vector (becomes a shared, sliceable data source).
pub fn from_vec<T: Wire + Clone + Send + Sync + 'static>(v: Vec<T>) -> IdxFlat<ArrayIdx<T>> {
    IdxFlat::new(ArrayIdx::new(v))
}

/// Iterate a borrowed slice; the elements are copied once into a shared
/// source (a real cluster must own the data it ships anyway).
pub fn array_iter<T: Wire + Clone + Send + Sync + 'static>(xs: &[T]) -> IdxFlat<ArrayIdx<T>> {
    from_vec(xs.to_vec())
}

/// The integers `0..n` as a parallel-friendly iterator.
pub fn range(n: usize) -> IdxFlat<RangeIdx<Seq>> {
    IdxFlat::new(RangeIdx::new(Seq::new(n)))
}

/// All `(row, col)` pairs of an `rows x cols` space, row-major — the paper's
/// `arrayRange((0,0), (h, w))` for transpose-style loops.
pub fn range2d(rows: usize, cols: usize) -> IdxFlat<RangeIdx<Dim2>> {
    IdxFlat::new(RangeIdx::new(Dim2::new(rows, cols)))
}

/// All indices of an arbitrary domain — the paper's `indices(domain(xs))`.
pub fn indices<D: Domain>(dom: D) -> IdxFlat<RangeIdx<D>> {
    IdxFlat::new(RangeIdx::new(dom))
}

/// View a matrix as an iterator over its rows — the paper's `rows(A)` (§2).
/// The backing data is shared once; slicing ships only the addressed rows.
pub fn rows<T: Wire + Clone + Send + Sync + 'static>(a: &Array2<T>) -> IdxFlat<RowsIdx<T>> {
    IdxFlat::new(RowsIdx::new(a.to_shared(), a.rows(), a.cols()))
}

/// View a matrix as an iterator over fixed-height row *strips* — the
/// strip-level analogue of [`rows`] used by tiled block kernels. Each
/// element is a [`StripRef`](crate::indexer::StripRef) carrying its global
/// row coordinates; slicing ships only the addressed strips.
pub fn row_strips<T: Wire + Clone + Send + Sync + 'static>(
    a: &Array2<T>,
    strip_rows: usize,
) -> IdxFlat<StripsIdx<T>> {
    IdxFlat::new(StripsIdx::new(a.to_shared(), a.rows(), a.cols(), strip_rows))
}

/// View a shared row-major buffer as an iterator over rows, without copying.
pub fn rows_shared<T: Wire + Clone + Send + Sync + 'static>(
    data: Arc<Vec<T>>,
    nrows: usize,
    ncols: usize,
) -> IdxFlat<RowsIdx<T>> {
    IdxFlat::new(RowsIdx::new(data, nrows, ncols))
}

/// Iterate a matrix's elements in row-major order with a `Dim2` domain.
#[allow(clippy::type_complexity)]
pub fn array2_iter<T: Wire + Clone + Send + Sync + 'static>(
    a: &Array2<T>,
) -> IdxFlat<crate::indexer::FnIdx<Dim2, impl Fn((usize, usize)) -> T + Clone>> {
    let data = a.to_shared();
    let cols = a.cols();
    IdxFlat::new(crate::indexer::FnIdx::new(a.domain(), move |(r, c): (usize, usize)| {
        data[r * cols + c].clone()
    }))
}

/// Pair two flat iterators index-by-index over the intersection of their
/// domains. Both data sources are sliced together when distributed.
pub fn zip<A, B>(a: IdxFlat<A>, b: IdxFlat<B>) -> IdxFlat<ZipIdx<A, B>>
where
    A: Indexer,
    B: Indexer<Dom = A::Dom>,
    A::Out: Send + 'static,
    B::Out: Send + 'static,
{
    let hint = a.hint();
    IdxFlat::new(ZipIdx::new(a.into_indexer(), b.into_indexer())).with_hint(hint)
}

/// Triple three flat iterators index-by-index (mri-q's `zip3(x, y, z)`).
pub fn zip3<A, B, C>(a: IdxFlat<A>, b: IdxFlat<B>, c: IdxFlat<C>) -> IdxFlat<Zip3Idx<A, B, C>>
where
    A: Indexer,
    B: Indexer<Dom = A::Dom>,
    C: Indexer<Dom = A::Dom>,
    A::Out: Send + 'static,
    B::Out: Send + 'static,
    C::Out: Send + 'static,
{
    let hint = a.hint();
    IdxFlat::new(Zip3Idx::new(a.into_indexer(), b.into_indexer(), c.into_indexer())).with_hint(hint)
}

/// Pair each element with its index: `zip(indices(domain(xs)), xs)` — the
/// idiom tpacf's Figure 6 uses to drive triangular loops.
pub fn enumerate<A>(a: IdxFlat<A>) -> IdxFlat<ZipIdx<RangeIdx<A::Dom>, A>>
where
    A: Indexer,
    A::Out: Send + 'static,
{
    let hint = a.hint();
    let dom = a.domain();
    IdxFlat::new(ZipIdx::new(RangeIdx::new(dom), a.into_indexer())).with_hint(hint)
}

/// Cross two 1-D iterators into a 2-D iterator of pairs — the paper's
/// `outerproduct(rows(A), rows(BT))` (§2). Slicing a 2-D block extracts only
/// the covering row/column ranges of the two inputs.
pub fn outerproduct<A, B>(a: IdxFlat<A>, b: IdxFlat<B>) -> IdxFlat<OuterProductIdx<A, B>>
where
    A: Indexer<Dom = Seq>,
    B: Indexer<Dom = Seq>,
    A::Out: Send + 'static,
    B::Out: Send + 'static,
{
    let hint = a.hint();
    IdxFlat::new(OuterProductIdx::new(a.into_indexer(), b.into_indexer())).with_hint(hint)
}

/// Zip two arbitrary-shape iterators sequentially via steppers: the fallback
/// equation of the paper's Figure 2 `zip` for non-indexer shapes. Loses
/// parallelism (steppers are sequential) but keeps fusion.
pub fn zip_seq<A, B>(
    a: A,
    b: B,
) -> StepFlat<std::iter::Zip<impl Iterator<Item = A::Item>, impl Iterator<Item = B::Item>>>
where
    A: TrioIter,
    B: TrioIter,
{
    StepFlat::new(a.into_step().zip(b.into_step()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::TrioIter;

    #[test]
    fn range_sums() {
        let s: usize = range(10).sum_scalar();
        assert_eq!(s, 45);
    }

    #[test]
    fn range2d_row_major() {
        let v = range2d(2, 2).collect_vec();
        assert_eq!(v, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn dot_product_via_zip_map_sum() {
        // The paper's §2 dot product: sum(x*y for (x,y) in zip(xs, ys)).
        let xs = vec![1.0f64, 2.0, 3.0];
        let ys = vec![4.0f64, 5.0, 6.0];
        let dot: f64 =
            zip(array_iter(&xs), array_iter(&ys)).map(|(x, y): (f64, f64)| x * y).sum_scalar();
        assert_eq!(dot, 32.0);
    }

    #[test]
    fn zip_truncates_to_intersection() {
        let v = zip(range(5), array_iter(&[10u64, 20])).collect_vec();
        assert_eq!(v, vec![(0, 10), (1, 20)]);
    }

    #[test]
    fn zip3_triples() {
        let v = zip3(range(2), range(2), range(2)).collect_vec();
        assert_eq!(v, vec![(0, 0, 0), (1, 1, 1)]);
    }

    #[test]
    fn rows_then_outerproduct_matmul_structure() {
        // 2x2 matrix product structure: outerproduct(rows(A), rows(Bt)).
        let a = Array2::from_vec(vec![1.0f64, 2.0, 3.0, 4.0], 2, 2);
        let b_t = Array2::from_vec(vec![5.0f64, 7.0, 6.0, 8.0], 2, 2); // B transposed
        let prod = outerproduct(rows(&a), rows(&b_t))
            .map(|(u, v): (crate::indexer::RowRef<f64>, crate::indexer::RowRef<f64>)| {
                u.as_slice().iter().zip(v.as_slice()).map(|(x, y)| x * y).sum::<f64>()
            })
            .collect_vec();
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]]  => AB = [[19,22],[43,50]]
        assert_eq!(prod, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn array2_iter_yields_elements() {
        let a = Array2::from_fn(2, 3, |r, c| (r * 3 + c) as i64);
        let s: i64 = array2_iter(&a).sum_scalar();
        assert_eq!(s, 15);
    }

    #[test]
    fn zip_seq_mixed_shapes() {
        // Zip a filtered (nested) iterator with a flat one: falls back to
        // sequential steppers, per Figure 2.
        let evens = range(10).map(|i: usize| i as i64).filter(|x: &i64| x % 2 == 0);
        let tags = array_iter(&[10i64, 20, 30, 40, 50]);
        let v = zip_seq(evens, tags).collect_vec();
        assert_eq!(v, vec![(0, 10), (2, 20), (4, 30), (6, 40), (8, 50)]);
    }

    #[test]
    fn enumerate_pairs_index_and_element() {
        let v = enumerate(array_iter(&[10i64, 20, 30])).collect_vec();
        assert_eq!(v, vec![(0, 10), (1, 20), (2, 30)]);
        // The triangular-loop idiom: suffix pairs per element.
        let n = enumerate(array_iter(&[5i64, 6, 7]))
            .concat_map(|(i, _x): (usize, i64)| StepFlat::new(i + 1..3))
            .count_items();
        assert_eq!(n, (2 + 1));
    }

    #[test]
    fn par_hint_survives_zip() {
        let it = zip(range(4).par(), range(4));
        assert_eq!(it.hint(), crate::shapes::ParHint::Par);
    }
}
