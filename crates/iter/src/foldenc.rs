//! The fold encoding and the conversion lattice of the paper's Figure 1.
//!
//! A fold encodes a collection as "a function that folds over its elements
//! in some predetermined order" (§3.1). Folds handle nested traversals well
//! (the inner fold inlines into the outer worker) but surrender all control
//! over execution order, ruling out zip and parallelism. Triolet keeps folds
//! as the *consuming* side of iterators; this module exposes the encoding
//! directly so the Figure 1 capability matrix and its "slow" cell (stepper
//! nested traversal) can be demonstrated and benchmarked in isolation.
//!
//! The conversion direction is one-way: indexer → stepper → fold/collector.
//! "A higher-control encoding can be converted to a lower-control one."

use triolet_domain::{Domain, Part};

use crate::collector::Collector;
use crate::indexer::Indexer;

/// The boxed traversal driving a [`FoldEnc`]: it calls the worker once per
/// element.
pub type FoldRun<T> = Box<dyn FnOnce(&mut dyn FnMut(T))>;

/// A collection in fold encoding: calling it folds a worker over every
/// element. `FoldEnc<T>` is the paper's `λw z → …` value.
pub struct FoldEnc<T> {
    run: FoldRun<T>,
}

impl<T: 'static> FoldEnc<T> {
    /// Wrap a traversal function.
    pub fn new(run: impl FnOnce(&mut dyn FnMut(T)) + 'static) -> Self {
        FoldEnc { run: Box::new(run) }
    }

    /// The paper's `idxToFold`: loop over a domain part, calling the worker
    /// on each looked-up element.
    pub fn from_indexer<I>(idx: I, part: <I::Dom as Domain>::Part) -> Self
    where
        I: Indexer<Out = T> + 'static,
    {
        FoldEnc::new(move |w| {
            for k in 0..part.count() {
                w(idx.get(part.index_at(k)));
            }
        })
    }

    /// A stepper converted to a fold (drain the coroutine).
    pub fn from_stepper<S>(s: S) -> Self
    where
        S: Iterator<Item = T> + 'static,
    {
        FoldEnc::new(move |w| {
            for x in s {
                w(x);
            }
        })
    }

    /// Nested fold: fold over outer elements, each of which is itself a
    /// fold. This is the case where folds beat steppers — the inner loop
    /// inlines directly into the outer worker.
    pub fn nested(outer: FoldEnc<FoldEnc<T>>) -> Self {
        FoldEnc::new(move |w| {
            outer.fold((), |(), inner| inner.run_with(w));
        })
    }

    /// Drive the fold with an accumulator.
    pub fn fold<B>(self, init: B, mut f: impl FnMut(B, T) -> B) -> B {
        let mut acc = Some(init);
        (self.run)(&mut |x| {
            let a = acc.take().expect("accumulator present");
            acc = Some(f(a, x));
        });
        acc.expect("accumulator present")
    }

    /// Drive the fold into a borrowed worker.
    pub fn run_with(self, w: &mut dyn FnMut(T)) {
        (self.run)(w)
    }

    /// The paper's `idxToColl` composed with a fold: drain into a collector.
    /// "However, this conversion removes the potential for parallelization."
    pub fn into_collector<C: Collector<Item = T>>(self, mut c: C) -> C {
        (self.run)(&mut |x| c.feed(x));
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, CountHist};
    use crate::indexer::ArrayIdx;
    use triolet_domain::{Domain, Seq, SeqPart};

    #[test]
    fn fold_from_indexer_sums() {
        let idx = ArrayIdx::new(vec![1u64, 2, 3]);
        let part = Seq::new(3).whole_part();
        let f = FoldEnc::from_indexer(idx, part);
        assert_eq!(f.fold(0u64, |a, x| a + x), 6);
    }

    #[test]
    fn fold_respects_part() {
        let idx = ArrayIdx::new((0..10u64).collect());
        let f = FoldEnc::from_indexer(idx, SeqPart::new(2, 3));
        assert_eq!(
            f.fold(Vec::new(), |mut v, x| {
                v.push(x);
                v
            }),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn fold_from_stepper() {
        let f = FoldEnc::from_stepper((1..=4).filter(|x| x % 2 == 0));
        assert_eq!(f.fold(0, |a, x| a + x), 6);
    }

    #[test]
    fn nested_fold_flattens() {
        // [[0],[0,1],[0,1,2]] as folds of folds.
        let outer = FoldEnc::new(move |w: &mut dyn FnMut(FoldEnc<u64>)| {
            for n in 1..=3u64 {
                w(FoldEnc::from_stepper(0..n));
            }
        });
        let flat = FoldEnc::nested(outer);
        assert_eq!(
            flat.fold(Vec::new(), |mut v, x| {
                v.push(x);
                v
            }),
            vec![0, 0, 1, 0, 1, 2]
        );
    }

    #[test]
    fn fold_into_collector_histogram() {
        let f = FoldEnc::from_stepper(vec![0usize, 1, 1, 2].into_iter());
        let h = f.into_collector(CountHist::new(3));
        assert_eq!(h.finish(), vec![1, 2, 1]);
    }
}
