//! The paper's `Iter` GADT, literally: a four-constructor enum dispatched at
//! run time.
//!
//! The primary encoding in this crate ([`crate::shapes`]) resolves the
//! constructor *statically* — each shape is its own generic struct and rustc
//! monomorphizes the Figure 2 equations away, exactly as GHC's simplifier
//! does when "the compiler knows their `Iter` argument's constructor".
//!
//! This module is the other half of the paper's story: when the constructor
//! is **not** statically known (Triolet falls back to runtime dispatch and
//! pays for it), the value lives in a [`DynIter`] — one enum with the four
//! constructors of §3.2:
//!
//! ```text
//! data Iter a where
//!   IdxFlat  :: Idx a         -> Iter a
//!   StepFlat :: Step a        -> Iter a
//!   IdxNest  :: Idx (Iter a)  -> Iter a
//!   StepNest :: Step (Iter a) -> Iter a
//! ```
//!
//! Every combinator below is written as the paper's four equations, matching
//! on the constructor. The costs are honest: boxed lookups and steppers,
//! one virtual call per element per stage. `DynIter` is used by tests that
//! need runtime-shape dispatch and serves as the measured contrast to the
//! fused encoding (see `benches/ablation_fusion.rs`).

/// A boxed indexer: size plus lookup function (the dynamic `Idx a`).
pub struct DynIdx<T> {
    len: usize,
    get: Box<dyn Fn(usize) -> T>,
}

impl<T> DynIdx<T> {
    /// Build from a length and a lookup function.
    pub fn new(len: usize, get: impl Fn(usize) -> T + 'static) -> Self {
        DynIdx { len, get: Box::new(get) }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Look up one element.
    pub fn get(&self, i: usize) -> T {
        (self.get)(i)
    }
}

/// A boxed stepper (the dynamic `Step a`).
pub type DynStep<T> = Box<dyn Iterator<Item = T>>;

/// The runtime-dispatched hybrid iterator: the paper's `Iter` data type.
pub enum DynIter<T> {
    /// A flat random-access loop.
    IdxFlat(DynIdx<T>),
    /// A flat sequential loop.
    StepFlat(DynStep<T>),
    /// An indexer of inner iterators (partitionable outer, irregular inner).
    IdxNest(DynIdx<DynIter<T>>),
    /// A stepper of inner iterators (fully sequential nest).
    StepNest(DynStep<DynIter<T>>),
}

impl<T: 'static> DynIter<T> {
    /// Wrap a concrete vector (an `IdxFlat` over owned data).
    pub fn from_vec(xs: Vec<T>) -> Self
    where
        T: Clone,
    {
        let xs = std::rc::Rc::new(xs);
        DynIter::IdxFlat(DynIdx::new(xs.len(), move |i| xs[i].clone()))
    }

    /// Wrap any stepper (iterator) as a `StepFlat`.
    pub fn from_step(it: impl Iterator<Item = T> + 'static) -> Self {
        DynIter::StepFlat(Box::new(it))
    }

    /// The constructor's name (for tests asserting Figure 2's shape rules).
    pub fn constructor(&self) -> &'static str {
        match self {
            DynIter::IdxFlat(_) => "IdxFlat",
            DynIter::StepFlat(_) => "StepFlat",
            DynIter::IdxNest(_) => "IdxNest",
            DynIter::StepNest(_) => "StepNest",
        }
    }

    /// Whether the outer level is an indexer (partitionable).
    pub fn outer_parallelizable(&self) -> bool {
        matches!(self, DynIter::IdxFlat(_) | DynIter::IdxNest(_))
    }

    /// `map` — Figure 2: shape-preserving on all four constructors.
    ///
    /// Takes any plain closure; the `Rc` the recursive equations need for
    /// shared ownership across nesting levels is an internal detail.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> DynIter<U> {
        self.map_rc(std::rc::Rc::new(f))
    }

    fn map_rc<U: 'static>(self, f: std::rc::Rc<dyn Fn(T) -> U>) -> DynIter<U> {
        match self {
            DynIter::IdxFlat(idx) => {
                let g = f.clone();
                DynIter::IdxFlat(DynIdx::new(idx.len, move |i| g((idx.get)(i))))
            }
            DynIter::StepFlat(s) => {
                let g = f.clone();
                DynIter::StepFlat(Box::new(s.map(move |x| g(x))))
            }
            DynIter::IdxNest(idx) => {
                let g = f.clone();
                DynIter::IdxNest(DynIdx::new(idx.len, move |i| (idx.get)(i).map_rc(g.clone())))
            }
            DynIter::StepNest(s) => {
                let g = f.clone();
                DynIter::StepNest(Box::new(s.map(move |inner| inner.map_rc(g.clone()))))
            }
        }
    }

    /// `filter` — Figure 2: a flat indexer becomes an indexer of steppers
    /// (IdxNest); the other constructors recurse or filter in place.
    pub fn filter(self, p: impl Fn(&T) -> bool + 'static) -> DynIter<T> {
        self.filter_rc(std::rc::Rc::new(p))
    }

    fn filter_rc(self, p: std::rc::Rc<dyn Fn(&T) -> bool>) -> DynIter<T> {
        match self {
            DynIter::IdxFlat(idx) => {
                let q = p.clone();
                DynIter::IdxNest(DynIdx::new(idx.len, move |i| {
                    let x = (idx.get)(i);
                    let keep = q(&x);
                    DynIter::StepFlat(Box::new(if keep { Some(x) } else { None }.into_iter()))
                }))
            }
            DynIter::StepFlat(s) => {
                let q = p.clone();
                DynIter::StepFlat(Box::new(s.filter(move |x| q(x))))
            }
            DynIter::IdxNest(idx) => {
                let q = p.clone();
                DynIter::IdxNest(DynIdx::new(idx.len, move |i| (idx.get)(i).filter_rc(q.clone())))
            }
            DynIter::StepNest(s) => {
                let q = p.clone();
                DynIter::StepNest(Box::new(s.map(move |inner| inner.filter_rc(q.clone()))))
            }
        }
    }

    /// `concatMap` — Figure 2: flat indexers nest; flat steppers become
    /// stepper nests; nested shapes recurse.
    pub fn concat_map<U: 'static>(self, f: impl Fn(T) -> DynIter<U> + 'static) -> DynIter<U> {
        self.concat_map_rc(std::rc::Rc::new(f))
    }

    fn concat_map_rc<U: 'static>(self, f: std::rc::Rc<dyn Fn(T) -> DynIter<U>>) -> DynIter<U> {
        match self {
            DynIter::IdxFlat(idx) => {
                let g = f.clone();
                DynIter::IdxNest(DynIdx::new(idx.len, move |i| g((idx.get)(i))))
            }
            DynIter::StepFlat(s) => {
                let g = f.clone();
                DynIter::StepNest(Box::new(s.map(move |x| g(x))))
            }
            DynIter::IdxNest(idx) => {
                let g = f.clone();
                DynIter::IdxNest(DynIdx::new(idx.len, move |i| {
                    (idx.get)(i).concat_map_rc(g.clone())
                }))
            }
            DynIter::StepNest(s) => {
                let g = f.clone();
                DynIter::StepNest(Box::new(s.map(move |inner| inner.concat_map_rc(g.clone()))))
            }
        }
    }

    /// `toStep` — convert any constructor to a flat stepper (loses
    /// parallelism, keeps the element sequence).
    pub fn into_step(self) -> DynStep<T> {
        match self {
            DynIter::IdxFlat(idx) => {
                let mut i = 0usize;
                Box::new(std::iter::from_fn(move || {
                    if i < idx.len {
                        let x = (idx.get)(i);
                        i += 1;
                        Some(x)
                    } else {
                        None
                    }
                }))
            }
            DynIter::StepFlat(s) => s,
            DynIter::IdxNest(idx) => {
                let mut i = 0usize;
                let mut cur: Option<DynStep<T>> = None;
                Box::new(std::iter::from_fn(move || loop {
                    if let Some(s) = cur.as_mut() {
                        if let Some(x) = s.next() {
                            return Some(x);
                        }
                        cur = None;
                    }
                    if i >= idx.len {
                        return None;
                    }
                    cur = Some((idx.get)(i).into_step());
                    i += 1;
                }))
            }
            DynIter::StepNest(mut s) => {
                let mut cur: Option<DynStep<T>> = None;
                Box::new(std::iter::from_fn(move || loop {
                    if let Some(inner) = cur.as_mut() {
                        if let Some(x) = inner.next() {
                            return Some(x);
                        }
                        cur = None;
                    }
                    cur = Some(s.next()?.into_step());
                }))
            }
        }
    }

    /// Fold every element (turns every nesting level into a loop).
    pub fn fold<B>(self, init: B, f: &mut dyn FnMut(B, T) -> B) -> B {
        match self {
            DynIter::IdxFlat(idx) => {
                let mut acc = init;
                for i in 0..idx.len {
                    acc = f(acc, (idx.get)(i));
                }
                acc
            }
            DynIter::StepFlat(s) => {
                let mut acc = init;
                for x in s {
                    acc = f(acc, x);
                }
                acc
            }
            DynIter::IdxNest(idx) => {
                let mut acc = init;
                for i in 0..idx.len {
                    acc = (idx.get)(i).fold(acc, f);
                }
                acc
            }
            DynIter::StepNest(s) => {
                let mut acc = init;
                for inner in s {
                    acc = inner.fold(acc, f);
                }
                acc
            }
        }
    }

    /// Collect all elements.
    pub fn collect_vec(self) -> Vec<T> {
        self.fold(Vec::new(), &mut |mut v, x| {
            v.push(x);
            v
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nums(n: i64) -> DynIter<i64> {
        DynIter::from_vec((0..n).collect())
    }

    #[test]
    fn figure2_shape_rules() {
        // map preserves shape.
        let m = nums(5).map(|x| x * 2);
        assert_eq!(m.constructor(), "IdxFlat");
        // filter on a flat indexer yields IdxNest (still partitionable!).
        let f = nums(5).filter(|x: &i64| x % 2 == 0);
        assert_eq!(f.constructor(), "IdxNest");
        assert!(f.outer_parallelizable());
        // concat_map on a flat stepper yields StepNest (sequential).
        let s = DynIter::from_step(0..5i64).concat_map(|x| DynIter::from_step(0..x));
        assert_eq!(s.constructor(), "StepNest");
        assert!(!s.outer_parallelizable());
        // filter of filter stays IdxNest: irregularity never escapes the
        // inner level.
        let ff = nums(10).filter(|x: &i64| x % 2 == 0).filter(|x: &i64| x % 3 == 0);
        assert_eq!(ff.constructor(), "IdxNest");
    }

    #[test]
    fn dyn_pipeline_matches_reference() {
        let got = nums(50)
            .map(|x| x * 3)
            .filter(|x: &i64| x % 2 == 0)
            .concat_map(|x| DynIter::from_step(0..x % 5))
            .collect_vec();
        let expect: Vec<i64> =
            (0..50).map(|x| x * 3).filter(|x| x % 2 == 0).flat_map(|x| 0..x % 5).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn into_step_flattens_all_constructors() {
        let nested = nums(4).concat_map(|x| DynIter::from_vec(vec![x; x as usize]));
        assert_eq!(nested.constructor(), "IdxNest");
        let flat: Vec<i64> = nested.into_step().collect();
        assert_eq!(flat, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn fold_and_step_agree() {
        let a = nums(30).filter(|x: &i64| x % 4 != 0).fold(0i64, &mut |acc, x| acc + x);
        let b: i64 = nums(30).filter(|x: &i64| x % 4 != 0).into_step().sum();
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_with_static_shapes() {
        // The runtime-dispatched encoding computes exactly what the
        // monomorphized encoding computes.
        use crate::prelude::*;
        use crate::StepFlat;
        let via_static = from_vec((0..100i64).collect::<Vec<i64>>())
            .map(|x: i64| x + 1)
            .filter(|x: &i64| x % 3 == 0)
            .concat_map(|x: i64| StepFlat::new(0..x % 4))
            .collect_vec();
        let via_dyn = DynIter::from_vec((0..100i64).collect::<Vec<i64>>())
            .map(|x| x + 1)
            .filter(|x: &i64| x % 3 == 0)
            .concat_map(|x| DynIter::from_step(0..x % 4))
            .collect_vec();
        assert_eq!(via_static, via_dyn);
    }

    #[test]
    fn empty_cases() {
        assert!(DynIter::<i64>::from_vec(vec![]).collect_vec().is_empty());
        let e = DynIter::from_vec(Vec::<i64>::new()).filter(|_: &i64| true);
        assert!(e.collect_vec().is_empty());
    }
}
