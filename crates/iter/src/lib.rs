//! Hybrid fusible iterators: the core contribution of the Triolet paper.
//!
//! The paper (§3.1–§3.3) observes that every known fusible loop encoding is
//! missing a feature (its Figure 1):
//!
//! | encoding  | parallel | zip | filter | nested traversal | mutation |
//! |-----------|----------|-----|--------|------------------|----------|
//! | indexer   | yes      | yes | no     | no               | no       |
//! | stepper   | no       | yes | yes    | slow             | no       |
//! | fold      | no       | no  | yes    | yes              | no       |
//! | collector | no       | no  | yes    | yes              | yes      |
//!
//! Triolet's fix is a *hybrid* representation: a loop nest with an indexer or
//! stepper encoding chosen per nesting level. The four shapes are
//! [`IdxFlat`], [`StepFlat`], [`IdxNest`] and [`StepNest`]; every combinator
//! (`map`, `zip`, `filter`, `concat_map`, …) is defined once per shape —
//! exactly the "four equations per function" of the paper's Figure 2 — and
//! the output shape is determined solely by the input shape, so compositions
//! resolve statically. In this reproduction the static resolution is Rust
//! monomorphization: combinators return concrete generic types and rustc's
//! inliner performs the loop fusion GHC's simplifier performs in the paper.
//!
//! The crucial property: irregular producers (`filter`, `concat_map`) do
//! **not** destroy outer-loop parallelism. `filter` over an indexer produces
//! an *indexer of steppers* ([`IdxNest`]): each input index yields zero or
//! one outputs, so the outer loop can still be partitioned across nodes and
//! threads while the variable-length inner part stays sequential and fused.
//!
//! Indexers also carry the paper's §3.5 *data source / extractor* split:
//! [`Indexer::slice`] extracts a new indexer owning only the data a
//! [`Part`](triolet_domain::Part) touches, which is how distributed skeletons
//! send each node exactly the sub-arrays it reads.
//!
//! # Example
//!
//! ```
//! use triolet_iter::prelude::*;
//!
//! let xs = vec![1i64, -2, -4, 1, 3, 4];
//! // sum of filter: fuses into one loop, stays partitionable on the outside.
//! let s: i64 = array_iter(&xs).filter(|x: &i64| *x > 0).sum_scalar();
//! assert_eq!(s, 9);
//! ```

pub mod array;
pub mod collector;
pub mod dyniter;
pub mod foldenc;
pub mod indexer;
pub mod shapes;
pub mod sources;
pub mod stepper;

pub use array::{Array2, Array3};
pub use collector::{Collector, CountHist, SumCollector, VecCollector, WeightHist};
pub use dyniter::{DynIdx, DynIter, DynStep};
pub use indexer::{
    ArrayIdx, FnIdx, Indexer, MapIdx, OuterProductIdx, RangeIdx, RowRef, RowsIdx, StripRef,
    StripsIdx, Zip3Idx, ZipIdx,
};
pub use shapes::{IdxFlat, IdxNest, ParHint, StepFlat, StepNest, TrioIter};
pub use sources::{
    array2_iter, array_iter, enumerate, from_vec, indices, outerproduct, range, range2d,
    row_strips, rows, zip, zip3,
};

/// Everything a user of the iterator library typically needs.
pub mod prelude {
    pub use crate::array::{Array2, Array3};
    pub use crate::collector::{Collector, CountHist, VecCollector, WeightHist};
    pub use crate::shapes::{IdxFlat, IdxNest, ParHint, StepFlat, StepNest, TrioIter};
    pub use crate::sources::{
        array2_iter, array_iter, enumerate, from_vec, indices, outerproduct, range, range2d,
        row_strips, rows, zip, zip3,
    };
    pub use triolet_domain::{Dim2, Dim3, Domain, Part, Seq};
}
