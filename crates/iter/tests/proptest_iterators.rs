//! Property tests on the hybrid iterator laws: for arbitrary inputs and
//! pipeline parameters, every composition must agree with the reference
//! `std::iter` semantics, every shape conversion must preserve the element
//! sequence, and slicing must partition exactly.

use proptest::prelude::*;
use triolet_domain::{Domain, Part, Seq};
use triolet_iter::prelude::*;
use triolet_iter::sources::zip_seq;
use triolet_iter::StepFlat;

proptest! {
    #[test]
    fn map_law(xs in proptest::collection::vec(any::<i64>(), 0..300), k in -5i64..5) {
        let expect: Vec<i64> = xs.iter().map(|&x| x.wrapping_mul(k)).collect();
        let got = from_vec(xs).map(move |x: i64| x.wrapping_mul(k)).collect_vec();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn filter_law(xs in proptest::collection::vec(any::<i64>(), 0..300), m in 1i64..10) {
        let expect: Vec<i64> = xs.iter().copied().filter(|x| x.rem_euclid(m) == 0).collect();
        let got = from_vec(xs).filter(move |x: &i64| x.rem_euclid(m) == 0).collect_vec();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn concat_map_law(xs in proptest::collection::vec(0i64..20, 0..100)) {
        let expect: Vec<i64> = xs.iter().flat_map(|&x| (0..x).map(move |y| x + y)).collect();
        let got = from_vec(xs)
            .concat_map(|x: i64| StepFlat::new((0..x).map(move |y| x + y)))
            .collect_vec();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn map_filter_compose(
        xs in proptest::collection::vec(any::<i32>(), 0..300),
        add in any::<i32>(),
        m in 1i32..7,
    ) {
        let expect: Vec<i32> = xs
            .iter()
            .map(|&x| x.wrapping_add(add))
            .filter(|v| v.rem_euclid(m) == 0)
            .collect();
        let got = from_vec(xs)
            .map(move |x: i32| x.wrapping_add(add))
            .filter(move |v: &i32| v.rem_euclid(m) == 0)
            .collect_vec();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn into_step_equals_fold_order(xs in proptest::collection::vec(0i64..15, 0..80)) {
        let it1 = from_vec(xs.clone())
            .concat_map(|x: i64| StepFlat::new(0..x))
            .filter(|v: &i64| v % 2 == 0);
        let it2 = from_vec(xs)
            .concat_map(|x: i64| StepFlat::new(0..x))
            .filter(|v: &i64| v % 2 == 0);
        let via_fold = it1.collect_vec();
        let via_step: Vec<i64> = it2.into_step().collect();
        prop_assert_eq!(via_fold, via_step);
    }

    #[test]
    fn zip_law(
        xs in proptest::collection::vec(any::<u32>(), 0..200),
        ys in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        let expect: Vec<(u32, u32)> = xs.iter().copied().zip(ys.iter().copied()).collect();
        let got = zip(from_vec(xs), from_vec(ys)).collect_vec();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn zip_seq_law_on_irregular(
        xs in proptest::collection::vec(any::<u16>(), 0..150),
        m in 1u16..5,
    ) {
        let filtered: Vec<u16> = xs.iter().copied().filter(|x| x % m == 0).collect();
        let expect: Vec<(u16, usize)> =
            filtered.iter().copied().zip(0..xs.len()).collect();
        let got = zip_seq(
            from_vec(xs.clone()).filter(move |x: &u16| x.is_multiple_of(m)),
            range(xs.len()),
        )
        .collect_vec();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sliced_folds_partition_exactly(
        xs in proptest::collection::vec(any::<i64>(), 1..300),
        parts in 1usize..12,
        m in 1i64..6,
    ) {
        // Slicing the outer loop of an irregular pipeline and folding each
        // part must concatenate to the unsliced result.
        let it = from_vec(xs.clone()).filter(move |x: &i64| x.rem_euclid(m) == 0);
        let whole = from_vec(xs.clone())
            .filter(move |x: &i64| x.rem_euclid(m) == 0)
            .collect_vec();
        let dom = Seq::new(xs.len());
        let mut got = Vec::new();
        for p in dom.split_parts(parts) {
            let sub = it.slice_part(&p);
            sub.fold_part(&p, (), &mut |(), x| got.push(x));
        }
        prop_assert_eq!(got, whole);
    }

    #[test]
    fn slice_source_bytes_proportional(
        len in 10usize..500,
        parts in 2usize..8,
    ) {
        let it = from_vec((0..len as i64).collect::<Vec<i64>>());
        let dom = Seq::new(len);
        let total: usize = dom
            .split_parts(parts)
            .iter()
            .map(|p| it.slice_part(p).source_bytes())
            .sum();
        // The slices together hold exactly the data once (plus per-slice
        // headers bounded by 32 bytes each).
        let full = it.source_bytes();
        prop_assert!(total <= full + 32 * parts);
        prop_assert!(total + 32 * parts >= full);
    }

    #[test]
    fn count_matches_len_after_roundtrip(xs in proptest::collection::vec(any::<f32>(), 0..200)) {
        let n = xs.len();
        let it = from_vec(xs).roundtrip_data();
        prop_assert_eq!(it.count_items(), n);
    }

    #[test]
    fn collectors_agree_with_fold(xs in proptest::collection::vec(0usize..32, 0..300)) {
        let mut h = triolet_iter::CountHist::new(32);
        from_vec(xs.clone()).collect_into(&mut h);
        let mut expect = vec![0u64; 32];
        for x in xs {
            expect[x] += 1;
        }
        prop_assert_eq!(h.finish(), expect);
    }

    #[test]
    fn part_indexing_consistent_with_enumeration(
        len in 1usize..400,
        parts in 1usize..10,
    ) {
        let dom = Seq::new(len);
        for p in dom.split_parts(parts) {
            for k in 0..p.count() {
                let idx = p.index_at(k);
                prop_assert!(idx >= p.start && idx < p.end());
            }
        }
    }
}
