//! Property tests over the four applications: for random instance
//! parameters, all four implementations must agree and obey the apps'
//! structural invariants.

use proptest::prelude::*;
use triolet::prelude::*;
use triolet_apps::{cutcp, mriq, sgemm, tpacf};
use triolet_baselines::{EdenRt, LowLevelRt};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn mriq_all_models_agree(
        pixels in 1usize..80,
        samples in 1usize..40,
        seed in any::<u64>(),
        nodes in 1usize..5,
        tpn in 1usize..5,
    ) {
        let input = mriq::generate(pixels, samples, seed);
        let expect = mriq::run_seq(&input);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let got = mriq::run_triolet(&rt, &input).value;
        prop_assert!(mriq::validate(&expect, &got, 1e-3));
        let ll = LowLevelRt::new(ClusterConfig::virtual_cluster(nodes, tpn));
        let (got, _) = mriq::run_lowlevel(&ll, &input);
        prop_assert!(mriq::validate(&expect, &got, 1e-3));
    }

    #[test]
    fn sgemm_all_models_agree(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in any::<u64>(),
        nodes in 1usize..5,
    ) {
        let input = sgemm::generate_rect(m, k, n, seed);
        let expect = sgemm::run_seq(&input);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, 2));
        let got = sgemm::run_triolet(&rt, &input).value;
        prop_assert!(sgemm::validate(&expect, &got, 1e-3));
        let ll = LowLevelRt::new(ClusterConfig::virtual_cluster(nodes, 2));
        let (got, _) = sgemm::run_lowlevel(&ll, &input);
        prop_assert!(sgemm::validate(&expect, &got, 1e-3));
    }

    #[test]
    fn tpacf_histogram_totals_invariant(
        n in 2usize..40,
        n_rand in 0usize..4,
        bins in 2usize..24,
        seed in any::<u64>(),
        nodes in 1usize..4,
    ) {
        let input = tpacf::generate(n, n_rand, bins, seed);
        let expect = tpacf::run_seq(&input);
        // Structural invariants of the sequential reference.
        let pairs = (n * (n - 1) / 2) as u64;
        prop_assert_eq!(expect.dd.iter().sum::<u64>(), pairs);
        prop_assert_eq!(expect.rr.iter().sum::<u64>(), n_rand as u64 * pairs);
        prop_assert_eq!(expect.dr.iter().sum::<u64>(), (n_rand * n * n) as u64);
        // Cross-model equality (histograms are exact).
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, 2));
        let got = tpacf::run_triolet(&rt, &input).value;
        prop_assert!(tpacf::validate(&expect, &got));
        let eden = EdenRt::new(nodes, 2);
        let (got, _) = tpacf::run_eden(&eden, &input).expect("small payloads");
        prop_assert!(tpacf::validate(&expect, &got));
    }

    #[test]
    fn cutcp_grid_agrees_and_superposes(
        atoms in 1usize..50,
        dim in 4usize..12,
        seed in any::<u64>(),
        nodes in 1usize..4,
    ) {
        let input = cutcp::generate(atoms, dim, seed);
        let expect = cutcp::run_seq(&input);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, 2));
        let got = cutcp::run_triolet(&rt, &input).value;
        prop_assert!(cutcp::validate(&expect, &got, 1e-9));

        // Superposition: the field of all atoms equals the sum of the
        // fields of disjoint atom subsets.
        if input.atoms.len() >= 2 {
            let mid = input.atoms.len() / 2;
            let first = cutcp::CutcpInput {
                atoms: input.atoms[..mid].to_vec(),
                geom: input.geom,
            };
            let second = cutcp::CutcpInput {
                atoms: input.atoms[mid..].to_vec(),
                geom: input.geom,
            };
            let sum: Vec<f64> = cutcp::run_seq(&first)
                .iter()
                .zip(cutcp::run_seq(&second))
                .map(|(a, b)| a + b)
                .collect();
            prop_assert!(cutcp::validate(&expect, &sum, 1e-9));
        }
    }

    #[test]
    fn mriq_output_scales_linearly_with_phi(
        pixels in 1usize..40,
        samples in 1usize..20,
        seed in any::<u64>(),
    ) {
        // Q is linear in phiMag: doubling phi_r and phi_i quadruples phiMag
        // and thus quadruples Q.
        let input = mriq::generate(pixels, samples, seed);
        let mut scaled = input.clone();
        for v in scaled.phi_r.iter_mut().chain(scaled.phi_i.iter_mut()) {
            *v *= 2.0;
        }
        let base = mriq::run_seq(&input);
        let big = mriq::run_seq(&scaled);
        for (a, b) in base.qr.iter().zip(&big.qr) {
            prop_assert!((4.0 * a - b).abs() <= 1e-3 * b.abs().max(1.0));
        }
    }

    #[test]
    fn sgemm_alpha_scales_output(
        dim in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut input = sgemm::generate(dim, seed);
        let c1 = sgemm::run_seq(&input);
        input.alpha *= 3.0;
        let c3 = sgemm::run_seq(&input);
        for (a, b) in c1.as_slice().iter().zip(c3.as_slice()) {
            prop_assert!((3.0 * a - b).abs() <= 1e-4 * b.abs().max(1.0));
        }
    }
}
