//! Eden-style sgemm (paper §4.3).
//!
//! The Eden version hand-writes the same 2-D block decomposition, but pays
//! Eden's costs: the transpose is a *sequential bottleneck* ("Transposition
//! is a sequential bottleneck in Eden since it does too little work to
//! parallelize profitably on distributed memory. At 128 cores, transposition
//! takes 35% of Eden's execution time"), per-process messages carry whole
//! row bands, and — the headline failure — the row-band messages exceed the
//! runtime's buffer capacity beyond one node: "The Eden code fails at 2
//! nodes because the array data is too large for Eden's message-passing
//! runtime to buffer."

use triolet::{Array2, Dim2Part, Part, RunStats};
use triolet_baselines::{EdenError, EdenRt};
use triolet_domain::{chunk_ranges, near_square_grid};
use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

use super::{dot_rows, transpose_seq, SgemmInput};

/// One Eden task: an output block and the row bands covering it.
#[derive(Clone)]
pub struct EdenBlock {
    block: Dim2Part,
    a_rows: Vec<f32>,
    bt_rows: Vec<f32>,
    k: usize,
    alpha: f32,
}

impl Wire for EdenBlock {
    fn pack(&self, w: &mut WireWriter) {
        self.block.pack(w);
        self.a_rows.pack(w);
        self.bt_rows.pack(w);
        self.k.pack(w);
        self.alpha.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(EdenBlock {
            block: Dim2Part::unpack(r)?,
            a_rows: Vec::unpack(r)?,
            bt_rows: Vec::unpack(r)?,
            k: usize::unpack(r)?,
            alpha: f32::unpack(r)?,
        })
    }
    fn packed_size(&self) -> usize {
        self.block.packed_size() + self.a_rows.packed_size() + self.bt_rows.packed_size() + 8 + 4
    }
}

/// Run sgemm through the Eden runtime.
pub fn run_eden(rt: &EdenRt, input: &SgemmInput) -> Result<(Array2<f32>, RunStats), EdenError> {
    // Sequential transpose: Eden cannot profitably parallelize it on
    // distributed memory (no shared heap), so the main process does it.
    let t0 = std::time::Instant::now();
    let bt = transpose_seq(&input.b);
    let transpose_s = t0.elapsed().as_secs_f64();

    let m = input.a.rows();
    let n = input.b.cols();
    let k = input.a.cols();
    // One block per process across the whole machine (flat view).
    let total_procs = rt.nodes() * rt.procs_per_node();
    let (pr, pc) = near_square_grid(total_procs, m, n);
    let mut tasks = Vec::with_capacity(pr * pc);
    for &(r0, nr) in &chunk_ranges(m, pr) {
        for &(c0, nc) in &chunk_ranges(n, pc) {
            let mut a_rows = Vec::with_capacity(nr * k);
            for r in r0..r0 + nr {
                a_rows.extend_from_slice(input.a.row(r));
            }
            let mut bt_rows = Vec::with_capacity(nc * k);
            for c in c0..c0 + nc {
                bt_rows.extend_from_slice(bt.row(c));
            }
            tasks.push(EdenBlock {
                block: Dim2Part::new(r0, nr, c0, nc),
                a_rows,
                bt_rows,
                k,
                alpha: input.alpha,
            });
        }
    }

    let (blocks, mut stats) = rt.map_reduce(
        tasks,
        |t: EdenBlock| -> Vec<(Dim2Part, Vec<f32>)> {
            // Plain loops: sequential Eden sgemm is comparable to C (the
            // slow parts of Eden sgemm are the transpose and the messages).
            let mut out = Vec::with_capacity(t.block.count());
            for lr in 0..t.block.rows {
                let a_row = &t.a_rows[lr * t.k..(lr + 1) * t.k];
                for lc in 0..t.block.cols {
                    let bt_row = &t.bt_rows[lc * t.k..(lc + 1) * t.k];
                    out.push(t.alpha * dot_rows(a_row, bt_row));
                }
            }
            vec![(t.block, out)]
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
        Vec::new,
    )?;

    let mut c = Array2::<f32>::zeros(m, n);
    for (block, data) in blocks {
        for (kk, x) in data.into_iter().enumerate() {
            let (r, cc) = block.index_at(kk);
            c[(r, cc)] = x;
        }
    }
    stats.total_s += transpose_s;
    stats.root_s += transpose_s;
    Ok((c, stats))
}
