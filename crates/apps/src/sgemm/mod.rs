//! sgemm: scaled dense matrix multiply `C = alpha * A * B` (paper §4.3).
//!
//! "We parallelize the multiplication after transposing matrices so that the
//! innermost loop accesses contiguous matrix elements. All three versions
//! use a 2D block-based parallel decomposition that sends each worker only
//! the input matrix rows that it needs to compute its output block."
//!
//! The Triolet version is the paper's two-liner (§2):
//!
//! ```python
//! zipped_AB = outerproduct(rows(A), rows(BT))
//! AB = [dot(u, v) for (u, v) in par(zipped_AB)]
//! ```
//!
//! The transpose itself "does too little work to parallelize profitably on
//! distributed memory"; Triolet runs it `localpar` over shared memory, and
//! the Eden model pays it as a sequential bottleneck.

mod eden;
mod kernel;
mod lowlevel;
mod seq;
mod triolet_impl;

pub use eden::run_eden;
pub use kernel::{gemm_naive, gemm_tiled, gemm_tiled_into, BLOCK_MC, BLOCK_NC, TILE_MR, TILE_NR};
pub use lowlevel::run_lowlevel;
pub use seq::{run_seq, transpose_seq};
pub use triolet_impl::{
    run_triolet, run_triolet_tiled, transpose_triolet, zipped_ab, Dim2OuterProduct,
};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triolet::Array2;

/// Problem instance: `A` is `m x k`, `B` is `k x n`, output `m x n`.
#[derive(Debug, Clone, PartialEq)]
pub struct SgemmInput {
    /// Left operand.
    pub a: Array2<f32>,
    /// Right operand.
    pub b: Array2<f32>,
    /// Output scale factor.
    pub alpha: f32,
}

/// Deterministic synthetic instance with square `dim x dim` matrices (the
/// paper uses 4k x 4k; benchmarks here use scaled-down dims).
pub fn generate(dim: usize, seed: u64) -> SgemmInput {
    generate_rect(dim, dim, dim, seed)
}

/// Deterministic rectangular instance: `A` is `m x k`, `B` is `k x n`.
pub fn generate_rect(m: usize, k: usize, n: usize, seed: u64) -> SgemmInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen =
        |rows: usize, cols: usize| Array2::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0));
    let a = gen(m, k);
    let b = gen(k, n);
    SgemmInput { a, b, alpha: 0.5 }
}

/// Sequential dot product of two contiguous rows — the inner kernel shared
/// by every implementation.
#[inline]
pub fn dot_rows(u: &[f32], v: &[f32]) -> f32 {
    debug_assert_eq!(u.len(), v.len());
    let mut acc = 0.0f32;
    for (x, y) in u.iter().zip(v) {
        acc += x * y;
    }
    acc
}

/// Validate two outputs to a relative tolerance.
pub fn validate(a: &Array2<f32>, b: &Array2<f32>, tol: f32) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && crate::close_f32(a.as_slice(), b.as_slice(), tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet::prelude::*;
    use triolet_baselines::{EdenError, EdenRt, LowLevelRt};

    fn small() -> SgemmInput {
        generate(24, 11)
    }

    #[test]
    fn seq_known_product() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]], alpha = 0.5
        let input = SgemmInput {
            a: Array2::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2),
            b: Array2::from_vec(vec![5.0, 6.0, 7.0, 8.0], 2, 2),
            alpha: 0.5,
        };
        let c = run_seq(&input);
        assert_eq!(c.as_slice(), &[9.5, 11.0, 21.5, 25.0]);
    }

    #[test]
    fn rectangular_shapes() {
        let input = generate_rect(5, 7, 3, 9);
        let c = run_seq(&input);
        assert_eq!(c.rows(), 5);
        assert_eq!(c.cols(), 3);
    }

    #[test]
    fn triolet_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 2));
        let run = run_triolet(&rt, &input);
        assert!(validate(&expect, &run.value, 1e-4));
        assert!(run.stats.bytes_out > 0);
    }

    #[test]
    fn triolet_block_slicing_bounds_traffic() {
        // 2-D block decomposition: total shipped bytes are O(sqrt(nodes))
        // copies of each matrix, far less than nodes x full copies.
        let input = generate(64, 3);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 2));
        let full = 2 * (64 * 64 * 4) as u64;
        let stats = run_triolet(&rt, &input).stats;
        // 2x2 grid: each matrix shipped twice (each row block to 2 nodes).
        assert!(stats.bytes_out < 3 * full, "bytes_out={} full={}", stats.bytes_out, full);
        assert!(stats.bytes_out as f64 > 1.5 * full as f64);
    }

    #[test]
    fn lowlevel_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(4, 2));
        let (got, _) = run_lowlevel(&rt, &input);
        assert!(validate(&expect, &got, 1e-4));
    }

    #[test]
    fn lowlevel_matches_seq_bitwise() {
        // The tiled node kernel preserves the naive accumulation order, so
        // the distributed low-level result is bit-identical to run_seq.
        let input = generate_rect(37, 19, 23, 12);
        let expect = run_seq(&input);
        let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(4, 2));
        let (got, _) = run_lowlevel(&rt, &input);
        assert_eq!(expect.rows(), got.rows());
        for (x, y) in expect.as_slice().iter().zip(got.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn triolet_tiled_matches_triolet_bitwise() {
        // Strip-level two-liner with the tiled kernel vs the row-level
        // two-liner with dot_rows: bit-identical outputs.
        let input = generate_rect(70, 33, 65, 21);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 2));
        let expect = run_triolet(&rt, &input).value;
        let run = run_triolet_tiled(&rt, &input);
        assert_eq!(expect.rows(), run.value.rows());
        assert_eq!(expect.cols(), run.value.cols());
        for (x, y) in expect.as_slice().iter().zip(run.value.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(run.stats.bytes_out > 0);
    }

    #[test]
    fn eden_matches_seq_on_one_node() {
        let input = small();
        let expect = run_seq(&input);
        let rt = EdenRt::new(1, 4);
        let (got, _) = run_eden(&rt, &input).expect("single node has no buffer limit");
        assert!(validate(&expect, &got, 1e-4));
    }

    #[test]
    fn eden_fails_at_two_nodes_on_large_input() {
        // Paper §4.3: "The Eden code fails at 2 nodes because the array data
        // is too large for Eden's message-passing runtime to buffer."
        let input = generate(384, 5);
        let rt = EdenRt::new(2, 8);
        match run_eden(&rt, &input) {
            Err(EdenError::MessageTooLarge { .. }) => {}
            other => panic!("expected buffer failure, got {:?}", other.map(|(c, _)| c.rows())),
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let input = small();
        let t = transpose_seq(&input.b);
        assert_eq!(t.transpose(), input.b);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(1, 4));
        let t2 = transpose_triolet(&rt, &input.b).value;
        assert_eq!(t, t2);
    }
}
