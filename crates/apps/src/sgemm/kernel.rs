//! The sgemm node kernels: naive reference and the cache-blocked,
//! register-blocked tile kernel.
//!
//! Both kernels compute `out[r*cols + c] = alpha * dot(A_row_r, BT_row_c)`
//! over row-major `A` rows and `B^T` rows. The tiled kernel restructures the
//! *i/j* loops only: each output element still accumulates its `k` products
//! in ascending-`k` order through a single `f32` chain, then scales by
//! `alpha` — exactly the operations [`dot_rows`](super::dot_rows) performs —
//! so the results are **bit-identical** to the naive kernel (asserted by
//! proptests and the ablation bench).
//!
//! The structure is the classic three-level GEMM blocking:
//!
//! * an outer *j* cache block of [`BLOCK_NC`] columns whose `B^T` rows are
//!   packed once into a `k x TILE_NR`-panel buffer (contiguous along the
//!   micro-kernel's access pattern),
//! * an *i* cache block of [`BLOCK_MC`] rows that keeps the active `A` rows
//!   hot while every packed panel of the column block is consumed,
//! * a [`TILE_MR`] x [`TILE_NR`] register micro-kernel holding a 4x4
//!   accumulator block in registers: 16 independent dependence chains per
//!   `k` step instead of the naive kernel's single latency-bound chain.
//!
//! Remainder rows/columns that do not fill a tile fall back to the naive
//! per-element dot product (same chain, same bits).

use super::dot_rows;

/// Register tile height (output rows per micro-kernel call).
pub const TILE_MR: usize = 4;
/// Register tile width (output columns per micro-kernel call).
pub const TILE_NR: usize = 4;
/// Rows per *i* cache block.
pub const BLOCK_MC: usize = 64;
/// Columns per *j* cache block (a multiple of [`TILE_NR`]).
pub const BLOCK_NC: usize = 256;

/// Naive reference kernel: one dot product per output element.
///
/// `a_rows` is `rows x k` row-major, `bt_rows` is `cols x k` row-major
/// (rows of `B^T`, i.e. columns of `B`).
pub fn gemm_naive(
    a_rows: &[f32],
    bt_rows: &[f32],
    k: usize,
    rows: usize,
    cols: usize,
    alpha: f32,
) -> Vec<f32> {
    debug_assert_eq!(a_rows.len(), rows * k);
    debug_assert_eq!(bt_rows.len(), cols * k);
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        let a_row = &a_rows[r * k..(r + 1) * k];
        for c in 0..cols {
            out.push(alpha * dot_rows(a_row, &bt_rows[c * k..(c + 1) * k]));
        }
    }
    out
}

/// Tiled kernel: allocate and fill a `rows x cols` output block.
pub fn gemm_tiled(
    a_rows: &[f32],
    bt_rows: &[f32],
    k: usize,
    rows: usize,
    cols: usize,
    alpha: f32,
) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    gemm_tiled_into(a_rows, bt_rows, k, rows, cols, alpha, &mut out);
    out
}

/// Tiled kernel writing into a caller-provided `rows x cols` buffer.
pub fn gemm_tiled_into(
    a_rows: &[f32],
    bt_rows: &[f32],
    k: usize,
    rows: usize,
    cols: usize,
    alpha: f32,
    out: &mut [f32],
) {
    debug_assert_eq!(a_rows.len(), rows * k);
    debug_assert_eq!(bt_rows.len(), cols * k);
    debug_assert_eq!(out.len(), rows * cols);

    // One reusable pack buffer for the column block's panels: panel `t`
    // occupies `packed[t*k*TILE_NR ..]` with layout `panel[kk*TILE_NR + c]`,
    // so the micro-kernel reads TILE_NR consecutive floats per k step.
    let mut packed = vec![0.0f32; k * BLOCK_NC];

    let mut jc = 0;
    while jc < cols {
        let ncb = (cols - jc).min(BLOCK_NC);
        let full_j = ncb - ncb % TILE_NR;

        // Pack the full tiles of this column block once; reused by every
        // i block below.
        for jt in (0..full_j).step_by(TILE_NR) {
            let panel = &mut packed[(jt / TILE_NR) * k * TILE_NR..][..k * TILE_NR];
            for c in 0..TILE_NR {
                let bt_row = &bt_rows[(jc + jt + c) * k..][..k];
                for (kk, &x) in bt_row.iter().enumerate() {
                    panel[kk * TILE_NR + c] = x;
                }
            }
        }

        let mut ic = 0;
        while ic < rows {
            let mcb = (rows - ic).min(BLOCK_MC);
            let full_i = mcb - mcb % TILE_MR;
            for jt in (0..full_j).step_by(TILE_NR) {
                let panel = &packed[(jt / TILE_NR) * k * TILE_NR..][..k * TILE_NR];
                for it in (0..full_i).step_by(TILE_MR) {
                    micro_kernel(a_rows, panel, k, ic + it, jc + jt, cols, alpha, out);
                }
                // Remainder rows of this i block against the packed panel:
                // same ascending-k chain through the panel's strided lane.
                for r in ic + full_i..ic + mcb {
                    let a_row = &a_rows[r * k..(r + 1) * k];
                    for c in 0..TILE_NR {
                        let mut acc = 0.0f32;
                        for kk in 0..k {
                            acc += a_row[kk] * panel[kk * TILE_NR + c];
                        }
                        out[r * cols + jc + jt + c] = alpha * acc;
                    }
                }
            }
            ic += mcb;
        }

        // Remainder columns of this block: naive per element.
        for c in jc + full_j..jc + ncb {
            let bt_row = &bt_rows[c * k..(c + 1) * k];
            for r in 0..rows {
                out[r * cols + c] = alpha * dot_rows(&a_rows[r * k..(r + 1) * k], bt_row);
            }
        }

        jc += ncb;
    }
}

/// The TILE_MR x TILE_NR register block: 16 independent accumulator chains,
/// each accumulating in ascending-k order (bit-identical to `dot_rows`).
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_kernel(
    a_rows: &[f32],
    panel: &[f32],
    k: usize,
    row0: usize,
    col0: usize,
    cols: usize,
    alpha: f32,
    out: &mut [f32],
) {
    let a0 = &a_rows[row0 * k..][..k];
    let a1 = &a_rows[(row0 + 1) * k..][..k];
    let a2 = &a_rows[(row0 + 2) * k..][..k];
    let a3 = &a_rows[(row0 + 3) * k..][..k];
    let mut acc = [[0.0f32; TILE_NR]; TILE_MR];
    for kk in 0..k {
        let b = &panel[kk * TILE_NR..][..TILE_NR];
        let av = [a0[kk], a1[kk], a2[kk], a3[kk]];
        for r in 0..TILE_MR {
            for c in 0..TILE_NR {
                acc[r][c] += av[r] * b[c];
            }
        }
    }
    for r in 0..TILE_MR {
        let dst = &mut out[(row0 + r) * cols + col0..][..TILE_NR];
        for c in 0..TILE_NR {
            dst[c] = alpha * acc[r][c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randmat(rng: &mut StdRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn assert_bits_equal(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn tiled_matches_naive_bitwise_on_tile_multiples() {
        let mut rng = StdRng::seed_from_u64(7);
        let (rows, cols, k) = (16, 8, 32);
        let a = randmat(&mut rng, rows * k);
        let bt = randmat(&mut rng, cols * k);
        assert_bits_equal(
            &gemm_naive(&a, &bt, k, rows, cols, 0.5),
            &gemm_tiled(&a, &bt, k, rows, cols, 0.5),
        );
    }

    #[test]
    fn tiled_matches_naive_bitwise_on_remainder_shapes() {
        let mut rng = StdRng::seed_from_u64(8);
        for &(rows, cols, k) in
            &[(1usize, 1usize, 1usize), (5, 3, 7), (7, 9, 1), (3, 66, 5), (66, 5, 3), (13, 13, 0)]
        {
            let a = randmat(&mut rng, rows * k);
            let bt = randmat(&mut rng, cols * k);
            assert_bits_equal(
                &gemm_naive(&a, &bt, k, rows, cols, -1.25),
                &gemm_tiled(&a, &bt, k, rows, cols, -1.25),
            );
        }
    }

    #[test]
    fn tiled_matches_naive_across_cache_block_boundaries() {
        let mut rng = StdRng::seed_from_u64(9);
        let (rows, cols, k) = (BLOCK_MC + 3, BLOCK_NC + 6, 17);
        let a = randmat(&mut rng, rows * k);
        let bt = randmat(&mut rng, cols * k);
        assert_bits_equal(
            &gemm_naive(&a, &bt, k, rows, cols, 2.0),
            &gemm_tiled(&a, &bt, k, rows, cols, 2.0),
        );
    }
}
