//! Sequential reference: transpose `B`, then a cache-friendly triple loop.

use triolet::Array2;

use super::{dot_rows, SgemmInput};

/// Sequential transpose.
pub fn transpose_seq(m: &Array2<f32>) -> Array2<f32> {
    m.transpose()
}

/// Compute `alpha * A * B` with plain sequential loops.
pub fn run_seq(input: &SgemmInput) -> Array2<f32> {
    let bt = transpose_seq(&input.b);
    let m = input.a.rows();
    let n = input.b.cols();
    let mut c = Array2::<f32>::zeros(m, n);
    for i in 0..m {
        let a_row = input.a.row(i);
        for j in 0..n {
            c[(i, j)] = input.alpha * dot_rows(a_row, bt.row(j));
        }
    }
    c
}
