//! C+MPI+OpenMP-style sgemm: the hand-written 2-D block decomposition.
//!
//! The paper: "Similar decompositions are written as part of the parallel
//! C+MPI+OpenMP and Eden code. This took over 120 lines of code in each
//! language, adding development complexity and detracting from the code's
//! readability." This module is that code: grid selection, per-rank row
//! extraction, block kernels, and root-side block placement, all explicit.

use triolet::{Array2, NodeCtx, RunStats};
use triolet_baselines::LowLevelRt;
use triolet_domain::{chunk_ranges, near_square_grid, Dim2Part, Domain, Part, Seq, SeqPart};
use triolet_serial::{PodView, Wire, WireReader, WireResult, WireWriter};

use super::{gemm_tiled, transpose_seq, SgemmInput};

/// One rank's hand-built message: the `A` row band and `B^T` row band
/// covering its output block, plus the block coordinates.
///
/// The row bands are [`PodView`]s: on the node they alias the received wire
/// buffer instead of being copied out (zero-copy unpack), which matters
/// because they are by far the largest part of the payload.
#[derive(Clone)]
struct BlockPayload {
    block: Dim2Part,
    /// `A` rows `block.row0 .. block.row0 + block.rows`, row-major.
    a_rows: PodView<f32>,
    /// `B^T` rows `block.col0 .. block.col0 + block.cols`, row-major.
    bt_rows: PodView<f32>,
    /// Inner dimension (columns of `A` = columns of `B^T`).
    k: usize,
    alpha: f32,
}

impl Wire for BlockPayload {
    fn pack(&self, w: &mut WireWriter) {
        self.block.pack(w);
        self.a_rows.pack(w);
        self.bt_rows.pack(w);
        self.k.pack(w);
        self.alpha.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(BlockPayload {
            block: Dim2Part::unpack(r)?,
            a_rows: PodView::unpack(r)?,
            bt_rows: PodView::unpack(r)?,
            k: usize::unpack(r)?,
            alpha: f32::unpack(r)?,
        })
    }
    fn packed_size(&self) -> usize {
        self.block.packed_size() + self.a_rows.packed_size() + self.bt_rows.packed_size() + 8 + 4
    }
}

/// Build the per-rank payloads: choose a process grid, slice row bands.
fn build_payloads(input: &SgemmInput, bt: &Array2<f32>, nodes: usize) -> Vec<BlockPayload> {
    let m = input.a.rows();
    let n = input.b.cols();
    let k = input.a.cols();
    let (pr, pc) = near_square_grid(nodes, m, n);
    let row_bands = chunk_ranges(m, pr);
    let col_bands = chunk_ranges(n, pc);
    let mut payloads = Vec::with_capacity(row_bands.len() * col_bands.len());
    for &(r0, nr) in &row_bands {
        for &(c0, nc) in &col_bands {
            let mut a_rows = Vec::with_capacity(nr * k);
            for r in r0..r0 + nr {
                a_rows.extend_from_slice(input.a.row(r));
            }
            let mut bt_rows = Vec::with_capacity(nc * k);
            for c in c0..c0 + nc {
                bt_rows.extend_from_slice(bt.row(c));
            }
            payloads.push(BlockPayload {
                block: Dim2Part::new(r0, nr, c0, nc),
                a_rows: PodView::from_vec(a_rows),
                bt_rows: PodView::from_vec(bt_rows),
                k,
                alpha: input.alpha,
            });
        }
    }
    payloads
}

/// The node kernel: compute one output block, threads over block rows.
/// Each thread strip runs the tiled kernel over its rows against the full
/// `B^T` band (registered-blocked tiles; bit-identical to the naive loop).
fn block_kernel(ctx: &NodeCtx<'_>, p: BlockPayload) -> (Dim2Part, PodView<f32>) {
    let BlockPayload { block, a_rows, bt_rows, k, alpha } = p;
    let chunks = Seq::new(block.rows).split_parts(ctx.threads() * 4);
    let row_strips = ctx.map_chunks(chunks, |strip: &SeqPart| {
        let a_band = &a_rows[strip.start * k..(strip.start + strip.count()) * k];
        gemm_tiled(a_band, &bt_rows, k, strip.count(), block.cols, alpha)
    });
    let data = ctx.sequential(|| row_strips.concat());
    (block, PodView::from_vec(data))
}

/// Run sgemm with hand-written partitioning on `rt`.
pub fn run_lowlevel(rt: &LowLevelRt, input: &SgemmInput) -> (Array2<f32>, RunStats) {
    // Transpose at the root over shared memory (same strategy as Triolet;
    // low-level code does it with an explicit OpenMP loop — here, the node
    // pool of rank 0 is the moral equivalent, but the transpose cost at this
    // scale is not the interesting part of the experiment, so it runs
    // sequentially and is charged to root time).
    let bt = transpose_seq(&input.b);
    let m = input.a.rows();
    let n = input.b.cols();
    let payloads = build_payloads(input, &bt, rt.nodes());
    let (c, stats) = rt.run(payloads, block_kernel, |blocks| {
        let mut c = Array2::<f32>::zeros(m, n);
        let data = c.as_mut_slice();
        for (block, result) in blocks {
            let result = result.as_slice();
            for rr in 0..block.rows {
                let src = &result[rr * block.cols..(rr + 1) * block.cols];
                let d0 = (block.row0 + rr) * n + block.col0;
                data[d0..d0 + block.cols].copy_from_slice(src);
            }
        }
        c
    });
    (c, stats)
}
