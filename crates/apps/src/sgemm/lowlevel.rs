//! C+MPI+OpenMP-style sgemm: the hand-written 2-D block decomposition.
//!
//! The paper: "Similar decompositions are written as part of the parallel
//! C+MPI+OpenMP and Eden code. This took over 120 lines of code in each
//! language, adding development complexity and detracting from the code's
//! readability." This module is that code: grid selection, per-rank row
//! extraction, block kernels, and root-side block placement, all explicit.

use triolet::{Array2, NodeCtx, RunStats};
use triolet_baselines::LowLevelRt;
use triolet_domain::{chunk_ranges, near_square_grid, Dim2Part, Domain, Part, Seq, SeqPart};
use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

use super::{dot_rows, transpose_seq, SgemmInput};

/// One rank's hand-built message: the `A` row band and `B^T` row band
/// covering its output block, plus the block coordinates.
#[derive(Clone)]
struct BlockPayload {
    block: Dim2Part,
    /// `A` rows `block.row0 .. block.row0 + block.rows`, row-major.
    a_rows: Vec<f32>,
    /// `B^T` rows `block.col0 .. block.col0 + block.cols`, row-major.
    bt_rows: Vec<f32>,
    /// Inner dimension (columns of `A` = columns of `B^T`).
    k: usize,
    alpha: f32,
}

impl Wire for BlockPayload {
    fn pack(&self, w: &mut WireWriter) {
        self.block.pack(w);
        self.a_rows.pack(w);
        self.bt_rows.pack(w);
        self.k.pack(w);
        self.alpha.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(BlockPayload {
            block: Dim2Part::unpack(r)?,
            a_rows: Vec::unpack(r)?,
            bt_rows: Vec::unpack(r)?,
            k: usize::unpack(r)?,
            alpha: f32::unpack(r)?,
        })
    }
    fn packed_size(&self) -> usize {
        self.block.packed_size() + self.a_rows.packed_size() + self.bt_rows.packed_size() + 8 + 4
    }
}

/// Build the per-rank payloads: choose a process grid, slice row bands.
fn build_payloads(input: &SgemmInput, bt: &Array2<f32>, nodes: usize) -> Vec<BlockPayload> {
    let m = input.a.rows();
    let n = input.b.cols();
    let k = input.a.cols();
    let (pr, pc) = near_square_grid(nodes, m, n);
    let row_bands = chunk_ranges(m, pr);
    let col_bands = chunk_ranges(n, pc);
    let mut payloads = Vec::with_capacity(row_bands.len() * col_bands.len());
    for &(r0, nr) in &row_bands {
        for &(c0, nc) in &col_bands {
            let mut a_rows = Vec::with_capacity(nr * k);
            for r in r0..r0 + nr {
                a_rows.extend_from_slice(input.a.row(r));
            }
            let mut bt_rows = Vec::with_capacity(nc * k);
            for c in c0..c0 + nc {
                bt_rows.extend_from_slice(bt.row(c));
            }
            payloads.push(BlockPayload {
                block: Dim2Part::new(r0, nr, c0, nc),
                a_rows,
                bt_rows,
                k,
                alpha: input.alpha,
            });
        }
    }
    payloads
}

/// The node kernel: compute one output block, threads over block rows.
fn block_kernel(ctx: &NodeCtx<'_>, p: BlockPayload) -> (Dim2Part, Vec<f32>) {
    let BlockPayload { block, a_rows, bt_rows, k, alpha } = p;
    let chunks = Seq::new(block.rows).split_parts(ctx.threads() * 4);
    let row_strips = ctx.map_chunks(chunks, |strip: &SeqPart| {
        let mut out = Vec::with_capacity(strip.count() * block.cols);
        for local_r in strip.range() {
            let a_row = &a_rows[local_r * k..(local_r + 1) * k];
            for local_c in 0..block.cols {
                let bt_row = &bt_rows[local_c * k..(local_c + 1) * k];
                out.push(alpha * dot_rows(a_row, bt_row));
            }
        }
        out
    });
    let data = ctx.sequential(|| row_strips.concat());
    (block, data)
}

/// Run sgemm with hand-written partitioning on `rt`.
pub fn run_lowlevel(rt: &LowLevelRt, input: &SgemmInput) -> (Array2<f32>, RunStats) {
    // Transpose at the root over shared memory (same strategy as Triolet;
    // low-level code does it with an explicit OpenMP loop — here, the node
    // pool of rank 0 is the moral equivalent, but the transpose cost at this
    // scale is not the interesting part of the experiment, so it runs
    // sequentially and is charged to root time).
    let bt = transpose_seq(&input.b);
    let m = input.a.rows();
    let n = input.b.cols();
    let payloads = build_payloads(input, &bt, rt.nodes());
    let (c, stats) = rt.run(payloads, block_kernel, |blocks| {
        let mut c = Array2::<f32>::zeros(m, n);
        for (block, data) in blocks {
            for (kk, x) in data.into_iter().enumerate() {
                let (r, cc) = block.index_at(kk);
                c[(r, cc)] = x;
            }
        }
        c
    });
    (c, stats)
}
