//! Triolet implementation: the paper's two-line 2-D block decomposition.
//!
//! ```python
//! zipped_AB = outerproduct(rows(A), rows(BT))
//! AB = [alpha * dot(u, v) for (u, v) in par(zipped_AB)]
//! ```
//!
//! `outerproduct(rows(A), rows(BT))` associates each 2-D output block with
//! exactly the `A` rows and `B^T` rows covering it; slicing per node ships
//! only those rows (§2, §3.5). The transpose runs `localpar`: "Single-node
//! parallelization leverages shared memory to obtain speedup on loops that
//! do very little work per byte of data, such as matrix transposition."

use triolet::prelude::*;
use triolet::Array2;
use triolet_iter::{RowRef, RowsIdx};

use super::{dot_rows, SgemmInput};

/// Shared-memory parallel transpose: `[B[x,y] for (y,x) in range2d(n, k)]`.
pub fn transpose_triolet(rt: &Triolet, b: &Array2<f32>) -> Run<Array2<f32>> {
    let data = b.to_shared();
    let (rows, cols) = (b.rows(), b.cols());
    let it = range2d(cols, rows).map(move |(y, x): (usize, usize)| data[x * cols + y]).localpar();
    rt.build_array2(it)
}

/// Run sgemm through the Triolet skeletons on `rt`.
pub fn run_triolet(rt: &Triolet, input: &SgemmInput) -> Run<Array2<f32>> {
    // Transpose on shared memory first (sequential bottleneck elsewhere).
    let t = transpose_triolet(rt, &input.b);
    let alpha = input.alpha;

    // The two-liner.
    let zipped_ab = outerproduct(rows(&input.a), rows(&t.value)).par();
    let mut run = rt.build_array2(zipped_ab.map(move |(u, v): (RowRef<f32>, RowRef<f32>)| {
        alpha * dot_rows(u.as_slice(), v.as_slice())
    }));
    // Total time (and the trace timeline) includes the transpose phase.
    run.stats.total_s += t.stats.total_s;
    run.stats.root_s += t.stats.root_s;
    let mut trace = t.trace;
    trace.then(run.trace);
    run.trace = trace;
    run
}

/// Concrete type of the sgemm outer-product indexer.
pub type Dim2OuterProduct = triolet_iter::OuterProductIdx<RowsIdx<f32>, RowsIdx<f32>>;

/// The block-decomposed input iterator, exposed for tests and ablations.
pub fn zipped_ab(a: &Array2<f32>, bt: &Array2<f32>) -> IdxFlat<Dim2OuterProduct> {
    outerproduct(rows(a), rows(bt))
}
