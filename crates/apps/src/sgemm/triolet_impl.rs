//! Triolet implementation: the paper's two-line 2-D block decomposition.
//!
//! ```python
//! zipped_AB = outerproduct(rows(A), rows(BT))
//! AB = [alpha * dot(u, v) for (u, v) in par(zipped_AB)]
//! ```
//!
//! `outerproduct(rows(A), rows(BT))` associates each 2-D output block with
//! exactly the `A` rows and `B^T` rows covering it; slicing per node ships
//! only those rows (§2, §3.5). The transpose runs `localpar`: "Single-node
//! parallelization leverages shared memory to obtain speedup on loops that
//! do very little work per byte of data, such as matrix transposition."

use triolet::prelude::*;
use triolet::Array2;
use triolet_iter::{row_strips, RowRef, RowsIdx, StripRef};

use super::{dot_rows, gemm_tiled, SgemmInput, BLOCK_MC};

/// Shared-memory parallel transpose: `[B[x,y] for (y,x) in range2d(n, k)]`.
pub fn transpose_triolet(rt: &Triolet, b: &Array2<f32>) -> Run<Array2<f32>> {
    let data = b.to_shared();
    let (rows, cols) = (b.rows(), b.cols());
    let it = range2d(cols, rows).map(move |(y, x): (usize, usize)| data[x * cols + y]).localpar();
    rt.build_array2(it)
}

/// Run sgemm through the Triolet skeletons on `rt`.
pub fn run_triolet(rt: &Triolet, input: &SgemmInput) -> Run<Array2<f32>> {
    // Transpose on shared memory first (sequential bottleneck elsewhere).
    let t = transpose_triolet(rt, &input.b);
    let alpha = input.alpha;

    // The two-liner.
    let zipped_ab = outerproduct(rows(&input.a), rows(&t.value)).par();
    let mut run = rt.build_array2(zipped_ab.map(move |(u, v): (RowRef<f32>, RowRef<f32>)| {
        alpha * dot_rows(u.as_slice(), v.as_slice())
    }));
    // Total time (and the trace timeline) includes the transpose phase.
    run.stats.total_s += t.stats.total_s;
    run.stats.root_s += t.stats.root_s;
    let mut trace = t.trace;
    trace.then(run.trace);
    run.trace = trace;
    run
}

/// Run sgemm through the Triolet skeletons with the tiled node kernel.
///
/// Same two-liner shape as [`run_triolet`], lifted from rows to row
/// *strips*: `outerproduct(row_strips(A), row_strips(BT))` associates each
/// strip-grid cell with exactly the `A` and `B^T` row strips covering it,
/// each cell runs the register-blocked [`gemm_tiled`] kernel over its
/// strips, and the root flattens the grid of blocks into the dense output.
/// Results are bit-identical to [`run_triolet`] (the tiled kernel preserves
/// the naive accumulation order).
pub fn run_triolet_tiled(rt: &Triolet, input: &SgemmInput) -> Run<Array2<f32>> {
    let t = transpose_triolet(rt, &input.b);
    let alpha = input.alpha;
    let k = input.a.cols();
    let (m, n) = (input.a.rows(), input.b.cols());
    let strip = BLOCK_MC;

    let zipped = outerproduct(row_strips(&input.a, strip), row_strips(&t.value, strip)).par();
    let blocks = rt.build_array2(zipped.map(move |(u, v): (StripRef<f32>, StripRef<f32>)| {
        gemm_tiled(u.as_slice(), v.as_slice(), k, u.rows(), v.rows(), alpha)
    }));

    // Root: flatten the strip grid of blocks into the dense m x n output,
    // one contiguous row segment per block row.
    let mut c = Array2::<f32>::zeros(m, n);
    {
        let data = c.as_mut_slice();
        for (si, row0) in (0..m).step_by(strip).enumerate() {
            let rows_here = strip.min(m - row0);
            for (sj, col0) in (0..n).step_by(strip).enumerate() {
                let cols_here = strip.min(n - col0);
                let block = &blocks.value[(si, sj)];
                for rr in 0..rows_here {
                    let d0 = (row0 + rr) * n + col0;
                    data[d0..d0 + cols_here]
                        .copy_from_slice(&block[rr * cols_here..(rr + 1) * cols_here]);
                }
            }
        }
    }

    let mut run = Run::new(c, blocks.stats).with_trace(blocks.trace);
    run.stats.total_s += t.stats.total_s;
    run.stats.root_s += t.stats.root_s;
    let mut trace = t.trace;
    trace.then(run.trace);
    run.trace = trace;
    run
}

/// Concrete type of the sgemm outer-product indexer.
pub type Dim2OuterProduct = triolet_iter::OuterProductIdx<RowsIdx<f32>, RowsIdx<f32>>;

/// The block-decomposed input iterator, exposed for tests and ablations.
pub fn zipped_ab(a: &Array2<f32>, bt: &Array2<f32>) -> IdxFlat<Dim2OuterProduct> {
    outerproduct(rows(a), rows(bt))
}
