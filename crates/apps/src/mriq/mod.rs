//! mri-q: non-uniform 3-D inverse Fourier transform (paper §4.2).
//!
//! "The main loop of mri-q computes a non-uniform 3D inverse Fourier
//! transform to create a 3D image. … This consists of a parallel map over
//! image pixels, summing contributions from all frequency-domain samples."
//!
//! For each pixel position `r = (x, y, z)` and each k-space sample
//! `k = (kx, ky, kz)` with magnitude `phiMag = phiR² + phiI²`:
//!
//! ```text
//! Q(r) = Σ_k phiMag(k) · ( cos(2π·k·r), sin(2π·k·r) )
//! ```
//!
//! The Triolet version is the paper's two-liner: a `par(zip3(x, y, z))` map
//! whose body sums over the (broadcast) sample arrays.

mod eden;
mod lowlevel;
mod seq;
mod triolet_impl;

pub use eden::run_eden;
pub use lowlevel::run_lowlevel;
pub use seq::run_seq;
pub use triolet_impl::{run_triolet, run_triolet_localpar};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

/// Problem instance: pixel positions and k-space samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MriqInput {
    /// Pixel x coordinates.
    pub x: Vec<f32>,
    /// Pixel y coordinates.
    pub y: Vec<f32>,
    /// Pixel z coordinates.
    pub z: Vec<f32>,
    /// Sample kx coordinates.
    pub kx: Vec<f32>,
    /// Sample ky coordinates.
    pub ky: Vec<f32>,
    /// Sample kz coordinates.
    pub kz: Vec<f32>,
    /// Sample phi (real).
    pub phi_r: Vec<f32>,
    /// Sample phi (imaginary).
    pub phi_i: Vec<f32>,
}

impl MriqInput {
    /// Number of image pixels.
    pub fn num_pixels(&self) -> usize {
        self.x.len()
    }

    /// Number of k-space samples.
    pub fn num_samples(&self) -> usize {
        self.kx.len()
    }
}

/// The reconstructed image: real and imaginary parts per pixel.
#[derive(Debug, Clone, PartialEq)]
pub struct MriqOutput {
    /// Real part per pixel.
    pub qr: Vec<f32>,
    /// Imaginary part per pixel.
    pub qi: Vec<f32>,
}

/// The k-space sample arrays bundled as the broadcast environment of the
/// parallel pixel map (every pixel needs every sample).
#[derive(Debug, Clone, PartialEq)]
pub struct Samples {
    /// kx per sample.
    pub kx: Vec<f32>,
    /// ky per sample.
    pub ky: Vec<f32>,
    /// kz per sample.
    pub kz: Vec<f32>,
    /// Precomputed phi magnitude per sample.
    pub phi_mag: Vec<f32>,
}

impl Wire for Samples {
    fn pack(&self, w: &mut WireWriter) {
        self.kx.pack(w);
        self.ky.pack(w);
        self.kz.pack(w);
        self.phi_mag.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(Samples {
            kx: Vec::unpack(r)?,
            ky: Vec::unpack(r)?,
            kz: Vec::unpack(r)?,
            phi_mag: Vec::unpack(r)?,
        })
    }
    fn packed_size(&self) -> usize {
        self.kx.packed_size()
            + self.ky.packed_size()
            + self.kz.packed_size()
            + self.phi_mag.packed_size()
    }
}

impl MriqInput {
    /// Precompute the sample bundle (`phiMag = phiR² + phiI²`).
    pub fn samples(&self) -> Samples {
        Samples {
            kx: self.kx.clone(),
            ky: self.ky.clone(),
            kz: self.kz.clone(),
            phi_mag: self.phi_r.iter().zip(&self.phi_i).map(|(r, i)| r * r + i * i).collect(),
        }
    }
}

/// Deterministic synthetic instance: pixels on a jittered lattice in the
/// unit cube, samples on a jittered k-space shell — the same computational
/// shape as Parboil's scanner trajectories.
pub fn generate(num_pixels: usize, num_samples: usize, seed: u64) -> MriqInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let coord = |rng: &mut StdRng| rng.gen_range(-1.0f32..1.0);
    let mut input = MriqInput {
        x: Vec::with_capacity(num_pixels),
        y: Vec::with_capacity(num_pixels),
        z: Vec::with_capacity(num_pixels),
        kx: Vec::with_capacity(num_samples),
        ky: Vec::with_capacity(num_samples),
        kz: Vec::with_capacity(num_samples),
        phi_r: Vec::with_capacity(num_samples),
        phi_i: Vec::with_capacity(num_samples),
    };
    for _ in 0..num_pixels {
        input.x.push(coord(&mut rng));
        input.y.push(coord(&mut rng));
        input.z.push(coord(&mut rng));
    }
    for _ in 0..num_samples {
        input.kx.push(coord(&mut rng) * 4.0);
        input.ky.push(coord(&mut rng) * 4.0);
        input.kz.push(coord(&mut rng) * 4.0);
        input.phi_r.push(coord(&mut rng));
        input.phi_i.push(coord(&mut rng));
    }
    input
}

/// The per-(pixel, sample) contribution — the paper's `ftcoeff(k, r)`.
#[inline]
pub fn ftcoeff(samples: &Samples, k: usize, x: f32, y: f32, z: f32) -> (f32, f32) {
    let arg =
        2.0 * std::f32::consts::PI * (samples.kx[k] * x + samples.ky[k] * y + samples.kz[k] * z);
    let mag = samples.phi_mag[k];
    (mag * arg.cos(), mag * arg.sin())
}

/// Validate two outputs to a relative tolerance.
pub fn validate(a: &MriqOutput, b: &MriqOutput, tol: f32) -> bool {
    crate::close_f32(&a.qr, &b.qr, tol) && crate::close_f32(&a.qi, &b.qi, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet::prelude::*;
    use triolet_baselines::EdenRt;
    use triolet_baselines::LowLevelRt;

    fn small() -> MriqInput {
        generate(64, 32, 42)
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(generate(16, 8, 7), generate(16, 8, 7));
        assert_ne!(generate(16, 8, 7), generate(16, 8, 8));
    }

    #[test]
    fn seq_output_shape() {
        let input = small();
        let out = run_seq(&input);
        assert_eq!(out.qr.len(), 64);
        assert_eq!(out.qi.len(), 64);
        // Nontrivial output.
        assert!(out.qr.iter().any(|&v| v.abs() > 1e-6));
    }

    #[test]
    fn triolet_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 4));
        let run = run_triolet(&rt, &input);
        assert!(validate(&expect, &run.value, 1e-4), "triolet output diverges");
        assert!(run.stats.bytes_out > 0, "par run must ship data");
    }

    #[test]
    fn lowlevel_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(4, 2));
        let (got, _) = run_lowlevel(&rt, &input);
        assert!(validate(&expect, &got, 1e-4));
    }

    #[test]
    fn eden_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = EdenRt::new(2, 2);
        let (got, _) = run_eden(&rt, &input).expect("payloads fit Eden buffers");
        // Eden computes in f64 through a different code path; tolerance is
        // looser.
        assert!(validate(&expect, &got, 1e-3));
    }

    #[test]
    fn single_node_equals_multi_node() {
        let input = small();
        let rt1 = Triolet::new(ClusterConfig::virtual_cluster(1, 1));
        let rt8 = Triolet::new(ClusterConfig::virtual_cluster(8, 2));
        let a = run_triolet(&rt1, &input).value;
        let b = run_triolet(&rt8, &input).value;
        assert!(validate(&a, &b, 1e-6), "node count must not change results");
    }
}
