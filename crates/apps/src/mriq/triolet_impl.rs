//! Triolet implementation: the paper's two-liner (§4.2).
//!
//! ```python
//! [sum(ftcoeff(k, r) for k in ks)
//!  for r in par(zip3(x, y, z))]
//! ```
//!
//! A parallel map over pixels (`zip3` of the coordinate arrays, sliced per
//! node) with the sample arrays as broadcast environment, summing the
//! contribution of every sample per pixel. "Although this code contains only
//! a call to par to control parallelization, it yields parallel performance
//! nearly on par with manually written MPI and OpenMP."

use triolet::prelude::*;

use super::{ftcoeff, MriqInput, MriqOutput, Samples};

/// Run mri-q through the Triolet skeletons on `rt`.
pub fn run_triolet(rt: &Triolet, input: &MriqInput) -> Run<MriqOutput> {
    let samples = input.samples();
    let pixels =
        zip3(from_vec(input.x.clone()), from_vec(input.y.clone()), from_vec(input.z.clone())).par();
    rt.build_vec(pixels, &samples, pixel_value).map(|q| {
        let (qr, qi) = q.into_iter().unzip();
        MriqOutput { qr, qi }
    })
}

/// Same computation restricted to one node's threads (used by ablations).
pub fn run_triolet_localpar(rt: &Triolet, input: &MriqInput) -> Run<MriqOutput> {
    let samples = input.samples();
    let pixels =
        zip3(from_vec(input.x.clone()), from_vec(input.y.clone()), from_vec(input.z.clone()))
            .localpar();
    rt.build_vec(pixels, &samples, pixel_value).map(|q| {
        let (qr, qi) = q.into_iter().unzip();
        MriqOutput { qr, qi }
    })
}

/// The fused pixel body: `sum(ftcoeff(k, r) for k in ks)`.
#[inline]
fn pixel_value(samples: &Samples, (x, y, z): (f32, f32, f32)) -> (f32, f32) {
    let mut sr = 0.0f32;
    let mut si = 0.0f32;
    for k in 0..samples.kx.len() {
        let (cr, ci) = ftcoeff(samples, k, x, y, z);
        sr += cr;
        si += ci;
    }
    (sr, si)
}
