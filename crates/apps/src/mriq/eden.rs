//! Eden-style implementation (paper §4.2).
//!
//! "In Eden, we build arrays in chunked form, as lists of 1k-element
//! vectors, so that the runtime can distribute subarrays to processors while
//! still benefiting from efficient array traversal. Unfortunately, Eden
//! loses performance across the entire range. Eden's backend misses a
//! floating-point optimization on sinf and cosf calls, resulting in about
//! 50% longer run time on a single thread."
//!
//! The missed optimization is modeled honestly: this version computes the
//! trigonometry through `f64` `sin`/`cos` with conversions (what GHC's
//! backend emitted instead of the fused single-precision calls), and the
//! element flow goes through boxed pipelines. Every task's input includes a
//! full copy of the sample arrays (Eden serializes everything a task
//! references).

use triolet::RunStats;
use triolet_baselines::{boxed_pipeline, EdenError, EdenRt};
use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

use super::{MriqInput, MriqOutput, Samples};

/// Largest chunk size Eden code uses for its lists of vectors (the paper
/// used 1k-element vectors at ~16x our pixel counts; the chunk shrinks when
/// needed so every process gets work — "the Eden code subdivides data in
/// order to produce enough work to occupy all threads", §4.4).
pub const EDEN_CHUNK: usize = 1024;

/// Chunk size for a given pixel count and machine size.
fn chunk_size(pixels: usize, total_procs: usize) -> usize {
    (pixels / (2 * total_procs).max(1)).clamp(32, EDEN_CHUNK)
}

/// One Eden task: a pixel chunk plus its copy of all samples.
#[derive(Clone)]
pub struct EdenTask {
    start: usize,
    x: Vec<f32>,
    y: Vec<f32>,
    z: Vec<f32>,
    samples: Samples,
}

impl Wire for EdenTask {
    fn pack(&self, w: &mut WireWriter) {
        self.start.pack(w);
        self.x.pack(w);
        self.y.pack(w);
        self.z.pack(w);
        self.samples.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(EdenTask {
            start: usize::unpack(r)?,
            x: Vec::unpack(r)?,
            y: Vec::unpack(r)?,
            z: Vec::unpack(r)?,
            samples: Samples::unpack(r)?,
        })
    }
    fn packed_size(&self) -> usize {
        8 + self.x.packed_size()
            + self.y.packed_size()
            + self.z.packed_size()
            + self.samples.packed_size()
    }
}

/// The slower trig path: f64 libm calls with conversions (the missed
/// `sinf`/`cosf` optimization).
#[inline]
fn ftcoeff_f64(samples: &Samples, k: usize, x: f32, y: f32, z: f32) -> (f32, f32) {
    let arg = 2.0
        * std::f64::consts::PI
        * (samples.kx[k] as f64 * x as f64
            + samples.ky[k] as f64 * y as f64
            + samples.kz[k] as f64 * z as f64);
    let mag = samples.phi_mag[k] as f64;
    ((mag * arg.cos()) as f32, (mag * arg.sin()) as f32)
}

/// Run mri-q through the Eden runtime.
pub fn run_eden(rt: &EdenRt, input: &MriqInput) -> Result<(MriqOutput, RunStats), EdenError> {
    let samples = input.samples();
    let n = input.num_pixels();
    let chunk = chunk_size(n, rt.nodes() * rt.procs_per_node());
    // Chunked arrays: one task per chunk, each dragging a sample copy.
    let tasks: Vec<EdenTask> = (0..n)
        .step_by(chunk)
        .map(|start| {
            let end = (start + chunk).min(n);
            EdenTask {
                start,
                x: input.x[start..end].to_vec(),
                y: input.y[start..end].to_vec(),
                z: input.z[start..end].to_vec(),
                samples: samples.clone(),
            }
        })
        .collect();

    let (mut frags, stats) = rt.map_reduce(
        tasks,
        |t: EdenTask| -> Vec<(usize, Vec<f32>, Vec<f32>)> {
            // Boxed pipeline over the chunk (the Eden stepper view).
            let samples = &t.samples;
            let pix =
                boxed_pipeline(t.x.iter().zip(&t.y).zip(&t.z).map(|((&x, &y), &z)| (x, y, z)));
            let mut qr = Vec::with_capacity(t.x.len());
            let mut qi = Vec::with_capacity(t.x.len());
            for (x, y, z) in pix {
                let mut sr = 0.0f32;
                let mut si = 0.0f32;
                for k in 0..samples.kx.len() {
                    let (cr, ci) = ftcoeff_f64(samples, k, x, y, z);
                    sr += cr;
                    si += ci;
                }
                qr.push(sr);
                qi.push(si);
            }
            vec![(t.start, qr, qi)]
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
        Vec::new,
    )?;

    frags.sort_by_key(|(start, _, _)| *start);
    let mut qr = Vec::with_capacity(n);
    let mut qi = Vec::with_capacity(n);
    for (_, r, i) in frags {
        qr.extend(r);
        qi.extend(i);
    }
    Ok((MriqOutput { qr, qi }, stats))
}
