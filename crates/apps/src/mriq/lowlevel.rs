//! C+MPI+OpenMP-style implementation: explicit rank payloads, explicit
//! thread chunking, explicit gather.
//!
//! The paper notes this version "is the most verbose, dedicating more code
//! to partitioning data across MPI ranks than to the actual numerical
//! computation" — visible below: most of `run_lowlevel` is payload
//! construction and reassembly.

use triolet::{NodeCtx, RunStats, SeqPart};
use triolet_baselines::LowLevelRt;
use triolet_domain::{chunk_ranges, Domain, Part, Seq};
use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

use super::{ftcoeff, MriqInput, MriqOutput};

/// One rank's hand-built message: its pixel slice plus a full copy of the
/// sample arrays (the broadcast every rank needs).
#[derive(Clone)]
struct RankPayload {
    x: Vec<f32>,
    y: Vec<f32>,
    z: Vec<f32>,
    samples: super::Samples,
}

impl Wire for RankPayload {
    fn pack(&self, w: &mut WireWriter) {
        self.x.pack(w);
        self.y.pack(w);
        self.z.pack(w);
        self.samples.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(RankPayload {
            x: Vec::unpack(r)?,
            y: Vec::unpack(r)?,
            z: Vec::unpack(r)?,
            samples: super::Samples::unpack(r)?,
        })
    }
    fn packed_size(&self) -> usize {
        self.x.packed_size()
            + self.y.packed_size()
            + self.z.packed_size()
            + self.samples.packed_size()
    }
}

/// Run mri-q with hand-written partitioning on `rt`.
pub fn run_lowlevel(rt: &LowLevelRt, input: &MriqInput) -> (MriqOutput, RunStats) {
    let samples = input.samples();
    // --- Root: hand-partition pixels across ranks -------------------------
    let n = input.num_pixels();
    let ranges = chunk_ranges(n, rt.nodes());
    let payloads: Vec<RankPayload> = ranges
        .iter()
        .map(|&(s, l)| RankPayload {
            x: input.x[s..s + l].to_vec(),
            y: input.y[s..s + l].to_vec(),
            z: input.z[s..s + l].to_vec(),
            samples: samples.clone(),
        })
        .collect();

    // --- Node kernel: the "OpenMP parallel for" ---------------------------
    let kernel = |ctx: &NodeCtx<'_>, p: RankPayload| -> (Vec<f32>, Vec<f32>) {
        let local_n = p.x.len();
        let chunks = Seq::new(local_n).split_parts(ctx.threads() * 4);
        let pieces = ctx.map_chunks(chunks, |c: &SeqPart| {
            let mut qr = Vec::with_capacity(c.count());
            let mut qi = Vec::with_capacity(c.count());
            for i in c.range() {
                let (x, y, z) = (p.x[i], p.y[i], p.z[i]);
                let mut sr = 0.0f32;
                let mut si = 0.0f32;
                for k in 0..p.samples.kx.len() {
                    let (cr, ci) = ftcoeff(&p.samples, k, x, y, z);
                    sr += cr;
                    si += ci;
                }
                qr.push(sr);
                qi.push(si);
            }
            (qr, qi)
        });
        // Pack the rank's contiguous output fragment.
        ctx.sequential(|| {
            let mut qr = Vec::with_capacity(local_n);
            let mut qi = Vec::with_capacity(local_n);
            for (r, i) in pieces {
                qr.extend(r);
                qi.extend(i);
            }
            (qr, qi)
        })
    };

    // --- Root: gather and reassemble --------------------------------------
    let (out, stats) = rt.run(payloads, kernel, |frags| {
        let mut qr = Vec::with_capacity(n);
        let mut qi = Vec::with_capacity(n);
        for (r, i) in frags {
            qr.extend(r);
            qi.extend(i);
        }
        MriqOutput { qr, qi }
    });
    (out, stats)
}
