//! Sequential reference implementation ("sequential C"): plain nested loops
//! over pixels and samples, `f32` throughout.

use super::{ftcoeff, MriqInput, MriqOutput};

/// Compute the reconstruction with straightforward sequential loops.
pub fn run_seq(input: &MriqInput) -> MriqOutput {
    let samples = input.samples();
    let n = input.num_pixels();
    let mut qr = vec![0.0f32; n];
    let mut qi = vec![0.0f32; n];
    for p in 0..n {
        let (x, y, z) = (input.x[p], input.y[p], input.z[p]);
        let mut sr = 0.0f32;
        let mut si = 0.0f32;
        for k in 0..samples.kx.len() {
            let (cr, ci) = ftcoeff(&samples, k, x, y, z);
            sr += cr;
            si += ci;
        }
        qr[p] = sr;
        qi[p] = si;
    }
    MriqOutput { qr, qi }
}
