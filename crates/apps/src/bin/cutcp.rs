//! Run the cutcp benchmark from the command line.
//!
//! ```text
//! cargo run --release -p triolet-apps --bin cutcp -- \
//!     --impl triolet --nodes 8 --threads 16 --atoms 32768 --dim 48
//! ```

use std::time::Instant;

use triolet::ClusterConfig;
use triolet_apps::cli::{print_seq_time, print_stats, Impl, Opts};
use triolet_apps::cutcp;
use triolet_baselines::{EdenRt, LowLevelRt};

fn main() {
    let opts = Opts::parse("cutcp", &[("atoms", 4096), ("dim", 32)]);
    opts.banner("cutcp");
    let input = cutcp::generate(opts.size("atoms"), opts.size("dim"), opts.seed);

    let grid = match opts.imp {
        Impl::Seq => {
            let t0 = Instant::now();
            let g = cutcp::run_seq(&input);
            print_seq_time(t0.elapsed().as_secs_f64());
            g
        }
        Impl::Triolet => {
            let rt = opts.triolet_rt();
            let run = cutcp::run_triolet(&rt, &input);
            print_stats(&run.stats);
            opts.write_trace(&run.trace);
            run.value
        }
        Impl::Tiled => {
            eprintln!("cutcp has no tiled-kernel variant; use --impl triolet");
            std::process::exit(2);
        }
        Impl::Lowlevel => {
            let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(opts.nodes, opts.threads));
            let (g, stats) = cutcp::run_lowlevel(&rt, &input);
            print_stats(&stats);
            g
        }
        Impl::Eden => {
            let rt = EdenRt::new(opts.nodes, opts.threads);
            match cutcp::run_eden(&rt, &input) {
                Ok((g, stats)) => {
                    print_stats(&stats);
                    g
                }
                Err(e) => {
                    eprintln!("eden runtime failure: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    let nonzero = grid.iter().filter(|v| v.abs() > 1e-12).count();
    let peak = grid.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
    let total: f64 = grid.iter().sum();
    println!(
        "grid_cells={} nonzero={nonzero} peak_abs={peak:.4} total_potential={total:.4}",
        grid.len()
    );
}
