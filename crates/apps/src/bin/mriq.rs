//! Run the mri-q benchmark from the command line.
//!
//! ```text
//! cargo run --release -p triolet-apps --bin mriq -- \
//!     --impl triolet --nodes 8 --threads 16 --pixels 16384 --samples 2048
//! ```

use std::time::Instant;

use triolet::ClusterConfig;
use triolet_apps::cli::{print_seq_time, print_stats, Impl, Opts};
use triolet_apps::mriq;
use triolet_baselines::{EdenRt, LowLevelRt};

fn main() {
    let opts = Opts::parse("mriq", &[("pixels", 4096), ("samples", 512)]);
    opts.banner("mri-q");
    let input = mriq::generate(opts.size("pixels"), opts.size("samples"), opts.seed);

    let out = match opts.imp {
        Impl::Seq => {
            let t0 = Instant::now();
            let out = mriq::run_seq(&input);
            print_seq_time(t0.elapsed().as_secs_f64());
            out
        }
        Impl::Triolet => {
            let rt = opts.triolet_rt();
            let run = mriq::run_triolet(&rt, &input);
            print_stats(&run.stats);
            opts.write_trace(&run.trace);
            run.value
        }
        Impl::Tiled => {
            eprintln!("mriq has no tiled-kernel variant; use --impl triolet");
            std::process::exit(2);
        }
        Impl::Lowlevel => {
            let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(opts.nodes, opts.threads));
            let (out, stats) = mriq::run_lowlevel(&rt, &input);
            print_stats(&stats);
            out
        }
        Impl::Eden => {
            let rt = EdenRt::new(opts.nodes, opts.threads);
            match mriq::run_eden(&rt, &input) {
                Ok((out, stats)) => {
                    print_stats(&stats);
                    out
                }
                Err(e) => {
                    eprintln!("eden runtime failure: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    let energy: f64 =
        out.qr.iter().zip(&out.qi).map(|(r, i)| (*r as f64).powi(2) + (*i as f64).powi(2)).sum();
    println!("pixels={} image_energy={energy:.3}", out.qr.len());
}
