//! Run the k-means residency ablation from the command line.
//!
//! ```text
//! cargo run --release -p triolet-apps --bin kmeans -- \
//!     --impl triolet --nodes 8 --threads 4 --points 16384 --k 8 --iters 10
//! ```
//!
//! `--impl triolet` runs over a resident `DistVec` (scatter once);
//! `--impl lowlevel` is reused here to mean the re-broadcast control arm.

use std::time::Instant;

use triolet_apps::cli::{print_seq_time, print_stats, Impl, Opts};
use triolet_apps::kmeans;

fn main() {
    let opts = Opts::parse("kmeans", &[("points", 8192), ("k", 8), ("iters", 10)]);
    opts.banner("kmeans");
    let input =
        kmeans::generate(opts.size("points"), opts.size("k"), opts.size("iters"), opts.seed);

    let centroids = match opts.imp {
        Impl::Seq => {
            let t0 = Instant::now();
            let out = kmeans::run_seq(&input);
            print_seq_time(t0.elapsed().as_secs_f64());
            out
        }
        Impl::Triolet => {
            let rt = opts.triolet_rt();
            let run = kmeans::run_resident(&rt, &input);
            print_stats(&run.stats);
            println!(
                "resident: scatter={}B sweeps={}B ({:.1}B/iter) hits={} misses={}",
                run.value.scatter_bytes,
                run.value.sweep_bytes,
                run.value.bytes_per_iter(),
                run.stats.resident_hits,
                run.stats.resident_misses
            );
            opts.write_trace(&run.trace);
            run.value.centroids
        }
        Impl::Tiled => {
            eprintln!("kmeans has no tiled-kernel variant; use --impl triolet");
            std::process::exit(2);
        }
        Impl::Lowlevel => {
            let rt = opts.triolet_rt();
            let run = kmeans::run_rebroadcast(&rt, &input);
            print_stats(&run.stats);
            println!(
                "rebroadcast: sweeps={}B ({:.1}B/iter)",
                run.value.sweep_bytes,
                run.value.bytes_per_iter()
            );
            opts.write_trace(&run.trace);
            run.value.centroids
        }
        Impl::Eden => {
            eprintln!("kmeans has no eden variant; use --impl seq|triolet|lowlevel");
            std::process::exit(2);
        }
    };
    let inertia: f64 = input
        .points
        .iter()
        .map(|&p| {
            let i = kmeans::nearest(&centroids, p);
            kmeans::dist2(centroids[i], p)
        })
        .sum();
    println!("k={} iters={} inertia={inertia:.3}", input.k, input.iters);
}
