//! Run the tpacf benchmark from the command line.
//!
//! ```text
//! cargo run --release -p triolet-apps --bin tpacf -- \
//!     --impl triolet --nodes 8 --threads 16 --points 512 --sets 128 --bins 32
//! ```

use std::time::Instant;

use triolet::ClusterConfig;
use triolet_apps::cli::{print_seq_time, print_stats, Impl, Opts};
use triolet_apps::tpacf;
use triolet_baselines::{EdenRt, LowLevelRt};

fn main() {
    let opts = Opts::parse("tpacf", &[("points", 512), ("sets", 16), ("bins", 32)]);
    opts.banner("tpacf");
    let input =
        tpacf::generate(opts.size("points"), opts.size("sets"), opts.size("bins"), opts.seed);

    let out = match opts.imp {
        Impl::Seq => {
            let t0 = Instant::now();
            let out = tpacf::run_seq(&input);
            print_seq_time(t0.elapsed().as_secs_f64());
            out
        }
        Impl::Triolet => {
            let rt = opts.triolet_rt();
            let run = tpacf::run_triolet(&rt, &input);
            print_stats(&run.stats);
            opts.write_trace(&run.trace);
            run.value
        }
        Impl::Tiled => {
            let rt = opts.triolet_rt();
            let run = tpacf::run_triolet_tiled(&rt, &input);
            print_stats(&run.stats);
            opts.write_trace(&run.trace);
            run.value
        }
        Impl::Lowlevel => {
            let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(opts.nodes, opts.threads));
            let (out, stats) = tpacf::run_lowlevel(&rt, &input);
            print_stats(&stats);
            out
        }
        Impl::Eden => {
            let rt = EdenRt::new(opts.nodes, opts.threads);
            match tpacf::run_eden(&rt, &input) {
                Ok((out, stats)) => {
                    print_stats(&stats);
                    out
                }
                Err(e) => {
                    eprintln!("eden runtime failure: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    println!(
        "pairs: dd={} dr={} rr={}",
        out.dd.iter().sum::<u64>(),
        out.dr.iter().sum::<u64>(),
        out.rr.iter().sum::<u64>()
    );
    // The estimator the application exists to compute (Landy-Szalay-ish
    // per-bin ratio), over the first few bins.
    let nr = input.rands.len().max(1) as f64;
    let preview: Vec<String> = out
        .dd
        .iter()
        .zip(&out.dr)
        .zip(&out.rr)
        .take(8)
        .map(|((&dd, &dr), &rr)| {
            let rr = (rr as f64 / nr).max(1.0);
            format!("{:.2}", (dd as f64 - 2.0 * dr as f64 / nr + rr) / rr)
        })
        .collect();
    println!("w(theta) first bins: [{}]", preview.join(", "));
}
