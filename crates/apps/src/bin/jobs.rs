//! Multi-tenant job service demo: many tenants submitting mixed-size
//! skeleton jobs through the shared [`JobService`], under a selectable
//! scheduling policy.
//!
//! ```text
//! cargo run --release -p triolet-apps --bin jobs -- \
//!     --nodes 8 --threads 2 --tenants 3 --jobs 60 --policy fair \
//!     --trace-out jobs.trace.json
//! ```
//!
//! Tenant `t` weighs `t + 1` under `--policy fair` (and has priority level
//! `t` under `--policy priority`); each tenant's job count is proportional
//! to its weight so every tenant stays backlogged for the whole run. The
//! report prints per-tenant achieved shares against configured shares,
//! p50/p99 job latency on the service clock, and cluster utilization.

use triolet::prelude::*;
use triolet::service::percentile;

struct Args {
    nodes: usize,
    threads: usize,
    tenants: usize,
    jobs: usize,
    cap: usize,
    items: usize,
    policy: String,
    seed: u64,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut a = Args {
        nodes: 8,
        threads: 2,
        tenants: 3,
        jobs: 60,
        cap: 32,
        items: 512,
        policy: "fair".to_string(),
        seed: 1,
        trace_out: None,
    };
    let usage = || -> ! {
        eprintln!(
            "usage: jobs [--nodes N] [--threads T] [--tenants K] [--jobs J] [--cap C] \
             [--items I] [--policy fifo|fair|priority] [--seed S] [--trace-out FILE]"
        );
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        let parse = |s: String| s.parse().unwrap_or_else(|_| usage());
        match arg.as_str() {
            "--nodes" => a.nodes = parse(val()),
            "--threads" => a.threads = parse(val()),
            "--tenants" => a.tenants = parse(val()),
            "--jobs" => a.jobs = parse(val()),
            "--cap" => a.cap = parse(val()),
            "--items" => a.items = parse(val()),
            "--policy" => a.policy = val(),
            "--seed" => a.seed = val().parse().unwrap_or_else(|_| usage()),
            "--trace-out" => a.trace_out = Some(val()),
            _ => usage(),
        }
    }
    if a.tenants == 0 || a.jobs == 0 {
        usage();
    }
    a
}

fn policy_for(args: &Args) -> SchedPolicy {
    match args.policy.as_str() {
        "fifo" => SchedPolicy::Fifo,
        "fair" => {
            SchedPolicy::FairShare { weights: (0..args.tenants).map(|t| (t + 1) as f64).collect() }
        }
        "priority" => SchedPolicy::Priority { levels: (0..args.tenants as u32).collect() },
        other => {
            eprintln!("jobs: unknown policy {other:?} (fifo|fair|priority)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let policy = policy_for(&args);
    println!(
        "jobs: cluster={}x{} tenants={} jobs={} cap={} policy={} seed={}",
        args.nodes,
        args.threads,
        args.tenants,
        args.jobs,
        args.cap,
        policy.name(),
        args.seed
    );

    let rt = Triolet::new(
        ClusterConfig::virtual_cluster(args.nodes, args.threads)
            .with_trace(args.trace_out.is_some()),
    );
    let svc = rt.into_service(ServiceConfig::new(policy.clone()).with_queue_cap(args.cap));

    // Per-tenant job quotas proportional to weight, so all tenants stay
    // backlogged and the achieved shares are meaningful.
    let total_weight: f64 = (0..args.tenants).map(|t| policy.weight_of(Tenant(t as u32))).sum();
    let quota: Vec<usize> = (0..args.tenants)
        .map(|t| {
            let w = policy.weight_of(Tenant(t as u32));
            ((args.jobs as f64 * w / total_weight).round() as usize).max(1)
        })
        .collect();

    // Round-robin submission, mixed sizes (1x/2x/4x the base item count).
    let mut submitted = vec![0usize; args.tenants];
    let mut job_index = 0u64;
    loop {
        let mut any = false;
        for t in 0..args.tenants {
            if submitted[t] >= quota[t] {
                continue;
            }
            any = true;
            // Cycle the size mix per tenant (not globally: with K tenants
            // and K size classes a global cycle would pin each tenant to
            // one size, skewing the cost shares).
            let items = args.items << (submitted[t] % 3);
            submitted[t] += 1;
            let seed = args.seed.wrapping_add(job_index.wrapping_mul(0x9e37_79b9));
            job_index += 1;
            let xs: Vec<f64> =
                (0..items).map(|i| ((i as u64).wrapping_mul(seed) % 8191) as f64 * 0.25).collect();
            svc.submit_blocking(Tenant(t as u32), items as f64, move |rt: &Triolet| {
                rt.sum(from_vec(xs).par())
            });
        }
        if !any {
            break;
        }
    }
    svc.drain();

    let usage = svc.usage();
    let stats = svc.service_stats();
    let total_cost: f64 = usage.iter().map(|u| u.cost).sum();
    let total_busy: f64 = usage.iter().map(|u| u.busy_s).sum();
    println!(
        "| tenant | weight | jobs | share(cost) | share(busy) | configured | p50 (s) | p99 (s) |"
    );
    println!(
        "|-------:|-------:|-----:|------------:|------------:|-----------:|--------:|--------:|"
    );
    for u in &usage {
        let w = policy.weight_of(u.tenant);
        println!(
            "| {} | {:.0} | {} | {:.3} | {:.3} | {:.3} | {:.6} | {:.6} |",
            u.tenant.0,
            w,
            u.completed,
            if total_cost > 0.0 { u.cost / total_cost } else { 0.0 },
            if total_busy > 0.0 { u.busy_s / total_busy } else { 0.0 },
            w / total_weight,
            u.latency_percentile_s(0.50),
            u.latency_percentile_s(0.99),
        );
    }
    let all_latencies: Vec<f64> =
        usage.iter().flat_map(|u| u.latencies_s.iter().copied()).collect();
    println!(
        "completed={} rejected={} makespan={:.6}s utilization={:.3} p50={:.6}s p99={:.6}s",
        stats.completed,
        stats.rejected,
        stats.now_s,
        stats.utilization(),
        percentile(&all_latencies, 0.50),
        percentile(&all_latencies, 0.99),
    );
    for u in &usage {
        println!(
            "tenant{}: msgs={} bytes={} retries={} redispatches={}",
            u.tenant.0,
            u.traffic.messages,
            u.traffic.bytes,
            u.traffic.retries,
            u.traffic.redispatches
        );
    }

    if let Some(path) = &args.trace_out {
        let trace = svc.take_trace();
        std::fs::write(path, trace.to_chrome_json()).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {path}: {e}");
            std::process::exit(1);
        });
        let phases: Vec<String> =
            trace.phase_totals().iter().map(|(c, t)| format!("{c}={t:.4}s")).collect();
        println!(
            "trace: {} spans, {} events -> {path} [{}]",
            trace.spans.len(),
            trace.events.len(),
            phases.join(" ")
        );
    }
}
