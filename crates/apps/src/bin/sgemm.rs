//! Run the sgemm benchmark from the command line.
//!
//! ```text
//! cargo run --release -p triolet-apps --bin sgemm -- \
//!     --impl lowlevel --nodes 8 --threads 16 --dim 384
//! ```

use std::time::Instant;

use triolet::ClusterConfig;
use triolet_apps::cli::{print_seq_time, print_stats, Impl, Opts};
use triolet_apps::sgemm;
use triolet_baselines::{EdenRt, LowLevelRt};

fn main() {
    let opts = Opts::parse("sgemm", &[("dim", 256)]);
    opts.banner("sgemm");
    let input = sgemm::generate(opts.size("dim"), opts.seed);

    let c = match opts.imp {
        Impl::Seq => {
            let t0 = Instant::now();
            let c = sgemm::run_seq(&input);
            print_seq_time(t0.elapsed().as_secs_f64());
            c
        }
        Impl::Triolet => {
            let rt = opts.triolet_rt();
            let run = sgemm::run_triolet(&rt, &input);
            print_stats(&run.stats);
            opts.write_trace(&run.trace);
            run.value
        }
        Impl::Tiled => {
            let rt = opts.triolet_rt();
            let run = sgemm::run_triolet_tiled(&rt, &input);
            print_stats(&run.stats);
            opts.write_trace(&run.trace);
            run.value
        }
        Impl::Lowlevel => {
            let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(opts.nodes, opts.threads));
            let (c, stats) = sgemm::run_lowlevel(&rt, &input);
            print_stats(&stats);
            c
        }
        Impl::Eden => {
            let rt = EdenRt::new(opts.nodes, opts.threads);
            match sgemm::run_eden(&rt, &input) {
                Ok((c, stats)) => {
                    print_stats(&stats);
                    c
                }
                Err(e) => {
                    // The paper's documented Eden failure mode for sgemm.
                    eprintln!("eden runtime failure: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    let frob: f64 = c.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt();
    println!("output={}x{} frobenius_norm={frob:.3}", c.rows(), c.cols());
}
