//! cutcp: cutoff Coulombic potential (paper §4.5).
//!
//! "It computes the electrostatic potential induced by a collection of
//! charged atoms at all points on a grid. An atom's charge affects the
//! potential at grid points within a distance c. The body of the computation
//! is essentially a floating-point histogram: it loops over atoms, loops
//! over nearby grid points, skips points that are not within distance c, and
//! updates the grid at the remaining points."
//!
//! The smoothed cutoff kernel used (per atom of charge `q` at distance `r`):
//!
//! ```text
//! s(r) = q · (1/r) · (1 − (r/c)²)²   for 0 < r ≤ c, else 0
//! ```

mod eden;
pub mod gather;
mod lowlevel;
mod seq;
mod triolet_impl;

pub use eden::run_eden;
pub use gather::{bin_atoms, run_triolet_gather};
pub use lowlevel::run_lowlevel;
pub use seq::run_seq;
pub use triolet_impl::run_triolet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triolet::Dim3;
use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

/// A charged atom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Position (world units).
    pub x: f32,
    /// Position (world units).
    pub y: f32,
    /// Position (world units).
    pub z: f32,
    /// Charge.
    pub q: f32,
}

impl Wire for Atom {
    fn pack(&self, w: &mut WireWriter) {
        self.x.pack(w);
        self.y.pack(w);
        self.z.pack(w);
        self.q.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(Atom { x: f32::unpack(r)?, y: f32::unpack(r)?, z: f32::unpack(r)?, q: f32::unpack(r)? })
    }
    fn packed_size(&self) -> usize {
        16
    }
}

/// Grid geometry: dimensions, spacing, cutoff radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridGeom {
    /// Grid dimensions.
    pub dom: Dim3,
    /// Grid spacing (world units per cell).
    pub h: f32,
    /// Cutoff radius (world units).
    pub cutoff: f32,
}

impl Wire for GridGeom {
    fn pack(&self, w: &mut WireWriter) {
        self.dom.pack(w);
        self.h.pack(w);
        self.cutoff.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(GridGeom { dom: Dim3::unpack(r)?, h: f32::unpack(r)?, cutoff: f32::unpack(r)? })
    }
    fn packed_size(&self) -> usize {
        self.dom.packed_size() + 8
    }
}

/// Problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct CutcpInput {
    /// The atoms.
    pub atoms: Vec<Atom>,
    /// Grid geometry.
    pub geom: GridGeom,
}

/// Deterministic synthetic instance: `n_atoms` atoms uniform in the grid's
/// bounding box, unit-ish charges, grid `dim³` with spacing 0.5 and cutoff
/// spanning a few cells (like Parboil's watbox).
pub fn generate(n_atoms: usize, dim: usize, seed: u64) -> CutcpInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let h = 0.5f32;
    let cutoff = 2.0f32; // 4 cells
    let extent = dim as f32 * h;
    let atoms = (0..n_atoms)
        .map(|_| Atom {
            x: rng.gen_range(0.0..extent),
            y: rng.gen_range(0.0..extent),
            z: rng.gen_range(0.0..extent),
            q: rng.gen_range(-1.0f32..1.0),
        })
        .collect();
    CutcpInput { atoms, geom: GridGeom { dom: Dim3::new(dim, dim, dim), h, cutoff } }
}

/// The cell index range along one axis touched by an atom at coordinate `p`.
#[inline]
pub fn axis_range(p: f32, cutoff: f32, h: f32, cells: usize) -> (usize, usize) {
    let lo = ((p - cutoff) / h).floor().max(0.0) as usize;
    let hi = (((p + cutoff) / h).ceil() as usize).min(cells.saturating_sub(1));
    (lo.min(cells.saturating_sub(1)), hi)
}

/// The smoothed cutoff kernel `s(r²)` premultiplied by the charge; zero
/// outside the cutoff or at the singular origin.
#[inline]
pub fn potential(q: f32, r2: f32, cutoff2: f32) -> f64 {
    if r2 <= 0.0 || r2 > cutoff2 {
        return 0.0;
    }
    let r = (r2 as f64).sqrt();
    let t = 1.0 - r2 as f64 / cutoff2 as f64;
    q as f64 * (1.0 / r) * t * t
}

/// Validate two grids to a relative tolerance.
pub fn validate(a: &[f64], b: &[f64], tol: f64) -> bool {
    crate::close_f64(a, b, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet::prelude::*;
    use triolet_baselines::{EdenRt, LowLevelRt};

    fn small() -> CutcpInput {
        generate(100, 12, 5)
    }

    #[test]
    fn generator_deterministic_and_bounded() {
        let a = generate(50, 8, 1);
        assert_eq!(a, generate(50, 8, 1));
        let extent = 8.0 * a.geom.h;
        for at in &a.atoms {
            assert!(at.x >= 0.0 && at.x < extent);
        }
    }

    #[test]
    fn potential_kernel_properties() {
        let c2 = 4.0;
        assert_eq!(potential(1.0, 0.0, c2), 0.0, "singularity excluded");
        assert_eq!(potential(1.0, 5.0, c2), 0.0, "outside cutoff");
        assert!(potential(1.0, 1.0, c2) > potential(1.0, 2.0, c2), "decays with r");
        assert!(potential(-1.0, 1.0, c2) < 0.0, "sign follows charge");
    }

    #[test]
    fn axis_range_clamps() {
        assert_eq!(axis_range(0.1, 2.0, 0.5, 12), (0, 5));
        let (lo, hi) = axis_range(5.9, 2.0, 0.5, 12);
        assert!(lo >= 7 && hi == 11);
    }

    #[test]
    fn seq_grid_nonzero_near_atoms() {
        let input = small();
        let grid = run_seq(&input);
        assert_eq!(grid.len(), input.geom.dom.count());
        assert!(grid.iter().any(|&v| v.abs() > 1e-9));
    }

    #[test]
    fn triolet_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 2));
        let run = run_triolet(&rt, &input);
        assert!(validate(&expect, &run.value, 1e-9), "cutcp grids diverge");
        // The gathered per-node grids dominate the traffic (the paper's
        // saturation cause).
        assert!(run.stats.bytes_back > run.stats.bytes_out);
    }

    #[test]
    fn lowlevel_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(4, 2));
        let (got, _) = run_lowlevel(&rt, &input);
        assert!(validate(&expect, &got, 1e-9));
    }

    #[test]
    fn eden_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = EdenRt::new(2, 2);
        let (got, _) = run_eden(&rt, &input).expect("payloads fit Eden buffers");
        assert!(validate(&expect, &got, 1e-9));
    }

    #[test]
    fn node_count_does_not_change_grid() {
        let input = small();
        let a = run_triolet(&Triolet::new(ClusterConfig::virtual_cluster(1, 1)), &input).value;
        let b = run_triolet(&Triolet::new(ClusterConfig::virtual_cluster(8, 2)), &input).value;
        assert!(validate(&a, &b, 1e-9));
    }
}
