//! Triolet implementation: the irregular nested-traversal showpiece.
//!
//! The loop is written exactly as the paper's §1 list comprehension:
//!
//! ```text
//! floatHist [f a r | a <- atoms, r <- gridPts a]
//! ```
//!
//! `par(atoms)` is sliced across nodes; `concat_map` generates each atom's
//! nearby grid points (a dynamically sized inner loop); `filter` skips
//! points outside the cutoff; `map` computes the contribution; and the
//! `scatter_add` skeleton plays `floatHist`, building one private grid per
//! thread, merging per node, and summing node grids at the root — the
//! two-level floating-point histogram of §3.4.

use triolet::prelude::*;
use triolet_iter::StepFlat;

use super::{axis_range, potential, Atom, CutcpInput, GridGeom};

/// Candidate contribution: cell index, squared distance, charge.
type Candidate = (usize, f32, f32);

/// Generate all grid-point candidates near one atom (the `gridPts a`
/// generator). Candidates still include points outside the cutoff — the
/// downstream `filter` skips them, exactly like the paper's loop.
fn grid_pts(geom: GridGeom, a: Atom) -> StepFlat<std::vec::IntoIter<Candidate>> {
    let (nx, ny, nz) = (geom.dom.nx, geom.dom.ny, geom.dom.nz);
    let (x0, x1) = axis_range(a.x, geom.cutoff, geom.h, nx);
    let (y0, y1) = axis_range(a.y, geom.cutoff, geom.h, ny);
    let (z0, z1) = axis_range(a.z, geom.cutoff, geom.h, nz);
    let mut out = Vec::with_capacity((x1 - x0 + 1) * (y1 - y0 + 1) * (z1 - z0 + 1));
    for ix in x0..=x1 {
        let dx = ix as f32 * geom.h - a.x;
        for iy in y0..=y1 {
            let dy = iy as f32 * geom.h - a.y;
            for iz in z0..=z1 {
                let dz = iz as f32 * geom.h - a.z;
                let r2 = dx * dx + dy * dy + dz * dz;
                out.push((geom.dom.linear_of((ix, iy, iz)), r2, a.q));
            }
        }
    }
    StepFlat::new(out.into_iter())
}

/// Run cutcp through the Triolet skeletons on `rt`.
pub fn run_triolet(rt: &Triolet, input: &CutcpInput) -> Run<Vec<f64>> {
    let geom = input.geom;
    let c2 = geom.cutoff * geom.cutoff;
    let contributions = from_vec(input.atoms.clone())
        .par()
        .concat_map(move |a: Atom| grid_pts(geom, a))
        .filter(move |&(_, r2, _): &Candidate| r2 <= c2 && r2 > 0.0)
        .map(move |(cell, r2, q): Candidate| (cell, potential(q, r2, c2)));
    rt.scatter_add(geom.dom.count(), contributions)
}
