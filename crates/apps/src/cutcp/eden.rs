//! Eden-style cutcp (paper §4.5).
//!
//! Per-atom grid traversal through boxed pipelines (the 2–5x unfused-stepper
//! penalty of §3.1), one full private grid per process, grids merged by
//! message passing at every level. Atom chunks carry the geometry with them.

use triolet::{Domain, RunStats};
use triolet_baselines::{boxed_pipeline, EdenError, EdenRt};
use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

use super::{axis_range, potential, Atom, CutcpInput, GridGeom};

/// One Eden task: an atom chunk plus the geometry.
#[derive(Clone)]
pub struct EdenTask {
    atoms: Vec<Atom>,
    geom: GridGeom,
}

impl Wire for EdenTask {
    fn pack(&self, w: &mut WireWriter) {
        self.atoms.pack(w);
        self.geom.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(EdenTask { atoms: Vec::unpack(r)?, geom: GridGeom::unpack(r)? })
    }
    fn packed_size(&self) -> usize {
        self.atoms.packed_size() + self.geom.packed_size()
    }
}

/// Run cutcp through the Eden runtime.
pub fn run_eden(rt: &EdenRt, input: &CutcpInput) -> Result<(Vec<f64>, RunStats), EdenError> {
    let geom = input.geom;
    let cells = geom.dom.count();
    // One chunk per process across the machine.
    let total_procs = (rt.nodes() * rt.procs_per_node()).max(1);
    let chunk_size = input.atoms.len().div_ceil(total_procs).max(1);
    let tasks: Vec<EdenTask> =
        input.atoms.chunks(chunk_size).map(|c| EdenTask { atoms: c.to_vec(), geom }).collect();

    let (grid, stats) = rt.map_reduce(
        tasks,
        move |t: EdenTask| -> Vec<f64> {
            let g = t.geom;
            let c2 = g.cutoff * g.cutoff;
            let mut grid = vec![0.0f64; cells];
            for a in &t.atoms {
                // The unfused stepper chain: candidates -> filter -> score,
                // each stage behind dynamic dispatch.
                let (x0, x1) = axis_range(a.x, g.cutoff, g.h, g.dom.nx);
                let (y0, y1) = axis_range(a.y, g.cutoff, g.h, g.dom.ny);
                let (z0, z1) = axis_range(a.z, g.cutoff, g.h, g.dom.nz);
                let candidates = boxed_pipeline((x0..=x1).flat_map(move |ix| {
                    (y0..=y1).flat_map(move |iy| (z0..=z1).map(move |iz| (ix, iy, iz)))
                }));
                let scored = boxed_pipeline(candidates.map(|(ix, iy, iz)| {
                    let dx = ix as f32 * g.h - a.x;
                    let dy = iy as f32 * g.h - a.y;
                    let dz = iz as f32 * g.h - a.z;
                    (g.dom.linear_of((ix, iy, iz)), dx * dx + dy * dy + dz * dz)
                }));
                let inside = boxed_pipeline(scored.filter(|&(_, r2)| r2 <= c2 && r2 > 0.0));
                for (cell, r2) in inside {
                    grid[cell] += potential(a.q, r2, c2);
                }
            }
            grid
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
        move || vec![0.0f64; cells],
    )?;
    Ok((grid, stats))
}
