//! Sequential reference: nested loops and conditionals, in-place updates.

use triolet::Domain;

use super::{axis_range, potential, CutcpInput};

/// Compute the potential grid with plain sequential loops.
pub fn run_seq(input: &CutcpInput) -> Vec<f64> {
    let g = input.geom;
    let (nx, ny, nz) = (g.dom.nx, g.dom.ny, g.dom.nz);
    let c2 = g.cutoff * g.cutoff;
    let mut grid = vec![0.0f64; g.dom.count()];
    for a in &input.atoms {
        let (x0, x1) = axis_range(a.x, g.cutoff, g.h, nx);
        let (y0, y1) = axis_range(a.y, g.cutoff, g.h, ny);
        let (z0, z1) = axis_range(a.z, g.cutoff, g.h, nz);
        for ix in x0..=x1 {
            let dx = ix as f32 * g.h - a.x;
            for iy in y0..=y1 {
                let dy = iy as f32 * g.h - a.y;
                for iz in z0..=z1 {
                    let dz = iz as f32 * g.h - a.z;
                    let r2 = dx * dx + dy * dy + dz * dz;
                    if r2 > c2 || r2 <= 0.0 {
                        continue; // outside cutoff (or the singular point)
                    }
                    grid[g.dom.linear_of((ix, iy, iz))] += potential(a.q, r2, c2);
                }
            }
        }
    }
    grid
}
