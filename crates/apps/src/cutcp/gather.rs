//! Gather-formulation of cutcp: the inverse decomposition.
//!
//! The paper's cutcp (and this crate's other implementations) *scatter*:
//! parallel over atoms, each adding into the grid — which is why the
//! per-node grid reduction dominates at scale (§4.5). Parboil's optimized
//! CPU versions invert the loop: bin atoms spatially, then *gather* — a
//! parallel loop over grid points, each summing the atoms in its
//! neighbouring bins. No grid merging is needed (each point is written
//! once), at the cost of broadcasting the binned atoms to every node.
//!
//! This module implements the gather variant on the Triolet skeletons as the
//! natural "what the paper's design enables next" extension: the output is a
//! regular `build_vec` over grid points, and the binned atoms travel as an
//! accounted broadcast environment.

use triolet::prelude::*;
use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

use super::{potential, Atom, CutcpInput, GridGeom};

/// Atoms binned into cutoff-sized cells for O(1) neighbourhood lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomBins {
    geom: GridGeom,
    /// Bin edge length in world units (>= cutoff so 27 bins always cover).
    bin_w: f32,
    /// Bins per axis.
    nb: (usize, usize, usize),
    /// Row-major (x-major) bins of atoms.
    bins: Vec<Vec<Atom>>,
}

impl Wire for AtomBins {
    fn pack(&self, w: &mut WireWriter) {
        self.geom.pack(w);
        self.bin_w.pack(w);
        self.nb.pack(w);
        self.bins.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(AtomBins {
            geom: GridGeom::unpack(r)?,
            bin_w: f32::unpack(r)?,
            nb: <(usize, usize, usize)>::unpack(r)?,
            bins: Vec::unpack(r)?,
        })
    }
    fn packed_size(&self) -> usize {
        self.geom.packed_size() + 4 + self.nb.packed_size() + self.bins.packed_size()
    }
}

impl AtomBins {
    /// Bin index along one axis for a world coordinate.
    #[inline]
    fn axis_bin(&self, p: f32, n: usize) -> usize {
        ((p / self.bin_w).floor().max(0.0) as usize).min(n.saturating_sub(1))
    }

    /// The atoms within the 27-bin neighbourhood of a grid point.
    #[inline]
    fn neighbours(&self, gx: f32, gy: f32, gz: f32) -> impl Iterator<Item = &Atom> {
        let (nx, ny, nz) = self.nb;
        let bx = self.axis_bin(gx, nx);
        let by = self.axis_bin(gy, ny);
        let bz = self.axis_bin(gz, nz);
        let xr = bx.saturating_sub(1)..=(bx + 1).min(nx - 1);
        let yr = by.saturating_sub(1)..=(by + 1).min(ny - 1);
        let zr = bz.saturating_sub(1)..=(bz + 1).min(nz - 1);
        xr.flat_map(move |x| {
            let yr = yr.clone();
            let zr = zr.clone();
            yr.flat_map(move |y| {
                let zr = zr.clone();
                zr.map(move |z| (x, y, z))
            })
        })
        .flat_map(move |(x, y, z)| self.bins[(x * ny + y) * nz + z].iter())
    }
}

/// Bin the atoms of an instance into cutoff-sized cells.
pub fn bin_atoms(input: &CutcpInput) -> AtomBins {
    let g = input.geom;
    let extent = |cells: usize| cells as f32 * g.h;
    let bin_w = g.cutoff.max(g.h);
    let count = |cells: usize| ((extent(cells) / bin_w).ceil() as usize).max(1);
    let nb = (count(g.dom.nx), count(g.dom.ny), count(g.dom.nz));
    let mut bins = vec![Vec::new(); nb.0 * nb.1 * nb.2];
    let axis = |p: f32, n: usize| ((p / bin_w).floor().max(0.0) as usize).min(n.saturating_sub(1));
    for &a in &input.atoms {
        let (bx, by, bz) = (axis(a.x, nb.0), axis(a.y, nb.1), axis(a.z, nb.2));
        bins[(bx * nb.1 + by) * nb.2 + bz].push(a);
    }
    AtomBins { geom: g, bin_w, nb, bins }
}

/// Gather-formulation on the Triolet skeletons: parallel over grid points,
/// binned atoms broadcast as the environment.
pub fn run_triolet_gather(rt: &Triolet, input: &CutcpInput) -> Run<Vec<f64>> {
    let bins = bin_atoms(input);
    let g = input.geom;
    let c2 = g.cutoff * g.cutoff;
    let dom = g.dom;
    // Flattened grid-point loop (Seq domain keeps build_vec's ordered
    // fragment assembly; index math is cheap next to the bin scans).
    let points = range(dom.count()).par();
    rt.build_vec(points, &bins, move |bins: &AtomBins, k: usize| {
        let (ix, iy, iz) = dom.index_at(k);
        let (gx, gy, gz) = (ix as f32 * g.h, iy as f32 * g.h, iz as f32 * g.h);
        let mut v = 0.0f64;
        for a in bins.neighbours(gx, gy, gz) {
            let (dx, dy, dz) = (gx - a.x, gy - a.y, gz - a.z);
            let r2 = dx * dx + dy * dy + dz * dz;
            if r2 <= c2 && r2 > 0.0 {
                v += potential(a.q, r2, c2);
            }
        }
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cutcp::{generate, run_seq, validate};

    #[test]
    fn bins_hold_every_atom() {
        let input = generate(200, 12, 3);
        let bins = bin_atoms(&input);
        let total: usize = bins.bins.iter().map(Vec::len).sum();
        assert_eq!(total, input.atoms.len());
    }

    #[test]
    fn gather_matches_scatter_reference() {
        let input = generate(150, 10, 9);
        let expect = run_seq(&input);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 2));
        let run = run_triolet_gather(&rt, &input);
        assert!(validate(&expect, &run.value, 1e-9), "gather and scatter disagree");
        // The gather trades grid reduction for an atom broadcast: the bytes
        // shipped *back* are just the output fragments (one grid total), not
        // nodes x whole-grid partials.
        let grid_bytes = (input.geom.dom.count() * 8) as u64;
        assert!(run.stats.bytes_back < 2 * grid_bytes);
    }

    #[test]
    fn gather_single_vs_multi_node() {
        let input = generate(100, 8, 4);
        let a =
            run_triolet_gather(&Triolet::new(ClusterConfig::virtual_cluster(1, 1)), &input).value;
        let b =
            run_triolet_gather(&Triolet::new(ClusterConfig::virtual_cluster(8, 2)), &input).value;
        assert!(validate(&a, &b, 1e-12));
    }

    #[test]
    fn neighbourhood_covers_cutoff() {
        // Every atom within cutoff of a grid point must appear among its
        // neighbours (bin width >= cutoff guarantees the 27-cell cover).
        let input = generate(120, 10, 7);
        let bins = bin_atoms(&input);
        let g = input.geom;
        let c2 = g.cutoff * g.cutoff;
        for k in (0..g.dom.count()).step_by(97) {
            let (ix, iy, iz) = g.dom.index_at(k);
            let (gx, gy, gz) = (ix as f32 * g.h, iy as f32 * g.h, iz as f32 * g.h);
            let brute: usize = input
                .atoms
                .iter()
                .filter(|a| {
                    let (dx, dy, dz) = (gx - a.x, gy - a.y, gz - a.z);
                    dx * dx + dy * dy + dz * dz <= c2
                })
                .count();
            let via_bins = bins
                .neighbours(gx, gy, gz)
                .filter(|a| {
                    let (dx, dy, dz) = (gx - a.x, gy - a.y, gz - a.z);
                    dx * dx + dy * dy + dz * dz <= c2
                })
                .count();
            assert_eq!(via_bins, brute, "grid point {k}");
        }
    }
}
