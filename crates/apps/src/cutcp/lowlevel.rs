//! C+MPI+OpenMP-style cutcp: atom partitioning, per-thread private grids,
//! explicit grid reduction.

use triolet::{Domain, NodeCtx, RunStats};
use triolet_baselines::LowLevelRt;
use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

use super::{axis_range, potential, Atom, CutcpInput, GridGeom};

/// One rank's hand-built message: its atom slice plus the geometry.
#[derive(Clone)]
struct RankPayload {
    atoms: Vec<Atom>,
    geom: GridGeom,
}

impl Wire for RankPayload {
    fn pack(&self, w: &mut WireWriter) {
        self.atoms.pack(w);
        self.geom.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(RankPayload { atoms: Vec::unpack(r)?, geom: GridGeom::unpack(r)? })
    }
    fn packed_size(&self) -> usize {
        self.atoms.packed_size() + self.geom.packed_size()
    }
}

/// Accumulate one atom into a raw grid (the C inner loop nest).
#[inline]
fn accumulate_atom(grid: &mut [f64], geom: &GridGeom, a: &Atom) {
    let c2 = geom.cutoff * geom.cutoff;
    let (x0, x1) = axis_range(a.x, geom.cutoff, geom.h, geom.dom.nx);
    let (y0, y1) = axis_range(a.y, geom.cutoff, geom.h, geom.dom.ny);
    let (z0, z1) = axis_range(a.z, geom.cutoff, geom.h, geom.dom.nz);
    for ix in x0..=x1 {
        let dx = ix as f32 * geom.h - a.x;
        for iy in y0..=y1 {
            let dy = iy as f32 * geom.h - a.y;
            for iz in z0..=z1 {
                let dz = iz as f32 * geom.h - a.z;
                let r2 = dx * dx + dy * dy + dz * dz;
                if r2 > c2 || r2 <= 0.0 {
                    continue;
                }
                grid[geom.dom.linear_of((ix, iy, iz))] += potential(a.q, r2, c2);
            }
        }
    }
}

/// The node kernel: private grid per thread chunk, explicit reduction.
fn kernel(ctx: &NodeCtx<'_>, p: RankPayload) -> Vec<f64> {
    let cells = p.geom.dom.count();
    let chunk_count = ctx.threads() * 4;
    let chunk_size = p.atoms.len().div_ceil(chunk_count.max(1)).max(1);
    let chunks: Vec<Vec<Atom>> = p.atoms.chunks(chunk_size).map(|c| c.to_vec()).collect();
    let geom = p.geom;
    ctx.map_reduce_chunks(
        chunks,
        |atoms: &Vec<Atom>| {
            let mut grid = vec![0.0f64; cells];
            for a in atoms {
                accumulate_atom(&mut grid, &geom, a);
            }
            grid
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    )
    .unwrap_or_else(|| vec![0.0f64; cells])
}

/// Run cutcp with hand-written partitioning on `rt`.
pub fn run_lowlevel(rt: &LowLevelRt, input: &CutcpInput) -> (Vec<f64>, RunStats) {
    let geom = input.geom;
    let cells = geom.dom.count();
    let payloads: Vec<RankPayload> = rt
        .partition_slice(&input.atoms)
        .into_iter()
        .map(|atoms| RankPayload { atoms, geom })
        .collect();
    rt.run(payloads, kernel, move |grids| {
        // Root: sum the per-node grids (the expensive gather of §4.5).
        let mut out = vec![0.0f64; cells];
        for g in grids {
            for (a, b) in out.iter_mut().zip(g) {
                *a += b;
            }
        }
        out
    })
}
