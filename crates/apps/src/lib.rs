//! The four Parboil benchmarks of the Triolet evaluation (paper §4), each
//! implemented four ways:
//!
//! | style | module suffix | corresponds to |
//! |---|---|---|
//! | plain sequential loops | `seq` | the paper's "sequential C" baseline |
//! | Triolet skeletons | `triolet` | the paper's Triolet versions |
//! | explicit partitioning + kernels | `lowlevel` | C+MPI+OpenMP |
//! | Eden-style skeletons + boxed pipelines | `eden` | Eden (GHC) |
//!
//! Every app module provides a seeded input generator, the four
//! implementations, and an output validator used by the cross-implementation
//! equivalence tests.
//!
//! * [`mriq`] — non-uniform 3-D inverse Fourier transform (§4.2): a regular
//!   parallel map over pixels with an inner reduction over k-space samples.
//! * [`sgemm`] — scaled dense matrix multiply (§4.3): 2-D block
//!   decomposition via `rows`/`outerproduct`, shared-memory transpose.
//! * [`tpacf`] — angular correlation histograms (§4.4): triangular nested
//!   traversals feeding histograms, parallel over datasets.
//! * [`cutcp`] — cutoff Coulombic potential (§4.5): an irregular
//!   concat-map/filter nest scatter-adding into a large 3-D grid.
//!
//! [`kmeans`] is not from the paper's evaluation; it is the iterative
//! workload the persistent-collection (resident `DistVec`) ablation runs —
//! the same point set is swept many times, so residency pays off.

pub mod cli;
pub mod cutcp;
pub mod kmeans;
pub mod mriq;
pub mod sgemm;
pub mod tpacf;

/// Relative-error comparison for floating-point outputs: `|a-b|` within
/// `tol * max(1, |a|, |b|)` elementwise.
pub fn close_f32(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(&x, &y)| (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0))
}

/// Relative-error comparison for `f64` outputs.
pub fn close_f64(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(&x, &y)| (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_checks_length_and_tolerance() {
        assert!(close_f32(&[1.0, 2.0], &[1.0, 2.0 + 1e-7], 1e-5));
        assert!(!close_f32(&[1.0], &[1.0, 2.0], 1e-5));
        assert!(!close_f32(&[1.0], &[1.1], 1e-5));
        assert!(close_f64(&[1e12], &[1e12 * (1.0 + 1e-10)], 1e-9));
    }
}
