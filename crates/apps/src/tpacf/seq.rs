//! Sequential reference: plain nested loops and a mutable histogram.

use super::{hist_len, score, score_cos, Point, TpacfInput, TpacfOutput};

/// Self-correlation: all unique pairs `(i, j)` with `j > i`.
pub fn self_correlation(bin_edges: &[f64], set: &[Point], hist: &mut [u64]) {
    for i in 0..set.len() {
        let u = set[i];
        for &v in &set[i + 1..] {
            hist[score(bin_edges, u, v)] += 1;
        }
    }
}

/// Cross-correlation: all pairs from `a x b`.
pub fn cross_correlation(bin_edges: &[f64], a: &[Point], b: &[Point], hist: &mut [u64]) {
    for &u in a {
        for &v in b {
            hist[score(bin_edges, u, v)] += 1;
        }
    }
}

/// Points per i-tile in the tiled correlation loops: a tile of 3-f64 points
/// stays resident in L1 while the partner set streams past it once.
pub const CORR_TILE: usize = 32;

/// Tiled self-correlation: identical pair set to [`self_correlation`]
/// (every unique pair scored once with the same arithmetic as [`score`]),
/// so the histogram is bit-for-bit identical — u64 increments commute. The
/// i-loop is tiled; each streamed `v` computes its tile of dot products in
/// one batch (a vectorizable loop with no branches) before the branchy bin
/// search consumes the batch.
pub fn self_correlation_tiled(bin_edges: &[f64], set: &[Point], hist: &mut [u64]) {
    self_correlation_rows_tiled(bin_edges, set, 0, set.len(), hist);
}

/// Batched inner step shared by the tiled loops: dot one streamed point
/// against a resident tile (vectorizable, branch-free), then bin the batch.
/// Each pair's cosine is `(u.0*v.0 + u.1*v.1 + u.2*v.2).clamp(-1, 1)` —
/// exactly [`score`]'s arithmetic — so the bins are identical.
#[inline]
fn score_tile(bin_edges: &[f64], tile: &[Point], v: Point, hist: &mut [u64]) {
    let mut dots = [0.0f64; CORR_TILE];
    let n = tile.len();
    for (d, &u) in dots[..n].iter_mut().zip(tile) {
        *d = (u.0 * v.0 + u.1 * v.1 + u.2 * v.2).clamp(-1.0, 1.0);
    }
    for &d in &dots[..n] {
        hist[score_cos(bin_edges, d)] += 1;
    }
}

/// Tiled self-correlation restricted to anchor rows `lo..hi`: all pairs
/// `(i, j)` with `lo <= i < hi` and `j > i`. The building block for both
/// [`self_correlation_tiled`] and thread-chunked distributed DD loops.
pub fn self_correlation_rows_tiled(
    bin_edges: &[f64],
    set: &[Point],
    lo: usize,
    hi: usize,
    hist: &mut [u64],
) {
    let mut ib = lo;
    while ib < hi {
        let ie = (ib + CORR_TILE).min(hi);
        // Pairs inside the tile: the small triangle.
        for i in ib..ie {
            let u = set[i];
            for &v in &set[i + 1..ie] {
                hist[score(bin_edges, u, v)] += 1;
            }
        }
        // Tile vs everything past it: stream each v across the hot tile,
        // batching the dots before the bin search.
        for &v in &set[ie..] {
            score_tile(bin_edges, &set[ib..ie], v, hist);
        }
        ib = ie;
    }
}

/// Tiled cross-correlation: same pair set as [`cross_correlation`], i-tiled
/// over `a` so each tile of `a` stays cache-resident while `b` streams by.
pub fn cross_correlation_tiled(bin_edges: &[f64], a: &[Point], b: &[Point], hist: &mut [u64]) {
    let mut ib = 0;
    while ib < a.len() {
        let ie = (ib + CORR_TILE).min(a.len());
        for &v in b {
            score_tile(bin_edges, &a[ib..ie], v, hist);
        }
        ib = ie;
    }
}

/// Compute the three histograms with sequential loops.
pub fn run_seq(input: &TpacfInput) -> TpacfOutput {
    let bins = hist_len(input);
    let mut dd = vec![0u64; bins];
    self_correlation(&input.bin_edges, &input.obs, &mut dd);

    let mut dr = vec![0u64; bins];
    let mut rr = vec![0u64; bins];
    for rand in &input.rands {
        cross_correlation(&input.bin_edges, &input.obs, rand, &mut dr);
        self_correlation(&input.bin_edges, rand, &mut rr);
    }
    TpacfOutput { dd, dr, rr }
}
