//! Sequential reference: plain nested loops and a mutable histogram.

use super::{hist_len, score, Point, TpacfInput, TpacfOutput};

/// Self-correlation: all unique pairs `(i, j)` with `j > i`.
pub fn self_correlation(bin_edges: &[f64], set: &[Point], hist: &mut [u64]) {
    for i in 0..set.len() {
        let u = set[i];
        for &v in &set[i + 1..] {
            hist[score(bin_edges, u, v)] += 1;
        }
    }
}

/// Cross-correlation: all pairs from `a x b`.
pub fn cross_correlation(bin_edges: &[f64], a: &[Point], b: &[Point], hist: &mut [u64]) {
    for &u in a {
        for &v in b {
            hist[score(bin_edges, u, v)] += 1;
        }
    }
}

/// Compute the three histograms with sequential loops.
pub fn run_seq(input: &TpacfInput) -> TpacfOutput {
    let bins = hist_len(input);
    let mut dd = vec![0u64; bins];
    self_correlation(&input.bin_edges, &input.obs, &mut dd);

    let mut dr = vec![0u64; bins];
    let mut rr = vec![0u64; bins];
    for rand in &input.rands {
        cross_correlation(&input.bin_edges, &input.obs, rand, &mut dr);
        self_correlation(&input.bin_edges, rand, &mut rr);
    }
    TpacfOutput { dd, dr, rr }
}
