//! C+MPI+OpenMP-style tpacf: explicit dataset distribution and explicit
//! histogram privatization.
//!
//! "The C+MPI+OpenMP code examines the number of threads in order to
//! privatize histograms" — the kernel below allocates one private histogram
//! per thread chunk and reduces them by hand, which is exactly the code a
//! programmer writes after "one or more iterations of performance
//! optimization" (paper §4.4).

use triolet::{NodeCtx, RunStats, SeqPart};
use triolet_baselines::LowLevelRt;
use triolet_domain::{chunk_ranges, Domain, Seq};
use triolet_serial::{PodView, Wire, WireReader, WireResult, WireWriter};

use super::seq::{cross_correlation_tiled, self_correlation_rows_tiled, self_correlation_tiled};
use super::{hist_len, Point, TpacfInput, TpacfOutput};

/// One rank's hand-built message: its random datasets plus copies of the
/// observed set and the bin edges.
#[derive(Clone)]
struct RankPayload {
    rands: Vec<Vec<Point>>,
    obs: Vec<Point>,
    /// Zero-copy on the node: aliases the received wire buffer when aligned.
    bin_edges: PodView<f64>,
    /// Whether this rank also computes the DD histogram (rank 0 only).
    compute_dd: bool,
}

impl Wire for RankPayload {
    fn pack(&self, w: &mut WireWriter) {
        self.rands.pack(w);
        self.obs.pack(w);
        self.bin_edges.pack(w);
        self.compute_dd.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(RankPayload {
            rands: Vec::unpack(r)?,
            obs: Vec::unpack(r)?,
            bin_edges: PodView::unpack(r)?,
            compute_dd: bool::unpack(r)?,
        })
    }
    fn packed_size(&self) -> usize {
        self.rands.packed_size() + self.obs.packed_size() + self.bin_edges.packed_size() + 1
    }
}

type ThreeHists = (Vec<u64>, Vec<u64>, Vec<u64>);

/// The node kernel: private histograms per thread chunk, reduced by hand.
fn kernel(ctx: &NodeCtx<'_>, p: RankPayload) -> ThreeHists {
    let bins = p.bin_edges.len();
    // DR + RR: one task per random set, each with private histograms.
    let per_set = ctx.map_chunks(p.rands.clone(), |rand: &Vec<Point>| {
        let mut dr = vec![0u64; bins];
        let mut rr = vec![0u64; bins];
        cross_correlation_tiled(&p.bin_edges, &p.obs, rand, &mut dr);
        self_correlation_tiled(&p.bin_edges, rand, &mut rr);
        (dr, rr)
    });
    // DD on the designated rank: thread-chunked triangular loop with
    // explicitly privatized histograms.
    let dd = if p.compute_dd {
        let n = p.obs.len();
        let chunks = Seq::new(n).split_parts(ctx.threads() * 4);
        let privates = ctx.map_chunks(chunks, |c: &SeqPart| {
            let mut h = vec![0u64; bins];
            self_correlation_rows_tiled(&p.bin_edges, &p.obs, c.start, c.end(), &mut h);
            h
        });
        ctx.sequential(|| {
            let mut dd = vec![0u64; bins];
            for h in privates {
                for (a, b) in dd.iter_mut().zip(h) {
                    *a += b;
                }
            }
            dd
        })
    } else {
        vec![0u64; bins]
    };
    // Per-node reduction of the per-set histograms.
    ctx.sequential(|| {
        let mut dr = vec![0u64; bins];
        let mut rr = vec![0u64; bins];
        for (d, r) in per_set {
            for (a, b) in dr.iter_mut().zip(d) {
                *a += b;
            }
            for (a, b) in rr.iter_mut().zip(r) {
                *a += b;
            }
        }
        (dd, dr, rr)
    })
}

/// Run tpacf with hand-written partitioning on `rt`.
pub fn run_lowlevel(rt: &LowLevelRt, input: &TpacfInput) -> (TpacfOutput, RunStats) {
    let bins = hist_len(input);
    // Root: distribute random sets across ranks; rank 0 also gets DD.
    let ranges = chunk_ranges(input.rands.len(), rt.nodes());
    let payloads: Vec<RankPayload> = ranges
        .iter()
        .enumerate()
        .map(|(rank, &(s, l))| RankPayload {
            rands: input.rands[s..s + l].to_vec(),
            obs: input.obs.clone(),
            bin_edges: PodView::from_vec(input.bin_edges.clone()),
            compute_dd: rank == 0,
        })
        .collect();
    // Handle the degenerate no-random-sets case: rank 0 still does DD.
    let payloads = if payloads.is_empty() {
        vec![RankPayload {
            rands: Vec::new(),
            obs: input.obs.clone(),
            bin_edges: PodView::from_vec(input.bin_edges.clone()),
            compute_dd: true,
        }]
    } else {
        payloads
    };

    rt.run(payloads, kernel, move |partials| {
        let mut dd = vec![0u64; bins];
        let mut dr = vec![0u64; bins];
        let mut rr = vec![0u64; bins];
        for (d1, d2, d3) in partials {
            for (a, b) in dd.iter_mut().zip(d1) {
                *a += b;
            }
            for (a, b) in dr.iter_mut().zip(d2) {
                *a += b;
            }
            for (a, b) in rr.iter_mut().zip(d3) {
                *a += b;
            }
        }
        TpacfOutput { dd, dr, rr }
    })
}
