//! tpacf: the two-point angular correlation function (paper §4.4).
//!
//! "The tpacf application analyzes the angular distribution of observed
//! astronomical objects. It uses histogramming and nested traversals,
//! presenting a challenge for conventional fusion frameworks. Three
//! histograms are computed using different inputs. One loop compares an
//! observed data set with itself [DD]; one compares it with several random
//! data sets [DR]; and one compares each random data set with itself [RR].
//! We parallelize across data sets and across elements of a data set."
//!
//! Each comparison computes the angle between two unit vectors on the
//! celestial sphere and bins it into logarithmically spaced angular bins.

mod eden;
mod lowlevel;
mod seq;
mod triolet_impl;

pub use eden::run_eden;
pub use lowlevel::run_lowlevel;
pub use seq::{
    cross_correlation, cross_correlation_tiled, run_seq, self_correlation,
    self_correlation_rows_tiled, self_correlation_tiled, CORR_TILE,
};
pub use triolet_impl::{run_triolet, run_triolet_tiled};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A point on the unit sphere (3-D Cartesian unit vector).
pub type Point = (f64, f64, f64);

/// Problem instance: the observed dataset and the random comparison sets.
#[derive(Debug, Clone, PartialEq)]
pub struct TpacfInput {
    /// Observed objects.
    pub obs: Vec<Point>,
    /// Random datasets, each the same length as `obs`.
    pub rands: Vec<Vec<Point>>,
    /// Angular bin edges in `cos(theta)`, descending (angle ascending).
    pub bin_edges: Vec<f64>,
}

/// The three correlation histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpacfOutput {
    /// Observed-observed (data-data) histogram.
    pub dd: Vec<u64>,
    /// Observed-random (data-random) histogram, summed over random sets.
    pub dr: Vec<u64>,
    /// Random-random self-correlation histogram, summed over random sets.
    pub rr: Vec<u64>,
}

/// Number of angular bins used by the generator (Parboil uses a few dozen
/// logarithmic bins).
pub const DEFAULT_BINS: usize = 32;

/// Deterministic synthetic instance: `n` observed points and `n_rand` random
/// datasets of `n` points each, uniform on the sphere; logarithmic angular
/// bins from 0.01 to 90 degrees.
pub fn generate(n: usize, n_rand: usize, bins: usize, seed: u64) -> TpacfInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let sphere_points = |rng: &mut StdRng, n: usize| -> Vec<Point> {
        (0..n)
            .map(|_| {
                // Marsaglia's method for uniform sphere sampling.
                loop {
                    let a: f64 = rng.gen_range(-1.0..1.0);
                    let b: f64 = rng.gen_range(-1.0..1.0);
                    let s = a * a + b * b;
                    if s < 1.0 {
                        let t = 2.0 * (1.0 - s).sqrt();
                        break (a * t, b * t, 1.0 - 2.0 * s);
                    }
                }
            })
            .collect()
    };
    let obs = sphere_points(&mut rng, n);
    let rands = (0..n_rand).map(|_| sphere_points(&mut rng, n)).collect();
    TpacfInput { obs, rands, bin_edges: log_bins(bins) }
}

/// Logarithmically spaced bin edges in `cos(theta)`, descending: bin `i`
/// covers angles in `[edge_angle(i), edge_angle(i+1))` from 0.01 to 90
/// degrees.
pub fn log_bins(bins: usize) -> Vec<f64> {
    let min_deg = 0.01f64;
    let max_deg = 90.0f64;
    let ratio = (max_deg / min_deg).powf(1.0 / bins as f64);
    let mut edges = Vec::with_capacity(bins + 1);
    for i in 0..=bins {
        let angle_deg = min_deg * ratio.powi(i as i32);
        edges.push(angle_deg.to_radians().cos());
    }
    edges
}

/// Bin index for a pair of unit vectors: the paper's `score(size, u, v)`.
///
/// Returns `bins` (the overflow cell) for angles below the smallest edge, so
/// no pair is silently dropped.
#[inline]
pub fn score(bin_edges: &[f64], u: Point, v: Point) -> usize {
    let dot = (u.0 * v.0 + u.1 * v.1 + u.2 * v.2).clamp(-1.0, 1.0);
    score_cos(bin_edges, dot)
}

/// Bin index for an already-computed (clamped) pair cosine: the search half
/// of [`score`]. The tiled correlation loops batch the dot products of one
/// tile (a vectorizable loop) and then bin the batch through this function,
/// so every pair takes exactly the same arithmetic path as [`score`].
#[inline]
pub fn score_cos(bin_edges: &[f64], dot: f64) -> usize {
    // Edges descend in cos; find the first bin whose lower cos edge is
    // below the dot (i.e. whose angle exceeds the pair's angle).
    // bin i covers cos in (edges[i+1], edges[i]].
    let bins = bin_edges.len() - 1;
    if dot > bin_edges[0] {
        return bins; // closer than the smallest angle: overflow cell
    }
    // Binary search on the descending edge array.
    let mut lo = 0usize;
    let mut hi = bins;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if dot > bin_edges[mid + 1] {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo.min(bins - 1)
}

/// Histogram bin count for an input (bins plus one overflow cell).
pub fn hist_len(input: &TpacfInput) -> usize {
    input.bin_edges.len()
}

/// Validate two outputs exactly (histograms are integral).
pub fn validate(a: &TpacfOutput, b: &TpacfOutput) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet::prelude::*;
    use triolet_baselines::{EdenRt, LowLevelRt};

    fn small() -> TpacfInput {
        generate(60, 3, 16, 99)
    }

    #[test]
    fn generator_points_are_unit() {
        let input = small();
        for &(x, y, z) in input.obs.iter().chain(input.rands.iter().flatten()) {
            let norm = (x * x + y * y + z * z).sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn score_bins_are_total() {
        // Every pair must land in some bin (including the overflow cell).
        let input = small();
        let bins = hist_len(&input);
        for &u in &input.obs[..10] {
            for &v in &input.obs[..10] {
                assert!(score(&input.bin_edges, u, v) < bins);
            }
        }
    }

    #[test]
    fn score_monotone_in_angle() {
        let edges = log_bins(16);
        // A pair at angle 1 degree must bin strictly below a pair at 45.
        let u = (1.0, 0.0, 0.0);
        let v1 = (1.0f64.to_radians().cos(), 1.0f64.to_radians().sin(), 0.0);
        let v45 = (45.0f64.to_radians().cos(), 45.0f64.to_radians().sin(), 0.0);
        assert!(score(&edges, u, v1) < score(&edges, u, v45));
    }

    #[test]
    fn seq_histogram_totals() {
        let input = small();
        let out = run_seq(&input);
        let n = input.obs.len() as u64;
        let nr = input.rands.len() as u64;
        // DD counts all unique pairs once.
        assert_eq!(out.dd.iter().sum::<u64>(), n * (n - 1) / 2);
        // DR counts n*n pairs per random set.
        assert_eq!(out.dr.iter().sum::<u64>(), nr * n * n);
        // RR counts unique pairs per random set.
        assert_eq!(out.rr.iter().sum::<u64>(), nr * n * (n - 1) / 2);
    }

    #[test]
    fn triolet_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(3, 2));
        let run = run_triolet(&rt, &input);
        assert!(validate(&expect, &run.value));
        assert!(run.stats.bytes_out > 0);
    }

    #[test]
    fn lowlevel_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(3, 2));
        let (got, _) = run_lowlevel(&rt, &input);
        assert!(validate(&expect, &got));
    }

    #[test]
    fn eden_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = EdenRt::new(2, 2);
        let (got, _) = run_eden(&rt, &input).expect("payloads fit Eden buffers");
        assert!(validate(&expect, &got));
    }

    #[test]
    fn triolet_tiled_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(3, 2));
        let run = run_triolet_tiled(&rt, &input);
        assert!(validate(&expect, &run.value));
        assert!(run.stats.bytes_out > 0);
    }

    #[test]
    fn tiled_correlations_match_naive() {
        use super::seq::{
            cross_correlation, cross_correlation_tiled, self_correlation, self_correlation_tiled,
        };
        let input = generate(75, 2, 16, 5); // not a CORR_TILE multiple
        let bins = hist_len(&input);
        let (mut a, mut b) = (vec![0u64; bins], vec![0u64; bins]);
        self_correlation(&input.bin_edges, &input.obs, &mut a);
        self_correlation_tiled(&input.bin_edges, &input.obs, &mut b);
        assert_eq!(a, b);
        let (mut a, mut b) = (vec![0u64; bins], vec![0u64; bins]);
        cross_correlation(&input.bin_edges, &input.obs, &input.rands[0], &mut a);
        cross_correlation_tiled(&input.bin_edges, &input.obs, &input.rands[0], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn node_count_does_not_change_histograms() {
        let input = small();
        let a = run_triolet(&Triolet::new(ClusterConfig::virtual_cluster(1, 1)), &input).value;
        let b = run_triolet(&Triolet::new(ClusterConfig::virtual_cluster(8, 4)), &input).value;
        assert!(validate(&a, &b));
    }
}
