//! Eden-style tpacf (paper §4.4).
//!
//! "The Eden code subdivides data in order to produce enough work to occupy
//! all threads" and pays "somewhat worse sequential performance and a higher
//! communication overhead": every task input carries its own copy of the
//! observed set (input data "unnecessarily replicated for use in multiple
//! loop iterations", §1), and the pair loops run through boxed stepper
//! pipelines — the 2–5x nested-traversal penalty of §3.1.

use triolet::RunStats;
use triolet_baselines::{boxed_pipeline, EdenError, EdenRt};
use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

use super::{hist_len, score, Point, TpacfInput, TpacfOutput};

/// One Eden task: a random set (or a DD marker) plus replicated context.
#[derive(Clone)]
pub struct EdenTask {
    /// `None`: compute DD over `obs`; `Some(rand)`: compute DR and RR for
    /// one random set.
    rand: Option<Vec<Point>>,
    obs: Vec<Point>,
    bin_edges: Vec<f64>,
}

impl Wire for EdenTask {
    fn pack(&self, w: &mut WireWriter) {
        self.rand.pack(w);
        self.obs.pack(w);
        self.bin_edges.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(EdenTask { rand: Option::unpack(r)?, obs: Vec::unpack(r)?, bin_edges: Vec::unpack(r)? })
    }
    fn packed_size(&self) -> usize {
        self.rand.packed_size() + self.obs.packed_size() + self.bin_edges.packed_size()
    }
}

type ThreeHists = (Vec<u64>, Vec<u64>, Vec<u64>);

/// Self-correlation through boxed pipelines (the unfused stepper chain).
fn boxed_self(bin_edges: &[f64], set: &[Point], hist: &mut [u64]) {
    let pairs = boxed_pipeline((0..set.len()).flat_map(|i| {
        let u = set[i];
        boxed_pipeline(set[i + 1..].iter().map(move |&v| (u, v)))
    }));
    let scored = boxed_pipeline(pairs.map(|(u, v)| score(bin_edges, u, v)));
    for bin in scored {
        hist[bin] += 1;
    }
}

/// Cross-correlation through boxed pipelines.
fn boxed_cross(bin_edges: &[f64], a: &[Point], b: &[Point], hist: &mut [u64]) {
    let pairs =
        boxed_pipeline(a.iter().flat_map(|&u| boxed_pipeline(b.iter().map(move |&v| (u, v)))));
    let scored = boxed_pipeline(pairs.map(|(u, v)| score(bin_edges, u, v)));
    for bin in scored {
        hist[bin] += 1;
    }
}

/// Run tpacf through the Eden runtime.
pub fn run_eden(rt: &EdenRt, input: &TpacfInput) -> Result<(TpacfOutput, RunStats), EdenError> {
    let bins = hist_len(input);
    let mut tasks: Vec<EdenTask> =
        vec![EdenTask { rand: None, obs: input.obs.clone(), bin_edges: input.bin_edges.clone() }];
    for rand in &input.rands {
        tasks.push(EdenTask {
            rand: Some(rand.clone()),
            obs: input.obs.clone(), // replicated per task
            bin_edges: input.bin_edges.clone(),
        });
    }

    let (out, stats) = rt.map_reduce(
        tasks,
        move |t: EdenTask| -> ThreeHists {
            let mut dd = vec![0u64; bins];
            let mut dr = vec![0u64; bins];
            let mut rr = vec![0u64; bins];
            match &t.rand {
                None => boxed_self(&t.bin_edges, &t.obs, &mut dd),
                Some(rand) => {
                    boxed_cross(&t.bin_edges, &t.obs, rand, &mut dr);
                    boxed_self(&t.bin_edges, rand, &mut rr);
                }
            }
            (dd, dr, rr)
        },
        |mut a, b| {
            for (x, y) in a.0.iter_mut().zip(b.0) {
                *x += y;
            }
            for (x, y) in a.1.iter_mut().zip(b.1) {
                *x += y;
            }
            for (x, y) in a.2.iter_mut().zip(b.2) {
                *x += y;
            }
            a
        },
        move || (vec![0u64; bins], vec![0u64; bins], vec![0u64; bins]),
    )?;

    Ok((TpacfOutput { dd: out.0, dr: out.1, rr: out.2 }, stats))
}
