//! Triolet implementation: the paper's Figure 6, transcribed.
//!
//! ```python
//! def correlation(size, pairs):
//!     values = (score(size, u, v) for (u, v) in pairs)
//!     return histogram(size, values)
//!
//! def randomSetsCorrelation(size, corr1, rands):
//!     return reduce(add, empty, par(corr1(r) for r in rands))
//!
//! def selfCorrelations(size, obs, rands):
//!     def corr1(rand):
//!         indexed_rand = zip(indices(domain(rand)), rand)
//!         pairs = localpar((u, v) for (i, u) in indexed_rand
//!                                 for v in rand[i+1:])
//!         return correlation(size, pairs)
//!     return randomSetsCorrelation(size, corr1, rands)
//! ```
//!
//! The outer loop parallelizes across random datasets (`par`), slicing the
//! dataset array so each node receives only its datasets; the triangular
//! inner pair loop is the hybrid-iterator showpiece — `zip` + `concat_map`
//! over suffixes fused straight into the histogram collector. The DD loop
//! runs the same pair iterator `localpar` over the observed set.

use std::sync::Arc;

use triolet::prelude::*;
use triolet::{Collector, CountHist};
use triolet_domain::chunk_ranges;
use triolet_iter::StepFlat;

use super::seq::{cross_correlation_tiled, self_correlation_rows_tiled, self_correlation_tiled};
use super::{hist_len, score, Point, TpacfInput, TpacfOutput};

/// The fused triangular pair loop of Figure 6 lines 15–18, drained into a
/// histogram (the `correlation` function): runs inside one task.
fn corr1_self(bin_edges: &Arc<Vec<f64>>, rand: &[Point], bins: usize) -> CountHist {
    let data = Arc::new(rand.to_vec());
    let inner_data = Arc::clone(&data);
    let edges = Arc::clone(bin_edges);
    let pairs = zip(range(data.len()), from_vec(rand.to_vec()))
        .concat_map(move |(i, u): (usize, Point)| {
            let rand = Arc::clone(&inner_data);
            StepFlat::new((i + 1..rand.len()).map(move |j| (u, rand[j])))
        })
        .map(move |(u, v): (Point, Point)| score(&edges, u, v));
    let mut h = CountHist::new(bins);
    pairs.collect_into(&mut h);
    h
}

/// Cross-correlation pair loop for one dataset against the observed set.
fn corr1_cross(bin_edges: &Arc<Vec<f64>>, obs: &[Point], rand: &[Point], bins: usize) -> CountHist {
    let obs = Arc::new(obs.to_vec());
    let edges = Arc::clone(bin_edges);
    let pairs = from_vec(rand.to_vec())
        .concat_map(move |v: Point| {
            let obs = Arc::clone(&obs);
            StepFlat::new((0..obs.len()).map(move |i| (obs[i], v)))
        })
        .map(move |(u, v): (Point, Point)| score(&edges, u, v));
    let mut h = CountHist::new(bins);
    pairs.collect_into(&mut h);
    h
}

/// Run tpacf through the Triolet skeletons on `rt`.
pub fn run_triolet(rt: &Triolet, input: &TpacfInput) -> Run<TpacfOutput> {
    let bins = hist_len(input);
    let edges = Arc::new(input.bin_edges.clone());

    // --- DD: self-correlation of the observed set, localpar --------------
    let dd_edges = Arc::clone(&edges);
    let obs_data = Arc::new(input.obs.clone());
    let inner_obs = Arc::clone(&obs_data);
    let dd_pairs = zip(range(input.obs.len()), from_vec(input.obs.clone()))
        .concat_map(move |(i, u): (usize, Point)| {
            let obs = Arc::clone(&inner_obs);
            StepFlat::new((i + 1..obs.len()).map(move |j| (u, obs[j])))
        })
        .map(move |(u, v): (Point, Point)| score(&dd_edges, u, v))
        .localpar();
    let dd = rt.histogram(bins, dd_pairs);

    // --- Scatter the random sets once; RR and DR run over the resident
    // segments, so the datasets cross the wire a single time for both
    // correlation phases instead of once per phase.
    let rands = rt.scatter(input.rands.clone());

    // --- RR: self-correlation of each random set, par over sets ----------
    let rr_edges = Arc::clone(&edges);
    let rr = rt.fold_reduce(
        &rands.value,
        &(),
        move || CountHist::new(bins),
        move |(), mut h: CountHist, rand: Vec<Point>| {
            h.merge(corr1_self(&rr_edges, &rand, bins));
            h
        },
        |mut a, b| {
            a.merge(b);
            a
        },
    );

    // --- DR: each random set against the observed set (broadcast env) ----
    // The observed set is packed to wire bytes exactly once here; the
    // skeleton reuses the shared buffer for every node and retransmission.
    let obs_env = rt.pack_env(input.obs.clone());
    let dr_edges = Arc::clone(&edges);
    let dr = rt.fold_reduce(
        &rands.value,
        &obs_env,
        move || CountHist::new(bins),
        move |obs: &Vec<Point>, mut h: CountHist, rand: Vec<Point>| {
            h.merge(corr1_cross(&dr_edges, obs, &rand, bins));
            h
        },
        |mut a, b| {
            a.merge(b);
            a
        },
    );

    // Four phases back to back: stats add, traces concatenate in time.
    let stats = dd.stats.then(rands.stats).then(rr.stats).then(dr.stats);
    let mut trace = dd.trace;
    trace.then(rands.trace);
    trace.then(rr.trace);
    trace.then(dr.trace);
    Run::new(TpacfOutput { dd: dd.value, dr: dr.value.finish(), rr: rr.value.finish() }, stats)
        .with_trace(trace)
}

/// Run tpacf through the Triolet skeletons with the tiled histogram kernels.
///
/// Same four-phase structure as [`run_triolet`], but every correlation loop
/// is the i-tiled variant from [`super::seq`]: DD parallelizes over anchor
/// row chunks of the broadcast observed set (each chunk running the tiled
/// triangular loop), and RR/DR fold the tiled kernels over the resident
/// random sets. Histograms are identical to [`run_triolet`] — every pair is
/// scored exactly once with the same `score`, and u64 increments commute.
pub fn run_triolet_tiled(rt: &Triolet, input: &TpacfInput) -> Run<TpacfOutput> {
    let bins = hist_len(input);
    let edges = Arc::new(input.bin_edges.clone());

    let add = |mut a: Vec<u64>, b: Vec<u64>| {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
        a
    };

    // --- DD: par over anchor-row chunks, observed set broadcast once ------
    let obs_env = rt.pack_env(input.obs.clone());
    let dd_edges = Arc::clone(&edges);
    let dd_chunks: Vec<(usize, usize)> = chunk_ranges(input.obs.len(), rt.nodes() * 8)
        .into_iter()
        .map(|(s, l)| (s, s + l))
        .collect();
    let dd = rt.fold_reduce(
        from_vec(dd_chunks).par(),
        &obs_env,
        move || vec![0u64; bins],
        move |obs: &Vec<Point>, mut h: Vec<u64>, (lo, hi): (usize, usize)| {
            self_correlation_rows_tiled(&dd_edges, obs, lo, hi, &mut h);
            h
        },
        add,
    );

    // --- Scatter the random sets once; RR and DR run over the resident
    // segments (same traffic shape as `run_triolet`).
    let rands = rt.scatter(input.rands.clone());

    // --- RR: tiled self-correlation of each random set -------------------
    let rr_edges = Arc::clone(&edges);
    let rr = rt.fold_reduce(
        &rands.value,
        &(),
        move || vec![0u64; bins],
        move |(), mut h: Vec<u64>, rand: Vec<Point>| {
            self_correlation_tiled(&rr_edges, &rand, &mut h);
            h
        },
        add,
    );

    // --- DR: tiled cross-correlation against the broadcast observed set --
    let dr_obs_env = rt.pack_env(input.obs.clone());
    let dr_edges = Arc::clone(&edges);
    let dr = rt.fold_reduce(
        &rands.value,
        &dr_obs_env,
        move || vec![0u64; bins],
        move |obs: &Vec<Point>, mut h: Vec<u64>, rand: Vec<Point>| {
            cross_correlation_tiled(&dr_edges, obs, &rand, &mut h);
            h
        },
        add,
    );

    let stats = dd.stats.then(rands.stats).then(rr.stats).then(dr.stats);
    let mut trace = dd.trace;
    trace.then(rands.trace);
    trace.then(rr.trace);
    trace.then(dr.trace);
    Run::new(TpacfOutput { dd: dd.value, dr: dr.value, rr: rr.value }, stats).with_trace(trace)
}
