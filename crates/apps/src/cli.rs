//! Tiny argument parsing shared by the benchmark binaries (no external
//! dependencies: the offline crate policy applies to binaries too).

use triolet::prelude::*;
use triolet::RunStats;
use triolet::TraceData;

/// Which implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Impl {
    /// Plain sequential loops.
    Seq,
    /// Triolet skeletons.
    Triolet,
    /// Triolet skeletons with tiled node kernels (sgemm/tpacf only).
    Tiled,
    /// Hand-partitioned C+MPI+OpenMP style.
    Lowlevel,
    /// Eden-style skeletons.
    Eden,
}

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Implementation selector (`--impl seq|triolet|lowlevel|eden`).
    pub imp: Impl,
    /// Cluster nodes (`--nodes N`).
    pub nodes: usize,
    /// Threads (or Eden processes) per node (`--threads T`).
    pub threads: usize,
    /// Generator seed (`--seed S`).
    pub seed: u64,
    /// Write a chrome://tracing JSON timeline here (`--trace-out FILE`);
    /// also switches span recording on in the runtime.
    pub trace_out: Option<String>,
    /// App-specific sizes, filled from the remaining `--key value` pairs.
    pub sizes: Vec<(String, usize)>,
}

impl Opts {
    /// Parse `std::env::args`, with app-specific size keys and defaults.
    ///
    /// Exits with a usage message on `--help` or malformed input.
    pub fn parse(app: &str, size_keys: &[(&str, usize)]) -> Opts {
        let mut imp = Impl::Triolet;
        let mut nodes = 4usize;
        let mut threads = 4usize;
        let mut seed = 1u64;
        let mut trace_out = None;
        let mut sizes: Vec<(String, usize)> =
            size_keys.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let usage = || {
                let keys: Vec<String> =
                    size_keys.iter().map(|(k, v)| format!("[--{k} N (default {v})]")).collect();
                eprintln!(
                    "usage: {app} [--impl seq|triolet|tiled|lowlevel|eden] [--nodes N] \
                     [--threads T] [--seed S] [--trace-out FILE] {}",
                    keys.join(" ")
                );
                std::process::exit(2);
            };
            let value = |args: &mut dyn Iterator<Item = String>| -> String {
                args.next().unwrap_or_else(|| {
                    usage();
                    unreachable!()
                })
            };
            match arg.as_str() {
                "--impl" => {
                    imp = match value(&mut args).as_str() {
                        "seq" => Impl::Seq,
                        "triolet" => Impl::Triolet,
                        "tiled" => Impl::Tiled,
                        "lowlevel" => Impl::Lowlevel,
                        "eden" => Impl::Eden,
                        _ => {
                            usage();
                            unreachable!()
                        }
                    }
                }
                "--nodes" => {
                    nodes = value(&mut args).parse().unwrap_or_else(|_| {
                        usage();
                        unreachable!()
                    })
                }
                "--threads" => {
                    threads = value(&mut args).parse().unwrap_or_else(|_| {
                        usage();
                        unreachable!()
                    })
                }
                "--seed" => {
                    seed = value(&mut args).parse().unwrap_or_else(|_| {
                        usage();
                        unreachable!()
                    })
                }
                "--trace-out" => trace_out = Some(value(&mut args)),
                other => {
                    let key = other.strip_prefix("--").unwrap_or_else(|| {
                        usage();
                        unreachable!()
                    });
                    let slot = sizes.iter_mut().find(|(k, _)| k == key);
                    match slot {
                        Some((_, v)) => {
                            *v = value(&mut args).parse().unwrap_or_else(|_| {
                                usage();
                                unreachable!()
                            })
                        }
                        None => {
                            usage();
                            unreachable!()
                        }
                    }
                }
            }
        }
        Opts { imp, nodes, threads, seed, trace_out, sizes }
    }

    /// Look up an app-specific size by key.
    pub fn size(&self, key: &str) -> usize {
        self.sizes
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("size key {key} not registered"))
    }

    /// Build the Triolet runtime for these options. Span recording is on
    /// exactly when `--trace-out` was given.
    pub fn triolet_rt(&self) -> Triolet {
        Triolet::new(
            ClusterConfig::virtual_cluster(self.nodes, self.threads)
                .with_trace(self.trace_out.is_some()),
        )
    }

    /// Write a recorded timeline as chrome://tracing JSON to the
    /// `--trace-out` path (no-op when the flag is absent), and print a
    /// per-phase breakdown.
    pub fn write_trace(&self, trace: &TraceData) {
        let Some(path) = &self.trace_out else { return };
        std::fs::write(path, trace.to_chrome_json()).unwrap_or_else(|e| {
            eprintln!("cannot write trace to {path}: {e}");
            std::process::exit(1);
        });
        let phases: Vec<String> =
            trace.phase_totals().iter().map(|(c, t)| format!("{c}={t:.4}s")).collect();
        println!(
            "trace: {} spans, {} events -> {path} [{}]",
            trace.spans.len(),
            trace.events.len(),
            phases.join(" ")
        );
    }

    /// Print the run header.
    pub fn banner(&self, app: &str) {
        println!(
            "{app}: impl={:?} cluster={}x{} seed={} sizes={:?}",
            self.imp, self.nodes, self.threads, self.seed, self.sizes
        );
    }
}

/// Print a [`RunStats`] in one line.
pub fn print_stats(stats: &RunStats) {
    println!(
        "time={:.4}s comm={:.4}s root={:.4}s span={:.4}s out={}B back={}B msgs={}",
        stats.total_s,
        stats.comm_s,
        stats.root_s,
        stats.compute_span_s(),
        stats.bytes_out,
        stats.bytes_back,
        stats.messages
    );
}

/// Print a sequential-run timing in the same format.
pub fn print_seq_time(seconds: f64) {
    println!("time={seconds:.4}s (sequential)");
}
