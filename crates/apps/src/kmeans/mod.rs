//! k-means clustering: the iterative showcase for persistent distributed
//! collections.
//!
//! Lloyd's algorithm sweeps the full point set once per iteration; the
//! points never change, only the (tiny) centroid table does. With resident
//! `DistVec` segments the points cross the wire exactly once (the scatter)
//! and every subsequent sweep ships only the centroids — the re-broadcast
//! variant ships the whole point set again on every sweep. The ratio of
//! those per-sweep byte counts is the headline number of the residency
//! ablation (see `BENCH_distvec.json`).
//!
//! Each sweep is one `fold_reduce`: the per-point step assigns the point to
//! its nearest centroid and accumulates per-centroid coordinate sums and
//! counts; the merge adds accumulators elementwise. Both variants run the
//! identical step/merge over identical chunk boundaries, so their outputs
//! are bit-identical.

mod seq;
mod triolet_impl;

pub use seq::run_seq;
pub use triolet_impl::{run_rebroadcast, run_resident, KmeansRun};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Problem instance: 2-D points, cluster count, sweep count.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansInput {
    /// The points to cluster.
    pub points: Vec<(f64, f64)>,
    /// Number of centroids.
    pub k: usize,
    /// Number of Lloyd sweeps to run (fixed, for determinism).
    pub iters: usize,
}

impl KmeansInput {
    /// Initial centroids: the first `k` points (the classic Forgy-by-prefix
    /// choice, deterministic for a deterministic generator).
    pub fn initial_centroids(&self) -> Vec<(f64, f64)> {
        self.points.iter().take(self.k).copied().collect()
    }
}

/// Deterministic synthetic instance: `k` well-separated Gaussian-ish blobs
/// on a coarse grid, points round-robined across blobs.
pub fn generate(num_points: usize, k: usize, iters: usize, seed: u64) -> KmeansInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(num_points);
    let side = (k as f64).sqrt().ceil().max(1.0);
    for i in 0..num_points {
        let blob = i % k.max(1);
        let cx = (blob as f64 % side) * 10.0;
        let cy = (blob as f64 / side).floor() * 10.0;
        let jitter = |rng: &mut StdRng| rng.gen_range(-1.5f64..1.5);
        points.push((cx + jitter(&mut rng), cy + jitter(&mut rng)));
    }
    KmeansInput { points, k: k.max(1), iters }
}

/// Squared Euclidean distance.
#[inline]
pub fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

/// Index of the nearest centroid (first wins on ties, so the assignment is
/// deterministic).
#[inline]
pub fn nearest(centroids: &[(f64, f64)], p: (f64, f64)) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &c) in centroids.iter().enumerate() {
        let d = dist2(c, p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// One accumulator slot per centroid: coordinate sums and a count, kept flat
/// (`[sx, sy, n]` per centroid) so the wire format is a plain `Vec<f64>`.
pub const ACC_STRIDE: usize = 3;

/// Fold one point into the accumulator.
#[inline]
pub fn accumulate(centroids: &[(f64, f64)], mut acc: Vec<f64>, p: (f64, f64)) -> Vec<f64> {
    let i = nearest(centroids, p);
    acc[ACC_STRIDE * i] += p.0;
    acc[ACC_STRIDE * i + 1] += p.1;
    acc[ACC_STRIDE * i + 2] += 1.0;
    acc
}

/// Merge two accumulators elementwise.
#[inline]
pub fn merge_acc(mut a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
    a
}

/// Turn an accumulator into the next centroid table (empty clusters keep
/// their previous centroid).
pub fn next_centroids(prev: &[(f64, f64)], acc: &[f64]) -> Vec<(f64, f64)> {
    prev.iter()
        .enumerate()
        .map(|(i, &old)| {
            let n = acc[ACC_STRIDE * i + 2];
            if n > 0.0 {
                (acc[ACC_STRIDE * i] / n, acc[ACC_STRIDE * i + 1] / n)
            } else {
                old
            }
        })
        .collect()
}

/// Validate two centroid tables to an absolute tolerance.
pub fn validate(a: &[(f64, f64)], b: &[(f64, f64)], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(p, q)| (p.0 - q.0).abs() <= tol && (p.1 - q.1).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet::prelude::*;

    fn small() -> KmeansInput {
        generate(512, 4, 5, 42)
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(generate(64, 4, 3, 7), generate(64, 4, 3, 7));
        assert_ne!(generate(64, 4, 3, 7), generate(64, 4, 3, 8));
    }

    #[test]
    fn seq_converges_to_blob_centers() {
        let input = generate(2048, 4, 10, 1);
        let got = run_seq(&input);
        // Each blob center lies on the 10-grid; centroids should sit within
        // the jitter radius of one.
        for &(x, y) in &got {
            let rx = (x / 10.0).round() * 10.0;
            let ry = (y / 10.0).round() * 10.0;
            assert!((x - rx).abs() < 1.0 && (y - ry).abs() < 1.0, "centroid ({x},{y}) off-blob");
        }
    }

    #[test]
    fn resident_matches_seq() {
        let input = small();
        let expect = run_seq(&input);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 2));
        let run = run_resident(&rt, &input);
        assert!(validate(&expect, &run.value.centroids, 1e-9), "resident diverges from seq");
    }

    #[test]
    fn resident_and_rebroadcast_are_bit_identical() {
        let input = small();
        let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 2));
        let a = run_resident(&rt, &input).value;
        let b = run_rebroadcast(&rt, &input).value;
        let bits = |cs: &[(f64, f64)]| -> Vec<(u64, u64)> {
            cs.iter().map(|c| (c.0.to_bits(), c.1.to_bits())).collect()
        };
        assert_eq!(bits(&a.centroids), bits(&b.centroids));
    }

    #[test]
    fn residency_slashes_per_sweep_traffic() {
        let input = generate(4096, 8, 4, 3);
        let rt = Triolet::new(ClusterConfig::virtual_cluster(8, 2));
        let resident = run_resident(&rt, &input).value;
        let rebroadcast = run_rebroadcast(&rt, &input).value;
        assert!(
            rebroadcast.sweep_bytes >= 5 * resident.sweep_bytes.max(1),
            "resident sweeps must move >=5x fewer bytes: resident {} vs rebroadcast {}",
            resident.sweep_bytes,
            rebroadcast.sweep_bytes
        );
    }
}
