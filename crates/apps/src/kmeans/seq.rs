//! Sequential reference implementation: plain Lloyd sweeps over the point
//! vector, same accumulator layout as the distributed variants.

use super::{accumulate, next_centroids, KmeansInput, ACC_STRIDE};

/// Run `input.iters` Lloyd sweeps sequentially; returns the final centroids.
pub fn run_seq(input: &KmeansInput) -> Vec<(f64, f64)> {
    let mut centroids = input.initial_centroids();
    for _ in 0..input.iters {
        let mut acc = vec![0.0f64; ACC_STRIDE * input.k];
        for &p in &input.points {
            acc = accumulate(&centroids, acc, p);
        }
        centroids = next_centroids(&centroids, &acc);
    }
    centroids
}
