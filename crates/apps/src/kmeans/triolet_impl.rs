//! Triolet implementations of the Lloyd sweep, one per input-distribution
//! strategy.
//!
//! * [`run_resident`] — `rt.scatter(points)` once, then every sweep is
//!   `fold_reduce(&points, &centroids, …)` over the resident segments: the
//!   only bytes a sweep moves are the centroid table.
//! * [`run_rebroadcast`] — every sweep is
//!   `fold_reduce(from_vec(points.clone()).par(), &centroids, …)`: the full
//!   point set is sliced and shipped again each time.
//!
//! Both call the same skeleton with the same step/merge; the unified input
//! trait is the only thing that differs. The engine guarantees identical
//! chunk boundaries for both paths, so the centroid trajectories are
//! bit-identical.

use triolet::prelude::*;

use super::{accumulate, merge_acc, next_centroids, KmeansInput, ACC_STRIDE};

/// Result of a distributed k-means run, with the byte accounting the
/// residency ablation reports.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansRun {
    /// Final centroid table.
    pub centroids: Vec<(f64, f64)>,
    /// One-time input distribution cost (the scatter; zero when the input
    /// is re-broadcast instead).
    pub scatter_bytes: u64,
    /// Outbound bytes moved by the sweeps themselves (env + any input).
    pub sweep_bytes: u64,
    /// Number of sweeps those bytes are amortized over.
    pub iters: u64,
}

impl KmeansRun {
    /// Outbound bytes per sweep, the ablation's headline metric.
    pub fn bytes_per_iter(&self) -> f64 {
        self.sweep_bytes as f64 / (self.iters.max(1) as f64)
    }
}

/// One Lloyd sweep over any skeleton input: assign + accumulate + reduce.
fn sweep<In>(rt: &Triolet, input: In, centroids: &Vec<(f64, f64)>, k: usize) -> Run<Vec<f64>>
where
    In: IntoDistInput<Item = (f64, f64)>,
{
    rt.fold_reduce(
        input,
        centroids,
        move || vec![0.0f64; ACC_STRIDE * k],
        |cs: &Vec<(f64, f64)>, acc: Vec<f64>, p: (f64, f64)| accumulate(cs, acc, p),
        merge_acc,
    )
}

/// k-means over a resident `DistVec`: scatter once, sweep over the resident
/// segments.
pub fn run_resident(rt: &Triolet, input: &KmeansInput) -> Run<KmeansRun> {
    let scattered = rt.scatter(input.points.clone());
    let points = scattered.value;
    let scatter_bytes = scattered.stats.bytes_out;

    let mut centroids = input.initial_centroids();
    let mut stats = scattered.stats;
    let mut trace = scattered.trace;
    let mut sweep_bytes = 0u64;
    for _ in 0..input.iters {
        let run = sweep(rt, &points, &centroids, input.k);
        centroids = next_centroids(&centroids, &run.value);
        sweep_bytes += run.stats.bytes_out;
        stats = stats.then(run.stats);
        trace.then(run.trace);
    }
    Run::new(KmeansRun { centroids, scatter_bytes, sweep_bytes, iters: input.iters as u64 }, stats)
        .with_trace(trace)
}

/// k-means re-broadcasting the point set on every sweep (the pre-residency
/// baseline, kept as the ablation's control arm).
pub fn run_rebroadcast(rt: &Triolet, input: &KmeansInput) -> Run<KmeansRun> {
    let mut centroids = input.initial_centroids();
    let mut stats = RunStats::local(0.0);
    let mut trace = TraceData::default();
    let mut sweep_bytes = 0u64;
    for _ in 0..input.iters {
        let run = sweep(rt, from_vec(input.points.clone()).par(), &centroids, input.k);
        centroids = next_centroids(&centroids, &run.value);
        sweep_bytes += run.stats.bytes_out;
        stats = stats.then(run.stats);
        trace.then(run.trace);
    }
    Run::new(
        KmeansRun { centroids, scatter_bytes: 0, sweep_bytes, iters: input.iters as u64 },
        stats,
    )
    .with_trace(trace)
}
