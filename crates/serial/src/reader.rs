//! Cursor over a received payload, used by the unpack side.

use bytes::Bytes;

use crate::error::WireError;
use crate::pod::{pod_from_bytes, Pod};
use crate::WireResult;

/// Consuming cursor over an immutable payload.
///
/// All reads validate against the remaining length, so corrupt or truncated
/// payloads surface as [`WireError`] instead of panics.
#[derive(Debug)]
pub struct WireReader {
    buf: Bytes,
    pos: usize,
}

impl WireReader {
    /// Wrap a received payload.
    pub fn new(buf: Bytes) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole payload has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> WireResult<&[u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume `n` bytes as an owned window sharing the underlying buffer
    /// (refcount bump, no copy). The zero-copy dual of [`take`](Self::take):
    /// the returned `Bytes` stays valid after the reader is dropped.
    pub(crate) fn take_shared(&mut self, n: usize) -> WireResult<Bytes> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        let out = self.buf.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(out)
    }

    /// Read a single byte (enum discriminants).
    pub fn get_u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a length prefix, validating it against the remaining bytes with
    /// the caller-supplied minimum element width so a corrupt prefix cannot
    /// trigger a huge allocation.
    pub fn get_len(&mut self, min_elem_size: usize) -> WireResult<usize> {
        let raw = self.take(8)?;
        let len = u64::from_ne_bytes(raw.try_into().expect("8-byte slice")) as usize;
        let floor = len.saturating_mul(min_elem_size.max(1));
        if min_elem_size > 0 && floor > self.remaining() {
            return Err(WireError::BadLength { len, remaining: self.remaining() });
        }
        Ok(len)
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> WireResult<&[u8]> {
        self.take(n)
    }

    /// Read one pod value.
    pub fn get_pod<T: Pod>(&mut self) -> WireResult<T> {
        let bytes = self.take(std::mem::size_of::<T>())?;
        Ok(pod_from_bytes::<T>(bytes)[0])
    }

    /// Block-copy read of a pod slice written by
    /// [`crate::WireWriter::put_pod_slice`].
    pub fn get_pod_slice<T: Pod>(&mut self) -> WireResult<Vec<T>> {
        let len = self.get_len(std::mem::size_of::<T>())?;
        let nbytes = len * std::mem::size_of::<T>();
        let bytes = self.take(nbytes)?;
        let out = pod_from_bytes(bytes);
        crate::view::record_copied(nbytes);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WireWriter;

    #[test]
    fn reader_tracks_position() {
        let mut w = WireWriter::new();
        w.put_u8(9);
        w.put_pod(2.5f32);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.remaining(), 5);
        assert_eq!(r.get_u8().unwrap(), 9);
        assert_eq!(r.get_pod::<f32>().unwrap(), 2.5);
        assert!(r.is_exhausted());
    }

    #[test]
    fn eof_is_reported_not_panicked() {
        let mut r = WireReader::new(Bytes::from_static(&[1, 2]));
        let err = r.get_pod::<u64>().unwrap_err();
        assert_eq!(err, WireError::UnexpectedEof { needed: 8, remaining: 2 });
    }

    #[test]
    fn corrupt_length_prefix_rejected() {
        let mut w = WireWriter::new();
        w.put_len(usize::MAX / 16); // absurd length, almost no payload
        let mut r = WireReader::new(w.finish());
        match r.get_pod_slice::<u32>() {
            Err(WireError::BadLength { .. }) => {}
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    #[test]
    fn pod_slice_roundtrip() {
        let xs = vec![-1i16, 0, 17, i16::MAX];
        let mut w = WireWriter::new();
        w.put_pod_slice(&xs);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_pod_slice::<i16>().unwrap(), xs);
    }
}
