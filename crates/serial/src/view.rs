//! Zero-copy slice views over received payloads.
//!
//! [`PodView`] is the unpack-side dual of the block-copy pack fast path: a
//! slice of [`Pod`](crate::Pod) elements decoded from the wire either *aliases*
//! the received [`Bytes`] buffer (no copy, an `Arc` bump keeps the buffer
//! alive) or, when the payload window is misaligned for the element type,
//! falls back to the classic copying path. Wire format is identical to
//! `Vec<T>`, so a `PodView<T>` field can replace a `Vec<T>` field in any
//! message type without changing a single byte on the wire.
//!
//! Together with [`PackedPayload`](crate::PackedPayload) (pack once) this
//! moves the serialization story toward *unpack never*: a broadcast
//! environment whose arrays are `PodView`s is decoded once per node into
//! views that all share the one received buffer.

use std::cell::Cell;
use std::ops::Deref;

use bytes::Bytes;

use crate::pod::{pod_from_bytes, Pod};
use crate::reader::WireReader;
use crate::wire::Wire;
use crate::writer::WireWriter;
use crate::WireResult;

// ---------------------------------------------------------------------------
// Unpack copy accounting
// ---------------------------------------------------------------------------

thread_local! {
    static UNPACK_COPIED: Cell<u64> = const { Cell::new(0) };
    static UNPACK_ALIASED: Cell<u64> = const { Cell::new(0) };
}

/// Bytes moved by slice unpacks on this thread since the last reset:
/// `(copied, aliased)`. Copied bytes went through a `memcpy` into a fresh
/// allocation; aliased bytes were answered by a [`PodView`] pointing into the
/// received buffer.
pub fn unpack_counters() -> (u64, u64) {
    (UNPACK_COPIED.get(), UNPACK_ALIASED.get())
}

/// Reset this thread's unpack counters to zero.
pub fn reset_unpack_counters() {
    UNPACK_COPIED.set(0);
    UNPACK_ALIASED.set(0);
}

pub(crate) fn record_copied(n: usize) {
    UNPACK_COPIED.set(UNPACK_COPIED.get() + n as u64);
}

pub(crate) fn record_aliased(n: usize) {
    UNPACK_ALIASED.set(UNPACK_ALIASED.get() + n as u64);
}

// ---------------------------------------------------------------------------
// PodView
// ---------------------------------------------------------------------------

enum Repr<T> {
    /// The view owns its elements (the copying fallback, or a wrapped `Vec`).
    Owned(Vec<T>),
    /// The view aliases a window of a received payload. `owner` keeps the
    /// refcounted buffer alive; `ptr` points at the first element inside it.
    Borrowed { owner: Bytes, ptr: *const T, len: usize },
}

/// A decoded slice that may alias the wire buffer it was unpacked from.
///
/// Dereferences to `&[T]`; wire-compatible with `Vec<T>` (same `pack` bytes,
/// decodable from the same payloads). Obtain one from
/// [`Wire::unpack_view`] or [`WireReader::get_pod_view`]; wrap an owned
/// vector with [`PodView::from_vec`].
pub struct PodView<T> {
    repr: Repr<T>,
}

// SAFETY: a Borrowed view is an immutable slice into an immutable, refcounted
// byte buffer. Sharing or sending it is exactly as safe as sharing `&[T]`
// plus an `Arc` handle, which requires `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for PodView<T> {}
unsafe impl<T: Send + Sync> Sync for PodView<T> {}

impl<T> PodView<T> {
    /// Wrap an owned vector (no aliasing).
    pub fn from_vec(v: Vec<T>) -> Self {
        PodView { repr: Repr::Owned(v) }
    }

    /// Build an aliasing view over `owner`.
    ///
    /// # Safety contract (enforced by the one caller)
    ///
    /// Constructed only by [`WireReader::get_pod_view`], which guarantees:
    /// `T: Pod` (every bit pattern valid, no padding), `owner` holds exactly
    /// `len * size_of::<T>()` bytes, and `owner.as_ptr()` is aligned for `T`.
    pub(crate) fn borrowed(owner: Bytes, len: usize) -> Self {
        let ptr = owner.as_ptr().cast::<T>();
        debug_assert_eq!(owner.len(), len * std::mem::size_of::<T>());
        debug_assert_eq!(ptr as usize % std::mem::align_of::<T>(), 0);
        PodView { repr: Repr::Borrowed { owner, ptr, len } }
    }

    /// The elements as a contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v,
            // SAFETY: see `borrowed` — ptr/len describe initialized, aligned,
            // immutable memory kept alive by `owner` for `self`'s lifetime.
            Repr::Borrowed { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Owned(v) => v.len(),
            Repr::Borrowed { len, .. } => *len,
        }
    }

    /// True if the view holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the view aliases a received buffer rather than owning a
    /// fresh allocation — the zero-copy success case.
    pub fn is_aliased(&self) -> bool {
        matches!(self.repr, Repr::Borrowed { .. })
    }
}

impl<T: Clone> PodView<T> {
    /// Extract an owned vector (copies only if the view was aliased).
    pub fn into_vec(self) -> Vec<T> {
        match self.repr {
            Repr::Owned(v) => v,
            Repr::Borrowed { .. } => self.as_slice().to_vec(),
        }
    }
}

impl<T> Deref for PodView<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> AsRef<[T]> for PodView<T> {
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> Default for PodView<T> {
    fn default() -> Self {
        PodView::from_vec(Vec::new())
    }
}

impl<T: Clone> Clone for PodView<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => PodView::from_vec(v.clone()),
            // Cloning an aliased view bumps the buffer refcount, no copy.
            Repr::Borrowed { owner, ptr, len } => {
                PodView { repr: Repr::Borrowed { owner: owner.clone(), ptr: *ptr, len: *len } }
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for PodView<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PodView")
            .field("aliased", &self.is_aliased())
            .field("elems", &self.as_slice())
            .finish()
    }
}

impl<T: PartialEq> PartialEq for PodView<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq> PartialEq<Vec<T>> for PodView<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T> From<Vec<T>> for PodView<T> {
    fn from(v: Vec<T>) -> Self {
        PodView::from_vec(v)
    }
}

impl<T> FromIterator<T> for PodView<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        PodView::from_vec(iter.into_iter().collect())
    }
}

/// Wire-compatible with `Vec<T>`: packs via `pack_slice`, unpacks via
/// [`Wire::unpack_view`] so [`Pod`] element types alias the reader's buffer.
impl<T: Wire> Wire for PodView<T> {
    fn pack(&self, w: &mut WireWriter) {
        T::pack_slice(self.as_slice(), w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        T::unpack_view(r)
    }
    fn packed_size(&self) -> usize {
        T::slice_packed_size(self.as_slice())
    }
}

// ---------------------------------------------------------------------------
// Reader integration
// ---------------------------------------------------------------------------

impl WireReader {
    /// Decode a pod slice written by
    /// [`WireWriter::put_pod_slice`] as a [`PodView`].
    ///
    /// When the payload window happens to be aligned for `T` (the common case
    /// for whole-payload reads, where the buffer starts at an allocation
    /// boundary), the view aliases the buffer and no element bytes move.
    /// A misaligned window falls back to the copying path, so the result is
    /// always valid — alignment only affects cost, never correctness.
    pub fn get_pod_view<T: Pod>(&mut self) -> WireResult<PodView<T>> {
        let len = self.get_len(std::mem::size_of::<T>())?;
        let nbytes = len * std::mem::size_of::<T>();
        let window = self.take_shared(nbytes)?;
        if window.as_ptr() as usize % std::mem::align_of::<T>() == 0 {
            record_aliased(nbytes);
            Ok(PodView::borrowed(window, len))
        } else {
            record_copied(nbytes);
            Ok(PodView::from_vec(pod_from_bytes(&window)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{packed, unpack_all};

    #[test]
    fn view_aliases_aligned_payload() {
        let v: Vec<f32> = (0..64).map(|i| i as f32 * 1.5).collect();
        let bytes = packed(&v);
        reset_unpack_counters();
        let view: PodView<f32> = unpack_all(bytes).unwrap();
        assert!(view.is_aliased(), "whole-payload f32 slice starts at offset 8, aligned");
        assert_eq!(view.as_slice(), v.as_slice());
        let (copied, aliased) = unpack_counters();
        assert_eq!(copied, 0);
        assert_eq!(aliased, 64 * 4);
    }

    #[test]
    fn misaligned_window_falls_back_to_copy() {
        // One leading byte shifts the slice window to offset 1 + 8 = 9,
        // misaligned for u64.
        let v: Vec<u64> = (0..16).collect();
        let mut w = WireWriter::new();
        w.put_u8(7);
        v.pack(&mut w);
        let bytes = w.finish();
        let mut r = WireReader::new(bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        reset_unpack_counters();
        let view = r.get_pod_view::<u64>().unwrap();
        assert!(!view.is_aliased(), "offset 9 cannot alias u64");
        assert_eq!(view.as_slice(), v.as_slice());
        let (copied, aliased) = unpack_counters();
        assert_eq!(copied, 16 * 8);
        assert_eq!(aliased, 0);
    }

    #[test]
    fn u8_views_always_alias() {
        let v: Vec<u8> = (0..255).collect();
        let mut w = WireWriter::new();
        w.put_u8(0);
        v.pack(&mut w);
        let mut r = WireReader::new(w.finish());
        r.get_u8().unwrap();
        let view = r.get_pod_view::<u8>().unwrap();
        assert!(view.is_aliased(), "align 1 never misaligns");
        assert_eq!(view.as_slice(), v.as_slice());
    }

    #[test]
    fn view_wire_format_matches_vec() {
        let v = vec![1.5f64, -2.25, 1e300];
        let as_vec = packed(&v);
        let as_view = packed(&PodView::from_vec(v.clone()));
        assert_eq!(as_vec, as_view, "PodView and Vec must be wire-identical");
        let back: Vec<f64> = unpack_all(as_view).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn aliased_view_survives_reader_drop() {
        let v: Vec<i32> = (0..32).collect();
        let view: PodView<i32> = unpack_all(packed(&v)).unwrap();
        // The reader and its Bytes handle are gone; the view's own refcount
        // keeps the buffer alive.
        assert_eq!(view[31], 31);
        let cloned = view.clone();
        drop(view);
        assert_eq!(cloned.as_slice(), v.as_slice());
    }

    #[test]
    fn non_pod_elements_take_owned_path() {
        let v = vec![vec![1u32, 2], vec![3]];
        let view: PodView<Vec<u32>> = unpack_all(packed(&v)).unwrap();
        assert!(!view.is_aliased());
        assert_eq!(view.as_slice(), v.as_slice());
    }

    #[test]
    fn into_vec_and_default() {
        let v: Vec<u16> = vec![1, 2, 3];
        let view: PodView<u16> = unpack_all(packed(&v)).unwrap();
        assert_eq!(view.clone().into_vec(), v);
        assert!(PodView::<f32>::default().is_empty());
    }
}
