//! Serialization substrate for triolet-rs.
//!
//! The Triolet paper (§3.4) relies on compiler-generated serialization with a
//! block-copy fast path for pointer-free arrays: "Since the majority of
//! serialized data typically resides in pointer-free arrays, such arrays are
//! serialized using a block copy to minimize serialization time."
//!
//! This crate provides that substrate:
//!
//! * [`Wire`] — the pack/unpack trait every message payload implements. It is
//!   the analogue of the serialization code Triolet's compiler generates from
//!   algebraic data type definitions.
//! * [`Pod`] — a sealed marker for "plain old data" element types whose slices
//!   are serialized with a single `memcpy` (the block-copy fast path).
//! * [`WireWriter`] / [`WireReader`] — byte-buffer cursors built on [`bytes`].
//!
//! Payloads are framed in-process, so the encoding is native-endian and not
//! intended as a persistent or cross-machine format; what matters for the
//! reproduction is that data genuinely crosses simulated node boundaries as
//! bytes, and that the byte counts feed the communication cost model.
//!
//! # Example
//!
//! ```
//! use triolet_serial::{Wire, WireWriter, WireReader};
//!
//! let v: Vec<f32> = vec![1.0, 2.0, 3.0];
//! let mut w = WireWriter::new();
//! v.pack(&mut w);
//! let bytes = w.finish();
//! assert_eq!(bytes.len(), v.packed_size());
//!
//! let mut r = WireReader::new(bytes);
//! let back = Vec::<f32>::unpack(&mut r).unwrap();
//! assert_eq!(back, v);
//! ```

mod error;
mod payload;
mod pod;
mod reader;
mod view;
mod wire;
mod writer;

pub use error::WireError;
pub use payload::PackedPayload;
pub use pod::Pod;
pub use reader::WireReader;
pub use view::{reset_unpack_counters, unpack_counters, PodView};
pub use wire::{packed, unpack_all, Wire};
pub use writer::WireWriter;

/// Convenience result alias for unpacking.
pub type WireResult<T> = Result<T, WireError>;
