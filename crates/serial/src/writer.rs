//! Append-only byte buffer used by the pack side.

use bytes::{BufMut, Bytes, BytesMut};

use crate::pod::{pod_bytes, Pod};

/// Growable byte sink that [`crate::Wire::pack`] implementations write into.
///
/// Lengths are framed as `u64` so framing is identical on 32- and 64-bit
/// hosts; element bytes are written native-endian (the buffer never leaves the
/// process).
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self { buf: BytesMut::new() }
    }

    /// Create a writer with `cap` bytes preallocated. Use this when
    /// [`crate::Wire::packed_size`] is known to avoid growth reallocations —
    /// the analogue of the paper's single-allocation message construction.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: BytesMut::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte (enum discriminants).
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a length prefix.
    pub fn put_len(&mut self, len: usize) {
        self.buf.put_u64_ne(len as u64);
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Block-copy a slice of pod elements: one length prefix, one `memcpy`.
    ///
    /// This is the fast path the paper calls out for pointer-free arrays.
    pub fn put_pod_slice<T: Pod>(&mut self, slice: &[T]) {
        self.put_len(slice.len());
        self.buf.put_slice(pod_bytes(slice));
    }

    /// Append one pod value.
    pub fn put_pod<T: Pod>(&mut self, v: T) {
        self.buf.put_slice(pod_bytes(std::slice::from_ref(&v)));
    }

    /// Freeze the accumulated bytes into an immutable, cheaply clonable
    /// payload ready to cross a node boundary.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_accumulates() {
        let mut w = WireWriter::new();
        assert!(w.is_empty());
        w.put_u8(7);
        w.put_len(3);
        w.put_pod(1.5f64);
        assert_eq!(w.len(), 1 + 8 + 8);
        let b = w.finish();
        assert_eq!(b.len(), 17);
        assert_eq!(b[0], 7);
    }

    #[test]
    fn pod_slice_is_length_prefixed() {
        let mut w = WireWriter::new();
        w.put_pod_slice(&[1u32, 2, 3]);
        let b = w.finish();
        assert_eq!(b.len(), 8 + 3 * 4);
    }

    #[test]
    fn with_capacity_matches_default_output() {
        let mut a = WireWriter::new();
        let mut b = WireWriter::with_capacity(64);
        for w in [&mut a, &mut b] {
            w.put_pod_slice(&[9i64, -9]);
            w.put_u8(1);
        }
        assert_eq!(a.finish(), b.finish());
    }
}
