//! The block-copy fast path marker.

mod sealed {
    pub trait Sealed {}
}

/// Marker for element types whose slices are serialized with a single block
/// copy, mirroring the paper's fast path for "pointer-free arrays".
///
/// # Safety
///
/// Implementors must be `Copy`, contain no padding bytes, no pointers, and be
/// valid for every bit pattern of their size. The trait is sealed: it is only
/// implemented for the primitive numeric types below, which all satisfy these
/// requirements, so downstream code cannot introduce an unsound impl.
pub unsafe trait Pod: Copy + Send + Sync + 'static + sealed::Sealed {}

macro_rules! impl_pod {
    ($($t:ty),* $(,)?) => {
        $(
            impl sealed::Sealed for $t {}
            // SAFETY: primitive numeric types are Copy, padding-free, and
            // valid for all bit patterns.
            unsafe impl Pod for $t {}
        )*
    };
}

impl_pod!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// View a slice of [`Pod`] elements as raw bytes (the block-copy write side).
pub(crate) fn pod_bytes<T: Pod>(slice: &[T]) -> &[u8] {
    // SAFETY: T: Pod guarantees no padding and no invalid representations, so
    // reinterpreting the allocation as bytes is sound. Lifetime and length are
    // carried over from the input slice.
    unsafe { std::slice::from_raw_parts(slice.as_ptr().cast::<u8>(), std::mem::size_of_val(slice)) }
}

/// Copy raw bytes into a freshly allocated `Vec<T>` (the block-copy read side).
///
/// `bytes.len()` must be a multiple of `size_of::<T>()`; callers validate this
/// via their length prefix before calling.
pub(crate) fn pod_from_bytes<T: Pod>(bytes: &[u8]) -> Vec<T> {
    let elem = std::mem::size_of::<T>();
    debug_assert_eq!(bytes.len() % elem, 0);
    let n = bytes.len() / elem;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: the destination has capacity for n elements; every bit pattern
    // is a valid T (Pod), and the source holds exactly n * size_of::<T>()
    // initialized bytes. Alignment is satisfied because we copy byte-wise into
    // a properly aligned Vec allocation.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_bytes_roundtrip_f32() {
        let xs = vec![1.5f32, -2.25, 3.0e9, f32::MIN_POSITIVE];
        let bytes = pod_bytes(&xs);
        assert_eq!(bytes.len(), xs.len() * 4);
        let back: Vec<f32> = pod_from_bytes(bytes);
        assert_eq!(back, xs);
    }

    #[test]
    fn pod_bytes_roundtrip_u64() {
        let xs = vec![0u64, u64::MAX, 42, 1 << 63];
        let back: Vec<u64> = pod_from_bytes(pod_bytes(&xs));
        assert_eq!(back, xs);
    }

    #[test]
    fn pod_bytes_empty() {
        let xs: Vec<i32> = vec![];
        assert!(pod_bytes(&xs).is_empty());
        let back: Vec<i32> = pod_from_bytes(&[]);
        assert!(back.is_empty());
    }
}
