//! Unpacking errors.

use std::fmt;

/// Error produced when a payload cannot be decoded.
///
/// Packing is infallible (it only appends to a growable buffer); unpacking
/// validates framing and can fail on truncated or corrupt input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes: `needed` more bytes were required but only
    /// `remaining` were available.
    UnexpectedEof { needed: usize, remaining: usize },
    /// An enum discriminant byte had no corresponding variant.
    BadTag { ty: &'static str, tag: u8 },
    /// A length prefix exceeded the bytes remaining in the buffer, indicating
    /// corruption rather than mere truncation.
    BadLength { len: usize, remaining: usize },
    /// Bytes were left over after [`crate::unpack_all`] finished decoding.
    TrailingBytes { remaining: usize },
    /// A UTF-8 string payload failed validation.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of payload: needed {needed} bytes, {remaining} remaining")
            }
            WireError::BadTag { ty, tag } => {
                write!(f, "invalid discriminant {tag} while decoding {ty}")
            }
            WireError::BadLength { len, remaining } => {
                write!(f, "length prefix {len} exceeds {remaining} remaining payload bytes")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoding finished")
            }
            WireError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}
