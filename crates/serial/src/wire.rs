//! The [`Wire`] trait: pack/unpack for every type that crosses a simulated
//! node boundary.
//!
//! This is the analogue of the serialization code Triolet's compiler generates
//! from algebraic data type definitions (paper §3.4). Composite types are
//! framed field-by-field; slices of [`Pod`] element types override the slice
//! hooks with a single block copy.

use bytes::Bytes;

use crate::error::WireError;
use crate::pod::Pod;
use crate::reader::WireReader;
use crate::writer::WireWriter;
use crate::WireResult;

/// Types that can be serialized to and from a byte payload.
///
/// The three methods must agree: `packed_size` returns exactly the number of
/// bytes `pack` appends, and `unpack` consumes exactly those bytes.
pub trait Wire: Sized {
    /// Append this value's encoding to `w`.
    fn pack(&self, w: &mut WireWriter);

    /// Decode one value from `r`, consuming exactly the bytes `pack` wrote.
    fn unpack(r: &mut WireReader) -> WireResult<Self>;

    /// Exact number of bytes `pack` will append. Used to preallocate message
    /// buffers and to account traffic in the cluster cost model.
    fn packed_size(&self) -> usize;

    /// Pack a slice of values. The default loops element-wise; [`Pod`] types
    /// override it with a length prefix plus one block copy.
    fn pack_slice(slice: &[Self], w: &mut WireWriter) {
        w.put_len(slice.len());
        for x in slice {
            x.pack(w);
        }
    }

    /// Unpack a vector written by [`Wire::pack_slice`].
    fn unpack_vec(r: &mut WireReader) -> WireResult<Vec<Self>> {
        let len = r.get_len(0)?;
        // Cap the preallocation by the remaining byte count so a corrupt
        // length prefix cannot trigger an enormous allocation; decoding will
        // fail with UnexpectedEof soon after if the prefix was a lie.
        let mut out = Vec::with_capacity(len.min(r.remaining().max(16)));
        for _ in 0..len {
            out.push(Self::unpack(r)?);
        }
        Ok(out)
    }

    /// Exact packed size of a slice as written by [`Wire::pack_slice`].
    fn slice_packed_size(slice: &[Self]) -> usize {
        8 + slice.iter().map(Wire::packed_size).sum::<usize>()
    }

    /// Unpack a slice written by [`Wire::pack_slice`] as a
    /// [`PodView`](crate::PodView). [`Pod`] element types override this to
    /// alias the reader's buffer (zero-copy when aligned); the default wraps
    /// the element-wise [`Wire::unpack_vec`] path.
    fn unpack_view(r: &mut WireReader) -> WireResult<crate::PodView<Self>> {
        Ok(crate::PodView::from_vec(Self::unpack_vec(r)?))
    }
}

/// Pack a value into a frozen payload sized with a single allocation.
pub fn packed<T: Wire>(value: &T) -> Bytes {
    let mut w = WireWriter::with_capacity(value.packed_size());
    value.pack(&mut w);
    w.finish()
}

/// Unpack a payload that must contain exactly one `T` and nothing else.
pub fn unpack_all<T: Wire>(bytes: Bytes) -> WireResult<T> {
    let mut r = WireReader::new(bytes);
    let value = T::unpack(&mut r)?;
    if !r.is_exhausted() {
        return Err(WireError::TrailingBytes { remaining: r.remaining() });
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! impl_wire_pod {
    ($($t:ty),* $(,)?) => {
        $(
            impl Wire for $t {
                fn pack(&self, w: &mut WireWriter) {
                    w.put_pod(*self);
                }
                fn unpack(r: &mut WireReader) -> WireResult<Self> {
                    r.get_pod()
                }
                fn packed_size(&self) -> usize {
                    std::mem::size_of::<$t>()
                }
                fn pack_slice(slice: &[Self], w: &mut WireWriter) {
                    w.put_pod_slice(slice);
                }
                fn unpack_vec(r: &mut WireReader) -> WireResult<Vec<Self>> {
                    r.get_pod_slice()
                }
                fn slice_packed_size(slice: &[Self]) -> usize {
                    8 + std::mem::size_of_val(slice)
                }
                fn unpack_view(r: &mut WireReader) -> WireResult<crate::PodView<Self>> {
                    r.get_pod_view()
                }
            }
        )*
    };
}

impl_wire_pod!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl Wire for usize {
    /// `usize` is framed as `u64` so payloads decode identically on 32- and
    /// 64-bit hosts.
    fn pack(&self, w: &mut WireWriter) {
        w.put_pod(*self as u64);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(r.get_pod::<u64>()? as usize)
    }
    fn packed_size(&self) -> usize {
        8
    }
}

impl Wire for bool {
    fn pack(&self, w: &mut WireWriter) {
        w.put_u8(*self as u8);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { ty: "bool", tag }),
        }
    }
    fn packed_size(&self) -> usize {
        1
    }
}

impl Wire for () {
    fn pack(&self, _w: &mut WireWriter) {}
    fn unpack(_r: &mut WireReader) -> WireResult<Self> {
        Ok(())
    }
    fn packed_size(&self) -> usize {
        0
    }
}

impl Wire for String {
    fn pack(&self, w: &mut WireWriter) {
        w.put_len(self.len());
        w.put_bytes(self.as_bytes());
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        let len = r.get_len(1)?;
        let bytes = r.get_bytes(len)?;
        // Validate on the borrowed slice, then copy once — `to_vec` followed
        // by `from_utf8` would allocate and traverse twice.
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
        Ok(s.to_owned())
    }
    fn packed_size(&self) -> usize {
        8 + self.len()
    }
}

// ---------------------------------------------------------------------------
// Composite implementations
// ---------------------------------------------------------------------------

impl<T: Wire> Wire for Vec<T> {
    fn pack(&self, w: &mut WireWriter) {
        T::pack_slice(self, w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        T::unpack_vec(r)
    }
    fn packed_size(&self) -> usize {
        T::slice_packed_size(self)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn pack(&self, w: &mut WireWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.pack(w);
            }
        }
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unpack(r)?)),
            tag => Err(WireError::BadTag { ty: "Option", tag }),
        }
    }
    fn packed_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::packed_size)
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn pack(&self, w: &mut WireWriter) {
                $(self.$idx.pack(w);)+
            }
            fn unpack(r: &mut WireReader) -> WireResult<Self> {
                Ok(($($name::unpack(r)?,)+))
            }
            fn packed_size(&self) -> usize {
                0 $(+ self.$idx.packed_size())+
            }
        }
    };
}

impl_wire_tuple!(A: 0);
impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn pack(&self, w: &mut WireWriter) {
        for x in self {
            x.pack(w);
        }
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        // Decode into a Vec first to keep the code simple for non-Copy T.
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::unpack(r)?);
        }
        Ok(v.try_into().map_err(|_| ()).expect("length N by construction"))
    }
    fn packed_size(&self) -> usize {
        self.iter().map(Wire::packed_size).sum()
    }
}

/// Block-copy helper exposed for data-source types that want to state the
/// intent explicitly at the call site.
pub(crate) fn _assert_pod_is_wire<T: Pod + Wire>() {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = packed(&v);
        assert_eq!(bytes.len(), v.packed_size(), "packed_size must match pack output");
        let back = unpack_all::<T>(bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_primitives() {
        roundtrip(0u8);
        roundtrip(-5i8);
        roundtrip(u16::MAX);
        roundtrip(i16::MIN);
        roundtrip(123456789u32);
        roundtrip(-123456789i32);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(3.5f32);
        roundtrip(-2.25e-10f64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
    }

    #[test]
    fn roundtrip_strings() {
        roundtrip(String::new());
        roundtrip("héllo wörld".to_string());
    }

    #[test]
    fn roundtrip_composites() {
        roundtrip(vec![1.0f32, 2.0, 3.0]);
        roundtrip(Vec::<f64>::new());
        roundtrip(vec![vec![1u32, 2], vec![], vec![3]]);
        roundtrip(Some(vec![1i64, 2]));
        roundtrip(Option::<u8>::None);
        roundtrip((1u32, 2.5f64, vec![3u8]));
        roundtrip([1.0f32, 2.0, 3.0]);
        roundtrip((1usize, (2usize, true), "x".to_string()));
    }

    #[test]
    fn pod_vec_uses_block_layout() {
        // length prefix (8) + raw element bytes: no per-element framing.
        let v = vec![1u16, 2, 3];
        assert_eq!(v.packed_size(), 8 + 6);
        // Nested (non-pod path) composite: outer prefix + per-element sizes.
        let vv = vec![vec![1u16], vec![2, 3]];
        assert_eq!(vv.packed_size(), 8 + (8 + 2) + (8 + 4));
    }

    #[test]
    fn bad_bool_tag() {
        let mut w = WireWriter::new();
        w.put_u8(2);
        let err = unpack_all::<bool>(w.finish()).unwrap_err();
        assert_eq!(err, WireError::BadTag { ty: "bool", tag: 2 });
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        1u32.pack(&mut w);
        w.put_u8(0xFF);
        let err = unpack_all::<u32>(w.finish()).unwrap_err();
        assert_eq!(err, WireError::TrailingBytes { remaining: 1 });
    }
}
