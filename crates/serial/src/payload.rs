//! Pack-once payload caching.
//!
//! A [`PackedPayload`] is a value serialized exactly once into a frozen,
//! reference-counted buffer. Cloning the payload (or taking [`bytes`]) is an
//! `Arc` bump, never a re-serialization, so one buffer can back every
//! per-destination send of a broadcast *and* every retransmission of a
//! reliable send. This is the substrate for the engine's broadcast
//! environment and the comm layer's collective hot path: the paper's runtime
//! serializes a closure's captured environment once and reuses the message
//! body for every destination rank (§3.4); re-packing per node would charge
//! serialization time `N` times for one logical broadcast.
//!
//! [`bytes`]: PackedPayload::bytes

use bytes::Bytes;

use crate::wire::{packed, unpack_all, Wire};
use crate::WireResult;

/// A value packed once into shared bytes.
///
/// ```
/// use triolet_serial::PackedPayload;
///
/// let p = PackedPayload::pack(&vec![1u32, 2, 3]);
/// // Every clone/bytes() shares the same allocation.
/// let a = p.bytes();
/// let b = p.bytes();
/// assert_eq!(a, b);
/// let back: Vec<u32> = p.unpack().unwrap();
/// assert_eq!(back, vec![1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedPayload {
    bytes: Bytes,
}

impl PackedPayload {
    /// Serialize `value` once. This is the only place bytes are produced;
    /// everything downstream shares the buffer.
    pub fn pack<T: Wire>(value: &T) -> Self {
        PackedPayload { bytes: packed(value) }
    }

    /// Wrap an already-serialized buffer (e.g. one received off the wire and
    /// forwarded verbatim down a broadcast tree).
    pub fn from_bytes(bytes: Bytes) -> Self {
        PackedPayload { bytes }
    }

    /// A zero-byte payload (the unit environment).
    pub fn empty() -> Self {
        PackedPayload { bytes: Bytes::new() }
    }

    /// The shared serialized bytes (cheap: bumps the refcount).
    pub fn bytes(&self) -> Bytes {
        self.bytes.clone()
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Is this the zero-byte payload?
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Decode the payload as a `T`. The payload must contain exactly one
    /// value (trailing bytes are an error, as in [`unpack_all`]).
    pub fn unpack<T: Wire>(&self) -> WireResult<T> {
        unpack_all(self.bytes.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_once_share_many() {
        let v: Vec<u64> = (0..100).collect();
        let p = PackedPayload::pack(&v);
        assert_eq!(p.len(), v.packed_size());
        // Many consumers, one buffer: the underlying pointers are equal.
        let a = p.bytes();
        let b = p.bytes();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
        let back: Vec<u64> = p.unpack().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn empty_payload_decodes_unit() {
        let p = PackedPayload::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        p.unpack::<()>().unwrap();
    }

    #[test]
    fn from_bytes_roundtrips() {
        let p = PackedPayload::pack(&42u32);
        let q = PackedPayload::from_bytes(p.bytes());
        assert_eq!(q.unpack::<u32>().unwrap(), 42);
    }
}
