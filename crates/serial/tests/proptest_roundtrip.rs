//! Property-based tests: every Wire encoding must roundtrip exactly, and
//! `packed_size` must always equal the number of bytes actually written.

use proptest::prelude::*;
use triolet_serial::{packed, unpack_all, Wire, WireReader, WireWriter};

fn check_roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = packed(v);
    prop_assert_eq!(bytes.len(), v.packed_size());
    let back = unpack_all::<T>(bytes).map_err(|e| TestCaseError::fail(e.to_string()))?;
    prop_assert_eq!(&back, v);
    Ok(())
}

proptest! {
    #[test]
    fn roundtrip_f32_vec(v in proptest::collection::vec(any::<f32>().prop_filter("finite", |x| x.is_finite()), 0..256)) {
        check_roundtrip(&v)?;
    }

    #[test]
    fn roundtrip_f64_vec(v in proptest::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..256)) {
        check_roundtrip(&v)?;
    }

    #[test]
    fn roundtrip_u64_vec(v in proptest::collection::vec(any::<u64>(), 0..256)) {
        check_roundtrip(&v)?;
    }

    #[test]
    fn roundtrip_nested_vec(v in proptest::collection::vec(proptest::collection::vec(any::<i32>(), 0..16), 0..32)) {
        check_roundtrip(&v)?;
    }

    #[test]
    fn roundtrip_tuple(a in any::<u32>(), b in any::<i64>(), s in ".{0,32}") {
        check_roundtrip(&(a, b, s))?;
    }

    #[test]
    fn roundtrip_option(v in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64))) {
        check_roundtrip(&v)?;
    }

    #[test]
    fn concatenated_values_decode_in_order(a in any::<u32>(), b in proptest::collection::vec(any::<f32>().prop_filter("finite", |x| x.is_finite()), 0..32), c in any::<bool>()) {
        let mut w = WireWriter::new();
        a.pack(&mut w);
        b.pack(&mut w);
        c.pack(&mut w);
        let mut r = WireReader::new(w.finish());
        prop_assert_eq!(u32::unpack(&mut r).unwrap(), a);
        prop_assert_eq!(Vec::<f32>::unpack(&mut r).unwrap(), b);
        prop_assert_eq!(bool::unpack(&mut r).unwrap(), c);
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_payload_never_panics(v in proptest::collection::vec(any::<u64>(), 1..64), cut in 0usize..64) {
        let bytes = packed(&v);
        let cut = cut.min(bytes.len().saturating_sub(1));
        let truncated = bytes.slice(0..cut);
        // Must return an error, not panic.
        prop_assert!(unpack_all::<Vec<u64>>(truncated).is_err());
    }
}
