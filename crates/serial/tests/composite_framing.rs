//! Framing tests for deep composite types: the exact payload shapes the
//! engine ships (sliced arrays, part descriptors, histogram partials, block
//! tuples) must roundtrip and size-account exactly.

use triolet_serial::{packed, unpack_all, Wire, WireReader, WireWriter};

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
    let bytes = packed(&v);
    assert_eq!(bytes.len(), v.packed_size(), "packed_size mismatch for {v:?}");
    assert_eq!(unpack_all::<T>(bytes).unwrap(), v);
}

#[test]
fn engine_payload_shapes() {
    // (part descriptor, data window): a node's sliced input.
    roundtrip((7usize, 12usize, vec![1.5f32; 12]));
    // (block coords, block data): a build_array2 node result.
    roundtrip(((2usize, 3usize, 4usize, 5usize), vec![0.25f64; 20]));
    // Histogram partial with overflow counter semantics (bins + scalar).
    roundtrip((vec![0u64, 5, 9], 2u64));
    // A gather of variable-length fragments.
    roundtrip(vec![(0usize, vec![1u8, 2]), (5usize, vec![]), (9usize, vec![3])]);
}

#[test]
fn deep_nesting_roundtrips() {
    let deep: Vec<Vec<Vec<(u32, f64)>>> = (0..4)
        .map(|i| (0..i).map(|j| (0..j).map(|k| (k as u32, k as f64 * 0.5)).collect()).collect())
        .collect();
    roundtrip(deep);
}

#[test]
fn six_tuple_and_fixed_arrays() {
    roundtrip((1u8, 2u16, 3u32, 4u64, 5.0f32, 6.0f64));
    roundtrip([[1u32, 2], [3, 4], [5, 6]]);
    roundtrip([(1u8, vec![2u16]), (3u8, vec![4u16, 5])]);
}

#[test]
fn interleaved_heterogeneous_stream() {
    // A writer that frames a whole conversation; the reader must consume it
    // field-exactly (what run_raw result streams look like).
    let mut w = WireWriter::new();
    42u32.pack(&mut w);
    vec![1.0f32, 2.0].pack(&mut w);
    "fragment".to_string().pack(&mut w);
    (vec![9u64], Some(3u8)).pack(&mut w);
    false.pack(&mut w);
    let mut r = WireReader::new(w.finish());
    assert_eq!(u32::unpack(&mut r).unwrap(), 42);
    assert_eq!(Vec::<f32>::unpack(&mut r).unwrap(), vec![1.0, 2.0]);
    assert_eq!(String::unpack(&mut r).unwrap(), "fragment");
    assert_eq!(<(Vec<u64>, Option<u8>)>::unpack(&mut r).unwrap(), (vec![9], Some(3)));
    assert!(!bool::unpack(&mut r).unwrap());
    assert!(r.is_exhausted());
}

#[test]
fn large_pod_block_copy_is_exact() {
    // A multi-megabyte pod array: the block-copy fast path must be
    // byte-exact and size-exact.
    let big: Vec<f64> = (0..500_000).map(|i| i as f64 * 0.001).collect();
    let bytes = packed(&big);
    assert_eq!(bytes.len(), 8 + 500_000 * 8);
    let back = unpack_all::<Vec<f64>>(bytes).unwrap();
    assert_eq!(back.len(), big.len());
    assert_eq!(back[499_999], big[499_999]);
}

#[test]
fn writer_capacity_hint_is_exact_for_composites() {
    let value = (vec![vec![1u32; 7]; 3], "tail".to_string(), Some(2.5f64));
    let mut w = WireWriter::with_capacity(value.packed_size());
    value.pack(&mut w);
    assert_eq!(w.len(), value.packed_size());
}
