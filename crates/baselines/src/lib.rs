//! Comparator runtimes for the Triolet evaluation (paper §4).
//!
//! The paper measures each benchmark three ways; this crate provides the two
//! non-Triolet programming models:
//!
//! * [`lowlevel`] — the **C+MPI+OpenMP analogue**: explicit, hand-written
//!   partitioning and node kernels over raw slices, driven directly by the
//!   cluster and pool substrates with no skeleton or iterator machinery.
//!   "As a highly efficient implementation layer, [it] serves as a useful
//!   reference point against which to evaluate the scalability and parallel
//!   overhead of the high-level languages."
//! * [`eden`] — the **Eden analogue**: a distributed functional skeleton
//!   runtime with Eden's documented cost structure — process-per-core flat
//!   parallelism with no shared heap (even co-located processes exchange
//!   serialized messages), full-copy data distribution unless the programmer
//!   chunks by hand, and a message-buffer size limit (the cause of Eden's
//!   sgemm failure at ≥2 nodes, §4.3).
//! * [`list`] — Haskell-style cons lists and boxed-iterator pipelines, used
//!   by Eden-style kernels to reproduce the per-element overhead of list
//!   manipulation and unoptimized steppers ("using steppers was roughly a
//!   factor of two to five slower than imperative loop nests", §3.1).

pub mod eden;
pub mod list;
pub mod lowlevel;

pub use eden::{EdenError, EdenRt};
pub use list::{boxed_pipeline, List};
pub use lowlevel::LowLevelRt;
