//! Haskell-style lists and boxed pipelines: the cost structure of Eden code.
//!
//! The paper attributes the naive Eden version's order-of-magnitude
//! sequential slowdown "chiefly [to] the overhead of list manipulation"
//! (§1), and even the optimized version pays a 2–5x penalty when nested
//! traversals go through unoptimized steppers (§3.1). This module provides
//! honest Rust analogues of both cost sources:
//!
//! * [`List`] — an immutable cons list with one heap allocation per cell.
//! * [`boxed_pipeline`] — dynamic-dispatch iterator composition: each
//!   combinator layer is a `Box<dyn Iterator>`, so element flow pays a
//!   virtual call per stage per element (what a stepper looks like when the
//!   optimizer cannot see through it).

/// An immutable singly linked list with per-cell heap allocation: the data
/// representation idiomatic Haskell code manipulates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct List<T> {
    head: Option<Box<Node<T>>>,
}

#[derive(Debug, Clone, PartialEq)]
struct Node<T> {
    value: T,
    next: List<T>,
}

impl<T> List<T> {
    /// The empty list.
    pub fn nil() -> Self {
        List { head: None }
    }

    /// Prepend an element (the cons cell: one heap allocation).
    pub fn cons(value: T, rest: List<T>) -> Self {
        List { head: Some(Box::new(Node { value, next: rest })) }
    }

    /// Build from a slice (allocates one cell per element).
    pub fn from_slice(xs: &[T]) -> Self
    where
        T: Clone,
    {
        let mut out = List::nil();
        for x in xs.iter().rev() {
            out = List::cons(x.clone(), out);
        }
        out
    }

    /// Number of elements (walks the list).
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// True for the empty list.
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// Map into a new list (allocates a whole new spine).
    pub fn map<U>(&self, f: impl Fn(&T) -> U) -> List<U> {
        let mapped: Vec<U> = self.iter().map(f).collect();
        let mut out = List::nil();
        for x in mapped.into_iter().rev() {
            out = List::cons(x, out);
        }
        out
    }

    /// Left fold.
    pub fn foldl<B>(&self, init: B, f: impl Fn(B, &T) -> B) -> B {
        let mut acc = init;
        for x in self.iter() {
            acc = f(acc, x);
        }
        acc
    }

    /// Filter into a new list.
    pub fn filter(&self, p: impl Fn(&T) -> bool) -> List<T>
    where
        T: Clone,
    {
        let kept: Vec<T> = self.iter().filter(|x| p(x)).cloned().collect();
        let mut out = List::nil();
        for x in kept.into_iter().rev() {
            out = List::cons(x, out);
        }
        out
    }

    /// Iterate by reference.
    pub fn iter(&self) -> ListIter<'_, T> {
        ListIter { cur: self }
    }
}

/// Borrowing iterator over a [`List`].
pub struct ListIter<'a, T> {
    cur: &'a List<T>,
}

impl<'a, T> Iterator for ListIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        let node = self.cur.head.as_deref()?;
        self.cur = &node.next;
        Some(&node.value)
    }
}

impl<T> Drop for List<T> {
    fn drop(&mut self) {
        // Iterative drop: the default recursive drop overflows the stack on
        // long lists. Detach each node's tail before the node drops.
        let mut cur = self.head.take();
        while let Some(mut node) = cur {
            cur = node.next.head.take();
        }
    }
}

/// Erase an iterator behind dynamic dispatch: one `Box<dyn Iterator>` layer.
///
/// Eden-style kernels build their loop pipelines by stacking these, paying a
/// virtual call per element per stage — the honest Rust rendition of a
/// stepper the compiler failed to fuse.
pub fn boxed_pipeline<'a, T: 'a>(
    it: impl Iterator<Item = T> + 'a,
) -> Box<dyn Iterator<Item = T> + 'a> {
    Box::new(it)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_roundtrip_and_len() {
        let l = List::from_slice(&[1, 2, 3, 4]);
        assert_eq!(l.len(), 4);
        assert!(!l.is_empty());
        assert_eq!(l.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn list_map_filter_fold() {
        let l = List::from_slice(&[1i64, 2, 3, 4, 5]);
        let doubled = l.map(|x| x * 2);
        assert_eq!(doubled.iter().copied().collect::<Vec<_>>(), vec![2, 4, 6, 8, 10]);
        let evens = l.filter(|x| x % 2 == 0);
        assert_eq!(evens.len(), 2);
        assert_eq!(l.foldl(0i64, |a, x| a + x), 15);
    }

    #[test]
    fn empty_list() {
        let l = List::<u8>::nil();
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert_eq!(l.iter().count(), 0);
    }

    #[test]
    fn long_list_drops_without_overflow() {
        let l = List::from_slice(&vec![0u8; 2_000_000]);
        assert_eq!(l.len(), 2_000_000);
        drop(l);
    }

    #[test]
    fn boxed_pipeline_composes() {
        let v: Vec<i32> = (0..10).collect();
        let stage1 = boxed_pipeline(v.into_iter().map(|x| x + 1));
        let stage2 = boxed_pipeline(stage1.filter(|x| x % 2 == 0));
        let stage3 = boxed_pipeline(stage2.map(|x| x * 10));
        assert_eq!(stage3.collect::<Vec<_>>(), vec![20, 40, 60, 80, 100]);
    }
}
