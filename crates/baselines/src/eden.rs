//! The Eden analogue: distributed functional skeletons with Eden's costs.
//!
//! Eden (Loogen et al., JFP 2005) is the distributed Haskell the paper
//! compares against (§4.1). Its documented cost structure, reproduced here:
//!
//! * **No shared heap.** Every process — even two on the same node —
//!   exchanges serialized messages. `EdenRt` charges genuine serialization
//!   per process task plus a modeled intra-node transfer
//!   ([`EdenRt::local_cost`]).
//! * **Full-copy distribution.** Standard Eden "sends each distributed task
//!   a copy of all objects that are referenced by its input"; there is no
//!   slicing. [`EdenRt::map_reduce_full_copy`] models that default;
//!   [`EdenRt::map_reduce`] models the optimized style the paper's Eden
//!   versions use, where the programmer chunks data by hand.
//! * **Bounded message buffers.** Inter-node messages beyond
//!   [`EdenRt::max_msg_bytes`] fail — the reason "the Eden code fails at 2
//!   nodes because the array data is too large for Eden's message-passing
//!   runtime to buffer" (§4.3).
//! * **Stragglers.** "While Eden scales fairly well, tasks occasionally run
//!   significantly slower than normal. With more nodes, it is more likely
//!   that a task will be delayed" (§4.2). Modeled deterministically as a
//!   `STRAGGLER_PER_NODE` fractional delay on the critical node, growing
//!   with node count.
//!
//! The per-element costs of Eden *kernels* (boxed list/stepper processing)
//! live in [`crate::list`] and in the per-application Eden kernels.

use std::time::Instant;

use triolet::RunStats;
use triolet_cluster::{Cluster, ClusterConfig, CostModel, NodeCtx, RawTask};
use triolet_serial::{packed, Wire};

/// Default per-message buffer limit (bytes). Eden streams list elements as
/// individual messages, so the limit applies to each task payload (and to
/// whole structures in full-copy mode). Chosen so sgemm-scale row-band
/// messages exceed it while every per-dataset/per-chunk payload in the
/// benchmark suite fits.
pub const DEFAULT_MSG_LIMIT: usize = 64 << 10;

/// Fractional straggler delay per cluster node (see module docs).
pub const STRAGGLER_PER_NODE: f64 = 0.03;

/// Errors surfaced by the Eden runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdenError {
    /// An inter-node message exceeded the runtime's buffer capacity.
    MessageTooLarge {
        /// Size of the offending message.
        bytes: usize,
        /// The configured buffer limit.
        limit: usize,
    },
}

impl std::fmt::Display for EdenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdenError::MessageTooLarge { bytes, limit } => write!(
                f,
                "Eden message-passing runtime cannot buffer {bytes}-byte message (limit {limit})"
            ),
        }
    }
}

impl std::error::Error for EdenError {}

/// The Eden-style distributed skeleton runtime.
pub struct EdenRt {
    cluster: Cluster,
    /// Intra-node (process-to-process) transfer cost: memory-speed pipe,
    /// but every byte still crosses it (no shared heap).
    local_cost: CostModel,
    /// Inter-node message buffer limit.
    max_msg_bytes: usize,
}

impl EdenRt {
    /// Bring up an Eden runtime: `nodes` machines x `procs_per_node`
    /// single-threaded processes.
    pub fn new(nodes: usize, procs_per_node: usize) -> Self {
        let config = ClusterConfig::virtual_cluster(nodes, procs_per_node);
        EdenRt {
            cluster: Cluster::new(config),
            local_cost: CostModel::flat(5e-6, 4.0e9),
            max_msg_bytes: DEFAULT_MSG_LIMIT,
        }
    }

    /// Override the inter-node buffer limit.
    pub fn with_msg_limit(mut self, bytes: usize) -> Self {
        self.max_msg_bytes = bytes;
        self
    }

    /// Nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.cluster.nodes()
    }

    /// Processes per node.
    pub fn procs_per_node(&self) -> usize {
        self.cluster.threads_per_node()
    }

    fn check_inter_node(&self, bytes: usize) -> Result<(), EdenError> {
        if self.nodes() > 1 && bytes > self.max_msg_bytes {
            return Err(EdenError::MessageTooLarge { bytes, limit: self.max_msg_bytes });
        }
        Ok(())
    }

    fn apply_straggler(&self, mut stats: RunStats) -> RunStats {
        let delay = STRAGGLER_PER_NODE * self.nodes() as f64 * stats.compute_span_s();
        stats.total_s += delay;
        stats
    }

    /// The optimized-Eden skeleton: the programmer has already chunked the
    /// data into one input per task; tasks are distributed across nodes and
    /// processes, each task's input is serialized to its process, results
    /// merge leader-side then root-side.
    pub fn map_reduce<T, R>(
        &self,
        inputs: Vec<T>,
        work: impl Fn(T) -> R + Send + Sync,
        merge: impl Fn(R, R) -> R + Send + Sync,
        empty: impl Fn() -> R + Send + Sync,
    ) -> Result<(R, RunStats), EdenError>
    where
        T: Wire + Send,
        R: Wire + Send,
    {
        // Contiguous split of tasks across nodes (Eden's two-level variant).
        let n_nodes = self.nodes().min(inputs.len()).max(1);
        let ranges = triolet_domain::chunk_ranges(inputs.len(), n_nodes);
        let mut groups: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
        let mut it = inputs.into_iter();
        for &(_, len) in &ranges {
            groups.push(it.by_ref().take(len).collect());
        }
        // Buffer-limit check per task message (Eden streams list elements
        // as individual messages to the consuming process).
        for g in &groups {
            for t in g {
                self.check_inter_node(t.packed_size())?;
            }
        }
        let local_cost = self.local_cost;
        let work = &work;
        let merge = &merge;
        let empty = &empty;
        let tasks: Vec<RawTask<'_, R>> = groups
            .into_iter()
            .map(|group| {
                let wire_bytes = if self.nodes() > 1 { group.packed_size() } else { 0 };
                RawTask {
                    wire_bytes,
                    pack_s: 0.0,
                    resident: None,
                    work: Box::new(move |ctx: &NodeCtx<'_>| {
                        // Leader -> process messages: every task input is
                        // serialized to its worker process (no shared heap).
                        let input_bytes: usize = group.iter().map(Wire::packed_size).sum();
                        let n_results = group.len().min(ctx.threads()).max(1);
                        let result = ctx
                            .map_reduce_chunks(
                                group,
                                |item: &T| {
                                    // Genuine per-process serialization.
                                    let item: T = triolet_serial::unpack_all(packed(item))
                                        .expect("process message roundtrip");
                                    work(item)
                                },
                                merge,
                            )
                            .unwrap_or_else(empty);
                        // Modeled intra-node transfers: inputs out to the
                        // processes, one result back per process.
                        let result_bytes = result.packed_size();
                        let mut t = group_transfer_time(local_cost, input_bytes, 1);
                        t += group_transfer_time(local_cost, result_bytes, n_results);
                        ctx.charge_seconds(t);
                        result
                    }),
                }
            })
            .collect();
        let out = self.cluster.run_raw(tasks);
        let t0 = Instant::now();
        let value = out.results.into_iter().reduce(merge).unwrap_or_else(empty);
        let root_s = t0.elapsed().as_secs_f64();
        Ok((value, self.apply_straggler(RunStats::from_dist(out.timing, root_s))))
    }

    /// The naive-Eden skeleton: every task receives a copy of the *entire*
    /// referenced data structure (no slicing). `work(data, task_index)`
    /// computes task `task_index`'s share.
    pub fn map_reduce_full_copy<D, R>(
        &self,
        data: D,
        n_tasks: usize,
        work: impl Fn(&D, usize) -> R + Send + Sync,
        merge: impl Fn(R, R) -> R + Send + Sync,
        empty: impl Fn() -> R + Send + Sync,
    ) -> Result<(R, RunStats), EdenError>
    where
        D: Wire + Send + Sync + Clone,
        R: Wire + Send,
    {
        let data_bytes = data.packed_size();
        self.check_inter_node(data_bytes)?;
        let n_nodes = self.nodes().min(n_tasks).max(1);
        let ranges = triolet_domain::chunk_ranges(n_tasks, n_nodes);
        let local_cost = self.local_cost;
        let work = &work;
        let merge = &merge;
        let empty = &empty;
        let tasks: Vec<RawTask<'_, R>> = ranges
            .into_iter()
            .map(|(start, len)| {
                let data = data.clone();
                let wire_bytes = if self.nodes() > 1 { data_bytes } else { 0 };
                RawTask {
                    wire_bytes,
                    pack_s: 0.0,
                    resident: None,
                    work: Box::new(move |ctx: &NodeCtx<'_>| {
                        // Each process receives its own full copy of `data`.
                        let data: D = ctx.sequential(|| {
                            triolet_serial::unpack_all(packed(&data)).expect("full-copy roundtrip")
                        });
                        let procs = len.min(ctx.threads()).max(1);
                        // The remaining procs-1 copies are modeled (one
                        // genuine roundtrip above measures the CPU cost).
                        ctx.charge_seconds(group_transfer_time(
                            local_cost,
                            data_bytes,
                            procs.saturating_sub(1),
                        ));
                        let task_ids: Vec<usize> = (start..start + len).collect();
                        let result = ctx
                            .map_reduce_chunks(task_ids, |&tid: &usize| work(&data, tid), merge)
                            .unwrap_or_else(empty);
                        let result_bytes = result.packed_size();
                        ctx.charge_seconds(group_transfer_time(local_cost, result_bytes, procs));
                        result
                    }),
                }
            })
            .collect();
        let out = self.cluster.run_raw(tasks);
        let t0 = Instant::now();
        let value = out.results.into_iter().reduce(merge).unwrap_or_else(empty);
        let root_s = t0.elapsed().as_secs_f64();
        Ok((value, self.apply_straggler(RunStats::from_dist(out.timing, root_s))))
    }
}

/// Modeled time for `n` messages totalling / each of `bytes` (one latency per
/// message, bandwidth on the bytes).
fn group_transfer_time(cost: CostModel, bytes: usize, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    n as f64 * cost.latency_s + (n * bytes) as f64 / cost.bandwidth_bps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eden_map_reduce_matches_sequential() {
        let rt = EdenRt::new(4, 4);
        let inputs: Vec<Vec<u64>> = (0..16).map(|i| vec![i as u64; 100]).collect();
        let expect: u64 = inputs.iter().flatten().sum();
        let (total, stats) = rt
            .map_reduce(inputs, |chunk| chunk.iter().sum::<u64>(), |a, b| a + b, || 0u64)
            .unwrap();
        assert_eq!(total, expect);
        assert!(stats.bytes_out > 0);
    }

    #[test]
    fn eden_full_copy_ships_everything_per_node() {
        let rt = EdenRt::new(4, 2);
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let data_bytes = data.packed_size() as u64;
        let (total, stats) = rt
            .map_reduce_full_copy(
                data.clone(),
                8,
                |d, tid| {
                    let n = d.len() / 8;
                    d[tid * n..(tid + 1) * n].iter().map(|&x| x as f64).sum::<f64>()
                },
                |a, b| a + b,
                || 0.0f64,
            )
            .unwrap();
        let expect: f64 = data.iter().map(|&x| x as f64).sum();
        assert!((total - expect).abs() < 1e-6);
        // Naive Eden: 4 nodes x full copy (vs Triolet's ~1 full copy total).
        assert!(stats.bytes_out >= 4 * data_bytes);
    }

    #[test]
    fn eden_message_limit_fails_multi_node_only() {
        let big: Vec<u8> = vec![0; 2 * DEFAULT_MSG_LIMIT];
        // Two nodes: the full copy exceeds the buffer -> error (paper §4.3).
        let rt2 = EdenRt::new(2, 2);
        let r = rt2.map_reduce_full_copy(big.clone(), 4, |d, _| d.len() as u64, |a, b| a + b, || 0);
        assert!(matches!(r, Err(EdenError::MessageTooLarge { .. })));
        // One node: no inter-node message -> fine.
        let rt1 = EdenRt::new(1, 2);
        let r = rt1.map_reduce_full_copy(big, 4, |d, _| d.len() as u64, |a, b| a + b, || 0);
        assert!(r.is_ok());
    }

    #[test]
    fn straggler_grows_with_nodes() {
        let work = |chunk: Vec<u64>| -> u64 {
            let t0 = Instant::now();
            let mut x = 0u64;
            while t0.elapsed().as_secs_f64() < 0.002 {
                x = x.wrapping_add(chunk.len() as u64);
                std::hint::black_box(x);
            }
            x
        };
        let inputs = |n: usize| -> Vec<Vec<u64>> { (0..n).map(|i| vec![i as u64; 8]).collect() };
        let (_, s2) =
            EdenRt::new(2, 1).map_reduce(inputs(2), work, |a, b| a.wrapping_add(b), || 0).unwrap();
        let (_, s8) =
            EdenRt::new(8, 1).map_reduce(inputs(8), work, |a, b| a.wrapping_add(b), || 0).unwrap();
        // Same per-node work; the 8-node run carries a larger straggler
        // surcharge relative to its span.
        let rel2 = s2.total_s / s2.compute_span_s();
        let rel8 = s8.total_s / s8.compute_span_s();
        assert!(rel8 > rel2, "rel8={rel8} rel2={rel2}");
    }

    #[test]
    fn empty_inputs_yield_empty_value() {
        let rt = EdenRt::new(2, 2);
        let (v, _) = rt.map_reduce(Vec::<u64>::new(), |x| x, |a, b| a + b, || 77u64).unwrap();
        assert_eq!(v, 77);
    }
}
