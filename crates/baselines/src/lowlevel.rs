//! The C+MPI+OpenMP analogue: everything explicit, nothing abstracted.
//!
//! A low-level program hand-partitions its input into per-rank payloads,
//! writes a node kernel over raw data (using the node's threads via explicit
//! chunking), and hand-writes the root-side combine. That is exactly the
//! shape of this runtime's [`LowLevelRt::run`]: the *programmer* supplies
//! all three pieces; the runtime contributes only transport and threads —
//! like MPI + OpenMP. The paper's observation that the low-level mri-q
//! "dedicat[es] more code to partitioning data across MPI ranks than to the
//! actual numerical computation" is visible in the per-app kernels built on
//! this module.

use std::time::Instant;

use triolet::RunStats;
use triolet_cluster::{Cluster, ClusterConfig, NodeCtx, RawTask};
use triolet_serial::Wire;

/// The explicit distributed runtime.
pub struct LowLevelRt {
    cluster: Cluster,
}

impl LowLevelRt {
    /// Bring up the runtime on a cluster shape.
    pub fn new(config: ClusterConfig) -> Self {
        LowLevelRt { cluster: Cluster::new(config) }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Nodes available.
    pub fn nodes(&self) -> usize {
        self.cluster.nodes()
    }

    /// Threads per node.
    pub fn threads_per_node(&self) -> usize {
        self.cluster.threads_per_node()
    }

    /// Run a hand-partitioned distributed computation.
    ///
    /// * `payloads` — one hand-built message per participating rank
    ///   (serialized and shipped; sizes drive the cost model).
    /// * `kernel` — the per-node computation; it receives the node's payload
    ///   and must route compute through the [`NodeCtx`] (the OpenMP region).
    /// * `combine` — the root-side gather processing (an `MPI_Gather` plus
    ///   whatever follows it).
    pub fn run<T, R, O>(
        &self,
        payloads: Vec<T>,
        kernel: impl Fn(&NodeCtx<'_>, T) -> R + Send + Sync,
        combine: impl FnOnce(Vec<R>) -> O,
    ) -> (O, RunStats)
    where
        T: Wire + Send,
        R: Wire + Send,
    {
        let out = self.cluster.run(payloads, kernel);
        let t0 = Instant::now();
        let value = combine(out.results);
        let root_s = t0.elapsed().as_secs_f64();
        (value, RunStats::from_dist(out.timing, root_s))
    }

    /// Run with zero-copy payload accounting: the caller declares wire sizes
    /// and the closures carry data natively. Used for kernels whose payload
    /// types are not `Wire` (e.g. borrowed slices the caller manages).
    pub fn run_raw<R, O>(
        &self,
        tasks: Vec<RawTask<'_, R>>,
        combine: impl FnOnce(Vec<R>) -> O,
    ) -> (O, RunStats)
    where
        R: Wire + Send,
    {
        let out = self.cluster.run_raw(tasks);
        let t0 = Instant::now();
        let value = combine(out.results);
        let root_s = t0.elapsed().as_secs_f64();
        (value, RunStats::from_dist(out.timing, root_s))
    }

    /// Hand-rolled balanced 1-D partitioning (what every MPI program
    /// reimplements): split `data` into `nodes()` contiguous chunks.
    pub fn partition_slice<T: Clone>(&self, data: &[T]) -> Vec<Vec<T>> {
        triolet_domain::chunk_ranges(data.len(), self.nodes())
            .into_iter()
            .map(|(s, l)| data[s..s + l].to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet_domain::{Domain, Seq, SeqPart};

    #[test]
    fn lowlevel_sum_matches_sequential() {
        let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(4, 2));
        let data: Vec<u64> = (0..10_000).collect();
        let payloads = rt.partition_slice(&data);
        let (total, stats) = rt.run(
            payloads,
            |ctx, chunk: Vec<u64>| {
                // The "OpenMP parallel for reduction": explicit thread chunks.
                let chunks = Seq::new(chunk.len()).split_parts(ctx.threads() * 4);
                ctx.map_reduce_chunks(
                    chunks,
                    |p: &SeqPart| p.range().map(|i| chunk[i]).sum::<u64>(),
                    |a, b| a + b,
                )
                .unwrap_or(0)
            },
            |partials| partials.into_iter().sum::<u64>(),
        );
        assert_eq!(total, data.iter().sum::<u64>());
        assert!(stats.bytes_out > 0);
    }

    #[test]
    fn partition_slice_covers() {
        let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(3, 1));
        let data: Vec<u32> = (0..10).collect();
        let parts = rt.partition_slice(&data);
        assert_eq!(parts.len(), 3);
        let flat: Vec<u32> = parts.concat();
        assert_eq!(flat, data);
    }
}
