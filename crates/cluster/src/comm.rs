//! Rank-to-rank typed messaging: the MPI-primitive analogue.
//!
//! The paper's runtime wraps MPI point-to-point and collective operations;
//! this module provides the same vocabulary over in-process channels. Every
//! payload is serialized with [`Wire`] before it enters a channel and
//! deserialized after — the bytes genuinely exist — and all traffic is
//! recorded in a shared [`TrafficStats`].
//!
//! A `Comm` may carry a `max_msg_bytes` limit, modeling runtimes whose
//! message-passing layer cannot buffer arbitrarily large messages (the
//! paper's Eden comparison "fails at 2 nodes because the array data is too
//! large for Eden's message-passing runtime to buffer", §4.3).

use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender};
use triolet_serial::{packed, unpack_all, Wire};

use crate::cost::TrafficStats;

/// Errors surfaced by the message layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The payload exceeded the configured buffer limit.
    MessageTooLarge { bytes: usize, limit: usize },
    /// The peer hung up (rank dropped its handle).
    Disconnected,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::MessageTooLarge { bytes, limit } => {
                write!(f, "message of {bytes} bytes exceeds buffer limit of {limit}")
            }
            CommError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for CommError {}

struct Msg {
    from: usize,
    tag: u32,
    payload: Bytes,
}

/// Factory for a communicator of `n` ranks.
pub struct Comm;

impl Comm {
    /// Create handles for `n` ranks with unlimited message size.
    pub fn create(n: usize) -> Vec<CommHandle> {
        Self::create_with(n, None, Arc::new(TrafficStats::new()))
    }

    /// Create handles with an optional per-message byte limit and shared
    /// traffic counters.
    pub fn create_with(
        n: usize,
        max_msg_bytes: Option<usize>,
        stats: Arc<TrafficStats>,
    ) -> Vec<CommHandle> {
        let n = n.max(1);
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, r) = unbounded::<Msg>();
            senders.push(s);
            receivers.push(r);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| CommHandle {
                rank,
                n,
                senders: senders.clone(),
                rx,
                pending: Vec::new(),
                max_msg_bytes,
                stats: Arc::clone(&stats),
            })
            .collect()
    }
}

/// One rank's endpoint: move it to the rank's thread.
pub struct CommHandle {
    rank: usize,
    n: usize,
    senders: Vec<Sender<Msg>>,
    rx: Receiver<Msg>,
    pending: Vec<Msg>,
    max_msg_bytes: Option<usize>,
    stats: Arc<TrafficStats>,
}

impl CommHandle {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Send `value` to `to` under `tag`.
    pub fn send<T: Wire>(&self, to: usize, tag: u32, value: &T) -> Result<(), CommError> {
        let payload = packed(value);
        if let Some(limit) = self.max_msg_bytes {
            if payload.len() > limit {
                return Err(CommError::MessageTooLarge { bytes: payload.len(), limit });
            }
        }
        self.stats.record(payload.len());
        self.senders[to]
            .send(Msg { from: self.rank, tag, payload })
            .map_err(|_| CommError::Disconnected)
    }

    /// Blocking receive of the next message from `from` with `tag`;
    /// out-of-order messages are buffered.
    pub fn recv<T: Wire>(&mut self, from: usize, tag: u32) -> Result<T, CommError> {
        if let Some(pos) =
            self.pending.iter().position(|m| m.from == from && m.tag == tag)
        {
            let msg = self.pending.remove(pos);
            return Ok(unpack_all(msg.payload).expect("sender packed a valid T"));
        }
        loop {
            let msg = self.rx.recv().map_err(|_| CommError::Disconnected)?;
            if msg.from == from && msg.tag == tag {
                return Ok(unpack_all(msg.payload).expect("sender packed a valid T"));
            }
            self.pending.push(msg);
        }
    }

    /// MPI-style broadcast: the root's value reaches every rank.
    pub fn broadcast<T: Wire + Clone>(
        &mut self,
        root: usize,
        value: Option<T>,
        tag: u32,
    ) -> Result<T, CommError> {
        if self.rank == root {
            let v = value.expect("root must supply the broadcast value");
            for r in 0..self.n {
                if r != root {
                    self.send(r, tag, &v)?;
                }
            }
            Ok(v)
        } else {
            self.recv(root, tag)
        }
    }

    /// MPI-style scatter: the root sends element `i` to rank `i`.
    pub fn scatter<T: Wire>(
        &mut self,
        root: usize,
        parts: Option<Vec<T>>,
        tag: u32,
    ) -> Result<T, CommError> {
        if self.rank == root {
            let mut parts = parts.expect("root must supply the scatter parts");
            assert_eq!(parts.len(), self.n, "scatter needs one part per rank");
            // Send in reverse so we can pop; keep root's own part for last.
            let mut own = None;
            for r in (0..self.n).rev() {
                let part = parts.pop().expect("one part per rank");
                if r == root {
                    own = Some(part);
                } else {
                    self.send(r, tag, &part)?;
                }
            }
            Ok(own.expect("root part present"))
        } else {
            self.recv(root, tag)
        }
    }

    /// MPI-style gather: every rank's value arrives at the root in rank
    /// order.
    pub fn gather<T: Wire>(
        &mut self,
        root: usize,
        value: T,
        tag: u32,
    ) -> Result<Option<Vec<T>>, CommError> {
        if self.rank == root {
            let mut out = Vec::with_capacity(self.n);
            for r in 0..self.n {
                if r == root {
                    // Own contribution still pays serialization (MPI copies
                    // through the buffer even for self-sends in naive use).
                    let bytes = packed(&value);
                    out.push(unpack_all(bytes).expect("self roundtrip"));
                } else {
                    out.push(self.recv(r, tag)?);
                }
            }
            Ok(Some(out))
        } else {
            self.send(root, tag, &value)?;
            Ok(None)
        }
    }

    /// All-reduce: combine every rank's value with `op`; all ranks receive
    /// the result. Implemented gather-to-0 + fold + broadcast, like the
    /// paper's two-level histogram reduction rooted at the main process.
    pub fn all_reduce<T: Wire + Clone>(
        &mut self,
        value: T,
        tag: u32,
        op: impl Fn(T, T) -> T,
    ) -> Result<T, CommError> {
        let gathered = self.gather(0, value, tag)?;
        let reduced = gathered.map(|vs| vs.into_iter().reduce(&op).expect("n >= 1 values"));
        self.broadcast(0, reduced, tag + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ranks<R: Send>(
        n: usize,
        limit: Option<usize>,
        f: impl Fn(CommHandle) -> R + Send + Sync,
    ) -> Vec<R> {
        let handles = Comm::create_with(n, limit, Arc::new(TrafficStats::new()));
        let f = &f;
        std::thread::scope(|s| {
            let joins: Vec<_> = handles.into_iter().map(|h| s.spawn(move || f(h))).collect();
            joins.into_iter().map(|j| j.join().expect("rank panicked")).collect()
        })
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = run_ranks(2, None, |mut h| {
            if h.rank() == 0 {
                h.send(1, 7, &vec![1u32, 2, 3]).unwrap();
                0u32
            } else {
                let v: Vec<u32> = h.recv(0, 7).unwrap();
                v.iter().sum()
            }
        });
        assert_eq!(out[1], 6);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = run_ranks(2, None, |mut h| {
            if h.rank() == 0 {
                h.send(1, 1, &10u64).unwrap();
                h.send(1, 2, &20u64).unwrap();
                0
            } else {
                // Receive tag 2 first even though tag 1 arrives first.
                let b: u64 = h.recv(0, 2).unwrap();
                let a: u64 = h.recv(0, 1).unwrap();
                a * 100 + b
            }
        });
        assert_eq!(out[1], 1020);
    }

    #[test]
    fn broadcast_reaches_all() {
        let out = run_ranks(4, None, |mut h| {
            let v = if h.rank() == 2 { Some(99u32) } else { None };
            h.broadcast(2, v, 5).unwrap()
        });
        assert_eq!(out, vec![99; 4]);
    }

    #[test]
    fn scatter_distributes_in_rank_order() {
        let out = run_ranks(3, None, |mut h| {
            let parts =
                if h.rank() == 0 { Some(vec![10u64, 20, 30]) } else { None };
            h.scatter(0, parts, 3).unwrap()
        });
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_ranks(3, None, |mut h| {
            h.gather(0, h.rank() as u64 * 11, 9).unwrap()
        });
        assert_eq!(out[0], Some(vec![0, 11, 22]));
        assert_eq!(out[1], None);
    }

    #[test]
    fn all_reduce_sums_everywhere() {
        let out = run_ranks(4, None, |mut h| {
            h.all_reduce(h.rank() as u64 + 1, 20, |a, b| a + b).unwrap()
        });
        assert_eq!(out, vec![10; 4]);
    }

    #[test]
    fn message_limit_rejects_large_sends() {
        let out = run_ranks(2, Some(64), |h| {
            if h.rank() == 0 {
                let big = vec![0u8; 1000];
                matches!(h.send(1, 1, &big), Err(CommError::MessageTooLarge { .. }))
            } else {
                true
            }
        });
        assert!(out[0]);
    }
}
