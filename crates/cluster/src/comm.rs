//! Rank-to-rank typed messaging: the MPI-primitive analogue.
//!
//! The paper's runtime wraps MPI point-to-point and collective operations;
//! this module provides the same vocabulary over in-process channels. Every
//! payload is serialized with [`Wire`] before it enters a channel and
//! deserialized after — the bytes genuinely exist — and all traffic is
//! recorded in a shared [`TrafficStats`].
//!
//! A `Comm` may carry a `max_msg_bytes` limit, modeling runtimes whose
//! message-passing layer cannot buffer arbitrarily large messages (the
//! paper's Eden comparison "fails at 2 nodes because the array data is too
//! large for Eden's message-passing runtime to buffer", §4.3).
//!
//! # Reliability under faults
//!
//! A communicator created with an active [`FaultPlan`] runs a
//! sequence-number/acknowledgement protocol on every data message:
//!
//! * each message carries a per-(sender, destination) sequence number and a
//!   payload checksum;
//! * the sender retransmits until it sees an ack or exhausts
//!   `plan.max_retries`, then reports [`CommError::NodeDown`] (destination
//!   scheduled as crashed) or [`CommError::Timeout`];
//! * the receiver discards corrupted copies (checksum mismatch — they are
//!   recovered by retransmission, so delivered data is always intact),
//!   acknowledges every valid arrival, and deduplicates replays by
//!   `(sender, seq)`.
//!
//! Acks travel on a dedicated control channel and are not themselves
//! subject to injected faults — the model stresses the data plane; a lost
//! ack is still exercised indirectly whenever a data retransmission races a
//! late ack.
//!
//! In virtual mode this same protocol is *modeled* rather than executed:
//! the dispatcher folds every retransmission and ack timeout a [`FaultPlan`]
//! schedules into per-edge durations, and the cluster's discrete-event core
//! ([`crate::sim`]) lays them on the virtual clock as timestamped send,
//! receive, and retry-timer events — so the timeline a trace shows under
//! faults is the event-ordered replay of exactly the protocol implemented
//! here.
//!
//! # Tree-structured collectives
//!
//! `broadcast`, `gather`, `reduce`, and `all_reduce` route over the
//! contiguous-subtree binomial tree of [`crate::tree`], so the root touches
//! `O(log N)` messages instead of `O(N)` while relays run concurrently on
//! ranks that already hold the data. Because the subtree under each child
//! covers a *contiguous* run of relative ranks, tree gather concatenates and
//! tree reduce folds in exact rank order — bit-identical to the linear,
//! root-centric collectives, which remain available as `*_linear` for
//! comparison (see `benches/ablation_collectives.rs`). Broadcast relays
//! forward the received bytes verbatim ([`PackedPayload`]): the payload is
//! packed exactly once at the root no matter how many ranks, attempts, or
//! retransmissions follow. The seq/ack reliability protocol is untouched —
//! collectives are compositions of the same reliable point-to-point sends.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use triolet_obs::{tree_edge_args, TraceHandle, Track};
use triolet_serial::{packed, unpack_all, PackedPayload, Wire, WireError};

use crate::cost::TrafficStats;
use crate::fault::{payload_checksum, FaultPlan};
use crate::tree;

/// Tag bit reserved for internal reply traffic (e.g. the broadcast leg of
/// [`CommHandle::all_reduce`]). User tags must leave it clear; collectives
/// derive their reply tags inside this namespace so a user message tagged
/// `t + 1` can never be mistaken for the reply to a collective tagged `t`.
pub const REPLY_TAG_BIT: u32 = 1 << 31;

/// Errors surfaced by the message layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The payload exceeded the configured buffer limit.
    MessageTooLarge { bytes: usize, limit: usize },
    /// The peer hung up (rank dropped its handle).
    Disconnected,
    /// No message (or acknowledgement) from `rank` within the deadline.
    Timeout { rank: usize, tag: u32 },
    /// The payload arrived but did not decode as the requested type.
    Decode(WireError),
    /// `rank` was declared dead after exhausting the retransmission budget.
    NodeDown { rank: usize },
    /// A collective was called with arguments that violate its contract
    /// (missing root value, wrong part count, root out of range). Surfaced
    /// as an error instead of a panic, matching the Decode policy.
    Protocol(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::MessageTooLarge { bytes, limit } => {
                write!(f, "message of {bytes} bytes exceeds buffer limit of {limit}")
            }
            CommError::Disconnected => write!(f, "peer disconnected"),
            CommError::Timeout { rank, tag } => {
                write!(f, "timed out waiting on rank {rank} (tag {tag})")
            }
            CommError::Decode(e) => write!(f, "payload failed to decode: {e}"),
            CommError::NodeDown { rank } => write!(f, "rank {rank} is down"),
            CommError::Protocol(what) => write!(f, "collective protocol violation: {what}"),
        }
    }
}

impl std::error::Error for CommError {}

impl From<WireError> for CommError {
    fn from(e: WireError) -> Self {
        CommError::Decode(e)
    }
}

struct Msg {
    from: usize,
    tag: u32,
    seq: u64,
    checksum: u64,
    payload: Bytes,
}

/// Acknowledgement of one data message; `from` is the acknowledging rank.
struct Ack {
    from: usize,
    tag: u32,
    seq: u64,
}

/// Factory for a communicator of `n` ranks.
pub struct Comm;

impl Comm {
    /// Create handles for `n` ranks with unlimited message size and no
    /// injected faults.
    pub fn create(n: usize) -> Vec<CommHandle> {
        Self::create_with(n, None, Arc::new(TrafficStats::new()), FaultPlan::none())
    }

    /// Create handles with an optional per-message byte limit, shared
    /// traffic counters, and a fault schedule. With an inactive plan the
    /// handles behave exactly like the pre-fault-layer communicator.
    pub fn create_with(
        n: usize,
        max_msg_bytes: Option<usize>,
        stats: Arc<TrafficStats>,
        faults: FaultPlan,
    ) -> Vec<CommHandle> {
        Self::create_traced(n, max_msg_bytes, stats, faults, TraceHandle::disabled())
    }

    /// Like [`create_with`](Self::create_with), with a shared trace sink:
    /// every send attempt, delivery, acknowledgement, and injected fault
    /// becomes a point event on the acting rank's timeline (wall-clock
    /// offsets from communicator creation).
    pub fn create_traced(
        n: usize,
        max_msg_bytes: Option<usize>,
        stats: Arc<TrafficStats>,
        faults: FaultPlan,
        trace: TraceHandle,
    ) -> Vec<CommHandle> {
        let n = n.max(1);
        let epoch = Instant::now();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        let mut ack_senders = Vec::with_capacity(n);
        let mut ack_receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, r) = unbounded::<Msg>();
            senders.push(s);
            receivers.push(r);
            let (s, r) = unbounded::<Ack>();
            ack_senders.push(s);
            ack_receivers.push(r);
        }
        receivers
            .into_iter()
            .zip(ack_receivers)
            .enumerate()
            .map(|(rank, (rx, ack_rx))| CommHandle {
                rank,
                n,
                senders: senders.clone(),
                rx,
                ack_senders: ack_senders.clone(),
                ack_rx,
                pending: Vec::new(),
                stale_acks: RefCell::new(Vec::new()),
                next_seq: RefCell::new(vec![0; n]),
                seen: HashSet::new(),
                max_msg_bytes,
                stats: Arc::clone(&stats),
                faults,
                trace: trace.clone(),
                epoch,
            })
            .collect()
    }
}

/// One rank's endpoint: move it to the rank's thread.
pub struct CommHandle {
    rank: usize,
    n: usize,
    senders: Vec<Sender<Msg>>,
    rx: Receiver<Msg>,
    ack_senders: Vec<Sender<Ack>>,
    ack_rx: Receiver<Ack>,
    pending: Vec<Msg>,
    /// Acks that arrived while waiting for a different one (late acks from
    /// superseded retransmission rounds).
    stale_acks: RefCell<Vec<Ack>>,
    /// Next sequence number per destination. `RefCell` keeps `send(&self)`.
    next_seq: RefCell<Vec<u64>>,
    /// Delivered `(sender, seq)` pairs, for replay suppression.
    seen: HashSet<(usize, u64)>,
    max_msg_bytes: Option<usize>,
    stats: Arc<TrafficStats>,
    faults: FaultPlan,
    trace: TraceHandle,
    /// Shared creation instant: all ranks' comm events use one wall clock.
    epoch: Instant,
}

impl CommHandle {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.n
    }

    /// The communicator's fault schedule.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Record a comm-layer point event on this rank's timeline.
    fn trace_event(&self, name: &'static str, cat: &'static str, peer: usize, tag: u32) {
        if self.trace.enabled() {
            self.trace.event(
                name,
                cat,
                Track::Node(self.rank),
                self.epoch.elapsed().as_secs_f64(),
                vec![("peer", peer.into()), ("tag", (tag as u64).into())],
            );
        }
    }

    /// Record a `comm:tree` point event: this rank relaying a collective
    /// payload one tree edge down (`peer` at `depth`, among `fanout`
    /// siblings).
    fn trace_tree(&self, peer: usize, tag: u32, depth: u32, fanout: usize) {
        if self.trace.enabled() {
            self.trace.event(
                "comm:tree",
                "comm",
                Track::Node(self.rank),
                self.epoch.elapsed().as_secs_f64(),
                tree_edge_args(peer, tag, depth, fanout),
            );
        }
    }

    /// Send `value` to `to` under `tag`. With an active fault plan this is
    /// the reliable (ack + retransmit) path and only returns `Ok` once the
    /// destination has acknowledged an intact copy.
    pub fn send<T: Wire>(&self, to: usize, tag: u32, value: &T) -> Result<(), CommError> {
        self.send_bytes(to, tag, packed(value))
    }

    /// Send an already-packed payload. The buffer is shared, not copied:
    /// every destination of a broadcast and every retransmission reuses the
    /// bytes the one `pack` produced.
    pub fn send_packed(
        &self,
        to: usize,
        tag: u32,
        payload: &PackedPayload,
    ) -> Result<(), CommError> {
        self.send_bytes(to, tag, payload.bytes())
    }

    fn send_bytes(&self, to: usize, tag: u32, payload: Bytes) -> Result<(), CommError> {
        if let Some(limit) = self.max_msg_bytes {
            if payload.len() > limit {
                return Err(CommError::MessageTooLarge { bytes: payload.len(), limit });
            }
        }
        let seq = {
            let mut next = self.next_seq.borrow_mut();
            let s = next[to];
            next[to] += 1;
            s
        };
        if !self.faults.is_active() {
            self.stats.record(payload.len());
            self.trace_event("send", "comm", to, tag);
            let checksum = payload_checksum(&payload);
            return self.senders[to]
                .send(Msg { from: self.rank, tag, seq, checksum, payload })
                .map_err(|_| CommError::Disconnected);
        }
        self.send_reliable(to, tag, seq, payload)
    }

    /// Retransmit until acked or out of budget.
    fn send_reliable(
        &self,
        to: usize,
        tag: u32,
        seq: u64,
        payload: Bytes,
    ) -> Result<(), CommError> {
        let checksum = payload_checksum(&payload);
        for attempt in 0..=self.faults.max_retries {
            if attempt > 0 {
                self.stats.record_retry();
                self.trace_event("retry", "fault", to, tag);
            }
            let d = self.faults.decide(self.rank, to, tag, seq, attempt);
            // The sender pays bandwidth for every attempt, delivered or not.
            self.stats.record(payload.len());
            self.trace_event("send", "comm", to, tag);
            // A closed channel is not immediately fatal: the peer may have
            // consumed and acked an earlier copy of this very message and
            // exited before a replay (duplicate or retransmission) went
            // out. The ack check below is the arbiter — only a peer that
            // vanished *without* acking is an error.
            let mut peer_gone = false;
            if d.deliver {
                let wire = if d.corrupt {
                    self.stats.record_corrupted();
                    self.trace_event("corrupt", "fault", to, tag);
                    corrupt_copy(&payload)
                } else {
                    payload.clone()
                };
                peer_gone = self.senders[to]
                    .send(Msg { from: self.rank, tag, seq, checksum, payload: wire })
                    .is_err();
                if d.duplicate && !peer_gone {
                    self.stats.record_duplicated();
                    self.stats.record(payload.len());
                    self.trace_event("duplicate", "fault", to, tag);
                    peer_gone = self.senders[to]
                        .send(Msg { from: self.rank, tag, seq, checksum, payload: payload.clone() })
                        .is_err();
                }
            } else {
                self.stats.record_dropped();
                self.trace_event("drop", "fault", to, tag);
            }
            if self.wait_ack(to, tag, seq)? {
                self.trace_event("ack", "comm", to, tag);
                return Ok(());
            }
            if peer_gone {
                return Err(CommError::Disconnected);
            }
        }
        Err(if self.faults.crashed(to) {
            CommError::NodeDown { rank: to }
        } else {
            CommError::Timeout { rank: to, tag }
        })
    }

    /// Wait up to the plan's timeout for the ack of `(to, tag, seq)`.
    /// `Ok(false)` means the wait timed out (caller retries).
    fn wait_ack(&self, to: usize, tag: u32, seq: u64) -> Result<bool, CommError> {
        let matches = |a: &Ack| a.from == to && a.tag == tag && a.seq == seq;
        {
            let mut stale = self.stale_acks.borrow_mut();
            if let Some(pos) = stale.iter().position(matches) {
                stale.remove(pos);
                return Ok(true);
            }
        }
        let deadline = Instant::now() + self.faults.timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            match self.ack_rx.recv_timeout(deadline - now) {
                Ok(a) if matches(&a) => return Ok(true),
                Ok(a) => self.stale_acks.borrow_mut().push(a),
                Err(RecvTimeoutError::Timeout) => return Ok(false),
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Disconnected),
            }
        }
    }

    /// Blocking receive of the next message from `from` with `tag`;
    /// out-of-order messages are buffered.
    pub fn recv<T: Wire>(&mut self, from: usize, tag: u32) -> Result<T, CommError> {
        let payload = self.recv_bytes_inner(from, tag, None)?;
        unpack_all(payload).map_err(CommError::Decode)
    }

    /// Like [`recv`](Self::recv), but returns the raw payload bytes without
    /// decoding — the relay path of tree collectives forwards these verbatim
    /// so intermediate ranks never re-serialize.
    pub fn recv_bytes(&mut self, from: usize, tag: u32) -> Result<Bytes, CommError> {
        self.recv_bytes_inner(from, tag, None)
    }

    /// Like [`recv`](Self::recv), but gives up with [`CommError::Timeout`]
    /// if nothing matching arrives within `timeout`.
    pub fn recv_timeout<T: Wire>(
        &mut self,
        from: usize,
        tag: u32,
        timeout: Duration,
    ) -> Result<T, CommError> {
        let payload = self.recv_bytes_inner(from, tag, Some(Instant::now() + timeout))?;
        unpack_all(payload).map_err(CommError::Decode)
    }

    fn recv_bytes_inner(
        &mut self,
        from: usize,
        tag: u32,
        deadline: Option<Instant>,
    ) -> Result<Bytes, CommError> {
        if let Some(pos) = self.pending.iter().position(|m| m.from == from && m.tag == tag) {
            let msg = self.pending.remove(pos);
            self.trace_event("recv", "comm", from, tag);
            return Ok(msg.payload);
        }
        loop {
            let msg = match deadline {
                None => self.rx.recv().map_err(|_| CommError::Disconnected)?,
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return Err(CommError::Timeout { rank: from, tag });
                    }
                    self.rx.recv_timeout(dl - now).map_err(|e| match e {
                        RecvTimeoutError::Timeout => CommError::Timeout { rank: from, tag },
                        RecvTimeoutError::Disconnected => CommError::Disconnected,
                    })?
                }
            };
            if !self.admit(&msg) {
                continue;
            }
            if msg.from == from && msg.tag == tag {
                self.trace_event("recv", "comm", from, tag);
                return Ok(msg.payload);
            }
            self.pending.push(msg);
        }
    }

    /// Integrity + dedup filter for one arrival. Under an active fault plan
    /// every valid arrival is acknowledged as soon as it is seen — even
    /// when buffered for a later `recv` — so the sender stops
    /// retransmitting. Returns false when the message must not be
    /// delivered (damaged, or a replay of an already-delivered message).
    fn admit(&mut self, msg: &Msg) -> bool {
        if !self.faults.is_active() {
            return true;
        }
        if payload_checksum(&msg.payload) != msg.checksum {
            // Damaged in flight: behave like a loss; an intact
            // retransmission will follow.
            return false;
        }
        let replay = !self.seen.insert((msg.from, msg.seq));
        // Ack replays too: the sender may have missed the first ack.
        let _ =
            self.ack_senders[msg.from].send(Ack { from: self.rank, tag: msg.tag, seq: msg.seq });
        !replay
    }

    /// This rank's position relative to `root` (the tree is always rooted
    /// at relative rank 0), after validating `root`.
    fn rel_rank(&self, root: usize) -> Result<usize, CommError> {
        if root >= self.n {
            return Err(CommError::Protocol(format!(
                "root rank {root} out of range for {} ranks",
                self.n
            )));
        }
        Ok((self.rank + self.n - root) % self.n)
    }

    /// Absolute rank of relative rank `vr` under `root`.
    fn abs_rank(&self, root: usize, vr: usize) -> usize {
        (vr + root) % self.n
    }

    /// Relay `payload` to this rank's tree children, largest subtree first.
    /// A crashed *leaf* child is skipped — it contributes nothing downstream
    /// — while a crashed interior child (whose subtree would be orphaned)
    /// surfaces as [`CommError::NodeDown`].
    fn forward_tree(
        &self,
        vr: usize,
        root: usize,
        tag: u32,
        payload: &PackedPayload,
    ) -> Result<(), CommError> {
        let kids = tree::children(vr, self.n);
        let fanout = kids.len();
        for &c in kids.iter().rev() {
            let dest = self.abs_rank(root, c);
            self.trace_tree(dest, tag, tree::depth(c), fanout);
            match self.send_packed(dest, tag, payload) {
                Ok(()) => {}
                Err(CommError::NodeDown { .. }) if tree::children(c, self.n).is_empty() => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// MPI-style broadcast: the root's value reaches every rank.
    ///
    /// Routed over the binomial tree: the root packs the value exactly once
    /// and sends it to its `O(log N)` children; every other rank receives
    /// the bytes from its tree parent, forwards them *verbatim* to its own
    /// children, and only then decodes. The linear root-centric loop is
    /// kept as [`broadcast_linear`](Self::broadcast_linear).
    pub fn broadcast<T: Wire>(
        &mut self,
        root: usize,
        value: Option<T>,
        tag: u32,
    ) -> Result<T, CommError> {
        let vr = self.rel_rank(root)?;
        if vr == 0 {
            let v = value.ok_or_else(|| {
                CommError::Protocol("root must supply the broadcast value".into())
            })?;
            let payload = PackedPayload::pack(&v);
            self.forward_tree(0, root, tag, &payload)?;
            Ok(v)
        } else {
            let parent = self.abs_rank(root, tree::parent(vr));
            let bytes = self.recv_bytes(parent, tag)?;
            let payload = PackedPayload::from_bytes(bytes);
            self.forward_tree(vr, root, tag, &payload)?;
            payload.unpack().map_err(CommError::Decode)
        }
    }

    /// The pre-tree broadcast: the root loops over all other ranks. Kept for
    /// equivalence tests and the collectives ablation.
    pub fn broadcast_linear<T: Wire>(
        &mut self,
        root: usize,
        value: Option<T>,
        tag: u32,
    ) -> Result<T, CommError> {
        let vr = self.rel_rank(root)?;
        if vr == 0 {
            let v = value.ok_or_else(|| {
                CommError::Protocol("root must supply the broadcast value".into())
            })?;
            let payload = PackedPayload::pack(&v);
            for r in 0..self.n {
                if r != root {
                    match self.send_packed(r, tag, &payload) {
                        Ok(()) | Err(CommError::NodeDown { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
            Ok(v)
        } else {
            self.recv(root, tag)
        }
    }

    /// MPI-style scatter: the root sends element `i` to rank `i`. Each part
    /// is packed exactly once ([`PackedPayload`]), so retransmissions under
    /// an active fault plan reuse the original buffer.
    pub fn scatter<T: Wire>(
        &mut self,
        root: usize,
        parts: Option<Vec<T>>,
        tag: u32,
    ) -> Result<T, CommError> {
        self.rel_rank(root)?;
        if self.rank == root {
            let parts = parts
                .ok_or_else(|| CommError::Protocol("root must supply the scatter parts".into()))?;
            if parts.len() != self.n {
                return Err(CommError::Protocol(format!(
                    "scatter needs one part per rank: got {} parts for {} ranks",
                    parts.len(),
                    self.n
                )));
            }
            let mut own = None;
            for (r, part) in parts.into_iter().enumerate() {
                if r == root {
                    own = Some(part);
                } else {
                    let payload = PackedPayload::pack(&part);
                    self.send_packed(r, tag, &payload)?;
                }
            }
            Ok(own.expect("root part present: parts.len() == n and root < n"))
        } else {
            self.recv(root, tag)
        }
    }

    /// MPI-style gather: every rank's value arrives at the root in rank
    /// order.
    ///
    /// Tree-routed: each rank prepends its own value to its children's
    /// contiguous blocks (ascending child order) and ships the assembled
    /// block one edge up, so receives overlap across subtrees and the root
    /// merges `O(log N)` pre-concatenated blocks instead of `N` messages.
    /// Contiguous subtrees make the concatenation exactly *relative* rank
    /// order; the root rotates the assembled block back to absolute rank
    /// order (a no-op at root 0) so results match the linear gather
    /// bit for bit at any root.
    pub fn gather<T: Wire>(
        &mut self,
        root: usize,
        value: T,
        tag: u32,
    ) -> Result<Option<Vec<T>>, CommError> {
        let vr = self.rel_rank(root)?;
        let mut block = vec![value];
        for c in tree::children(vr, self.n) {
            let part: Vec<T> = self.recv(self.abs_rank(root, c), tag)?;
            block.extend(part);
        }
        if vr == 0 {
            // block[vr] holds relative rank vr = (abs + n - root) % n;
            // rotate so out[abs] holds absolute rank abs.
            block.rotate_left((self.n - root) % self.n);
            Ok(Some(block))
        } else {
            let parent = self.abs_rank(root, tree::parent(vr));
            self.trace_tree(parent, tag, tree::depth(tree::parent(vr)), 1);
            self.send(parent, tag, &block)?;
            Ok(None)
        }
    }

    /// The pre-tree gather: the root receives from every rank in turn. The
    /// root's own contribution is accounted by [`Wire::packed_size`] rather
    /// than a pack + unpack roundtrip of the buffer (it never crosses a
    /// boundary; the old copy existed only to model itself).
    pub fn gather_linear<T: Wire>(
        &mut self,
        root: usize,
        value: T,
        tag: u32,
    ) -> Result<Option<Vec<T>>, CommError> {
        let vr = self.rel_rank(root)?;
        if vr == 0 {
            // Size walk only — the cost-model stand-in for the old
            // pack + unpack roundtrip, minus the buffer copy.
            std::hint::black_box(value.packed_size());
            let mut own = Some(value);
            let mut out = Vec::with_capacity(self.n);
            for r in 0..self.n {
                if r == root {
                    out.push(own.take().expect("own value taken once"));
                } else {
                    out.push(self.recv(r, tag)?);
                }
            }
            Ok(Some(out))
        } else {
            self.send(root, tag, &value)?;
            Ok(None)
        }
    }

    /// Reduce to `root`: combine every rank's value with `op`; the root
    /// receives the result (`None` elsewhere). Partials combine *inside*
    /// the tree — each rank folds its own value with its children's
    /// subtree partials in ascending order, so the fold order is always
    /// rank order rotated to start at the root (`root, root+1, …`,
    /// wrapping; exactly absolute rank order when `root == 0`). `op` must
    /// be associative — the tree changes association, never that order —
    /// but need not be commutative. For an exactly-left-associated fold at
    /// any root, gather and fold at the caller instead.
    pub fn reduce<T: Wire>(
        &mut self,
        root: usize,
        value: T,
        tag: u32,
        op: impl Fn(T, T) -> T,
    ) -> Result<Option<T>, CommError> {
        let vr = self.rel_rank(root)?;
        let mut acc = value;
        for c in tree::children(vr, self.n) {
            let part: T = self.recv(self.abs_rank(root, c), tag)?;
            acc = op(acc, part);
        }
        if vr == 0 {
            Ok(Some(acc))
        } else {
            let parent = self.abs_rank(root, tree::parent(vr));
            self.trace_tree(parent, tag, tree::depth(tree::parent(vr)), 1);
            self.send(parent, tag, &acc)?;
            Ok(None)
        }
    }

    /// All-reduce: combine every rank's value with `op`; all ranks receive
    /// the result. Implemented as a rank-ordered tree gather to rank 0, a
    /// left-to-right fold there (like the paper's two-level histogram
    /// reduction rooted at the main process), and a tree broadcast of the
    /// result — so non-commutative `op`s see contributions in rank order
    /// with the exact association of the linear path, while both legs cost
    /// the root only `O(log N)` serialized messages. For associative `op`s
    /// that can combine in-tree, see [`reduce`](Self::reduce).
    pub fn all_reduce<T: Wire>(
        &mut self,
        value: T,
        tag: u32,
        op: impl Fn(T, T) -> T,
    ) -> Result<T, CommError> {
        assert_eq!(tag & REPLY_TAG_BIT, 0, "user tags must leave the reply bit clear");
        let gathered = self.gather(0, value, tag)?;
        let reduced = gathered.map(|vs| vs.into_iter().reduce(&op).expect("n >= 1 values"));
        // Reply travels in the reserved tag namespace: a user message
        // tagged `tag + 1` can no longer collide with it.
        self.broadcast(0, reduced, tag | REPLY_TAG_BIT)
    }

    /// The pre-tree all-reduce (linear gather + fold + linear broadcast),
    /// kept for equivalence tests and the collectives ablation.
    pub fn all_reduce_linear<T: Wire>(
        &mut self,
        value: T,
        tag: u32,
        op: impl Fn(T, T) -> T,
    ) -> Result<T, CommError> {
        assert_eq!(tag & REPLY_TAG_BIT, 0, "user tags must leave the reply bit clear");
        let gathered = self.gather_linear(0, value, tag)?;
        let reduced = gathered.map(|vs| vs.into_iter().reduce(&op).expect("n >= 1 values"));
        self.broadcast_linear(0, reduced, tag | REPLY_TAG_BIT)
    }
}

/// A damaged copy of `payload` for in-flight corruption: flip one byte (or
/// append one to an empty payload) so the checksum cannot match.
fn corrupt_copy(payload: &Bytes) -> Bytes {
    let mut v = payload.to_vec();
    if v.is_empty() {
        v.push(0xA5);
    } else {
        let mid = v.len() / 2;
        v[mid] ^= 0xA5;
    }
    Bytes::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ranks<R: Send>(
        n: usize,
        limit: Option<usize>,
        f: impl Fn(CommHandle) -> R + Send + Sync,
    ) -> Vec<R> {
        run_ranks_with(n, limit, FaultPlan::none(), f)
    }

    fn run_ranks_with<R: Send>(
        n: usize,
        limit: Option<usize>,
        faults: FaultPlan,
        f: impl Fn(CommHandle) -> R + Send + Sync,
    ) -> Vec<R> {
        let handles = Comm::create_with(n, limit, Arc::new(TrafficStats::new()), faults);
        let f = &f;
        std::thread::scope(|s| {
            let joins: Vec<_> = handles.into_iter().map(|h| s.spawn(move || f(h))).collect();
            joins.into_iter().map(|j| j.join().expect("rank panicked")).collect()
        })
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = run_ranks(2, None, |mut h| {
            if h.rank() == 0 {
                h.send(1, 7, &vec![1u32, 2, 3]).unwrap();
                0u32
            } else {
                let v: Vec<u32> = h.recv(0, 7).unwrap();
                v.iter().sum()
            }
        });
        assert_eq!(out[1], 6);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = run_ranks(2, None, |mut h| {
            if h.rank() == 0 {
                h.send(1, 1, &10u64).unwrap();
                h.send(1, 2, &20u64).unwrap();
                0
            } else {
                // Receive tag 2 first even though tag 1 arrives first.
                let b: u64 = h.recv(0, 2).unwrap();
                let a: u64 = h.recv(0, 1).unwrap();
                a * 100 + b
            }
        });
        assert_eq!(out[1], 1020);
    }

    #[test]
    fn broadcast_reaches_all() {
        let out = run_ranks(4, None, |mut h| {
            let v = if h.rank() == 2 { Some(99u32) } else { None };
            h.broadcast(2, v, 5).unwrap()
        });
        assert_eq!(out, vec![99; 4]);
    }

    #[test]
    fn scatter_distributes_in_rank_order() {
        let out = run_ranks(3, None, |mut h| {
            let parts = if h.rank() == 0 { Some(vec![10u64, 20, 30]) } else { None };
            h.scatter(0, parts, 3).unwrap()
        });
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_ranks(3, None, |mut h| h.gather(0, h.rank() as u64 * 11, 9).unwrap());
        assert_eq!(out[0], Some(vec![0, 11, 22]));
        assert_eq!(out[1], None);
    }

    #[test]
    fn all_reduce_sums_everywhere() {
        let out = run_ranks(4, None, |mut h| {
            h.all_reduce(h.rank() as u64 + 1, 20, |a, b| a + b).unwrap()
        });
        assert_eq!(out, vec![10; 4]);
    }

    #[test]
    fn all_reduce_non_commutative_folds_in_rank_order() {
        // String concatenation is non-commutative: the result is only
        // well-defined because the gather is rank-ordered and the fold is
        // left-to-right.
        let out = run_ranks(4, None, |mut h| {
            h.all_reduce(h.rank().to_string(), 3, |a, b| a + &b).unwrap()
        });
        assert_eq!(out, vec!["0123".to_string(); 4]);
    }

    #[test]
    fn all_reduce_single_rank_communicator() {
        let out = run_ranks(1, None, |mut h| h.all_reduce(41u64, 11, |a, b| a + b).unwrap());
        assert_eq!(out, vec![41]);
    }

    #[test]
    fn all_reduce_does_not_collide_with_adjacent_user_tag() {
        // Regression: the reply to `all_reduce(tag)` used to travel on
        // `tag + 1`. A user message already in flight on `tag + 1` from the
        // root could then be consumed as the reduction result. The reply
        // now travels in the reserved namespace, so both values survive.
        const TAG: u32 = 20;
        let out = run_ranks(2, None, |mut h| {
            if h.rank() == 0 {
                // In flight on tag + 1 BEFORE the collective's reply.
                h.send(1, TAG + 1, &777u64).unwrap();
                h.all_reduce(1u64, TAG, |a, b| a + b).unwrap()
            } else {
                let reduced = h.all_reduce(2u64, TAG, |a, b| a + b).unwrap();
                let user: u64 = h.recv(0, TAG + 1).unwrap();
                assert_eq!(user, 777, "user message on tag+1 must survive the collective");
                reduced
            }
        });
        assert_eq!(out, vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "reply bit")]
    fn all_reduce_rejects_reserved_tags() {
        let mut h = Comm::create(1).pop().expect("one rank");
        let _ = h.all_reduce(1u64, REPLY_TAG_BIT | 3, |a, b| a + b);
    }

    #[test]
    fn type_confusion_surfaces_as_decode_error() {
        // A peer that packs one type while the receiver expects another is
        // a decode error, not a panic.
        let out = run_ranks(2, None, |mut h| {
            if h.rank() == 0 {
                h.send(1, 1, &vec![0xFFu8; 3]).unwrap();
                true
            } else {
                matches!(h.recv::<Vec<u64>>(0, 1), Err(CommError::Decode(_)))
            }
        });
        assert!(out[1], "mistyped payload must surface as CommError::Decode");
    }

    #[test]
    fn recv_timeout_expires_without_traffic() {
        let out = run_ranks(2, None, |mut h| {
            if h.rank() == 0 {
                h.recv_timeout::<u64>(1, 9, Duration::from_millis(10))
            } else {
                Ok(0)
            }
        });
        assert_eq!(out[0], Err(CommError::Timeout { rank: 1, tag: 9 }));
    }

    #[test]
    fn message_limit_rejects_large_sends() {
        let out = run_ranks(2, Some(64), |h| {
            if h.rank() == 0 {
                let big = vec![0u8; 1000];
                matches!(h.send(1, 1, &big), Err(CommError::MessageTooLarge { .. }))
            } else {
                true
            }
        });
        assert!(out[0]);
    }

    #[test]
    fn lossy_link_still_delivers_exactly_once() {
        // Generous retry budget: a send that exhausts it panics the sender
        // and strands the receiver, so make exhaustion impossible.
        let plan = FaultPlan::seeded(11)
            .with_drop(0.4)
            .with_duplication(0.3)
            .with_max_retries(64)
            .with_timeout(Duration::from_millis(5));
        let out = run_ranks_with(2, None, plan, |mut h| {
            if h.rank() == 0 {
                for i in 0..50u64 {
                    h.send(1, 4, &i).unwrap();
                }
                0
            } else {
                (0..50u64).map(|_| h.recv::<u64>(0, 4).unwrap()).sum()
            }
        });
        assert_eq!(out[1], (0..50).sum::<u64>(), "drops + dups must not change delivery");
    }

    #[test]
    fn corruption_is_retransmitted_not_delivered() {
        let plan = FaultPlan::seeded(5)
            .with_corruption(0.5)
            .with_max_retries(64)
            .with_timeout(Duration::from_millis(5));
        let stats = Arc::new(TrafficStats::new());
        let handles = Comm::create_with(2, None, Arc::clone(&stats), plan);
        let f = |mut h: CommHandle| {
            if h.rank() == 0 {
                for i in 0..40u64 {
                    h.send(1, 2, &vec![i; 8]).unwrap();
                }
                Vec::new()
            } else {
                (0..40u64).map(|_| h.recv::<Vec<u64>>(0, 2).unwrap()).collect::<Vec<_>>()
            }
        };
        let out = std::thread::scope(|s| {
            let joins: Vec<_> = handles.into_iter().map(|h| s.spawn(move || f(h))).collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect::<Vec<_>>()
        });
        let expect: Vec<Vec<u64>> = (0..40u64).map(|i| vec![i; 8]).collect();
        assert_eq!(out[1], expect, "delivered payloads must be the intact copies");
        assert!(stats.corrupted() > 0, "the schedule must actually corrupt something");
        assert!(stats.retries() > 0, "corruption must force retransmissions");
    }

    #[test]
    fn crashed_rank_reported_as_node_down() {
        let plan = FaultPlan::seeded(3)
            .with_crash(1)
            .with_max_retries(2)
            .with_timeout(Duration::from_millis(2));
        let mut handles =
            Comm::create_with(2, None, Arc::new(TrafficStats::new()), plan).into_iter();
        let h0 = handles.next().expect("rank 0");
        // Rank 1 is "crashed": its handle stays alive (so the channel does
        // not disconnect) but it never services its queue.
        let _h1 = handles.next().expect("rank 1");
        std::thread::scope(|s| {
            let j = s.spawn(move || h0.send(1, 1, &9u64));
            assert_eq!(j.join().unwrap(), Err(CommError::NodeDown { rank: 1 }));
        });
    }

    #[test]
    fn silent_but_alive_peer_reports_timeout() {
        // Rank 1 is not crashed, but the schedule drops everything sent to
        // it — the sender must give up with Timeout, not NodeDown.
        let plan = FaultPlan::seeded(3)
            .with_drop(1.0)
            .with_max_retries(1)
            .with_timeout(Duration::from_millis(2));
        let mut handles =
            Comm::create_with(2, None, Arc::new(TrafficStats::new()), plan).into_iter();
        let h0 = handles.next().expect("rank 0");
        let _h1 = handles.next().expect("rank 1");
        std::thread::scope(|s| {
            let j = s.spawn(move || h0.send(1, 6, &9u64));
            assert_eq!(j.join().unwrap(), Err(CommError::Timeout { rank: 1, tag: 6 }));
        });
    }

    #[test]
    fn missing_root_arguments_are_protocol_errors() {
        // Root arguments that used to panic now surface as CommError::Protocol.
        let mut h = Comm::create(1).pop().expect("one rank");
        assert!(matches!(h.broadcast::<u64>(0, None, 1), Err(CommError::Protocol(_))));
        assert!(matches!(h.scatter::<u64>(0, None, 2), Err(CommError::Protocol(_))));
        assert!(matches!(h.scatter(0, Some(vec![1u64, 2]), 3), Err(CommError::Protocol(_))));
        // An out-of-range root is a protocol violation on every rank.
        assert!(matches!(h.broadcast(9, Some(1u64), 4), Err(CommError::Protocol(_))));
        assert!(matches!(h.gather(9, 1u64, 5), Err(CommError::Protocol(_))));
    }

    #[test]
    fn tree_collectives_match_linear_at_nonzero_root() {
        // Same handles run the tree and linear versions back to back on
        // disjoint tags; results must agree bit for bit, including the
        // non-commutative string fold and the rotated gather root.
        let out = run_ranks(6, None, |mut h| {
            let root = 2;
            let bval = if h.rank() == root { Some(vec![7u64, 8, 9]) } else { None };
            let t = h.broadcast(root, bval.clone(), 1).unwrap();
            let l = h.broadcast_linear(root, bval, 2).unwrap();
            let gt = h.gather(root, h.rank() as u64 * 3, 3).unwrap();
            let gl = h.gather_linear(root, h.rank() as u64 * 3, 4).unwrap();
            let at = h.all_reduce(h.rank().to_string(), 5, |a, b| a + &b).unwrap();
            let al = h.all_reduce_linear(h.rank().to_string(), 6, |a, b| a + &b).unwrap();
            (t == l, gt == gl, at == al, at)
        });
        for (i, (b, g, a, s)) in out.iter().enumerate() {
            assert!(*b && *g && *a, "rank {i}: tree and linear must agree");
            assert_eq!(s, "012345", "rank {i}: fold must be in rank order");
        }
    }

    #[test]
    fn gather_rotates_to_absolute_rank_order_at_nonzero_root() {
        let out = run_ranks(5, None, |mut h| h.gather(3, h.rank() as u64, 7).unwrap());
        assert_eq!(out[3], Some(vec![0, 1, 2, 3, 4]));
        for (r, o) in out.iter().enumerate() {
            assert_eq!(o.is_some(), r == 3);
        }
    }

    #[test]
    fn reduce_folds_in_root_rotated_rank_order() {
        // Non-commutative op at a non-zero root: the documented fold order
        // is rank order starting at the root, wrapping.
        let out = run_ranks(5, None, |mut h| {
            h.reduce(3, h.rank().to_string(), 8, |a, b| a + &b).unwrap()
        });
        assert_eq!(out[3], Some("34012".to_string()));
        assert_eq!(out.iter().filter(|o| o.is_some()).count(), 1);
    }

    #[test]
    fn reduce_sums_at_root_zero() {
        let out =
            run_ranks(8, None, |mut h| h.reduce(0, h.rank() as u64 + 1, 9, |a, b| a + b).unwrap());
        assert_eq!(out[0], Some(36));
        assert!(out[1..].iter().all(Option::is_none));
    }

    #[test]
    fn broadcast_skips_crashed_leaf_ranks() {
        // n = 4 rooted at 0: the tree is 0 -> {1, 2}, 2 -> {3}. Rank 3 is a
        // leaf; its crash must not sink the broadcast for the live ranks.
        let plan = FaultPlan::seeded(7)
            .with_crash(3)
            .with_max_retries(2)
            .with_timeout(Duration::from_millis(2));
        let mut handles =
            Comm::create_with(4, None, Arc::new(TrafficStats::new()), plan).into_iter();
        let h0 = handles.next().expect("rank 0");
        let h1 = handles.next().expect("rank 1");
        let h2 = handles.next().expect("rank 2");
        // Rank 3 is "crashed": handle alive (no disconnect) but unserviced.
        let _h3 = handles.next().expect("rank 3");
        let out = std::thread::scope(|s| {
            let j0 = s.spawn(move || {
                let mut h = h0;
                h.broadcast(0, Some(41u64), 1)
            });
            let j1 = s.spawn(move || {
                let mut h = h1;
                h.broadcast::<u64>(0, None, 1)
            });
            let j2 = s.spawn(move || {
                let mut h = h2;
                h.broadcast::<u64>(0, None, 1)
            });
            [j0.join().unwrap(), j1.join().unwrap(), j2.join().unwrap()]
        });
        assert_eq!(out, [Ok(41), Ok(41), Ok(41)]);
    }

    #[test]
    fn collectives_survive_lossy_links_identically() {
        // Tree routing must stay inside the reliable seq/ack machinery:
        // with drops and duplication on, results still match the linear
        // path exactly.
        let plan = FaultPlan::seeded(23)
            .with_drop(0.3)
            .with_duplication(0.2)
            .with_max_retries(64)
            .with_timeout(Duration::from_millis(5));
        let out = run_ranks_with(8, None, plan, |mut h| {
            let bval = if h.rank() == 0 { Some(vec![1u8; 64]) } else { None };
            let b = h.broadcast(0, bval, 1).unwrap();
            let g = h.gather(0, h.rank() as u32, 2).unwrap();
            let a = h.all_reduce(h.rank().to_string(), 3, |x, y| x + &y).unwrap();
            (b, g, a)
        });
        for (r, (b, g, a)) in out.iter().enumerate() {
            assert_eq!(*b, vec![1u8; 64], "rank {r}");
            assert_eq!(*a, "01234567", "rank {r}");
            assert_eq!(g.is_some(), r == 0);
        }
        assert_eq!(out[0].1, Some((0..8).collect::<Vec<u32>>()));
    }
}
