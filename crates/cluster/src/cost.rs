//! Communication cost model and traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear latency/bandwidth model for inter-node transfers, optionally with
/// a second inter-rack tier.
///
/// Transfer time of an `n`-byte message is `latency_s + n / bandwidth_bps`.
/// With `ranks_per_rack > 0` the model is *hierarchical*: ranks `r` and `s`
/// share a rack iff `r / ranks_per_rack == s / ranks_per_rack`, and an edge
/// crossing racks pays the (typically worse) `inter_latency_s` /
/// `inter_bandwidth_bps` tier instead — the shape of a real fat-tree or
/// rack-and-spine cluster, where large-rank simulations must see
/// heterogeneous link costs. The constants are printed beside every
/// reproduced figure so results are interpretable; the defaults approximate
/// the 10 GbE interconnect of the paper's EC2 cluster-compute instances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-message cost in seconds (software + wire latency).
    pub latency_s: f64,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Ranks per rack for the hierarchical tier; `0` means flat (every edge
    /// pays the base tier, the pre-hierarchy behavior).
    pub ranks_per_rack: usize,
    /// Per-message cost of a rack-crossing edge (unused when flat).
    pub inter_latency_s: f64,
    /// Bandwidth of a rack-crossing edge (unused when flat).
    pub inter_bandwidth_bps: f64,
}

impl CostModel {
    /// Flat single-tier model: every edge costs `latency_s + n / bandwidth`.
    pub fn flat(latency_s: f64, bandwidth_bps: f64) -> Self {
        CostModel {
            latency_s,
            bandwidth_bps,
            ranks_per_rack: 0,
            inter_latency_s: 0.0,
            inter_bandwidth_bps: f64::INFINITY,
        }
    }

    /// Two-tier rack model: ranks are grouped `ranks_per_rack` to a rack;
    /// same-rack edges pay the intra tier, rack-crossing edges the inter
    /// tier. The root pseudo-rank (`usize::MAX`) is co-located with rack 0,
    /// so root <-> rack-0 traffic stays intra-rack.
    pub fn hierarchical(
        ranks_per_rack: usize,
        intra_latency_s: f64,
        intra_bandwidth_bps: f64,
        inter_latency_s: f64,
        inter_bandwidth_bps: f64,
    ) -> Self {
        CostModel {
            latency_s: intra_latency_s,
            bandwidth_bps: intra_bandwidth_bps,
            ranks_per_rack,
            inter_latency_s,
            inter_bandwidth_bps,
        }
    }

    /// Approximation of the paper's testbed: 10 GbE, ~40 us end-to-end
    /// message latency (EC2 cluster placement group, MPI software stack).
    pub fn ec2_10gbe() -> Self {
        CostModel::flat(40e-6, 1.25e9)
    }

    /// A zero-cost network: isolates compute scaling from communication.
    pub fn free() -> Self {
        CostModel::flat(0.0, f64::INFINITY)
    }

    /// Seconds to move one `bytes`-sized message over the base (intra) tier.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }

    /// The rack holding rank `r`; the root pseudo-rank maps to rack 0.
    fn rack_of(&self, r: usize) -> usize {
        if r == usize::MAX {
            0
        } else {
            r / self.ranks_per_rack
        }
    }

    /// Seconds to move one `bytes`-sized message from rank `a` to rank `b`.
    ///
    /// Flat models (and same-rack edges of hierarchical ones) produce
    /// exactly [`transfer_time`](Self::transfer_time) — bit-identical, so
    /// enabling the hierarchy never perturbs flat-model timelines.
    pub fn edge_time(&self, a: usize, b: usize, bytes: usize) -> f64 {
        if self.ranks_per_rack == 0 || self.rack_of(a) == self.rack_of(b) {
            self.transfer_time(bytes)
        } else {
            self.inter_latency_s + bytes as f64 / self.inter_bandwidth_bps
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ec2_10gbe()
    }
}

/// Cumulative message/byte counters for a cluster (thread-safe).
///
/// Under fault injection the fault-event counters record what the schedule
/// actually did: attempts lost/duplicated/corrupted in flight,
/// retransmissions the reliable send layer issued, and task redispatches
/// the cluster performed after declaring a rank dead.
#[derive(Debug, Default)]
pub struct TrafficStats {
    msgs: AtomicU64,
    bytes: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
    retries: AtomicU64,
    redispatches: AtomicU64,
    env_packs: AtomicU64,
    seg_scatters: AtomicU64,
    resident_hits: AtomicU64,
    resident_misses: AtomicU64,
    unpack_copied: AtomicU64,
    unpack_aliased: AtomicU64,
    sim_events: AtomicU64,
    sim_peak_heap: AtomicU64,
}

impl TrafficStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one message of `bytes` payload.
    pub fn record(&self, bytes: usize) {
        self.msgs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one transmission attempt lost in flight.
    pub fn record_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one transmission attempt that arrived twice.
    pub fn record_duplicated(&self) {
        self.duplicated.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one transmission attempt damaged in flight.
    pub fn record_corrupted(&self) {
        self.corrupted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one retransmission of an unacknowledged message.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one task moved to a surviving rank.
    pub fn record_redispatch(&self) {
        self.redispatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one serialization of a broadcast environment. With pack-once
    /// payload caching this is exactly one per skeleton call with a
    /// non-empty environment, regardless of node count.
    pub fn record_env_pack(&self) {
        self.env_packs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one resident segment scattered to its home rank. Deliberately
    /// separate from [`record_env_pack`](Self::record_env_pack): the initial
    /// scatter of a persistent collection is *not* an environment pack, so
    /// `env_packs` never double-counts it.
    pub fn record_seg_scatter(&self) {
        self.seg_scatters.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one task that executed on the rank already holding its
    /// resident segment (no input bytes shipped).
    pub fn record_resident_hit(&self) {
        self.resident_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one resident task forced off its home rank (crash/redispatch):
    /// the segment was re-shipped to the surviving executor.
    pub fn record_resident_miss(&self) {
        self.resident_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the byte movement of one root-side result unpack: `copied`
    /// bytes went through a memcpy into fresh allocations, `aliased` bytes
    /// were answered by zero-copy views into the received buffer.
    pub fn record_unpack(&self, copied: u64, aliased: u64) {
        self.unpack_copied.fetch_add(copied, Ordering::Relaxed);
        self.unpack_aliased.fetch_add(aliased, Ordering::Relaxed);
    }

    /// Record one virtual-time simulation: `events` heap events processed
    /// and the event heap's peak length. The event counter accumulates
    /// across dispatches (events/sec is the simulator's throughput metric);
    /// the peak is a high-water mark over all dispatches since the last
    /// [`reset`](Self::reset). The eager core processes no events and
    /// records `(0, 0)`.
    pub fn record_sim(&self, events: u64, peak_heap: u64) {
        self.sim_events.fetch_add(events, Ordering::Relaxed);
        self.sim_peak_heap.fetch_max(peak_heap, Ordering::Relaxed);
    }

    /// Messages recorded so far.
    pub fn messages(&self) -> u64 {
        self.msgs.load(Ordering::Relaxed)
    }

    /// Payload bytes recorded so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Transmission attempts lost in flight.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Transmission attempts delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Transmission attempts damaged in flight.
    pub fn corrupted(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }

    /// Retransmissions issued by the reliable send layer.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Tasks moved to a surviving rank after a failure.
    pub fn redispatches(&self) -> u64 {
        self.redispatches.load(Ordering::Relaxed)
    }

    /// Broadcast-environment serializations recorded so far.
    pub fn env_packs(&self) -> u64 {
        self.env_packs.load(Ordering::Relaxed)
    }

    /// Resident segments scattered so far.
    pub fn seg_scatters(&self) -> u64 {
        self.seg_scatters.load(Ordering::Relaxed)
    }

    /// Resident tasks that ran on their segment's home rank.
    pub fn resident_hits(&self) -> u64 {
        self.resident_hits.load(Ordering::Relaxed)
    }

    /// Resident tasks redispatched off their home rank (segment re-shipped).
    pub fn resident_misses(&self) -> u64 {
        self.resident_misses.load(Ordering::Relaxed)
    }

    /// Bytes memcpy'd out of received buffers during root-side unpacks.
    pub fn unpack_copied(&self) -> u64 {
        self.unpack_copied.load(Ordering::Relaxed)
    }

    /// Bytes aliased in place (zero-copy) during root-side unpacks.
    pub fn unpack_aliased(&self) -> u64 {
        self.unpack_aliased.load(Ordering::Relaxed)
    }

    /// Event-heap events processed by the virtual-time simulator so far.
    pub fn sim_events(&self) -> u64 {
        self.sim_events.load(Ordering::Relaxed)
    }

    /// Peak event-heap length across all simulations since the last reset —
    /// the simulator's resident state high-water mark.
    pub fn sim_peak_heap(&self) -> u64 {
        self.sim_peak_heap.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter. The job service meters each
    /// tenant by differencing snapshots taken around a job's dispatches
    /// ([`TrafficSnapshot::since`]), so per-tenant accounting needs no hook
    /// inside the dispatch path itself.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            messages: self.messages(),
            bytes: self.bytes(),
            dropped: self.dropped(),
            duplicated: self.duplicated(),
            corrupted: self.corrupted(),
            retries: self.retries(),
            redispatches: self.redispatches(),
            env_packs: self.env_packs(),
            seg_scatters: self.seg_scatters(),
            resident_hits: self.resident_hits(),
            resident_misses: self.resident_misses(),
            unpack_copied: self.unpack_copied(),
            unpack_aliased: self.unpack_aliased(),
            sim_events: self.sim_events(),
        }
    }

    /// Zero the counters (between experiments).
    pub fn reset(&self) {
        self.msgs.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        self.duplicated.store(0, Ordering::Relaxed);
        self.corrupted.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.redispatches.store(0, Ordering::Relaxed);
        self.env_packs.store(0, Ordering::Relaxed);
        self.seg_scatters.store(0, Ordering::Relaxed);
        self.resident_hits.store(0, Ordering::Relaxed);
        self.resident_misses.store(0, Ordering::Relaxed);
        self.unpack_copied.store(0, Ordering::Relaxed);
        self.unpack_aliased.store(0, Ordering::Relaxed);
        self.sim_events.store(0, Ordering::Relaxed);
        self.sim_peak_heap.store(0, Ordering::Relaxed);
    }
}

/// A plain-value copy of the cluster's cumulative traffic counters
/// ([`TrafficStats::snapshot`]). Two snapshots bracket an interval of
/// cluster activity; [`since`](Self::since) yields the traffic of exactly
/// that interval. `sim_peak_heap` is a high-water mark, not a counter, so
/// it is deliberately absent — a difference of maxima means nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    pub messages: u64,
    pub bytes: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub corrupted: u64,
    pub retries: u64,
    pub redispatches: u64,
    pub env_packs: u64,
    pub seg_scatters: u64,
    pub resident_hits: u64,
    pub resident_misses: u64,
    pub unpack_copied: u64,
    pub unpack_aliased: u64,
    pub sim_events: u64,
}

impl TrafficSnapshot {
    /// Counter-by-counter difference `self - earlier`: the traffic of the
    /// interval between the two snapshots. Saturating, so a `reset()`
    /// between the snapshots degrades to zeros instead of wrapping.
    pub fn since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            messages: self.messages.saturating_sub(earlier.messages),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            dropped: self.dropped.saturating_sub(earlier.dropped),
            duplicated: self.duplicated.saturating_sub(earlier.duplicated),
            corrupted: self.corrupted.saturating_sub(earlier.corrupted),
            retries: self.retries.saturating_sub(earlier.retries),
            redispatches: self.redispatches.saturating_sub(earlier.redispatches),
            env_packs: self.env_packs.saturating_sub(earlier.env_packs),
            seg_scatters: self.seg_scatters.saturating_sub(earlier.seg_scatters),
            resident_hits: self.resident_hits.saturating_sub(earlier.resident_hits),
            resident_misses: self.resident_misses.saturating_sub(earlier.resident_misses),
            unpack_copied: self.unpack_copied.saturating_sub(earlier.unpack_copied),
            unpack_aliased: self.unpack_aliased.saturating_sub(earlier.unpack_aliased),
            sim_events: self.sim_events.saturating_sub(earlier.sim_events),
        }
    }

    /// Elementwise sum (aggregating one tenant's per-job deltas).
    pub fn plus(&self, other: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            messages: self.messages + other.messages,
            bytes: self.bytes + other.bytes,
            dropped: self.dropped + other.dropped,
            duplicated: self.duplicated + other.duplicated,
            corrupted: self.corrupted + other.corrupted,
            retries: self.retries + other.retries,
            redispatches: self.redispatches + other.redispatches,
            env_packs: self.env_packs + other.env_packs,
            seg_scatters: self.seg_scatters + other.seg_scatters,
            resident_hits: self.resident_hits + other.resident_hits,
            resident_misses: self.resident_misses + other.resident_misses,
            unpack_copied: self.unpack_copied + other.unpack_copied,
            unpack_aliased: self.unpack_aliased + other.unpack_aliased,
            sim_events: self.sim_events + other.sim_events,
        }
    }
}

/// Timing breakdown of one distributed operation.
#[derive(Debug, Clone, PartialEq)]
pub struct DistTiming {
    /// End-to-end time in seconds: wall-clock in `Measured` mode, modeled
    /// makespan in `Virtual` mode.
    pub total_s: f64,
    /// Seconds attributed to communication (modeled from byte counts).
    pub comm_s: f64,
    /// Per-node compute seconds (the max of these bounds the compute span).
    pub node_compute_s: Vec<f64>,
    /// Bytes shipped root -> nodes (sliced input data).
    pub bytes_out: u64,
    /// Bytes shipped nodes -> root (results).
    pub bytes_back: u64,
    /// Total messages in both directions.
    pub messages: u64,
    /// Retransmissions forced by the fault schedule (0 without faults).
    pub retries: u64,
    /// Tasks re-sent to a surviving rank after a failure (0 without faults).
    pub redispatches: u64,
    /// Resident tasks that executed on their segment's home rank.
    pub resident_hits: u64,
    /// Resident tasks whose segment had to be re-shipped to a survivor.
    pub resident_misses: u64,
    /// Result-unpack bytes memcpy'd out of received buffers at the root.
    pub unpack_copied: u64,
    /// Result-unpack bytes aliased in place (zero-copy views) at the root.
    pub unpack_aliased: u64,
}

impl DistTiming {
    /// Compute-only span: the slowest node.
    pub fn compute_span_s(&self) -> f64 {
        self.node_compute_s.iter().cloned().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_affine() {
        let m = CostModel::flat(1e-3, 1e6);
        assert!((m.transfer_time(0) - 1e-3).abs() < 1e-12);
        assert!((m.transfer_time(1_000_000) - 1.001).abs() < 1e-9);
    }

    #[test]
    fn free_model_is_zero() {
        let m = CostModel::free();
        assert_eq!(m.transfer_time(1 << 30), 0.0);
    }

    #[test]
    fn hierarchical_edge_costs_are_pinned() {
        // 4 ranks per rack; intra tier 1ms + 1 MB/s, inter tier 10ms +
        // 0.1 MB/s. Pin the exact edge costs the simulator will charge.
        let m = CostModel::hierarchical(4, 1e-3, 1e6, 10e-3, 1e5);
        // Same rack (ranks 0 and 3 share rack 0): intra tier.
        assert_eq!(m.edge_time(0, 3, 1000), 1e-3 + 1000.0 / 1e6);
        // Rack boundary (rank 3 in rack 0, rank 4 in rack 1): inter tier.
        assert_eq!(m.edge_time(3, 4, 1000), 10e-3 + 1000.0 / 1e5);
        // Far racks cost the same single inter hop (two-tier, not distance).
        assert_eq!(m.edge_time(0, 15, 1000), m.edge_time(3, 4, 1000));
        // The root pseudo-rank lives in rack 0: intra to rack 0, inter out.
        assert_eq!(m.edge_time(usize::MAX, 2, 64), 1e-3 + 64.0 / 1e6);
        assert_eq!(m.edge_time(usize::MAX, 9, 64), 10e-3 + 64.0 / 1e5);
        assert_eq!(m.edge_time(9, usize::MAX, 64), m.edge_time(usize::MAX, 9, 64));
    }

    #[test]
    fn flat_edge_time_matches_transfer_time_bitwise() {
        let m = CostModel::ec2_10gbe();
        for bytes in [0usize, 1, 8, 1 << 12, 1 << 20, 1 << 28] {
            for (a, b) in [(usize::MAX, 0), (0, usize::MAX), (3, 7), (1000, 2000)] {
                assert_eq!(
                    m.edge_time(a, b, bytes).to_bits(),
                    m.transfer_time(bytes).to_bits(),
                    "flat edge {a}->{b} must be bit-identical for {bytes} bytes"
                );
            }
        }
    }

    #[test]
    fn sim_counters_accumulate_max_and_reset() {
        let s = TrafficStats::new();
        s.record_sim(100, 32);
        s.record_sim(50, 16);
        assert_eq!(s.sim_events(), 150);
        assert_eq!(s.sim_peak_heap(), 32, "peak is a max, not a sum");
        s.record_sim(0, 64);
        assert_eq!(s.sim_peak_heap(), 64);
        s.reset();
        assert_eq!(s.sim_events(), 0);
        assert_eq!(s.sim_peak_heap(), 0);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let s = TrafficStats::new();
        s.record(100);
        s.record(50);
        s.record_dropped();
        s.record_duplicated();
        s.record_corrupted();
        s.record_retry();
        s.record_retry();
        s.record_redispatch();
        assert_eq!(s.messages(), 2);
        assert_eq!(s.bytes(), 150);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.duplicated(), 1);
        assert_eq!(s.corrupted(), 1);
        assert_eq!(s.retries(), 2);
        assert_eq!(s.redispatches(), 1);
        s.reset();
        assert_eq!(s.messages(), 0);
        assert_eq!(s.bytes(), 0);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.duplicated(), 0);
        assert_eq!(s.corrupted(), 0);
        assert_eq!(s.retries(), 0);
        assert_eq!(s.redispatches(), 0);
    }

    #[test]
    fn snapshots_difference_and_sum() {
        let s = TrafficStats::new();
        s.record(100);
        let before = s.snapshot();
        s.record(50);
        s.record_retry();
        s.record_env_pack();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.messages, 1);
        assert_eq!(delta.bytes, 50);
        assert_eq!(delta.retries, 1);
        assert_eq!(delta.env_packs, 1);
        assert_eq!(delta.redispatches, 0);
        let doubled = delta.plus(&delta);
        assert_eq!(doubled.bytes, 100);
        assert_eq!(doubled.messages, 2);
        // A reset between snapshots saturates to zero instead of wrapping.
        s.reset();
        assert_eq!(s.snapshot().since(&before).bytes, 0);
    }

    #[test]
    fn compute_span_is_max() {
        let t = DistTiming {
            total_s: 1.0,
            comm_s: 0.1,
            node_compute_s: vec![0.2, 0.9, 0.5],
            bytes_out: 0,
            bytes_back: 0,
            messages: 0,
            retries: 0,
            redispatches: 0,
            resident_hits: 0,
            resident_misses: 0,
            unpack_copied: 0,
            unpack_aliased: 0,
        };
        assert_eq!(t.compute_span_s(), 0.9);
    }
}
