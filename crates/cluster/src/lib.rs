//! Simulated message-passing cluster: triolet-rs's distributed substrate.
//!
//! The Triolet paper (§3.4) runs on MPI across 8 nodes; this reproduction
//! replaces MPI with an in-process cluster that exercises the identical code
//! paths — data is genuinely packed to bytes before it crosses a node
//! boundary and unpacked after — while making the *communication cost* an
//! explicit, configurable [`CostModel`] instead of an artifact of whatever
//! network the host happens to have.
//!
//! Two execution modes ([`ExecMode`]):
//!
//! * `Measured` — node tasks run concurrently on real OS threads, each node
//!   owning a real work-stealing [`ThreadPool`](triolet_pool::ThreadPool).
//!   Timing is wall-clock. Correct but meaningless as a scaling measurement
//!   on a host with fewer cores than the simulated cluster.
//! * `Virtual` — node tasks run one at a time (sound: cluster nodes share
//!   nothing between collectives); every leaf task is timed and replayed
//!   through the greedy virtual-time scheduler of [`triolet_pool::vtime`];
//!   the distributed makespan combines per-node compute times with modeled
//!   transfer times over the *actually serialized* byte counts. This is how
//!   the paper's 128-core scaling figures are regenerated on a small host.
//!
//! The [`comm`] module additionally provides a real rank-to-rank typed
//! message layer (send/recv/broadcast/scatter/gather/all-reduce) used in
//! `Measured` mode and by tests — the analogue of the MPI primitives the
//! paper's runtime wraps. The [`fault`] module adds a deterministic,
//! seeded fault schedule ([`FaultPlan`]) that the comm layer and the
//! cluster dispatcher consult to inject message loss, duplication,
//! corruption, and node crashes — and to recover from them, so skeleton
//! results stay bit-identical with faults on.

pub mod cluster;
pub mod comm;
pub mod cost;
pub mod fault;
pub mod node;
pub mod sim;
pub mod tree;

pub use cluster::{
    Cluster, ClusterConfig, DispatchError, DistOutcome, PipelineMode, RawTask, ResidentSpec,
    Topology,
};
pub use comm::{Comm, CommError, CommHandle, REPLY_TAG_BIT};
pub use cost::{CostModel, DistTiming, TrafficSnapshot, TrafficStats};
pub use fault::{FaultDecision, FaultPlan};
pub use node::{ExecMode, NodeCtx, ResidentStore};
pub use sim::SimCore;
pub use triolet_obs::{TraceData, TraceHandle, Track};
