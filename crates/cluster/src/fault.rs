//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] is a *schedule*, not a random process: every decision —
//! whether a given transmission attempt is dropped, duplicated, or
//! corrupted — is a pure hash of `(seed, from, to, tag, seq, attempt)`.
//! Two runs with the same plan see the identical fault sequence regardless
//! of thread interleaving, which is what lets the recovery tests assert
//! bit-identical results and exact retry counts.
//!
//! The plan models three failure classes:
//!
//! * **Message loss / corruption / duplication** — per-attempt coin flips
//!   with the configured probabilities. Corruption is detected by the
//!   comm layer's payload checksum and handled like a loss (the intact
//!   retransmission is what gets delivered), so faults cost time and
//!   traffic but never change results.
//! * **Node crashes** — `crashed_mask` marks whole ranks as down before the
//!   operation starts. A crashed rank receives traffic but never
//!   acknowledges it; senders observe a timeout after `max_retries`
//!   attempts and report [`CommError::NodeDown`](crate::CommError).
//! * **Detection parameters** — `timeout` bounds each wait for an
//!   acknowledgement and `max_retries` bounds retransmissions before a
//!   peer is declared dead.

use std::time::Duration;

/// The outcome of one transmission-attempt coin flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// The attempt reaches the receiver's queue at all.
    pub deliver: bool,
    /// A second copy of the attempt also arrives (delivered attempts only).
    pub duplicate: bool,
    /// The delivered bytes are damaged in flight (checksum will mismatch).
    pub corrupt: bool,
}

impl FaultDecision {
    /// True when this attempt arrives intact and will be acknowledged.
    pub fn arrives_intact(&self) -> bool {
        self.deliver && !self.corrupt
    }
}

/// Seeded, per-rank schedule of injected faults. `Copy` so it rides inside
/// [`ClusterConfig`](crate::ClusterConfig) without breaking its `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Root of every fault decision hash.
    pub seed: u64,
    /// Probability an attempt is lost in flight.
    pub drop_prob: f64,
    /// Probability a delivered attempt arrives twice.
    pub dup_prob: f64,
    /// Probability a delivered attempt arrives damaged.
    pub corrupt_prob: f64,
    /// Bit `r` set means rank `r` is crashed for the whole operation.
    /// Supports ranks 0..64, far beyond the simulated shapes.
    pub crashed_mask: u64,
    /// Retransmissions before a silent peer is declared down.
    pub max_retries: u32,
    /// How long each wait for an acknowledgement lasts.
    pub timeout: Duration,
}

impl FaultPlan {
    /// The no-fault plan: every probability zero, nobody crashed. This is
    /// the default everywhere; with it, the comm layer takes its original
    /// fast path and behaves exactly as before the fault layer existed.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            corrupt_prob: 0.0,
            crashed_mask: 0,
            max_retries: 8,
            timeout: Duration::from_millis(20),
        }
    }

    /// A fault-free plan carrying `seed`, ready for builder calls.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::none() }
    }

    /// Set the per-attempt drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Set the per-attempt duplication probability.
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.dup_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Set the per-attempt corruption probability.
    pub fn with_corruption(mut self, p: f64) -> Self {
        self.corrupt_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Mark `rank` as crashed.
    pub fn with_crash(mut self, rank: usize) -> Self {
        assert!(rank < 64, "crashed_mask covers ranks 0..64");
        self.crashed_mask |= 1 << rank;
        self
    }

    /// Set the retransmission budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Set the per-acknowledgement wait.
    pub fn with_timeout(mut self, t: Duration) -> Self {
        self.timeout = t;
        self
    }

    /// True when any fault can actually occur. Inactive plans cost nothing:
    /// callers skip the ack protocol entirely.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.crashed_mask != 0
    }

    /// Whether `rank` is scheduled as crashed.
    pub fn crashed(&self, rank: usize) -> bool {
        rank < 64 && (self.crashed_mask >> rank) & 1 == 1
    }

    /// The fault decision for one transmission attempt. Pure: depends only
    /// on the plan and the attempt's coordinates.
    pub fn decide(
        &self,
        from: usize,
        to: usize,
        tag: u32,
        seq: u64,
        attempt: u32,
    ) -> FaultDecision {
        let base = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(mix(from as u64))
            .wrapping_add(mix((to as u64) << 20))
            .wrapping_add(mix((tag as u64) << 40))
            .wrapping_add(mix(seq.wrapping_mul(0x2545_f491_4f6c_dd1d)))
            .wrapping_add(mix(attempt as u64 ^ 0xdead_beef));
        FaultDecision {
            deliver: unit(mix(base ^ 0x01)) >= self.drop_prob,
            duplicate: unit(mix(base ^ 0x02)) < self.dup_prob,
            corrupt: unit(mix(base ^ 0x03)) < self.corrupt_prob,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// splitmix64 finalizer: avalanche `x` into 64 well-mixed bits.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Map 64 hash bits to a uniform f64 in [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// FNV-1a over the payload: the integrity check the comm layer uses to turn
/// in-flight corruption into a detectable (and hence retryable) loss.
pub(crate) fn payload_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::seeded(42).with_drop(0.3).with_duplication(0.1).with_corruption(0.1);
        for attempt in 0..16 {
            let a = plan.decide(0, 3, 7, 21, attempt);
            let b = plan.decide(0, 3, 7, 21, attempt);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn decisions_vary_with_every_coordinate() {
        let plan = FaultPlan::seeded(1).with_drop(0.5);
        let base: Vec<bool> = (0..64).map(|s| plan.decide(0, 1, 0, s, 0).deliver).collect();
        let other_seed: Vec<bool> = (0..64)
            .map(|s| FaultPlan::seeded(2).with_drop(0.5).decide(0, 1, 0, s, 0).deliver)
            .collect();
        let other_attempt: Vec<bool> =
            (0..64).map(|s| plan.decide(0, 1, 0, s, 1).deliver).collect();
        assert_ne!(base, other_seed, "seed must perturb the schedule");
        assert_ne!(base, other_attempt, "attempt number must perturb the schedule");
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::seeded(7).with_drop(0.25);
        let dropped = (0..4000).filter(|&s| !plan.decide(0, 1, 0, s, 0).deliver).count();
        let rate = dropped as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "observed drop rate {rate}");
    }

    #[test]
    fn none_is_inactive_and_crash_flags_work() {
        assert!(!FaultPlan::none().is_active());
        let plan = FaultPlan::seeded(0).with_crash(2);
        assert!(plan.is_active());
        assert!(plan.crashed(2));
        assert!(!plan.crashed(1));
        assert!(!plan.crashed(63));
    }

    #[test]
    fn zero_probability_always_delivers() {
        let plan = FaultPlan::seeded(9);
        for s in 0..256 {
            let d = plan.decide(1, 0, 5, s, 0);
            assert!(d.arrives_intact() && !d.duplicate);
        }
    }

    #[test]
    fn checksum_detects_any_single_flip() {
        let data: Vec<u8> = (0..200u8).collect();
        let sum = payload_checksum(&data);
        for i in 0..data.len() {
            let mut bad = data.clone();
            bad[i] ^= 0x40;
            assert_ne!(payload_checksum(&bad), sum, "flip at {i} undetected");
        }
    }
}
