//! The virtual-time simulator cores: eager walk vs discrete-event heap.
//!
//! Virtual mode separates *what* a dispatch does (fault routing, task
//! execution, byte accounting — all decided before any timeline exists)
//! from *when* its pieces happen on the modeled clock. This module owns the
//! "when": given a [`SimProblem`] — the durations of every timed piece of
//! one collective (environment-broadcast edges, per-task root pack times,
//! send hops with their ack/retry timeouts folded in, node compute times,
//! return trips) — a core produces the full [`SimTimes`] timeline.
//!
//! Two interchangeable cores:
//!
//! * [`SimCore::Eager`] — the original three-pass walk: replay the
//!   environment tree with a per-participant clock vector, chain every
//!   send on the root NIC, then sweep tasks in order. Simple, but each
//!   collective step allocates `O(participants)` clock state and the walk
//!   is structured around full-vector passes.
//! * [`SimCore::Event`] (the default) — a single binary event heap of
//!   timestamped sends, receives, ack/retry-extended hops, and task
//!   completions, popped in deterministic `(time, push-order)` order. A
//!   skeleton call is processed in `O(E log E)` heap operations with
//!   `O(ranks)` resident state, which is what makes 1k–10k-rank topologies
//!   benchable in CI.
//!
//! Both cores run against reusable [`SimScratch`] buffers owned by the
//! cluster, so a collective step allocates no per-step clock vectors
//! (capacity is retained across dispatches). The cores are *bit-identical*:
//! every `f64` in [`SimTimes`] is produced by the same additions and
//! `max` chains in the same order, so makespans, trace span bounds, and
//! streamed-arrival times agree to the last bit — property-tested in
//! `tests/proptest_scale.rs` and asserted in-dispatch by
//! [`ClusterConfig::with_sim_check`](crate::ClusterConfig::with_sim_check).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which virtual-time core computes dispatch timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimCore {
    /// The pre-event three-pass walk (kept for ablation and equivalence
    /// testing).
    Eager,
    /// The discrete-event heap (the default).
    #[default]
    Event,
}

/// One environment-broadcast edge, reduced to what the timeline needs: the
/// participant positions it connects, the destination's cluster rank, and
/// its full duration (every transmission copy plus every ack timeout).
pub(crate) struct SimEnvEdge {
    /// Sender's index into the participant list (0 = root).
    pub sender_pos: usize,
    /// Destination's index into the participant list.
    pub dest_pos: usize,
    /// Destination's cluster rank (what task execution is gated on).
    pub dest_rank: usize,
    /// Seconds the edge occupies its sender's NIC.
    pub edge_s: f64,
}

/// One task, reduced to its timed pieces.
pub(crate) struct SimTask {
    /// Root-side pack seconds charged immediately before this task's first
    /// hop (already zeroed by the caller under `PipelineMode::Barrier`,
    /// which charges packing as one prologue lump in the start clock).
    pub pack_s: f64,
    /// Rank that finally executes the task.
    pub exec: usize,
    /// Wall-measured node seconds (compute + result pack).
    pub elapsed: f64,
    /// Return-trip seconds (every copy plus every ack timeout).
    pub ret_s: f64,
    /// This task's slice of [`SimProblem::hop_s`].
    pub hops: std::ops::Range<usize>,
}

/// Everything a core needs to lay one dispatch on the virtual clock.
pub(crate) struct SimProblem<'a> {
    /// Root clock when the first payload may leave (prep + barrier pack).
    pub start_clock: f64,
    /// Cluster size (per-rank state is sized by this).
    pub n_nodes: usize,
    /// Environment-broadcast participant count (0 when no broadcast).
    pub n_participants: usize,
    /// Broadcast edges in transmission order (each sender's edges are
    /// contiguous, and a participant's arrival edge precedes its outgoing
    /// edges — the invariant both cores rely on).
    pub env_edges: &'a [SimEnvEdge],
    /// Durations of every task hop, flattened task-major.
    pub hop_s: &'a [f64],
    /// The tasks, in dispatch order.
    pub tasks: &'a [SimTask],
}

/// The complete timeline of one dispatch, in seconds from the root-prep
/// origin. Every field is a pure function of the [`SimProblem`]; the two
/// cores must agree on all of it bitwise.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SimTimes {
    /// `(start, done)` of each environment edge, in edge order.
    pub env_bounds: Vec<(f64, f64)>,
    /// When the root began packing each task (== first hop start when the
    /// task has no pack time).
    pub pack_start: Vec<f64>,
    /// `(start, done)` of every hop, aligned with [`SimProblem::hop_s`].
    pub hop_bounds: Vec<(f64, f64)>,
    /// When each task's payload finished leaving the root.
    pub send_done: Vec<f64>,
    /// `(start, done)` of each task's node execution.
    pub node_bounds: Vec<(f64, f64)>,
    /// When each task's result reached the root.
    pub ret_done: Vec<f64>,
    /// Root clock after its last send (where the streamed unpacker starts).
    pub root_free: f64,
    /// Heap events processed (0 for the eager core).
    pub events: u64,
    /// Peak event-heap length (0 for the eager core).
    pub peak_heap: usize,
}

impl SimTimes {
    fn with_capacity(n_env: usize, n_hops: usize, n_tasks: usize, start_clock: f64) -> Self {
        SimTimes {
            env_bounds: Vec::with_capacity(n_env),
            pack_start: Vec::with_capacity(n_tasks),
            hop_bounds: Vec::with_capacity(n_hops),
            send_done: Vec::with_capacity(n_tasks),
            node_bounds: Vec::with_capacity(n_tasks),
            ret_done: Vec::with_capacity(n_tasks),
            root_free: start_clock,
            events: 0,
            peak_heap: 0,
        }
    }
}

/// One heap entry: a timestamped state change. Ordering is `(time,
/// push-order)` — `total_cmp` on the time, monotonic sequence number as the
/// tie-break — so the pop order is fully deterministic and independent of
/// heap internals.
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

enum EventKind {
    /// An environment edge finished transmitting (receive at its dest).
    EnvDone { edge: usize },
    /// The root NIC is free to pack and send the next task.
    RootSend { task: usize },
    /// One send hop — all its retries and ack timeouts — completed.
    HopDone { task: usize, hop: usize },
    /// A task's payload arrived intact at its executing rank.
    TaskArrive { task: usize },
    /// A task's node execution completed.
    TaskDone { task: usize },
    /// A task's result arrived back at the root.
    ReturnArrive,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time.to_bits() == other.time.to_bits() && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// Reusable per-dispatch state, owned by the cluster so collective steps
/// allocate no fresh clock vectors: `clear` + `resize` retain capacity, and
/// the event heap keeps its backing storage across calls. Everything here
/// is `O(ranks + participants)` resident.
#[derive(Default)]
pub(crate) struct SimScratch {
    /// Eager core: per-participant NIC clock (the old `sender_clock`).
    pos_clock: Vec<f64>,
    /// Environment arrival time per rank (0.0 without a broadcast).
    env_arrival: Vec<f64>,
    /// Whether the environment has reached each rank yet (event core).
    env_ready: Vec<bool>,
    /// When each rank finishes its current task.
    node_free: Vec<f64>,
    /// Per participant: index of its first outgoing env edge.
    first_edge: Vec<usize>,
    /// Per participant: outgoing env edge count.
    n_out: Vec<usize>,
    /// Per participant: outgoing env edges completed so far (event core).
    done_out: Vec<usize>,
    /// Per rank: tasks that arrived before the environment did.
    pending: Vec<Vec<usize>>,
    /// The event heap (`Reverse` turns `BinaryHeap`'s max order into the
    /// min-time order a simulator pops in).
    heap: BinaryHeap<Reverse<Event>>,
}

fn refill<T: Clone>(v: &mut Vec<T>, n: usize, val: T) {
    v.clear();
    v.resize(n, val);
}

impl SimScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n_nodes: usize, n_participants: usize, env_gates: bool) {
        refill(&mut self.pos_clock, n_participants, 0.0);
        refill(&mut self.env_arrival, n_nodes, 0.0);
        refill(&mut self.env_ready, n_nodes, !env_gates);
        refill(&mut self.node_free, n_nodes, 0.0);
        refill(&mut self.first_edge, n_participants, 0);
        refill(&mut self.n_out, n_participants, 0);
        refill(&mut self.done_out, n_participants, 0);
        if self.pending.len() < n_nodes {
            self.pending.resize_with(n_nodes, Vec::new);
        }
        for p in &mut self.pending {
            p.clear();
        }
        self.heap.clear();
    }
}

/// Run the configured core.
pub(crate) fn run(core: SimCore, p: &SimProblem<'_>, scratch: &mut SimScratch) -> SimTimes {
    match core {
        SimCore::Eager => run_eager(p, scratch),
        SimCore::Event => run_event(p, scratch),
    }
}

/// The original walk: replay the environment tree over a per-participant
/// clock vector, chain sends on the root NIC, sweep tasks in order.
pub(crate) fn run_eager(p: &SimProblem<'_>, s: &mut SimScratch) -> SimTimes {
    s.reset(p.n_nodes, p.n_participants, false);
    let mut times =
        SimTimes::with_capacity(p.env_edges.len(), p.hop_s.len(), p.tasks.len(), p.start_clock);
    let mut clock = p.start_clock;

    // Environment phase: each sender's NIC serializes its own edges while
    // ranks already holding the payload relay concurrently.
    if !p.env_edges.is_empty() {
        s.pos_clock[0] = clock;
        for e in p.env_edges {
            let start = s.pos_clock[e.sender_pos];
            let done = start + e.edge_s;
            s.pos_clock[e.sender_pos] = done;
            s.pos_clock[e.dest_pos] = done;
            s.env_arrival[e.dest_rank] = done;
            times.env_bounds.push((start, done));
        }
        clock = s.pos_clock[0];
    }

    // Send phase: the root packs (streamed) and transmits task payloads
    // back to back on its single NIC, each hop paying every retry and ack
    // timeout before the next begins.
    for t in p.tasks {
        times.pack_start.push(clock);
        if t.pack_s > 0.0 {
            clock += t.pack_s;
        }
        for h in t.hops.clone() {
            let start = clock;
            clock += p.hop_s[h];
            times.hop_bounds.push((start, clock));
        }
        times.send_done.push(clock);
    }

    // Node phase: a task starts when its payload, its rank, and the
    // broadcast environment are all ready; tasks landing on the same rank
    // serialize on its clock.
    for (i, t) in p.tasks.iter().enumerate() {
        let start = times.send_done[i].max(s.node_free[t.exec]).max(s.env_arrival[t.exec]);
        let done = start + t.elapsed;
        s.node_free[t.exec] = done;
        times.node_bounds.push((start, done));
    }

    // Return phase: results stream back independently.
    for (i, t) in p.tasks.iter().enumerate() {
        times.ret_done.push(times.node_bounds[i].1 + t.ret_s);
    }
    times.root_free = clock;
    times
}

/// The discrete-event core: one heap, popped in `(time, push-order)` order.
///
/// Per-rank state replaces the eager core's full-vector passes: a rank
/// holds its NIC clock, its environment-arrival flag, and a (normally
/// empty) list of tasks parked awaiting the environment. Values are
/// bit-identical to the eager walk because every handler performs the same
/// additions and `max` chains on the same operands — the heap only decides
/// *when* a handler runs, never what it computes — and because arrivals at
/// any rank are processed in task order (root sends serialize them; the
/// sequence tie-break preserves that order at equal timestamps).
pub(crate) fn run_event(p: &SimProblem<'_>, s: &mut SimScratch) -> SimTimes {
    let n_tasks = p.tasks.len();
    s.reset(p.n_nodes, p.n_participants, !p.env_edges.is_empty());
    let mut times = SimTimes {
        env_bounds: vec![(0.0, 0.0); p.env_edges.len()],
        pack_start: vec![0.0; n_tasks],
        hop_bounds: vec![(0.0, 0.0); p.hop_s.len()],
        send_done: vec![0.0; n_tasks],
        node_bounds: vec![(0.0, 0.0); n_tasks],
        ret_done: vec![0.0; n_tasks],
        root_free: p.start_clock,
        events: 0,
        peak_heap: 0,
    };

    // Each sender's outgoing edges form one contiguous run of the edge
    // list (ascending-sender transmission order), so per-participant
    // `(first, count, completed)` cursors replace any per-edge queues.
    for (idx, e) in p.env_edges.iter().enumerate() {
        if s.n_out[e.sender_pos] == 0 {
            s.first_edge[e.sender_pos] = idx;
        } else {
            debug_assert_eq!(
                s.first_edge[e.sender_pos] + s.n_out[e.sender_pos],
                idx,
                "env edges of one sender must be contiguous"
            );
        }
        s.n_out[e.sender_pos] += 1;
    }

    let mut seq = 0u64;
    macro_rules! push {
        ($time:expr, $kind:expr) => {{
            seq += 1;
            s.heap.push(Reverse(Event { time: $time, seq, kind: $kind }));
            if s.heap.len() > times.peak_heap {
                times.peak_heap = s.heap.len();
            }
        }};
    }
    // An edge occupies its sender's NIC from `start`; its receive fires at
    // `start + edge_s`.
    macro_rules! send_env_edge {
        ($idx:expr, $start:expr) => {{
            let idx = $idx;
            let start = $start;
            let done = start + p.env_edges[idx].edge_s;
            times.env_bounds[idx] = (start, done);
            push!(done, EventKind::EnvDone { edge: idx });
        }};
    }
    // A task starts once its payload, its rank, and the environment are
    // all present — the identical `max` chain the eager core evaluates.
    macro_rules! start_task {
        ($i:expr) => {{
            let i = $i;
            let exec = p.tasks[i].exec;
            let start = times.send_done[i].max(s.node_free[exec]).max(s.env_arrival[exec]);
            let done = start + p.tasks[i].elapsed;
            s.node_free[exec] = done;
            times.node_bounds[i] = (start, done);
            push!(done, EventKind::TaskDone { task: i });
        }};
    }

    // Kick off: the root's NIC either relays the environment first or, with
    // no broadcast, turns straight to task sends.
    if p.env_edges.is_empty() {
        if n_tasks > 0 {
            push!(p.start_clock, EventKind::RootSend { task: 0 });
        }
    } else {
        send_env_edge!(s.first_edge[0], p.start_clock);
    }

    while let Some(Reverse(ev)) = s.heap.pop() {
        times.events += 1;
        let now = ev.time;
        match ev.kind {
            EventKind::EnvDone { edge } => {
                let e = &p.env_edges[edge];
                // Sender's NIC moves to its next queued edge.
                s.done_out[e.sender_pos] += 1;
                let k = s.done_out[e.sender_pos];
                if k < s.n_out[e.sender_pos] {
                    send_env_edge!(s.first_edge[e.sender_pos] + k, now);
                } else if e.sender_pos == 0 {
                    // The root finished relaying: its NIC turns to tasks.
                    times.root_free = now;
                    if n_tasks > 0 {
                        push!(now, EventKind::RootSend { task: 0 });
                    }
                }
                // The destination now holds the payload: it starts its own
                // relays and releases any tasks parked on the environment.
                s.env_arrival[e.dest_rank] = now;
                s.env_ready[e.dest_rank] = true;
                if s.n_out[e.dest_pos] > 0 {
                    send_env_edge!(s.first_edge[e.dest_pos], now);
                }
                for j in 0..s.pending[e.dest_rank].len() {
                    let parked = s.pending[e.dest_rank][j];
                    start_task!(parked);
                }
                s.pending[e.dest_rank].clear();
            }
            EventKind::RootSend { task } => {
                times.pack_start[task] = now;
                let mut clock = now;
                if p.tasks[task].pack_s > 0.0 {
                    clock += p.tasks[task].pack_s;
                }
                let hops = p.tasks[task].hops.clone();
                if let Some(h) = hops.clone().next() {
                    let done = clock + p.hop_s[h];
                    times.hop_bounds[h] = (clock, done);
                    push!(done, EventKind::HopDone { task, hop: h });
                } else {
                    // A task always has at least one planned hop; keep the
                    // degenerate case consistent anyway.
                    times.send_done[task] = clock;
                    times.root_free = clock;
                    push!(clock, EventKind::TaskArrive { task });
                    if task + 1 < n_tasks {
                        push!(clock, EventKind::RootSend { task: task + 1 });
                    }
                }
            }
            EventKind::HopDone { task, hop } => {
                if hop + 1 < p.tasks[task].hops.end {
                    // Timed out on a dead rank: the root redispatches to
                    // the next candidate, back on its own NIC.
                    let done = now + p.hop_s[hop + 1];
                    times.hop_bounds[hop + 1] = (now, done);
                    push!(done, EventKind::HopDone { task, hop: hop + 1 });
                } else {
                    times.send_done[task] = now;
                    times.root_free = now;
                    push!(now, EventKind::TaskArrive { task });
                    if task + 1 < n_tasks {
                        push!(now, EventKind::RootSend { task: task + 1 });
                    }
                }
            }
            EventKind::TaskArrive { task } => {
                let exec = p.tasks[task].exec;
                if s.env_ready[exec] {
                    start_task!(task);
                } else {
                    s.pending[exec].push(task);
                }
            }
            EventKind::TaskDone { task } => {
                let done = now + p.tasks[task].ret_s;
                times.ret_done[task] = done;
                push!(done, EventKind::ReturnArrive);
            }
            EventKind::ReturnArrive => {}
        }
    }
    times
}

/// Panic unless two timelines agree to the last bit — the in-dispatch
/// equivalence gate behind `ClusterConfig::with_sim_check`.
pub(crate) fn assert_cores_agree(eager: &SimTimes, event: &SimTimes) {
    fn pairs(name: &str, a: &[(f64, f64)], b: &[(f64, f64)]) {
        assert_eq!(a.len(), b.len(), "sim-check: {name} length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.0.to_bits() == y.0.to_bits() && x.1.to_bits() == y.1.to_bits(),
                "sim-check: {name}[{i}] diverged: eager {x:?} vs event {y:?}"
            );
        }
    }
    fn scalars(name: &str, a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len(), "sim-check: {name} length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "sim-check: {name}[{i}] diverged: eager {x} vs event {y}"
            );
        }
    }
    pairs("env_bounds", &eager.env_bounds, &event.env_bounds);
    scalars("pack_start", &eager.pack_start, &event.pack_start);
    pairs("hop_bounds", &eager.hop_bounds, &event.hop_bounds);
    scalars("send_done", &eager.send_done, &event.send_done);
    pairs("node_bounds", &eager.node_bounds, &event.node_bounds);
    scalars("ret_done", &eager.ret_done, &event.ret_done);
    assert!(
        eager.root_free.to_bits() == event.root_free.to_bits(),
        "sim-check: root_free diverged: eager {} vs event {}",
        eager.root_free,
        event.root_free
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(p: &SimProblem<'_>) -> (SimTimes, SimTimes) {
        let mut scratch = SimScratch::new();
        let eager = run_eager(p, &mut scratch);
        let event = run_event(p, &mut scratch);
        assert_cores_agree(&eager, &event);
        (eager, event)
    }

    #[test]
    fn trivial_two_tasks_chain_on_the_root_nic() {
        let hop_s = vec![0.5, 0.25];
        let tasks = vec![
            SimTask { pack_s: 0.1, exec: 0, elapsed: 2.0, ret_s: 0.5, hops: 0..1 },
            SimTask { pack_s: 0.1, exec: 1, elapsed: 1.0, ret_s: 0.5, hops: 1..2 },
        ];
        let p = SimProblem {
            start_clock: 1.0,
            n_nodes: 2,
            n_participants: 0,
            env_edges: &[],
            hop_s: &hop_s,
            tasks: &tasks,
        };
        let (t, _) = check(&p);
        // Root: 1.0 +pack .1 +hop .5 => send_done[0]; +pack .1 +hop .25 =>
        // send_done[1]. Expected values use the same chained additions.
        let s0 = 1.0 + 0.1 + 0.5;
        let s1 = s0 + 0.1 + 0.25;
        assert_eq!(t.send_done, vec![s0, s1]);
        assert_eq!(t.node_bounds, vec![(s0, s0 + 2.0), (s1, s1 + 1.0)]);
        assert_eq!(t.ret_done, vec![s0 + 2.0 + 0.5, s1 + 1.0 + 0.5]);
        assert_eq!(t.root_free, s1);
    }

    #[test]
    fn same_rank_tasks_serialize_on_its_clock() {
        let hop_s = vec![0.1, 0.1, 0.1];
        let tasks: Vec<SimTask> = (0..3)
            .map(|i| SimTask { pack_s: 0.0, exec: 0, elapsed: 1.0, ret_s: 0.0, hops: i..i + 1 })
            .collect();
        let p = SimProblem {
            start_clock: 0.0,
            n_nodes: 1,
            n_participants: 0,
            env_edges: &[],
            hop_s: &hop_s,
            tasks: &tasks,
        };
        let (t, _) = check(&p);
        // Arrivals at 0.1/0.2/0.3 but rank 0 runs them back to back.
        assert_eq!(t.node_bounds, vec![(0.1, 1.1), (1.1, 2.1), (2.1, 3.1)]);
    }

    #[test]
    fn late_environment_parks_early_arrivals() {
        // Env relays down a slow chain (root -> r0 -> r1 -> r2) while task
        // payloads leave the root the moment its own relay is done: tasks
        // for r1 and r2 arrive *before* their environment and must park
        // until the relay reaches them. Both cores must agree exactly.
        let env = vec![
            SimEnvEdge { sender_pos: 0, dest_pos: 1, dest_rank: 0, edge_s: 1.0 },
            SimEnvEdge { sender_pos: 1, dest_pos: 2, dest_rank: 1, edge_s: 1.0 },
            SimEnvEdge { sender_pos: 2, dest_pos: 3, dest_rank: 2, edge_s: 1.0 },
        ];
        let hop_s = vec![0.01, 0.01, 0.01];
        let tasks: Vec<SimTask> = (0..3)
            .map(|i| SimTask { pack_s: 0.0, exec: i, elapsed: 0.1, ret_s: 0.2, hops: i..i + 1 })
            .collect();
        let p = SimProblem {
            start_clock: 0.0,
            n_nodes: 3,
            n_participants: 4,
            env_edges: &env,
            hop_s: &hop_s,
            tasks: &tasks,
        };
        let (t, ev) = check(&p);
        // The root is free after its single relay at 1.0; payloads land at
        // 1.01/1.02/1.03, but the environment reaches r1 at 2.0 and r2 at
        // 3.0 — those tasks start at their env arrival, not their payload.
        assert_eq!(t.env_bounds, vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        assert_eq!(t.send_done, vec![1.01, 1.02, 1.03]);
        assert_eq!(t.node_bounds[0].0, 1.01);
        assert_eq!(t.node_bounds[1].0, 2.0);
        assert_eq!(t.node_bounds[2].0, 3.0);
        assert!(ev.events > 0 && ev.peak_heap > 0);
    }

    #[test]
    fn relayed_tree_broadcast_matches_between_cores() {
        // A 5-participant binomial-ish shape: root sends to pos 1 and 2;
        // pos 1 relays to 3 and 4 concurrently with the root's second send.
        let env = vec![
            SimEnvEdge { sender_pos: 0, dest_pos: 1, dest_rank: 0, edge_s: 1.0 },
            SimEnvEdge { sender_pos: 0, dest_pos: 2, dest_rank: 1, edge_s: 1.0 },
            SimEnvEdge { sender_pos: 1, dest_pos: 3, dest_rank: 2, edge_s: 1.0 },
            SimEnvEdge { sender_pos: 1, dest_pos: 4, dest_rank: 3, edge_s: 1.0 },
        ];
        let hop_s = vec![0.5; 4];
        let tasks: Vec<SimTask> = (0..4)
            .map(|i| SimTask { pack_s: 0.05, exec: i, elapsed: 0.3, ret_s: 0.1, hops: i..i + 1 })
            .collect();
        let p = SimProblem {
            start_clock: 0.0,
            n_nodes: 4,
            n_participants: 5,
            env_edges: &env,
            hop_s: &hop_s,
            tasks: &tasks,
        };
        let (t, _) = check(&p);
        // Root's NIC: edges at (0,1) and (1,2); pos 1 relays at (1,2),(2,3).
        assert_eq!(t.env_bounds, vec![(0.0, 1.0), (1.0, 2.0), (1.0, 2.0), (2.0, 3.0)]);
        // Rank 3's payload can arrive before its env (sends start at 2.0);
        // its task start is gated on the 3.0 arrival.
        assert!(t.node_bounds[3].0 >= 3.0);
    }

    #[test]
    fn empty_problem_is_fine() {
        let p = SimProblem {
            start_clock: 0.25,
            n_nodes: 4,
            n_participants: 0,
            env_edges: &[],
            hop_s: &[],
            tasks: &[],
        };
        let (t, _) = check(&p);
        assert_eq!(t.root_free, 0.25);
        assert!(t.send_done.is_empty());
    }

    #[test]
    fn scratch_reuse_is_clean_across_calls() {
        // Run a big problem, then a small one, on the same scratch: stale
        // state must not leak (this is the satellite replacing the
        // per-collective `sender_clock` allocations with reused buffers).
        let mut scratch = SimScratch::new();
        let hop_big: Vec<f64> = (0..64).map(|i| 0.01 * (i + 1) as f64).collect();
        let tasks_big: Vec<SimTask> = (0..64)
            .map(|i| SimTask {
                pack_s: 0.001,
                exec: i % 8,
                elapsed: 0.5,
                ret_s: 0.01,
                hops: i..i + 1,
            })
            .collect();
        let big = SimProblem {
            start_clock: 0.0,
            n_nodes: 8,
            n_participants: 0,
            env_edges: &[],
            hop_s: &hop_big,
            tasks: &tasks_big,
        };
        let _ = run_event(&big, &mut scratch);
        let hop_small = vec![1.0];
        let tasks_small =
            vec![SimTask { pack_s: 0.0, exec: 0, elapsed: 1.0, ret_s: 1.0, hops: 0..1 }];
        let small = SimProblem {
            start_clock: 0.0,
            n_nodes: 1,
            n_participants: 0,
            env_edges: &[],
            hop_s: &hop_small,
            tasks: &tasks_small,
        };
        let reused = run_event(&small, &mut scratch);
        let fresh = run_event(&small, &mut SimScratch::new());
        assert_cores_agree(&fresh, &reused);
    }
}
