//! The cluster itself: scatter work to nodes, gather results, account time.
//!
//! With an active [`FaultPlan`] the dispatcher also *recovers*: a rank that
//! never acknowledges its task payload (scheduled drops, or a crash) is
//! detected by timeout after the plan's retry budget, and the task is
//! re-dispatched to the next surviving rank. Because the fault schedule is
//! a pure function of the plan's seed, the routing decisions are made
//! before any task executes, so each `FnOnce` task body runs exactly once —
//! on whichever rank finally receives it — and results come back in task
//! order, bit-identical to a fault-free run.

use std::sync::Mutex;
use std::time::Instant;

use triolet_obs::{tree_edge_args, TraceData, TraceHandle, Track};
use triolet_pool::ThreadPool;
use triolet_serial::{packed, unpack_all, unpack_counters, Wire, WireError};

use crate::cost::{CostModel, DistTiming, TrafficStats};
use crate::fault::FaultPlan;
use crate::node::{ExecMode, NodeCtx, ResidentStore};
use crate::sim::{self, SimCore, SimEnvEdge, SimProblem, SimTask};
use crate::tree;

/// Pseudo-rank of the root in fault-schedule coordinates (the root is not a
/// cluster rank; any value outside `0..nodes` works, this one is obvious).
const ROOT: usize = usize::MAX;
/// Fault-schedule tag for root -> node task payloads.
const FWD_TAG: u32 = 0;
/// Fault-schedule tag for node -> root results.
const RET_TAG: u32 = 1;
/// Fault-schedule tag for the broadcast-environment payload.
const ENV_TAG: u32 = 2;
/// Fault-schedule tag for resident-segment scatter payloads.
const SEG_TAG: u32 = 3;
/// Attempt cap on scatter edges (like the env/return paths: both endpoints
/// are treated as alive, so only a near-1.0 drop rate can exhaust this).
const SEG_ATTEMPT_CAP: u32 = 10_000;
/// Attempt cap on environment-broadcast edges. Both endpoints of every edge
/// are alive by construction (participants are executing ranks), so like the
/// return path this only trips on a near-1.0 drop rate.
const ENV_ATTEMPT_CAP: u32 = 10_000;
/// Attempt cap on the return path. Executing ranks are alive by
/// construction and the root never gives up on them, so only a plan with a
/// drop rate of essentially 1.0 can hit this.
const RETURN_ATTEMPT_CAP: u32 = 10_000;

/// Run `f` and return its result plus the `(copied, aliased)` unpack byte
/// deltas it produced on this thread — the root-side accounting hook for the
/// zero-copy unpack path. Must run on the thread doing the unpacking (the
/// counters are thread-local).
fn with_unpack_delta<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let (c0, a0) = unpack_counters();
    let out = f();
    let (c1, a1) = unpack_counters();
    (out, c1.wrapping_sub(c0), a1.wrapping_sub(a0))
}

/// How one-to-all payloads (the broadcast environment) are routed.
///
/// `Tree` sends over the contiguous-subtree binomial tree of [`tree`]: the
/// root transmits `O(log N)` copies and ranks that already hold the payload
/// relay it concurrently, so the last arrival is `O(log N)` edge times
/// behind the root instead of `O(N)`. `Linear` is the pre-tree behavior
/// (root loops over every destination), kept for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Root sends every copy itself, serialized on its one NIC.
    Linear,
    /// Binomial-tree relay (the default).
    #[default]
    Tree,
}

/// How the root overlaps its own work with node compute.
///
/// `Streamed` (the default) pipelines the distributed hot path: the root
/// charges each task's pack time immediately before that task's send — so
/// rank k computes while the root still packs for rank k+1 — and unpacks
/// each result the moment it arrives instead of barriering on the slowest
/// node. `Barrier` is the pre-pipeline behavior (pack everything, send
/// everything, wait for every result, then unpack everything), kept for
/// equivalence tests and ablation. Results are bit-identical in both modes:
/// only the modeled timeline and the trace structure differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Serial root prologue/epilogue: pack-all, send-all, wait-all,
    /// unpack-all.
    Barrier,
    /// Overlap root-side pack/send/unpack with node compute (the default).
    #[default]
    Streamed,
}

/// A result payload gathered at the root failed to decode.
///
/// The pre-PR-4 dispatcher panicked (`expect("result roundtrip")`) here;
/// like the comm layer's recv/gather (`CommError::Decode`), a damaged or
/// mistyped result now surfaces as a typed error through the `try_*`
/// entry points instead.
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchError {
    /// Task `task`'s result bytes did not decode as the expected type.
    Decode {
        /// Index of the task whose result failed to decode.
        task: usize,
        /// The underlying wire-format error.
        source: WireError,
    },
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::Decode { task, source } => {
                write!(f, "task {task}'s result failed to decode at the root: {source}")
            }
        }
    }
}

impl std::error::Error for DispatchError {}

/// Cluster shape and cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of nodes (MPI ranks).
    pub nodes: usize,
    /// Worker threads per node (the paper's 16 cores/node).
    pub threads_per_node: usize,
    /// Real-thread or virtual-time execution.
    pub mode: ExecMode,
    /// Inter-node transfer cost model.
    pub cost: CostModel,
    /// Injected-fault schedule ([`FaultPlan::none`] by default).
    pub faults: FaultPlan,
    /// Record a span/event timeline for every dispatch (off by default;
    /// the disabled path is a single branch per record site).
    pub trace: bool,
    /// Route for one-to-all payloads (tree by default).
    pub topology: Topology,
    /// Root-side overlap strategy (streamed by default).
    pub pipeline: PipelineMode,
    /// Which virtual-time core lays dispatch timelines (the event heap by
    /// default; the eager walk is kept for ablation and equivalence).
    pub core: SimCore,
    /// Run *both* cores on every virtual dispatch and panic unless their
    /// timelines agree to the bit (equivalence gates and benches; off by
    /// default — it doubles simulation work).
    pub sim_check: bool,
}

impl ClusterConfig {
    /// Virtual-time cluster with the default (paper-like) network model.
    pub fn virtual_cluster(nodes: usize, threads_per_node: usize) -> Self {
        ClusterConfig {
            nodes: nodes.max(1),
            threads_per_node: threads_per_node.max(1),
            mode: ExecMode::Virtual,
            cost: CostModel::default(),
            faults: FaultPlan::none(),
            trace: false,
            topology: Topology::default(),
            pipeline: PipelineMode::default(),
            core: SimCore::default(),
            sim_check: false,
        }
    }

    /// Real-thread cluster (for correctness tests on small shapes).
    pub fn measured(nodes: usize, threads_per_node: usize) -> Self {
        ClusterConfig {
            nodes: nodes.max(1),
            threads_per_node: threads_per_node.max(1),
            mode: ExecMode::Measured,
            cost: CostModel::default(),
            faults: FaultPlan::none(),
            trace: false,
            topology: Topology::default(),
            pipeline: PipelineMode::default(),
            core: SimCore::default(),
            sim_check: false,
        }
    }

    /// Replace the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replace the fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enable or disable timeline recording.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Replace the one-to-all routing topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Replace the root-side overlap strategy.
    pub fn with_pipeline(mut self, pipeline: PipelineMode) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Replace the virtual-time simulator core.
    pub fn with_sim_core(mut self, core: SimCore) -> Self {
        self.core = core;
        self
    }

    /// Enable or disable the in-dispatch dual-core equivalence check: every
    /// virtual dispatch runs *both* cores and panics unless the timelines
    /// agree bitwise.
    pub fn with_sim_check(mut self, sim_check: bool) -> Self {
        self.sim_check = sim_check;
        self
    }

    /// Total cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.threads_per_node
    }
}

/// Results of one distributed operation, with its timing breakdown.
#[derive(Debug)]
pub struct DistOutcome<R> {
    /// One result per task, in task order (under faults a task's result may
    /// have been computed on a different rank than its index).
    pub results: Vec<R>,
    /// When each task's result was unpacked and ready at the root, in task
    /// order, on the outcome's timeline. Under `PipelineMode::Streamed`
    /// these are staggered arrival-order times (the streaming-merge
    /// consumer folds the completed prefix as it grows); under `Barrier`
    /// every entry equals `timing.total_s`.
    pub arrivals: Vec<f64>,
    /// Timing and traffic breakdown.
    pub timing: DistTiming,
    /// Recorded timeline (empty unless [`ClusterConfig::trace`] is set).
    /// Times share one origin: the start of root-side preparation.
    pub trace: TraceData,
}

/// A task's claim on a resident segment of a persistent collection.
///
/// A task carrying one of these reads its input from node-local storage
/// rather than a root-shipped payload: dispatched to `home`, it pays zero
/// input bytes on the wire (a *resident hit*); forced onto any other rank —
/// a crash redispatch — the dispatcher re-ships the full `seg_bytes` to the
/// survivor (a *resident miss*), so recovery stays possible and its cost
/// stays visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentSpec {
    /// Collection id in the cluster's [`ResidentStore`].
    pub id: u64,
    /// Rank holding the segment this task reads.
    pub home: usize,
    /// Bytes re-shipped if the task must execute off its home rank.
    pub seg_bytes: usize,
    /// Ghost/halo bytes fetched from neighbor segments on *every* call
    /// (zero for non-halo views).
    pub halo_bytes: usize,
}

/// One node's share of a distributed operation, in prepared form: the
/// payload size it would occupy on the wire plus the work to run on the node.
pub struct RawTask<'a, R> {
    /// Bytes the node's input payload occupies when serialized.
    pub wire_bytes: usize,
    /// Root-side seconds spent slicing/packing this task's payload. Charged
    /// on the root clock immediately before the task's send under
    /// `PipelineMode::Streamed` (so later packs overlap earlier nodes'
    /// compute) and as one prologue lump under `Barrier`.
    pub pack_s: f64,
    /// Resident-segment claim: `Some` routes the task to the segment's home
    /// rank and makes its input bytes placement-dependent (zero on a hit,
    /// `seg_bytes` on a redispatch); `None` is the ordinary ship-the-slice
    /// path.
    pub resident: Option<ResidentSpec>,
    /// The node task; must route compute through the [`NodeCtx`].
    pub work: Box<dyn FnOnce(&NodeCtx<'_>) -> R + Send + 'a>,
}

impl<'a, R> RawTask<'a, R> {
    /// Input bytes this task puts on the wire for a hop targeting `dest`.
    ///
    /// Ordinary tasks ship `wire_bytes` to every candidate rank. Resident
    /// tasks ship only halo bytes to their home rank and additionally the
    /// full segment to anyone else.
    fn hop_bytes(&self, dest: usize) -> usize {
        match self.resident {
            None => self.wire_bytes,
            Some(spec) => {
                let base = self.wire_bytes + spec.halo_bytes;
                if dest == spec.home {
                    base
                } else {
                    base + spec.seg_bytes
                }
            }
        }
    }

    /// The rank this task is routed to first (its home).
    fn home(&self, i: usize) -> usize {
        self.resident.map_or(i, |spec| spec.home)
    }
}

/// How one task's payload traveled from the root: one entry per rank tried.
struct Hop {
    /// The rank this hop targeted.
    dest: usize,
    /// Transmission attempts to this rank (1 + retries).
    attempts: u32,
    /// Attempts that additionally arrived twice.
    dups: u32,
    /// Attempts lost in flight.
    drops: u32,
    /// Attempts damaged in flight.
    corrupts: u32,
    /// Whether the final attempt arrived intact (false => moved on).
    delivered: bool,
}

impl Hop {
    fn failed_attempts(&self) -> u32 {
        self.attempts - u32::from(self.delivered)
    }
}

/// The full (pre-computed, deterministic) route of one task.
struct TaskRoute {
    /// The rank that finally executes the task.
    exec: usize,
    hops: Vec<Hop>,
    retries: u64,
    redispatches: u64,
}

/// The result's trip back to the root.
struct ReturnRoute {
    attempts: u32,
    dups: u32,
    drops: u32,
    corrupts: u32,
}

/// Decide, purely from the fault schedule, where task `i` ends up running.
/// Candidates are tried in order: the task's `home` rank first (its index
/// for ordinary tasks, its resident segment's rank for resident ones), then
/// the surviving ranks after it (wrapping), each with the plan's full retry
/// budget. Moving to the next candidate is one redispatch. The fault
/// schedule is keyed on the task index `i`, not the home rank, so a
/// resident and a re-broadcast run of the same call see the same faults.
fn plan_route(plan: &FaultPlan, n_nodes: usize, home: usize, i: usize) -> TaskRoute {
    if !plan.is_active() {
        return TaskRoute {
            exec: home,
            hops: vec![Hop {
                dest: home,
                attempts: 1,
                dups: 0,
                drops: 0,
                corrupts: 0,
                delivered: true,
            }],
            retries: 0,
            redispatches: 0,
        };
    }
    let mut candidates = vec![home];
    for off in 1..n_nodes {
        let r = (home + off) % n_nodes;
        if !plan.crashed(r) {
            candidates.push(r);
        }
    }
    let mut hops = Vec::new();
    let mut retries = 0u64;
    for (ci, &dest) in candidates.iter().enumerate() {
        let mut hop = Hop { dest, attempts: 0, dups: 0, drops: 0, corrupts: 0, delivered: false };
        for attempt in 0..=plan.max_retries {
            hop.attempts += 1;
            retries += u64::from(attempt > 0);
            let d = plan.decide(ROOT, dest, FWD_TAG, i as u64, attempt);
            if !d.deliver {
                hop.drops += 1;
                continue;
            }
            if d.duplicate {
                hop.dups += 1;
            }
            if d.corrupt {
                hop.corrupts += 1;
                continue;
            }
            if !plan.crashed(dest) {
                hop.delivered = true;
                break;
            }
            // Crashed ranks receive but never acknowledge: keep retrying.
        }
        let delivered = hop.delivered;
        hops.push(hop);
        if delivered {
            return TaskRoute { exec: dest, hops, retries, redispatches: ci as u64 };
        }
    }
    panic!(
        "fault plan leaves no route for task {i}: \
         every surviving candidate exhausted its retry budget"
    );
}

/// Decide how many attempts task `i`'s result needs to reach the root from
/// `exec`. Both endpoints are alive, so the sender retries past the normal
/// budget rather than declaring the root dead.
fn plan_return(plan: &FaultPlan, exec: usize, i: usize) -> ReturnRoute {
    let mut ret = ReturnRoute { attempts: 0, dups: 0, drops: 0, corrupts: 0 };
    if !plan.is_active() {
        ret.attempts = 1;
        return ret;
    }
    for attempt in 0..RETURN_ATTEMPT_CAP {
        ret.attempts += 1;
        let d = plan.decide(exec, ROOT, RET_TAG, i as u64, attempt);
        if !d.deliver {
            ret.drops += 1;
            continue;
        }
        if d.duplicate {
            ret.dups += 1;
        }
        if d.corrupt {
            ret.corrupts += 1;
            continue;
        }
        return ret;
    }
    panic!("fault plan never lets task {i}'s result reach the root");
}

/// One planned edge of the environment broadcast. Positions index the
/// participant list (`0` = root, `1..` = executing ranks); the fault
/// outcomes are decided up front from the schedule, like task routes.
struct EnvEdge {
    sender_pos: usize,
    dest_pos: usize,
    /// Destination's depth below the root (1 for every linear edge).
    depth: u32,
    /// Sender's child count (its serialized send burst).
    fanout: usize,
    attempts: u32,
    dups: u32,
    drops: u32,
    corrupts: u32,
}

impl EnvEdge {
    fn copies(&self) -> u64 {
        (self.attempts + self.dups) as u64
    }

    fn failed(&self) -> u32 {
        self.attempts - 1
    }
}

/// Plan the environment broadcast over `participants` (ranks; index 0 is the
/// root's pseudo-rank slot). Every edge retries through the fault schedule
/// until it delivers intact — both endpoints are alive by construction — so
/// the edge list is a pure function of the plan, ready for both the
/// mode-independent traffic accounting and virtual-time charging.
fn plan_env_edges(plan: &FaultPlan, topology: Topology, participants: &[usize]) -> Vec<EnvEdge> {
    let m = participants.len();
    let shape: Vec<(usize, usize, u32, usize)> = match topology {
        Topology::Tree => tree::edges(m)
            .into_iter()
            .map(|(s, c)| (s, c, tree::depth(c), tree::fanout(s, m)))
            .collect(),
        Topology::Linear => (1..m).map(|c| (0, c, 1, m - 1)).collect(),
    };
    shape
        .into_iter()
        .map(|(s, c, depth, fanout)| {
            let sender_rank = if s == 0 { ROOT } else { participants[s] };
            let dest_rank = participants[c];
            let mut edge = EnvEdge {
                sender_pos: s,
                dest_pos: c,
                depth,
                fanout,
                attempts: 0,
                dups: 0,
                drops: 0,
                corrupts: 0,
            };
            if !plan.is_active() {
                edge.attempts = 1;
                return edge;
            }
            for attempt in 0..ENV_ATTEMPT_CAP {
                edge.attempts += 1;
                let d = plan.decide(sender_rank, dest_rank, ENV_TAG, c as u64, attempt);
                if !d.deliver {
                    edge.drops += 1;
                    continue;
                }
                if d.duplicate {
                    edge.dups += 1;
                }
                if d.corrupt {
                    edge.corrupts += 1;
                    continue;
                }
                return edge;
            }
            panic!("fault plan never delivers the environment to rank {dest_rank}");
        })
        .collect()
}

/// A simulated cluster of multicore nodes.
///
/// `run` is the core collective: it ships one serialized payload to each
/// participating node, executes the task there (two-level: the task uses the
/// node's [`NodeCtx`] for thread parallelism), and gathers serialized
/// results back to the root — the fork-join pattern Triolet's distributed
/// skeletons compile to.
pub struct Cluster {
    config: ClusterConfig,
    pools: Vec<ThreadPool>,
    stats: TrafficStats,
    resident: ResidentStore,
    /// Reusable simulator state (clock vectors, event heap): capacity is
    /// retained across dispatches, so a collective step allocates no
    /// per-step `sender_clock` vectors.
    sim_scratch: Mutex<sim::SimScratch>,
}

impl Cluster {
    /// Bring up a cluster. `Measured` mode spawns `nodes * threads_per_node`
    /// real worker threads; `Virtual` mode spawns none.
    pub fn new(config: ClusterConfig) -> Self {
        let pools = match config.mode {
            ExecMode::Measured => {
                (0..config.nodes).map(|_| ThreadPool::new(config.threads_per_node)).collect()
            }
            ExecMode::Virtual => Vec::new(),
        };
        Cluster {
            config,
            pools,
            stats: TrafficStats::new(),
            resident: ResidentStore::new(),
            sim_scratch: Mutex::new(sim::SimScratch::new()),
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.config.nodes
    }

    /// Threads per node.
    pub fn threads_per_node(&self) -> usize {
        self.config.threads_per_node
    }

    /// Cumulative traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The node-local store tracking resident collection segments.
    pub fn resident_store(&self) -> &ResidentStore {
        &self.resident
    }

    /// Scatter the segments of a persistent collection to their home ranks:
    /// one `(rank, bytes)` send per segment, serialized on the root NIC,
    /// each retrying through the fault schedule until delivered intact.
    ///
    /// This is the *one-time* placement cost of a resident collection; every
    /// later skeleton call over it ships zero input bytes (see
    /// [`ResidentSpec`]). Segments land in the [`ResidentStore`] and each
    /// send is counted in [`TrafficStats::seg_scatters`] — deliberately not
    /// in `env_packs`, so environment accounting never double-counts the
    /// scatter. Returns the modeled timing and a trace rooted at a
    /// `dist:scatter` span.
    pub fn scatter_segments(&self, id: u64, segs: &[(usize, usize)]) -> (DistTiming, TraceData) {
        let plan = self.config.faults;
        let cost = self.config.cost;
        let timeout_s = plan.timeout.as_secs_f64();
        let tr = if self.config.trace { TraceHandle::recording() } else { TraceHandle::disabled() };
        let mut clock = 0.0f64;
        let mut comm_s = 0.0f64;
        let mut bytes_out = 0u64;
        let mut messages = 0u64;
        let mut retries = 0u64;
        for &(rank, bytes) in segs {
            self.resident.register(id, rank, bytes);
            self.stats.record_seg_scatter();
            // Plan the edge like an env edge: both endpoints treated alive
            // (crash interaction happens at *call* time, via redispatch).
            let mut attempts = 0u32;
            let mut dups = 0u32;
            let mut drops = 0u32;
            let mut corrupts = 0u32;
            for attempt in 0..SEG_ATTEMPT_CAP {
                attempts += 1;
                if !plan.is_active() {
                    break;
                }
                let d = plan.decide(ROOT, rank, SEG_TAG, rank as u64, attempt);
                if !d.deliver {
                    drops += 1;
                    continue;
                }
                if d.duplicate {
                    dups += 1;
                }
                if d.corrupt {
                    corrupts += 1;
                    continue;
                }
                break;
            }
            let copies = (attempts + dups) as u64;
            for _ in 0..copies {
                self.stats.record(bytes);
            }
            for _ in 0..drops {
                self.stats.record_dropped();
            }
            for _ in 0..corrupts {
                self.stats.record_corrupted();
            }
            for _ in 0..dups {
                self.stats.record_duplicated();
            }
            let failed = (attempts - 1) as u64;
            for _ in 0..failed {
                self.stats.record_retry();
            }
            messages += copies;
            bytes_out += bytes as u64 * copies;
            retries += failed;
            let dt = cost.edge_time(ROOT, rank, bytes);
            let edge_s = dt * copies as f64 + timeout_s * failed as f64;
            if tr.enabled() {
                tr.span(
                    "send",
                    "comm",
                    Track::Root,
                    clock,
                    clock + edge_s,
                    vec![
                        ("seg", id.into()),
                        ("dest", rank.into()),
                        ("bytes", bytes.into()),
                        ("attempts", (attempts as u64).into()),
                    ],
                );
            }
            clock += edge_s;
            comm_s += edge_s;
        }
        if tr.enabled() {
            tr.span(
                "dist:scatter",
                "dist",
                Track::Root,
                0.0,
                clock,
                vec![
                    ("seg", id.into()),
                    ("segments", segs.len().into()),
                    ("bytes", bytes_out.into()),
                ],
            );
        }
        (
            DistTiming {
                total_s: clock,
                comm_s,
                node_compute_s: vec![0.0; self.config.nodes],
                bytes_out,
                bytes_back: 0,
                messages,
                retries,
                redispatches: 0,
                resident_hits: 0,
                resident_misses: 0,
                unpack_copied: 0,
                unpack_aliased: 0,
            },
            tr.take(),
        )
    }

    /// Scatter `payloads` (one per node, at most `nodes()`), run `task` on
    /// each node, gather the results.
    ///
    /// Every payload genuinely crosses the node boundary as bytes: it is
    /// packed at the root, unpacked on the node, and the result travels back
    /// the same way. Transfer times come from the [`CostModel`] applied to
    /// the real byte counts.
    pub fn run<T, R, F>(&self, payloads: Vec<T>, task: F) -> DistOutcome<R>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(&NodeCtx<'_>, T) -> R + Send + Sync,
    {
        self.try_run(payloads, task).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run`](Self::run), surfacing a result that fails to decode at the
    /// root as [`DispatchError::Decode`] instead of panicking.
    pub fn try_run<T, R, F>(
        &self,
        payloads: Vec<T>,
        task: F,
    ) -> Result<DistOutcome<R>, DispatchError>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(&NodeCtx<'_>, T) -> R + Send + Sync,
    {
        assert!(
            payloads.len() <= self.config.nodes,
            "more payloads ({}) than nodes ({})",
            payloads.len(),
            self.config.nodes
        );
        // Root packs every outgoing message (the paper observed message
        // construction itself becoming a bottleneck for sgemm — we charge
        // it, per payload, so the streamed dispatcher can overlap rank k+1's
        // pack with rank k's compute).
        let task = &task;
        let tasks: Vec<RawTask<'_, R>> = payloads
            .into_iter()
            .map(|payload| {
                let t0 = Instant::now();
                let msg = packed(&payload);
                let pack_s = t0.elapsed().as_secs_f64();
                drop(payload);
                RawTask {
                    wire_bytes: msg.len(),
                    pack_s,
                    resident: None,
                    work: Box::new(move |ctx: &NodeCtx<'_>| {
                        // Deserialization happens on the node: charge it (and
                        // let the trace show how much of it was zero-copy).
                        let payload: T =
                            ctx.unpack_sequential(|| unpack_all(msg).expect("payload roundtrip"));
                        task(ctx, payload)
                    }),
                }
            })
            .collect();
        self.dispatch(tasks, 0.0, 0)
    }

    /// Run the same (cloned) payload on every node: the broadcast pattern.
    pub fn run_broadcast<T, R, F>(&self, payload: T, task: F) -> DistOutcome<R>
    where
        T: Wire + Send + Clone,
        R: Wire + Send,
        F: Fn(&NodeCtx<'_>, T) -> R + Send + Sync,
    {
        let payloads = vec![payload; self.config.nodes];
        self.run(payloads, task)
    }

    /// Lowest-level collective: run one prepared task per node.
    ///
    /// Used by the skeleton engine, whose payloads are sliced indexers: the
    /// closure carries the (already serialization-roundtripped) data
    /// natively — code plus deserialized bytes, exactly what arrives at a
    /// real node — while `wire_bytes` declares the payload size for the cost
    /// model and traffic accounting. Each task must route its compute
    /// through the provided [`NodeCtx`] so virtual time observes it.
    pub fn run_raw<'a, R>(&self, tasks: Vec<RawTask<'a, R>>) -> DistOutcome<R>
    where
        R: Wire + Send,
    {
        self.try_run_raw(tasks).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_raw`](Self::run_raw), surfacing root-side decode failures as
    /// [`DispatchError`] instead of panicking.
    pub fn try_run_raw<'a, R>(
        &self,
        tasks: Vec<RawTask<'a, R>>,
    ) -> Result<DistOutcome<R>, DispatchError>
    where
        R: Wire + Send,
    {
        assert!(
            tasks.len() <= self.config.nodes,
            "more tasks ({}) than nodes ({})",
            tasks.len(),
            self.config.nodes
        );
        self.dispatch(tasks, 0.0, 0)
    }

    /// Like [`run_raw`](Self::run_raw), but additionally charges one
    /// `bcast_bytes`-sized shared payload (the packed closure environment)
    /// broadcast from the root to every *executing* rank over the
    /// configured [`Topology`] before any slice payload goes out.
    ///
    /// The environment is accounted once per broadcast edge — not once per
    /// task — and in virtual time a task cannot start before its rank
    /// holds the environment. `bcast_bytes == 0` (the unit environment)
    /// charges nothing.
    pub fn run_raw_with_broadcast<'a, R>(
        &self,
        tasks: Vec<RawTask<'a, R>>,
        bcast_bytes: usize,
    ) -> DistOutcome<R>
    where
        R: Wire + Send,
    {
        self.try_run_raw_with_broadcast(tasks, bcast_bytes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`run_raw_with_broadcast`](Self::run_raw_with_broadcast), surfacing
    /// root-side decode failures as [`DispatchError`] instead of panicking.
    pub fn try_run_raw_with_broadcast<'a, R>(
        &self,
        tasks: Vec<RawTask<'a, R>>,
        bcast_bytes: usize,
    ) -> Result<DistOutcome<R>, DispatchError>
    where
        R: Wire + Send,
    {
        assert!(
            tasks.len() <= self.config.nodes,
            "more tasks ({}) than nodes ({})",
            tasks.len(),
            self.config.nodes
        );
        self.dispatch(tasks, 0.0, bcast_bytes)
    }

    /// The one dispatcher behind `run` and `run_raw`: plan every task's
    /// route through the fault schedule, execute each task once on its
    /// final rank, account all traffic (including lost/duplicated attempts
    /// and retransmissions), and gather results in task order.
    ///
    /// Under [`PipelineMode::Streamed`] the root's own pack/unpack work is
    /// pipelined against node compute: task k+1's pack is charged right
    /// before its send (so rank k already computes), and each result is
    /// unpacked the moment it arrives rather than after the slowest node.
    /// [`PipelineMode::Barrier`] keeps the serial prologue/epilogue. Both
    /// modes produce bit-identical results and traffic accounting — a
    /// redispatched task's result still lands in its original task slot.
    fn dispatch<'a, R>(
        &self,
        tasks: Vec<RawTask<'a, R>>,
        root_prep_s: f64,
        bcast_bytes: usize,
    ) -> Result<DistOutcome<R>, DispatchError>
    where
        R: Wire + Send,
    {
        let plan = self.config.faults;
        let n_nodes = self.config.nodes;
        let n_tasks = tasks.len();
        if plan.is_active() {
            assert!(
                (0..n_nodes).any(|r| !plan.crashed(r)),
                "fault plan crashes every node: nothing can recover"
            );
        }
        let routes: Vec<TaskRoute> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| plan_route(&plan, n_nodes, t.home(i), i))
            .collect();

        // Forward-path traffic and fault-event accounting (mode-independent:
        // the schedule, not the executor, decides what happens on the wire).
        // Resident tasks pay per-hop bytes: the control descriptor (plus any
        // halo) to the home rank, the full segment only when redispatch
        // forces execution off-home.
        let mut bytes_out = 0u64;
        let mut messages = 0u64;
        let mut retries = 0u64;
        let mut redispatches = 0u64;
        let mut resident_hits = 0u64;
        let mut resident_misses = 0u64;
        for (t, route) in tasks.iter().zip(&routes) {
            for hop in &route.hops {
                let w = t.hop_bytes(hop.dest);
                let copies = (hop.attempts + hop.dups) as u64;
                for _ in 0..copies {
                    self.stats.record(w);
                }
                messages += copies;
                bytes_out += w as u64 * copies;
                for _ in 0..hop.drops {
                    self.stats.record_dropped();
                }
                for _ in 0..hop.corrupts {
                    self.stats.record_corrupted();
                }
                for _ in 0..hop.dups {
                    self.stats.record_duplicated();
                }
            }
            for _ in 0..route.retries {
                self.stats.record_retry();
            }
            for _ in 0..route.redispatches {
                self.stats.record_redispatch();
            }
            retries += route.retries;
            redispatches += route.redispatches;
            if let Some(spec) = t.resident {
                if route.exec == spec.home {
                    self.stats.record_resident_hit();
                    resident_hits += 1;
                } else {
                    self.stats.record_resident_miss();
                    resident_misses += 1;
                }
            }
        }

        // Environment broadcast: one shared payload reaches every executing
        // rank, routed by the configured topology. Planned up front like
        // task routes, so both modes account identical traffic.
        let mut participants: Vec<usize> = Vec::new();
        let env_edges: Vec<EnvEdge> = if bcast_bytes > 0 && n_tasks > 0 {
            let mut execs: Vec<usize> = routes.iter().map(|r| r.exec).collect();
            execs.sort_unstable();
            execs.dedup();
            participants.push(ROOT);
            participants.extend(execs);
            plan_env_edges(&plan, self.config.topology, &participants)
        } else {
            Vec::new()
        };
        for e in &env_edges {
            for _ in 0..e.copies() {
                self.stats.record(bcast_bytes);
            }
            messages += e.copies();
            bytes_out += bcast_bytes as u64 * e.copies();
            for _ in 0..e.drops {
                self.stats.record_dropped();
            }
            for _ in 0..e.corrupts {
                self.stats.record_corrupted();
            }
            for _ in 0..e.dups {
                self.stats.record_duplicated();
            }
            for _ in 0..e.failed() {
                self.stats.record_retry();
            }
            retries += e.failed() as u64;
        }

        let cost = self.config.cost;
        let timeout_s = plan.timeout.as_secs_f64();
        let tpn = self.config.threads_per_node;
        let tr = if self.config.trace { TraceHandle::recording() } else { TraceHandle::disabled() };
        if root_prep_s > 0.0 {
            tr.span("root:pack", "prep", Track::Root, 0.0, root_prep_s, vec![]);
        }
        // Root-side pack seconds, measured per task. `Barrier` charges the
        // sum as one prologue lump before anything leaves the root (the
        // pre-pipeline timeline); `Streamed` charges each task's share
        // right before its own send, so rank k's compute overlaps the pack
        // for rank k+1.
        let total_pack: f64 = tasks.iter().map(|t| t.pack_s).sum();

        match self.config.mode {
            ExecMode::Virtual => {
                let streamed = self.config.pipeline == PipelineMode::Streamed;
                // Root prologue: prep runs first; `Barrier` additionally
                // charges the whole pack lump before anything leaves.
                let mut start_clock = root_prep_s;
                if !streamed && total_pack > 0.0 {
                    tr.span(
                        "root:pack",
                        "prep",
                        Track::Root,
                        start_clock,
                        start_clock + total_pack,
                        vec![],
                    );
                    start_clock += total_pack;
                }

                // --- Reduce the dispatch to pure durations (a SimProblem).
                // comm_s accumulates in canonical order — environment edges,
                // then task hops, then returns below — so the breakdown is
                // bit-identical whichever core lays the timeline.
                let mut comm_s = 0.0f64;
                let mut sim_env: Vec<SimEnvEdge> = Vec::with_capacity(env_edges.len());
                let mut env_dt: Vec<f64> = Vec::with_capacity(env_edges.len());
                for e in &env_edges {
                    let sender_rank =
                        if e.sender_pos == 0 { ROOT } else { participants[e.sender_pos] };
                    let dest_rank = participants[e.dest_pos];
                    let dt = cost.edge_time(sender_rank, dest_rank, bcast_bytes);
                    let edge_s = dt * e.copies() as f64 + timeout_s * e.failed() as f64;
                    comm_s += edge_s;
                    env_dt.push(dt);
                    sim_env.push(SimEnvEdge {
                        sender_pos: e.sender_pos,
                        dest_pos: e.dest_pos,
                        dest_rank,
                        edge_s,
                    });
                }
                let n_hops: usize = routes.iter().map(|r| r.hops.len()).sum();
                let mut hop_s: Vec<f64> = Vec::with_capacity(n_hops);
                let mut hop_dt: Vec<f64> = Vec::with_capacity(n_hops);
                let mut hop_wire: Vec<usize> = Vec::with_capacity(n_hops);
                let mut pack_s_v: Vec<f64> = Vec::with_capacity(n_tasks);
                let mut resident_v: Vec<Option<ResidentSpec>> = Vec::with_capacity(n_tasks);
                let mut sim_tasks: Vec<SimTask> = Vec::with_capacity(n_tasks);
                for (t, route) in tasks.iter().zip(&routes) {
                    let h0 = hop_s.len();
                    for hop in &route.hops {
                        let w = t.hop_bytes(hop.dest);
                        let dt = cost.edge_time(ROOT, hop.dest, w);
                        let s = dt * (hop.attempts + hop.dups) as f64
                            + timeout_s * hop.failed_attempts() as f64;
                        comm_s += s;
                        hop_s.push(s);
                        hop_dt.push(dt);
                        hop_wire.push(w);
                    }
                    pack_s_v.push(t.pack_s);
                    resident_v.push(t.resident);
                    sim_tasks.push(SimTask {
                        pack_s: if streamed { t.pack_s } else { 0.0 },
                        exec: route.exec,
                        elapsed: 0.0, // measured below, once the task has run
                        ret_s: 0.0,   // filled once result sizes are known
                        hops: h0..hop_s.len(),
                    });
                }

                // --- Execute every task once, in task order. Execution is
                // clockless: results and wall-measured node seconds feed the
                // simulator; they never depend on it.
                let mut node_compute = vec![0.0f64; n_nodes];
                let mut results_bytes = Vec::with_capacity(n_tasks);
                let mut sub_traces = Vec::with_capacity(n_tasks);
                for (i, t) in tasks.into_iter().enumerate() {
                    let exec = routes[i].exec;
                    let node_tr = if tr.enabled() {
                        TraceHandle::recording()
                    } else {
                        TraceHandle::disabled()
                    };
                    let ctx = NodeCtx::new(exec, tpn, ExecMode::Virtual, None).with_trace(node_tr);
                    let result = (t.work)(&ctx);
                    let rb = ctx.sequential_labeled("pack", "prep", || packed(&result));
                    let elapsed = ctx.elapsed();
                    node_compute[exec] += elapsed;
                    sim_tasks[i].elapsed = elapsed;
                    sub_traces.push(ctx.take_trace());
                    results_bytes.push(rb);
                }

                // Return trips, planned and accounted in task order (the
                // third leg of the canonical comm_s order). Each attempt
                // pays a transfer and each failed attempt an ack timeout.
                let mut bytes_back = 0u64;
                let mut returns: Vec<(ReturnRoute, f64)> = Vec::with_capacity(n_tasks);
                for (i, rb) in results_bytes.iter().enumerate() {
                    let ret = plan_return(&plan, routes[i].exec, i);
                    let copies = (ret.attempts + ret.dups) as u64;
                    for _ in 0..copies {
                        self.stats.record(rb.len());
                    }
                    messages += copies;
                    bytes_back += rb.len() as u64 * copies;
                    for _ in 0..ret.drops {
                        self.stats.record_dropped();
                    }
                    for _ in 0..ret.corrupts {
                        self.stats.record_corrupted();
                    }
                    for _ in 0..ret.dups {
                        self.stats.record_duplicated();
                    }
                    let failed = (ret.attempts - 1) as u64;
                    for _ in 0..failed {
                        self.stats.record_retry();
                    }
                    retries += failed;
                    let rdt = cost.edge_time(routes[i].exec, ROOT, rb.len());
                    let path_s = rdt * copies as f64 + timeout_s * failed as f64;
                    comm_s += path_s;
                    sim_tasks[i].ret_s = path_s;
                    returns.push((ret, rdt));
                }

                // --- Lay the dispatch on the virtual clock (optionally with
                // both cores, asserting bitwise agreement).
                let problem = SimProblem {
                    start_clock,
                    n_nodes,
                    n_participants: participants.len(),
                    env_edges: &sim_env,
                    hop_s: &hop_s,
                    tasks: &sim_tasks,
                };
                let times = {
                    let mut scratch = self.sim_scratch.lock().expect("sim scratch poisoned");
                    if self.config.sim_check {
                        let eager = sim::run_eager(&problem, &mut scratch);
                        let event = sim::run_event(&problem, &mut scratch);
                        sim::assert_cores_agree(&eager, &event);
                        if self.config.core == SimCore::Eager {
                            eager
                        } else {
                            event
                        }
                    } else {
                        sim::run(self.config.core, &problem, &mut scratch)
                    }
                };
                self.stats.record_sim(times.events, times.peak_heap as u64);
                let mut finish = 0.0f64;
                for &rd in &times.ret_done {
                    finish = finish.max(rd);
                }

                // --- Render the canonical trace off the timeline (the exact
                // record order of the pre-event dispatcher, so golden traces
                // stay bit-identical).
                if tr.enabled() {
                    for (idx, e) in env_edges.iter().enumerate() {
                        let (start, done) = times.env_bounds[idx];
                        let dt = env_dt[idx];
                        let dest = participants[e.dest_pos];
                        let track = if e.sender_pos == 0 {
                            Track::Root
                        } else {
                            Track::Node(participants[e.sender_pos])
                        };
                        let mut args = tree_edge_args(dest, ENV_TAG, e.depth, e.fanout);
                        args.push(("bytes", bcast_bytes.into()));
                        args.push(("attempts", (e.attempts as u64).into()));
                        tr.span("comm:tree", "comm", track, start, done, args);
                        let fault = |name: &'static str, count: u32| {
                            for k in 0..count {
                                tr.event(
                                    name,
                                    "fault",
                                    track,
                                    start + dt * (k + 1) as f64,
                                    vec![("dest", dest.into())],
                                );
                            }
                        };
                        fault("retry", e.failed());
                        fault("drop", e.drops);
                        fault("corrupt", e.corrupts);
                        fault("duplicate", e.dups);
                    }
                    for (i, route) in routes.iter().enumerate() {
                        if streamed && pack_s_v[i] > 0.0 {
                            tr.span(
                                "root:pack",
                                "prep",
                                Track::Root,
                                times.pack_start[i],
                                times.pack_start[i] + pack_s_v[i],
                                vec![("task", i.into())],
                            );
                        }
                        let h0 = sim_tasks[i].hops.start;
                        for (h, hop) in route.hops.iter().enumerate() {
                            let (hop_start, hop_done) = times.hop_bounds[h0 + h];
                            let dt = hop_dt[h0 + h];
                            tr.span(
                                "send",
                                "comm",
                                Track::Root,
                                hop_start,
                                hop_done,
                                vec![
                                    ("task", i.into()),
                                    ("dest", hop.dest.into()),
                                    ("bytes", hop_wire[h0 + h].into()),
                                    ("attempts", (hop.attempts as u64).into()),
                                ],
                            );
                            // Fault-event placement within the hop span is a
                            // model decoration; the *counts* are exact.
                            let fault = |name: &'static str, count: u32| {
                                for k in 0..count {
                                    tr.event(
                                        name,
                                        "fault",
                                        Track::Root,
                                        hop_start + dt * (k + 1) as f64,
                                        vec![("task", i.into()), ("dest", hop.dest.into())],
                                    );
                                }
                            };
                            fault("retry", hop.attempts.saturating_sub(1));
                            fault("drop", hop.drops);
                            fault("corrupt", hop.corrupts);
                            fault("duplicate", hop.dups);
                            if !hop.delivered && h + 1 < route.hops.len() {
                                tr.event(
                                    "redispatch",
                                    "fault",
                                    Track::Root,
                                    hop_done,
                                    vec![
                                        ("task", i.into()),
                                        ("from", hop.dest.into()),
                                        ("to", route.hops[h + 1].dest.into()),
                                    ],
                                );
                            }
                        }
                        if let Some(spec) = resident_v[i] {
                            let name = if route.exec == spec.home {
                                "dist:resident-hit"
                            } else {
                                "dist:resident-miss"
                            };
                            tr.event(
                                name,
                                "dist",
                                Track::Root,
                                times.send_done[i],
                                vec![
                                    ("task", i.into()),
                                    ("seg", spec.id.into()),
                                    ("home", spec.home.into()),
                                    ("exec", route.exec.into()),
                                ],
                            );
                        }
                    }
                    for (i, mut sub) in sub_traces.into_iter().enumerate() {
                        let (start, done) = times.node_bounds[i];
                        sub.shift(start);
                        tr.absorb(sub);
                        tr.span(
                            "node:task",
                            "dispatch",
                            Track::Node(routes[i].exec),
                            start,
                            done,
                            vec![("task", i.into())],
                        );
                    }
                    for (i, (ret, rdt)) in returns.iter().enumerate() {
                        let done_at = times.node_bounds[i].1;
                        tr.span(
                            "return",
                            "comm",
                            Track::Root,
                            done_at,
                            times.ret_done[i],
                            vec![
                                ("task", i.into()),
                                ("from", routes[i].exec.into()),
                                ("bytes", results_bytes[i].len().into()),
                                ("attempts", (ret.attempts as u64).into()),
                            ],
                        );
                        for k in 0..(ret.attempts - 1) as u64 {
                            tr.event(
                                "retry",
                                "fault",
                                Track::Root,
                                done_at + rdt * (k + 1) as f64,
                                vec![("task", i.into()), ("from", routes[i].exec.into())],
                            );
                        }
                    }
                }

                let ret_arrival = &times.ret_done;
                let mut arrivals = vec![0.0f64; n_tasks];
                let mut unpack_copied = 0u64;
                let mut unpack_aliased = 0u64;
                let results: Vec<R>;
                let total_s = match self.config.pipeline {
                    PipelineMode::Barrier => {
                        // Serial epilogue: the root waits out the slowest
                        // return, then unpacks everything in one lump.
                        let t1 = Instant::now();
                        let mut out = Vec::with_capacity(n_tasks);
                        for (i, rb) in results_bytes.into_iter().enumerate() {
                            let (decoded, c, a) = with_unpack_delta(|| unpack_all(rb));
                            unpack_copied += c;
                            unpack_aliased += a;
                            match decoded {
                                Ok(r) => out.push(r),
                                Err(source) => {
                                    return Err(DispatchError::Decode { task: i, source })
                                }
                            }
                        }
                        results = out;
                        let root_unpack_s = t1.elapsed().as_secs_f64();
                        tr.span(
                            "root:unpack",
                            "prep",
                            Track::Root,
                            finish,
                            finish + root_unpack_s,
                            vec![
                                ("copied", unpack_copied.into()),
                                ("aliased", unpack_aliased.into()),
                            ],
                        );
                        let total = finish + root_unpack_s;
                        arrivals.iter_mut().for_each(|a| *a = total);
                        total
                    }
                    PipelineMode::Streamed => {
                        // Streaming epilogue: the root (one core) unpacks
                        // results in arrival order, each the moment it
                        // lands — early results are ready while late nodes
                        // still compute, so most of the unpack cost hides
                        // inside the network tail. Ties break on task index
                        // so the processing order is deterministic.
                        let mut order: Vec<usize> = (0..n_tasks).collect();
                        order.sort_by(|&a, &b| {
                            ret_arrival[a]
                                .partial_cmp(&ret_arrival[b])
                                .expect("arrival times are finite")
                                .then(a.cmp(&b))
                        });
                        let mut uclock = times.root_free; // root free after last send
                        let mut slots: Vec<Option<R>> = (0..n_tasks).map(|_| None).collect();
                        let mut spans = vec![(0.0f64, 0.0f64); n_tasks];
                        let mut moved = vec![(0u64, 0u64); n_tasks];
                        for &i in &order {
                            uclock = uclock.max(ret_arrival[i]);
                            let rb = std::mem::take(&mut results_bytes[i]);
                            let t1 = Instant::now();
                            let (decoded, c, a) = with_unpack_delta(|| unpack_all(rb));
                            let u = t1.elapsed().as_secs_f64();
                            unpack_copied += c;
                            unpack_aliased += a;
                            moved[i] = (c, a);
                            match decoded {
                                Ok(r) => slots[i] = Some(r),
                                Err(source) => {
                                    return Err(DispatchError::Decode { task: i, source })
                                }
                            }
                            spans[i] = (uclock, uclock + u);
                            uclock += u;
                            arrivals[i] = uclock;
                        }
                        // Spans are emitted in task order (not arrival
                        // order) so the recorded line order is a pure
                        // function of the inputs, independent of measured
                        // unpack durations.
                        if tr.enabled() {
                            for (i, &(s0, s1)) in spans.iter().enumerate() {
                                tr.span(
                                    "root:unpack",
                                    "prep",
                                    Track::Root,
                                    s0,
                                    s1,
                                    vec![
                                        ("task", i.into()),
                                        ("copied", moved[i].0.into()),
                                        ("aliased", moved[i].1.into()),
                                    ],
                                );
                            }
                        }
                        results =
                            slots.into_iter().map(|s| s.expect("every task unpacked")).collect();
                        uclock.max(finish)
                    }
                };
                self.stats.record_unpack(unpack_copied, unpack_aliased);
                Ok(DistOutcome {
                    results,
                    arrivals,
                    trace: tr.take(),
                    timing: DistTiming {
                        total_s,
                        comm_s,
                        node_compute_s: node_compute,
                        bytes_out,
                        bytes_back,
                        messages,
                        retries,
                        redispatches,
                        resident_hits,
                        resident_misses,
                        unpack_copied,
                        unpack_aliased,
                    },
                })
            }
            ExecMode::Measured => {
                let t_start = Instant::now();
                // Measured mode genuinely packed every payload serially
                // before dispatch, so the pack lump sits at the timeline
                // origin in both pipeline modes; what streaming overlaps
                // here is the *gather* side — the root unpacks each result
                // as its node thread hands it over, while slower node
                // threads still compute.
                let prep_off = root_prep_s + total_pack;
                if total_pack > 0.0 {
                    tr.span("root:pack", "prep", Track::Root, root_prep_s, prep_off, vec![]);
                }
                // Wall-clock timeline: origin at root-prep start, so sends
                // (instantaneous in-process) land at `prep_off` and node
                // task spans at their measured offsets.
                if tr.enabled() {
                    for e in &env_edges {
                        let track = if e.sender_pos == 0 {
                            Track::Root
                        } else {
                            Track::Node(participants[e.sender_pos])
                        };
                        let dest = participants[e.dest_pos];
                        let mut args = tree_edge_args(dest, ENV_TAG, e.depth, e.fanout);
                        args.push(("bytes", bcast_bytes.into()));
                        args.push(("attempts", (e.attempts as u64).into()));
                        tr.event("comm:tree", "comm", track, prep_off, args);
                        let fault = |name: &'static str, count: u32| {
                            for _ in 0..count {
                                tr.event(
                                    name,
                                    "fault",
                                    track,
                                    prep_off,
                                    vec![("dest", dest.into())],
                                );
                            }
                        };
                        fault("retry", e.failed());
                        fault("drop", e.drops);
                        fault("corrupt", e.corrupts);
                        fault("duplicate", e.dups);
                    }
                    for (i, (t, route)) in tasks.iter().zip(&routes).enumerate() {
                        for (h, hop) in route.hops.iter().enumerate() {
                            tr.event(
                                "send",
                                "comm",
                                Track::Root,
                                prep_off,
                                vec![
                                    ("task", i.into()),
                                    ("dest", hop.dest.into()),
                                    ("bytes", t.hop_bytes(hop.dest).into()),
                                    ("attempts", (hop.attempts as u64).into()),
                                ],
                            );
                            let fault = |name: &'static str, count: u32| {
                                for _ in 0..count {
                                    tr.event(
                                        name,
                                        "fault",
                                        Track::Root,
                                        prep_off,
                                        vec![("task", i.into()), ("dest", hop.dest.into())],
                                    );
                                }
                            };
                            fault("retry", hop.attempts.saturating_sub(1));
                            fault("drop", hop.drops);
                            fault("corrupt", hop.corrupts);
                            fault("duplicate", hop.dups);
                            if !hop.delivered && h + 1 < route.hops.len() {
                                tr.event(
                                    "redispatch",
                                    "fault",
                                    Track::Root,
                                    prep_off,
                                    vec![
                                        ("task", i.into()),
                                        ("from", hop.dest.into()),
                                        ("to", route.hops[h + 1].dest.into()),
                                    ],
                                );
                            }
                        }
                        if let Some(spec) = t.resident {
                            let name = if route.exec == spec.home {
                                "dist:resident-hit"
                            } else {
                                "dist:resident-miss"
                            };
                            tr.event(
                                name,
                                "dist",
                                Track::Root,
                                prep_off,
                                vec![
                                    ("task", i.into()),
                                    ("seg", spec.id.into()),
                                    ("home", spec.home.into()),
                                    ("exec", route.exec.into()),
                                ],
                            );
                        }
                    }
                }
                // Group tasks by executing rank; each group runs in task
                // order on its rank's real thread pool.
                let mut groups: Vec<Vec<(usize, RawTask<'a, R>)>> =
                    (0..n_nodes).map(|_| Vec::new()).collect();
                for (i, t) in tasks.into_iter().enumerate() {
                    groups[routes[i].exec].push((i, t));
                }
                let pools = &self.pools;
                let mut node_compute = vec![0.0f64; n_nodes];
                let mut raw: Vec<Option<bytes::Bytes>> = (0..n_tasks).map(|_| None).collect();
                let mut slots: Vec<Option<R>> = (0..n_tasks).map(|_| None).collect();
                let mut arrivals = vec![0.0f64; n_tasks];
                let mut unpack_spans = vec![(0.0f64, 0.0f64); n_tasks];
                let mut unpack_moved = vec![(0u64, 0u64); n_tasks];
                let mut unpack_copied = 0u64;
                let mut unpack_aliased = 0u64;
                let mut first_ready: Option<f64> = None;
                let mut decode_err: Option<DispatchError> = None;
                let streamed = self.config.pipeline == PipelineMode::Streamed;
                let (res_tx, res_rx) =
                    std::sync::mpsc::channel::<(usize, usize, bytes::Bytes, f64)>();
                std::thread::scope(|s| {
                    for (rank, group) in groups.into_iter().enumerate() {
                        if group.is_empty() {
                            continue;
                        }
                        let pool = &pools[rank];
                        let tr = tr.clone();
                        let res_tx = res_tx.clone();
                        s.spawn(move || {
                            for (i, t) in group {
                                let node_tr = if tr.enabled() {
                                    TraceHandle::recording()
                                } else {
                                    TraceHandle::disabled()
                                };
                                let start_off = prep_off + t_start.elapsed().as_secs_f64();
                                let ctx = NodeCtx::new(rank, tpn, ExecMode::Measured, Some(pool))
                                    .with_trace(node_tr);
                                let result = (t.work)(&ctx);
                                let rb = ctx.sequential_labeled("pack", "prep", || packed(&result));
                                if tr.enabled() {
                                    let end_off = prep_off + t_start.elapsed().as_secs_f64();
                                    let mut sub = ctx.take_trace();
                                    sub.shift(start_off);
                                    tr.absorb(sub);
                                    tr.span(
                                        "node:task",
                                        "dispatch",
                                        Track::Node(rank),
                                        start_off,
                                        end_off,
                                        vec![("task", i.into())],
                                    );
                                }
                                // The root may have bailed on a decode
                                // error; a dead receiver is not our problem.
                                let _ = res_tx.send((rank, i, rb, ctx.elapsed()));
                            }
                        });
                    }
                    drop(res_tx);
                    // The root thread is the gather consumer. Streamed: take
                    // each result as its node thread finishes and unpack it
                    // immediately, overlapping slower nodes' compute.
                    // Barrier: only record receipt here; the unpack lump
                    // happens after every node is done (pre-pipeline shape).
                    while let Ok((rank, i, rb, secs)) = res_rx.recv() {
                        node_compute[rank] += secs;
                        if streamed {
                            let at = prep_off + t_start.elapsed().as_secs_f64();
                            first_ready.get_or_insert(at);
                            let (decoded, c, a) = with_unpack_delta(|| unpack_all(rb.clone()));
                            let done = prep_off + t_start.elapsed().as_secs_f64();
                            unpack_copied += c;
                            unpack_aliased += a;
                            unpack_moved[i] = (c, a);
                            match decoded {
                                Ok(r) => slots[i] = Some(r),
                                Err(source) => {
                                    decode_err = Some(DispatchError::Decode { task: i, source });
                                    break;
                                }
                            }
                            unpack_spans[i] = (at, done);
                            arrivals[i] = done;
                        }
                        raw[i] = Some(rb);
                    }
                });
                if let Some(e) = decode_err {
                    return Err(e);
                }
                let gather_off =
                    first_ready.unwrap_or_else(|| prep_off + t_start.elapsed().as_secs_f64());
                if !streamed {
                    for (i, rb) in raw.iter().enumerate() {
                        let rb = rb.clone().expect("every task produced a result");
                        let (decoded, c, a) = with_unpack_delta(|| unpack_all(rb));
                        unpack_copied += c;
                        unpack_aliased += a;
                        match decoded {
                            Ok(r) => slots[i] = Some(r),
                            Err(source) => return Err(DispatchError::Decode { task: i, source }),
                        }
                    }
                }
                // Return-path accounting runs in task order after the fact:
                // the counters are order-independent sums, and emitting the
                // trace lines here keeps the recorded order deterministic
                // even though completion order is not.
                let mut bytes_back = 0u64;
                for i in 0..n_tasks {
                    let len = raw[i].as_ref().expect("every task produced a result").len();
                    let ret = plan_return(&plan, routes[i].exec, i);
                    let copies = (ret.attempts + ret.dups) as u64;
                    for _ in 0..copies {
                        self.stats.record(len);
                    }
                    messages += copies;
                    bytes_back += len as u64 * copies;
                    for _ in 0..ret.drops {
                        self.stats.record_dropped();
                    }
                    for _ in 0..ret.corrupts {
                        self.stats.record_corrupted();
                    }
                    for _ in 0..ret.dups {
                        self.stats.record_duplicated();
                    }
                    let failed = (ret.attempts - 1) as u64;
                    for _ in 0..failed {
                        self.stats.record_retry();
                    }
                    retries += failed;
                    if tr.enabled() {
                        for _ in 0..failed {
                            tr.event(
                                "retry",
                                "fault",
                                Track::Root,
                                gather_off,
                                vec![("task", i.into()), ("from", routes[i].exec.into())],
                            );
                        }
                        if streamed {
                            let (s0, s1) = unpack_spans[i];
                            tr.span(
                                "root:unpack",
                                "prep",
                                Track::Root,
                                s0,
                                s1,
                                vec![
                                    ("task", i.into()),
                                    ("copied", unpack_moved[i].0.into()),
                                    ("aliased", unpack_moved[i].1.into()),
                                ],
                            );
                        }
                    }
                }
                let end_off = prep_off + t_start.elapsed().as_secs_f64();
                tr.span("root:gather", "comm", Track::Root, gather_off, end_off, vec![]);
                if !streamed {
                    arrivals.iter_mut().for_each(|a| *a = end_off);
                }
                let results: Vec<R> =
                    slots.into_iter().map(|s| s.expect("every task produced a result")).collect();
                self.stats.record_unpack(unpack_copied, unpack_aliased);
                Ok(DistOutcome {
                    results,
                    arrivals,
                    trace: tr.take(),
                    timing: DistTiming {
                        total_s: end_off,
                        comm_s: 0.0, // real transfers are in-process; wall time covers them
                        node_compute_s: node_compute,
                        bytes_out,
                        bytes_back,
                        messages,
                        retries,
                        redispatches,
                        resident_hits,
                        resident_misses,
                        unpack_copied,
                        unpack_aliased,
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn virtual_run_scatters_and_gathers() {
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(4, 2));
        let payloads: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64; 10]).collect();
        let out = cluster.run(payloads, |ctx, v: Vec<u64>| {
            assert_eq!(v.len(), 10);
            v.iter().sum::<u64>() + ctx.rank() as u64 * 1000
        });
        assert_eq!(out.results, vec![0, 1010, 2020, 3030]);
        assert_eq!(out.timing.messages, 8);
        assert_eq!(out.timing.retries, 0);
        assert_eq!(out.timing.redispatches, 0);
        assert!(out.timing.bytes_out > 0);
        assert_eq!(cluster.stats().messages(), 8);
    }

    #[test]
    fn measured_run_matches_virtual_results() {
        let payloads: Vec<Vec<u64>> = (0..3).map(|i| (0..=i as u64).collect()).collect();
        let task = |_ctx: &NodeCtx<'_>, v: Vec<u64>| v.iter().sum::<u64>();
        let v = Cluster::new(ClusterConfig::virtual_cluster(3, 2)).run(payloads.clone(), task);
        let m = Cluster::new(ClusterConfig::measured(3, 2)).run(payloads, task);
        assert_eq!(v.results, m.results);
        assert_eq!(v.timing.bytes_out, m.timing.bytes_out);
    }

    #[test]
    fn broadcast_clones_payload_per_node() {
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(3, 1));
        let out =
            cluster.run_broadcast(vec![1u32, 2, 3], |ctx, v: Vec<u32>| v[ctx.rank() % 3] as u64);
        assert_eq!(out.results, vec![1, 2, 3]);
        // Broadcast ships the payload once per node.
        let one = (vec![1u32, 2, 3]).packed_size() as u64;
        assert_eq!(out.timing.bytes_out, 3 * one);
    }

    #[test]
    fn fewer_payloads_than_nodes_is_fine() {
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(8, 2));
        let out = cluster.run(vec![1u64, 2], |_ctx, x: u64| x * 2);
        assert_eq!(out.results, vec![2, 4]);
    }

    #[test]
    #[should_panic(expected = "more payloads")]
    fn too_many_payloads_panics() {
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(2, 1));
        let _ = cluster.run(vec![1u64, 2, 3], |_ctx, x: u64| x);
    }

    #[test]
    fn comm_cost_scales_with_bytes() {
        let cfg = ClusterConfig::virtual_cluster(2, 1).with_cost(CostModel::flat(0.0, 1e6));
        let cluster = Cluster::new(cfg);
        let big = vec![0u8; 1_000_000];
        let small = vec![0u8; 10];
        let t_big = cluster.run(vec![big], |_c, v: Vec<u8>| v.len() as u64).timing.comm_s;
        let t_small = cluster.run(vec![small], |_c, v: Vec<u8>| v.len() as u64).timing.comm_s;
        assert!(t_big > 50.0 * t_small, "1MB at 1MB/s must dominate: {t_big} vs {t_small}");
    }

    #[test]
    fn free_cost_model_zero_comm() {
        let cfg = ClusterConfig::virtual_cluster(2, 1).with_cost(CostModel::free());
        let out = Cluster::new(cfg)
            .run(vec![vec![0u8; 1000], vec![0u8; 1000]], |_c, v: Vec<u8>| v.len() as u64);
        assert_eq!(out.timing.comm_s, 0.0);
    }

    #[test]
    fn node_ctx_time_feeds_timing() {
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(2, 4));
        let out = cluster.run(vec![5u64, 6], |ctx, x: u64| {
            ctx.sequential(|| std::thread::sleep(std::time::Duration::from_millis(3)));
            x
        });
        assert!(out.timing.node_compute_s.iter().all(|&t| t >= 0.003));
        assert!(out.timing.total_s >= 0.003);
    }

    fn lossy_plan(seed: u64) -> FaultPlan {
        FaultPlan::seeded(seed)
            .with_drop(0.3)
            .with_duplication(0.1)
            .with_corruption(0.05)
            .with_timeout(Duration::from_millis(1))
    }

    #[test]
    fn lossy_virtual_run_matches_fault_free_results() {
        let payloads: Vec<Vec<u64>> = (0..4).map(|i| (0..50u64).map(|x| x * i).collect()).collect();
        let task = |_ctx: &NodeCtx<'_>, v: Vec<u64>| v.iter().sum::<u64>();
        let clean = Cluster::new(ClusterConfig::virtual_cluster(4, 2)).run(payloads.clone(), task);
        let faulty = Cluster::new(ClusterConfig::virtual_cluster(4, 2).with_faults(lossy_plan(42)))
            .run(payloads, task);
        assert_eq!(clean.results, faulty.results, "faults must not change results");
        assert!(faulty.timing.retries > 0, "a 30% drop rate over 8 transfers must retry");
        assert!(faulty.timing.messages > clean.timing.messages);
        assert!(faulty.timing.bytes_out > clean.timing.bytes_out);
        assert!(faulty.timing.comm_s > clean.timing.comm_s, "faults must cost modeled time");
    }

    #[test]
    fn crashed_rank_tasks_are_redispatched() {
        let plan = FaultPlan::seeded(7).with_crash(1).with_timeout(Duration::from_millis(1));
        let cfg = ClusterConfig::virtual_cluster(4, 2).with_faults(plan);
        let cluster = Cluster::new(cfg);
        let out = cluster.run(vec![10u64, 20, 30, 40], |_ctx, x: u64| x * 2);
        assert_eq!(out.results, vec![20, 40, 60, 80], "task order survives redispatch");
        assert!(out.timing.redispatches >= 1, "rank 1's task must move to a survivor");
        assert_eq!(cluster.stats().redispatches(), out.timing.redispatches);
        // The crashed rank computed nothing.
        assert_eq!(out.timing.node_compute_s[1], 0.0);
    }

    #[test]
    fn crashed_rank_tasks_are_redispatched_measured() {
        let plan = FaultPlan::seeded(7).with_crash(0).with_timeout(Duration::from_millis(1));
        let cfg = ClusterConfig::measured(3, 2).with_faults(plan);
        let cluster = Cluster::new(cfg);
        let out = cluster.run(vec![1u64, 2, 3], |_ctx, x: u64| x + 100);
        assert_eq!(out.results, vec![101, 102, 103]);
        assert!(out.timing.redispatches >= 1);
        assert_eq!(out.timing.node_compute_s[0], 0.0);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let payloads: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64; 20]).collect();
        let task = |_ctx: &NodeCtx<'_>, v: Vec<u64>| v.iter().sum::<u64>();
        let cfg = ClusterConfig::virtual_cluster(4, 2).with_faults(lossy_plan(5));
        let a = Cluster::new(cfg).run(payloads.clone(), task);
        let b = Cluster::new(cfg).run(payloads, task);
        assert_eq!(a.results, b.results);
        assert_eq!(a.timing.messages, b.timing.messages);
        assert_eq!(a.timing.retries, b.timing.retries);
        assert_eq!(a.timing.redispatches, b.timing.redispatches);
    }

    #[test]
    fn untraced_dispatch_returns_empty_trace() {
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(2, 2));
        let out = cluster.run(vec![1u64, 2], |_ctx, x: u64| x);
        assert!(out.trace.is_empty());
    }

    #[test]
    fn traced_virtual_dispatch_records_the_timeline() {
        let cfg = ClusterConfig::virtual_cluster(3, 2).with_trace(true);
        let out = Cluster::new(cfg)
            .run(vec![vec![1u64; 50], vec![2; 50], vec![3; 50]], |ctx, v: Vec<u64>| {
                ctx.sequential(|| v.iter().sum::<u64>())
            });
        let names = out.trace.span_names();
        for required in ["root:pack", "send", "node:task", "return", "root:unpack"] {
            assert!(names.contains(&required), "missing span {required:?} in {names:?}");
        }
        // One send + one exec envelope + one return per task.
        assert_eq!(out.trace.spans.iter().filter(|s| s.name == "send").count(), 3);
        assert_eq!(out.trace.spans.iter().filter(|s| s.name == "node:task").count(), 3);
        // Every span fits the run: no negative times, none past the total.
        for s in &out.trace.spans {
            assert!(s.t0 >= 0.0 && s.t1 <= out.timing.total_s + 1e-9, "{s:?}");
        }
    }

    #[test]
    fn traced_fault_run_shows_retries_and_redispatches() {
        let plan = FaultPlan::seeded(2024)
            .with_drop(0.2)
            .with_crash(1)
            .with_timeout(Duration::from_millis(1));
        let cfg = ClusterConfig::virtual_cluster(4, 2).with_faults(plan).with_trace(true);
        let out = Cluster::new(cfg).run(vec![1u64, 2, 3, 4], |_ctx, x: u64| x * 2);
        assert_eq!(out.results, vec![2, 4, 6, 8]);
        assert!(out.trace.count_events("retry") > 0);
        assert!(out.trace.count_events("redispatch") > 0);
        assert_eq!(out.trace.count_events("redispatch") as u64, out.timing.redispatches);
    }

    #[test]
    fn traced_measured_dispatch_records_node_tasks() {
        let cfg = ClusterConfig::measured(2, 2).with_trace(true);
        let out = Cluster::new(cfg).run(vec![10u64, 20], |ctx, x: u64| ctx.sequential(|| x + 1));
        assert_eq!(out.results, vec![11, 21]);
        let names = out.trace.span_names();
        assert!(names.contains(&"node:task"), "missing node:task in {names:?}");
        assert!(names.contains(&"root:gather"), "missing root:gather in {names:?}");
        assert_eq!(out.trace.spans.iter().filter(|s| s.name == "node:task").count(), 2);
    }

    #[test]
    #[should_panic(expected = "crashes every node")]
    fn all_crashed_plan_is_rejected() {
        let plan = FaultPlan::seeded(1).with_crash(0).with_crash(1);
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(2, 1).with_faults(plan));
        let _ = cluster.run(vec![1u64, 2], |_ctx, x: u64| x);
    }

    #[test]
    fn streamed_and_barrier_are_bit_identical() {
        // Same payloads, same fault schedule: only the modeled timeline may
        // differ between pipeline modes, never results or wire accounting.
        let payloads: Vec<Vec<f64>> =
            (0..4).map(|i| (0..60).map(|x| (x as f64) * 0.1 + i as f64).collect()).collect();
        let task = |_ctx: &NodeCtx<'_>, v: Vec<f64>| v.iter().fold(0.0f64, |a, &x| a + x * x);
        for faults in [FaultPlan::none(), lossy_plan(11)] {
            let base = ClusterConfig::virtual_cluster(4, 2).with_faults(faults);
            let s = Cluster::new(base.with_pipeline(PipelineMode::Streamed))
                .run(payloads.clone(), task);
            let b =
                Cluster::new(base.with_pipeline(PipelineMode::Barrier)).run(payloads.clone(), task);
            assert_eq!(s.results, b.results, "pipeline mode must not change results");
            assert_eq!(s.timing.bytes_out, b.timing.bytes_out);
            assert_eq!(s.timing.bytes_back, b.timing.bytes_back);
            assert_eq!(s.timing.messages, b.timing.messages);
            assert_eq!(s.timing.retries, b.timing.retries);
            assert_eq!(s.timing.redispatches, b.timing.redispatches);
        }
    }

    #[test]
    fn streamed_arrivals_are_staggered() {
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(4, 1));
        let payloads: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64; 100]).collect();
        let out = cluster.run(payloads, |_ctx, v: Vec<u64>| v.iter().sum::<u64>());
        assert_eq!(out.arrivals.len(), 4);
        // Equal-size payloads on an idle cluster return in task order; the
        // root's serialized sends stagger them.
        for w in out.arrivals.windows(2) {
            assert!(w[0] < w[1], "arrivals must be staggered: {:?}", out.arrivals);
        }
        assert!(out.arrivals[0] < out.timing.total_s);
        assert!(*out.arrivals.last().unwrap() <= out.timing.total_s + 1e-12);
    }

    #[test]
    fn barrier_arrivals_all_equal_total() {
        let cfg = ClusterConfig::virtual_cluster(3, 1).with_pipeline(PipelineMode::Barrier);
        let out = Cluster::new(cfg).run(vec![1u64, 2, 3], |_ctx, x: u64| x + 1);
        assert!(out.arrivals.iter().all(|&a| a == out.timing.total_s));
    }

    /// Packs one word, demands two on unpack: every decode fails.
    #[derive(Debug)]
    struct Truncated(u64);

    impl Wire for Truncated {
        fn pack(&self, w: &mut triolet_serial::WireWriter) {
            self.0.pack(w);
        }
        fn unpack(r: &mut triolet_serial::WireReader) -> triolet_serial::WireResult<Self> {
            let a = u64::unpack(r)?;
            let _ = u64::unpack(r)?;
            Ok(Truncated(a))
        }
        fn packed_size(&self) -> usize {
            8
        }
    }

    #[test]
    fn result_decode_failure_is_a_typed_error() {
        for mode in [PipelineMode::Streamed, PipelineMode::Barrier] {
            let cfg = ClusterConfig::virtual_cluster(2, 1).with_pipeline(mode);
            let err = Cluster::new(cfg)
                .try_run(vec![1u64, 2], |_ctx, x: u64| Truncated(x))
                .expect_err("truncated results must not decode");
            assert!(
                matches!(err, DispatchError::Decode { task: 0, .. }),
                "unexpected error in {mode:?}: {err}"
            );
        }
    }

    #[test]
    fn measured_decode_failure_is_a_typed_error() {
        for mode in [PipelineMode::Streamed, PipelineMode::Barrier] {
            let cfg = ClusterConfig::measured(2, 1).with_pipeline(mode);
            let err = Cluster::new(cfg)
                .try_run(vec![1u64, 2], |_ctx, x: u64| Truncated(x))
                .expect_err("truncated results must not decode");
            assert!(matches!(err, DispatchError::Decode { .. }), "{mode:?}: {err}");
        }
    }

    #[test]
    fn streamed_pack_overlaps_earlier_node_compute() {
        let cfg = ClusterConfig::virtual_cluster(3, 1).with_trace(true);
        let out = Cluster::new(cfg).run(
            vec![vec![1u64; 64], vec![2; 64], vec![3; 64]],
            |ctx, v: Vec<u64>| {
                // Every compute is long enough that a loaded host's
                // scheduling jitter in the wall-measured pack times cannot
                // push a pack span past it (a shared 1-vCPU host can steal a
                // whole scheduling quantum mid-measurement), and later tasks
                // run progressively longer so arrivals are staggered by tens
                // of milliseconds — not just by the µs-scale pack/send
                // stagger — keeping the unpack-overlap assertion below
                // robust to the same jitter.
                let ms = 60 * v[0];
                ctx.sequential(|| std::thread::sleep(std::time::Duration::from_millis(ms)));
                v.iter().sum::<u64>()
            },
        );
        let span_for = |name: &str, task: u64| {
            out.trace
                .spans
                .iter()
                .find(|s| {
                    s.name == name
                        && s.args.iter().any(|(k, v)| {
                            *k == "task" && matches!(v, triolet_obs::ArgValue::U64(t) if *t == task)
                        })
                })
                .unwrap_or_else(|| panic!("missing {name} span for task {task}"))
        };
        // One pack and one unpack span per task.
        assert_eq!(out.trace.spans.iter().filter(|s| s.name == "root:pack").count(), 3);
        assert_eq!(out.trace.spans.iter().filter(|s| s.name == "root:unpack").count(), 3);
        // The tentpole overlap: while node 0 computes, the root is already
        // packing (and sending) task 1.
        let node0 = span_for("node:task", 0);
        let pack1 = span_for("root:pack", 1);
        assert!(
            pack1.t0 >= node0.t0 && pack1.t1 <= node0.t1,
            "root:pack for task 1 ({}..{}) must sit inside node 0's compute ({}..{})",
            pack1.t0,
            pack1.t1,
            node0.t0,
            node0.t1
        );
        // And the first result is unpacked before the last one arrives.
        let unpack0 = span_for("root:unpack", 0);
        let unpack2 = span_for("root:unpack", 2);
        assert!(unpack0.t1 <= unpack2.t0, "streamed unpacks must not wait for stragglers");
    }

    #[test]
    fn barrier_keeps_the_serial_epilogue() {
        let cfg = ClusterConfig::virtual_cluster(3, 1)
            .with_trace(true)
            .with_pipeline(PipelineMode::Barrier);
        let out = Cluster::new(cfg)
            .run(vec![vec![1u64; 64], vec![2; 64], vec![3; 64]], |ctx, v: Vec<u64>| {
                ctx.sequential(|| v.iter().sum::<u64>())
            });
        // One lump pack, one lump unpack; the unpack starts after the last
        // node:task ends.
        assert_eq!(out.trace.spans.iter().filter(|s| s.name == "root:pack").count(), 1);
        let unpacks: Vec<_> = out.trace.spans.iter().filter(|s| s.name == "root:unpack").collect();
        assert_eq!(unpacks.len(), 1);
        let last_node_end = out
            .trace
            .spans
            .iter()
            .filter(|s| s.name == "node:task")
            .map(|s| s.t1)
            .fold(0.0f64, f64::max);
        assert!(unpacks[0].t0 >= last_node_end);
    }

    #[test]
    fn measured_streamed_matches_barrier() {
        let payloads: Vec<Vec<u64>> = (0..3).map(|i| (0..=i as u64).collect()).collect();
        let task = |_ctx: &NodeCtx<'_>, v: Vec<u64>| v.iter().sum::<u64>();
        let s = Cluster::new(ClusterConfig::measured(3, 2).with_pipeline(PipelineMode::Streamed))
            .run(payloads.clone(), task);
        let b = Cluster::new(ClusterConfig::measured(3, 2).with_pipeline(PipelineMode::Barrier))
            .run(payloads, task);
        assert_eq!(s.results, b.results);
        assert_eq!(s.timing.bytes_out, b.timing.bytes_out);
        assert_eq!(s.timing.bytes_back, b.timing.bytes_back);
        assert_eq!(s.timing.messages, b.timing.messages);
    }

    #[test]
    fn redispatched_result_lands_in_original_slot_mid_stream() {
        // Rank 1 crashes, so its task is redispatched and returns out of
        // step with the stream — its result must still occupy slot 1.
        let plan = FaultPlan::seeded(9).with_crash(1).with_timeout(Duration::from_millis(1));
        for mode in [PipelineMode::Streamed, PipelineMode::Barrier] {
            let cfg = ClusterConfig::virtual_cluster(4, 2).with_faults(plan).with_pipeline(mode);
            let out = Cluster::new(cfg).run(vec![10u64, 20, 30, 40], |_ctx, x: u64| x * 2);
            assert_eq!(out.results, vec![20, 40, 60, 80], "slot order broken in {mode:?}");
            assert!(out.timing.redispatches >= 1);
        }
    }
}
