//! The cluster itself: scatter work to nodes, gather results, account time.

use std::time::Instant;

use triolet_pool::ThreadPool;
use triolet_serial::{packed, unpack_all, Wire};

use crate::cost::{CostModel, DistTiming, TrafficStats};
use crate::node::{ExecMode, NodeCtx};

/// Cluster shape and cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of nodes (MPI ranks).
    pub nodes: usize,
    /// Worker threads per node (the paper's 16 cores/node).
    pub threads_per_node: usize,
    /// Real-thread or virtual-time execution.
    pub mode: ExecMode,
    /// Inter-node transfer cost model.
    pub cost: CostModel,
}

impl ClusterConfig {
    /// Virtual-time cluster with the default (paper-like) network model.
    pub fn virtual_cluster(nodes: usize, threads_per_node: usize) -> Self {
        ClusterConfig {
            nodes: nodes.max(1),
            threads_per_node: threads_per_node.max(1),
            mode: ExecMode::Virtual,
            cost: CostModel::default(),
        }
    }

    /// Real-thread cluster (for correctness tests on small shapes).
    pub fn measured(nodes: usize, threads_per_node: usize) -> Self {
        ClusterConfig {
            nodes: nodes.max(1),
            threads_per_node: threads_per_node.max(1),
            mode: ExecMode::Measured,
            cost: CostModel::default(),
        }
    }

    /// Replace the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Total cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.threads_per_node
    }
}

/// Results of one distributed operation, with its timing breakdown.
#[derive(Debug)]
pub struct DistOutcome<R> {
    /// One result per participating node, in node order.
    pub results: Vec<R>,
    /// Timing and traffic breakdown.
    pub timing: DistTiming,
}

/// One node's share of a distributed operation, in prepared form: the
/// payload size it would occupy on the wire plus the work to run on the node.
pub struct RawTask<'a, R> {
    /// Bytes the node's input payload occupies when serialized.
    pub wire_bytes: usize,
    /// The node task; must route compute through the [`NodeCtx`].
    pub work: Box<dyn FnOnce(&NodeCtx<'_>) -> R + Send + 'a>,
}

/// A simulated cluster of multicore nodes.
///
/// `run` is the core collective: it ships one serialized payload to each
/// participating node, executes the task there (two-level: the task uses the
/// node's [`NodeCtx`] for thread parallelism), and gathers serialized
/// results back to the root — the fork-join pattern Triolet's distributed
/// skeletons compile to.
pub struct Cluster {
    config: ClusterConfig,
    pools: Vec<ThreadPool>,
    stats: TrafficStats,
}

impl Cluster {
    /// Bring up a cluster. `Measured` mode spawns `nodes * threads_per_node`
    /// real worker threads; `Virtual` mode spawns none.
    pub fn new(config: ClusterConfig) -> Self {
        let pools = match config.mode {
            ExecMode::Measured => {
                (0..config.nodes).map(|_| ThreadPool::new(config.threads_per_node)).collect()
            }
            ExecMode::Virtual => Vec::new(),
        };
        Cluster { config, pools, stats: TrafficStats::new() }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.config.nodes
    }

    /// Threads per node.
    pub fn threads_per_node(&self) -> usize {
        self.config.threads_per_node
    }

    /// Cumulative traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Scatter `payloads` (one per node, at most `nodes()`), run `task` on
    /// each node, gather the results.
    ///
    /// Every payload genuinely crosses the node boundary as bytes: it is
    /// packed at the root, unpacked on the node, and the result travels back
    /// the same way. Transfer times come from the [`CostModel`] applied to
    /// the real byte counts.
    pub fn run<T, R, F>(&self, payloads: Vec<T>, task: F) -> DistOutcome<R>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(&NodeCtx<'_>, T) -> R + Send + Sync,
    {
        assert!(
            payloads.len() <= self.config.nodes,
            "more payloads ({}) than nodes ({})",
            payloads.len(),
            self.config.nodes
        );
        match self.config.mode {
            ExecMode::Virtual => self.run_virtual(payloads, task),
            ExecMode::Measured => self.run_measured(payloads, task),
        }
    }

    /// Run the same (cloned) payload on every node: the broadcast pattern.
    pub fn run_broadcast<T, R, F>(&self, payload: T, task: F) -> DistOutcome<R>
    where
        T: Wire + Send + Clone,
        R: Wire + Send,
        F: Fn(&NodeCtx<'_>, T) -> R + Send + Sync,
    {
        let payloads = vec![payload; self.config.nodes];
        self.run(payloads, task)
    }

    /// Lowest-level collective: run one prepared task per node.
    ///
    /// Used by the skeleton engine, whose payloads are sliced indexers: the
    /// closure carries the (already serialization-roundtripped) data
    /// natively — code plus deserialized bytes, exactly what arrives at a
    /// real node — while `wire_bytes` declares the payload size for the cost
    /// model and traffic accounting. Each task must route its compute
    /// through the provided [`NodeCtx`] so virtual time observes it.
    pub fn run_raw<'a, R>(&self, tasks: Vec<RawTask<'a, R>>) -> DistOutcome<R>
    where
        R: Wire + Send,
    {
        assert!(
            tasks.len() <= self.config.nodes,
            "more tasks ({}) than nodes ({})",
            tasks.len(),
            self.config.nodes
        );
        match self.config.mode {
            ExecMode::Virtual => {
                let cost = self.config.cost;
                let mut clock = 0.0f64;
                let mut comm_s = 0.0f64;
                let mut bytes_out = 0u64;
                let mut send_done = Vec::with_capacity(tasks.len());
                for t in &tasks {
                    self.stats.record(t.wire_bytes);
                    let dt = cost.transfer_time(t.wire_bytes);
                    clock += dt;
                    comm_s += dt;
                    bytes_out += t.wire_bytes as u64;
                    send_done.push(clock);
                }
                let mut results_bytes = Vec::with_capacity(tasks.len());
                let mut node_compute = Vec::with_capacity(tasks.len());
                for (rank, t) in tasks.into_iter().enumerate() {
                    let ctx =
                        NodeCtx::new(rank, self.config.threads_per_node, ExecMode::Virtual, None);
                    let result = (t.work)(&ctx);
                    let rb = ctx.sequential(|| packed(&result));
                    node_compute.push(ctx.elapsed());
                    results_bytes.push(rb);
                }
                let mut finish = 0.0f64;
                let mut bytes_back = 0u64;
                for ((done, compute), rb) in
                    send_done.iter().zip(&node_compute).zip(&results_bytes)
                {
                    self.stats.record(rb.len());
                    let dt = cost.transfer_time(rb.len());
                    comm_s += dt;
                    bytes_back += rb.len() as u64;
                    finish = finish.max(done + compute + dt);
                }
                let t1 = Instant::now();
                let results: Vec<R> = results_bytes
                    .into_iter()
                    .map(|rb| unpack_all(rb).expect("result roundtrip"))
                    .collect();
                let root_unpack_s = t1.elapsed().as_secs_f64();
                let messages = 2 * node_compute.len() as u64;
                DistOutcome {
                    results,
                    timing: DistTiming {
                        total_s: finish + root_unpack_s,
                        comm_s,
                        node_compute_s: node_compute,
                        bytes_out,
                        bytes_back,
                        messages,
                    },
                }
            }
            ExecMode::Measured => {
                let t_start = Instant::now();
                let n = tasks.len();
                let mut bytes_out = 0u64;
                for t in &tasks {
                    self.stats.record(t.wire_bytes);
                    bytes_out += t.wire_bytes as u64;
                }
                let pools = &self.pools;
                let tpn = self.config.threads_per_node;
                let mut slots: Vec<Option<(bytes::Bytes, f64)>> = (0..n).map(|_| None).collect();
                std::thread::scope(|s| {
                    let mut handles = Vec::new();
                    for (rank, t) in tasks.into_iter().enumerate() {
                        let pool = &pools[rank];
                        handles.push(s.spawn(move || {
                            let ctx = NodeCtx::new(rank, tpn, ExecMode::Measured, Some(pool));
                            let result = (t.work)(&ctx);
                            let rb = ctx.sequential(|| packed(&result));
                            (rb, ctx.elapsed())
                        }));
                    }
                    for (rank, h) in handles.into_iter().enumerate() {
                        slots[rank] = Some(h.join().expect("node task must not panic"));
                    }
                });
                let mut results = Vec::with_capacity(n);
                let mut node_compute = Vec::with_capacity(n);
                let mut bytes_back = 0u64;
                for slot in slots {
                    let (rb, secs) = slot.expect("every node produced a result");
                    self.stats.record(rb.len());
                    bytes_back += rb.len() as u64;
                    node_compute.push(secs);
                    results.push(unpack_all(rb).expect("result roundtrip"));
                }
                DistOutcome {
                    results,
                    timing: DistTiming {
                        total_s: t_start.elapsed().as_secs_f64(),
                        comm_s: 0.0,
                        node_compute_s: node_compute,
                        bytes_out,
                        bytes_back,
                        messages: 2 * n as u64,
                    },
                }
            }
        }
    }

    fn run_virtual<T, R, F>(&self, payloads: Vec<T>, task: F) -> DistOutcome<R>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(&NodeCtx<'_>, T) -> R + Send + Sync,
    {
        let cost = self.config.cost;
        // Root packs every outgoing message (the paper observed message
        // construction itself becoming a bottleneck for sgemm — we charge
        // it).
        let t0 = Instant::now();
        let out_msgs: Vec<bytes::Bytes> = payloads.iter().map(packed).collect();
        let root_pack_s = t0.elapsed().as_secs_f64();
        drop(payloads);

        // Root sends sequentially; node i's payload lands after all earlier
        // sends complete (single NIC at the root).
        let mut send_done = Vec::with_capacity(out_msgs.len());
        let mut clock = root_pack_s;
        let mut comm_s = 0.0;
        for m in &out_msgs {
            self.stats.record(m.len());
            let dt = cost.transfer_time(m.len());
            clock += dt;
            comm_s += dt;
            send_done.push(clock);
        }
        let bytes_out: u64 = out_msgs.iter().map(|m| m.len() as u64).sum();

        // Nodes execute one at a time (they share nothing); each is timed.
        let mut results_bytes = Vec::with_capacity(out_msgs.len());
        let mut node_compute = Vec::with_capacity(out_msgs.len());
        for (rank, msg) in out_msgs.into_iter().enumerate() {
            let ctx = NodeCtx::new(rank, self.config.threads_per_node, ExecMode::Virtual, None);
            // Deserialization happens on the node: charge it.
            let payload: T = ctx.sequential(|| unpack_all(msg).expect("payload roundtrip"));
            let result = task(&ctx, payload);
            let rbytes = ctx.sequential(|| packed(&result));
            node_compute.push(ctx.elapsed());
            results_bytes.push(rbytes);
        }

        // Results stream back; each node's arrival is its finish plus its
        // own transfer; the root then unpacks.
        let mut finish = 0.0f64;
        let mut bytes_back = 0u64;
        for ((done, compute), rb) in send_done.iter().zip(&node_compute).zip(&results_bytes) {
            self.stats.record(rb.len());
            let dt = cost.transfer_time(rb.len());
            comm_s += dt;
            bytes_back += rb.len() as u64;
            finish = finish.max(done + compute + dt);
        }
        let t1 = Instant::now();
        let results: Vec<R> = results_bytes
            .into_iter()
            .map(|rb| unpack_all(rb).expect("result roundtrip"))
            .collect();
        let root_unpack_s = t1.elapsed().as_secs_f64();

        let messages = 2 * node_compute.len() as u64;
        DistOutcome {
            results,
            timing: DistTiming {
                total_s: finish + root_unpack_s,
                comm_s,
                node_compute_s: node_compute,
                bytes_out,
                bytes_back,
                messages,
            },
        }
    }

    fn run_measured<T, R, F>(&self, payloads: Vec<T>, task: F) -> DistOutcome<R>
    where
        T: Wire + Send,
        R: Wire + Send,
        F: Fn(&NodeCtx<'_>, T) -> R + Send + Sync,
    {
        let t_start = Instant::now();
        let out_msgs: Vec<bytes::Bytes> = payloads.iter().map(packed).collect();
        let bytes_out: u64 = out_msgs.iter().map(|m| m.len() as u64).sum();
        for m in &out_msgs {
            self.stats.record(m.len());
        }
        let n = out_msgs.len();
        let task = &task;
        let pools = &self.pools;
        let tpn = self.config.threads_per_node;
        let mut slots: Vec<Option<(bytes::Bytes, f64)>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (rank, msg) in out_msgs.into_iter().enumerate() {
                let pool = &pools[rank];
                handles.push(s.spawn(move || {
                    let ctx = NodeCtx::new(rank, tpn, ExecMode::Measured, Some(pool));
                    let payload: T =
                        ctx.sequential(|| unpack_all(msg).expect("payload roundtrip"));
                    let result = task(&ctx, payload);
                    let rbytes = ctx.sequential(|| packed(&result));
                    (rbytes, ctx.elapsed())
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                slots[rank] = Some(h.join().expect("node task must not panic"));
            }
        });
        let mut results = Vec::with_capacity(n);
        let mut node_compute = Vec::with_capacity(n);
        let mut bytes_back = 0u64;
        for slot in slots {
            let (rb, secs) = slot.expect("every node produced a result");
            self.stats.record(rb.len());
            bytes_back += rb.len() as u64;
            node_compute.push(secs);
            results.push(unpack_all(rb).expect("result roundtrip"));
        }
        DistOutcome {
            results,
            timing: DistTiming {
                total_s: t_start.elapsed().as_secs_f64(),
                comm_s: 0.0, // real transfers are in-process; wall time covers them
                node_compute_s: node_compute,
                bytes_out,
                bytes_back,
                messages: 2 * n as u64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_run_scatters_and_gathers() {
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(4, 2));
        let payloads: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64; 10]).collect();
        let out = cluster.run(payloads, |ctx, v: Vec<u64>| {
            assert_eq!(v.len(), 10);
            v.iter().sum::<u64>() + ctx.rank() as u64 * 1000
        });
        assert_eq!(out.results, vec![0, 1010, 2020, 3030]);
        assert_eq!(out.timing.messages, 8);
        assert!(out.timing.bytes_out > 0);
        assert_eq!(cluster.stats().messages(), 8);
    }

    #[test]
    fn measured_run_matches_virtual_results() {
        let payloads: Vec<Vec<u64>> = (0..3).map(|i| (0..=i as u64).collect()).collect();
        let task = |_ctx: &NodeCtx<'_>, v: Vec<u64>| v.iter().sum::<u64>();
        let v = Cluster::new(ClusterConfig::virtual_cluster(3, 2)).run(payloads.clone(), task);
        let m = Cluster::new(ClusterConfig::measured(3, 2)).run(payloads, task);
        assert_eq!(v.results, m.results);
        assert_eq!(v.timing.bytes_out, m.timing.bytes_out);
    }

    #[test]
    fn broadcast_clones_payload_per_node() {
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(3, 1));
        let out = cluster.run_broadcast(vec![1u32, 2, 3], |ctx, v: Vec<u32>| {
            v[ctx.rank() % 3] as u64
        });
        assert_eq!(out.results, vec![1, 2, 3]);
        // Broadcast ships the payload once per node.
        let one = (vec![1u32, 2, 3]).packed_size() as u64;
        assert_eq!(out.timing.bytes_out, 3 * one);
    }

    #[test]
    fn fewer_payloads_than_nodes_is_fine() {
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(8, 2));
        let out = cluster.run(vec![1u64, 2], |_ctx, x: u64| x * 2);
        assert_eq!(out.results, vec![2, 4]);
    }

    #[test]
    #[should_panic(expected = "more payloads")]
    fn too_many_payloads_panics() {
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(2, 1));
        let _ = cluster.run(vec![1u64, 2, 3], |_ctx, x: u64| x);
    }

    #[test]
    fn comm_cost_scales_with_bytes() {
        let cfg = ClusterConfig::virtual_cluster(2, 1)
            .with_cost(CostModel { latency_s: 0.0, bandwidth_bps: 1e6 });
        let cluster = Cluster::new(cfg);
        let big = vec![0u8; 1_000_000];
        let small = vec![0u8; 10];
        let t_big = cluster.run(vec![big], |_c, v: Vec<u8>| v.len() as u64).timing.comm_s;
        let t_small = cluster.run(vec![small], |_c, v: Vec<u8>| v.len() as u64).timing.comm_s;
        assert!(t_big > 50.0 * t_small, "1MB at 1MB/s must dominate: {t_big} vs {t_small}");
    }

    #[test]
    fn free_cost_model_zero_comm() {
        let cfg = ClusterConfig::virtual_cluster(2, 1).with_cost(CostModel::free());
        let out = Cluster::new(cfg).run(vec![vec![0u8; 1000], vec![0u8; 1000]], |_c, v: Vec<u8>| {
            v.len() as u64
        });
        assert_eq!(out.timing.comm_s, 0.0);
    }

    #[test]
    fn node_ctx_time_feeds_timing() {
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(2, 4));
        let out = cluster.run(vec![5u64, 6], |ctx, x: u64| {
            ctx.sequential(|| std::thread::sleep(std::time::Duration::from_millis(3)));
            x
        });
        assert!(out.timing.node_compute_s.iter().all(|&t| t >= 0.003));
        assert!(out.timing.total_s >= 0.003);
    }
}
