//! Per-node execution context: where two-level parallelism meets the clock.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use triolet_obs::{TraceData, TraceHandle, Track};
use triolet_pool::parallel::map_parts_ordered;
use triolet_pool::vtime::greedy_schedule;
use triolet_pool::{current_worker_index, ThreadPool};

/// How node tasks execute and how their time is accounted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Real threads, wall-clock timing.
    Measured,
    /// Sequential execution, virtual-time modeling of `threads` workers.
    Virtual,
}

/// Node-local storage for persistent distributed collections.
///
/// When the engine scatters a `DistVec`, each segment is registered here
/// under a `(collection id, rank)` key with the byte size it occupies in
/// that rank's memory. The registry is the cluster's source of truth for
/// *placement*: a dispatched task tagged with a resident segment pays zero
/// forward bytes when its executing rank matches the segment's home entry,
/// and a full re-ship when a crash forces it onto a survivor. Dropping a
/// collection evicts its segments (the node-side `free`).
#[derive(Debug, Default)]
pub struct ResidentStore {
    next_id: AtomicU64,
    /// `(collection id, rank)` -> resident bytes on that rank.
    segments: Mutex<HashMap<(u64, usize), usize>>,
}

impl ResidentStore {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a collection id (unique within this cluster).
    pub fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Register one segment of collection `id` as resident on `rank`.
    pub fn register(&self, id: u64, rank: usize, bytes: usize) {
        self.segments.lock().expect("resident store poisoned").insert((id, rank), bytes);
    }

    /// Does `rank` hold a segment of collection `id`?
    pub fn holds(&self, id: u64, rank: usize) -> bool {
        self.segments.lock().expect("resident store poisoned").contains_key(&(id, rank))
    }

    /// Bytes of collection `id` resident on `rank` (0 if absent).
    pub fn segment_bytes(&self, id: u64, rank: usize) -> usize {
        self.segments
            .lock()
            .expect("resident store poisoned")
            .get(&(id, rank))
            .copied()
            .unwrap_or(0)
    }

    /// Total resident bytes on `rank` across all collections.
    pub fn bytes_on(&self, rank: usize) -> usize {
        self.segments
            .lock()
            .expect("resident store poisoned")
            .iter()
            .filter(|((_, r), _)| *r == rank)
            .map(|(_, b)| *b)
            .sum()
    }

    /// Total resident bytes across the cluster.
    pub fn total_bytes(&self) -> usize {
        self.segments.lock().expect("resident store poisoned").values().sum()
    }

    /// Number of registered segments.
    pub fn segment_count(&self) -> usize {
        self.segments.lock().expect("resident store poisoned").len()
    }

    /// Evict every segment of collection `id`, returning the bytes freed.
    pub fn evict(&self, id: u64) -> usize {
        let mut map = self.segments.lock().expect("resident store poisoned");
        let freed: usize = map.iter().filter(|((i, _), _)| *i == id).map(|(_, b)| *b).sum();
        map.retain(|(i, _), _| *i != id);
        freed
    }
}

/// The context a node task receives: its rank, its (real or modeled) thread
/// count, and a virtual clock.
///
/// All compute inside a node task must go through the context's helpers
/// ([`NodeCtx::map_chunks`], [`NodeCtx::map_reduce_chunks`],
/// [`NodeCtx::sequential`]) so the virtual clock observes it. In `Measured`
/// mode the helpers run on the node's real pool and charge wall time; in
/// `Virtual` mode they run sequentially, time every leaf, and charge the
/// greedy-schedule makespan for the configured thread count — the
/// deterministic replay of a work-stealing execution.
pub struct NodeCtx<'a> {
    rank: usize,
    threads: usize,
    mode: ExecMode,
    pool: Option<&'a ThreadPool>,
    vclock: Cell<f64>,
    trace: TraceHandle,
}

impl<'a> NodeCtx<'a> {
    /// Build a context (the cluster does this; tests may too).
    pub fn new(rank: usize, threads: usize, mode: ExecMode, pool: Option<&'a ThreadPool>) -> Self {
        assert!(
            mode == ExecMode::Virtual || pool.is_some(),
            "Measured mode requires a real thread pool"
        );
        NodeCtx {
            rank,
            threads: threads.max(1),
            mode,
            pool,
            vclock: Cell::new(0.0),
            trace: TraceHandle::disabled(),
        }
    }

    /// Attach a trace sink; spans are recorded on this node's timeline
    /// (origin = node-task start; the dispatcher rebases them).
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Drain the node-local timeline recorded so far.
    pub fn take_trace(&self) -> TraceData {
        self.trace.take()
    }

    fn node_track(&self) -> Track {
        Track::Node(self.rank)
    }

    fn worker_track(&self, worker: usize) -> Track {
        Track::Worker { rank: self.rank, worker }
    }

    /// This node's rank in the cluster.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Worker threads this node models (or really has).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Seconds of node time charged so far.
    ///
    /// In virtual mode this is the task's whole timed footprint: the
    /// dispatcher reads it once after the task body returns and hands it to
    /// the discrete-event core ([`crate::sim`]) as the task's node-execution
    /// duration, so a rank's timeline is a chain of these, each gated on
    /// payload arrival, rank availability, and the broadcast environment.
    pub fn elapsed(&self) -> f64 {
        self.vclock.get()
    }

    fn charge(&self, seconds: f64) {
        self.vclock.set(self.vclock.get() + seconds);
    }

    /// Charge modeled (not measured) seconds to this node — used by
    /// baseline runtimes to account costs our substrate does not incur
    /// physically, e.g. Eden's intra-node message copies.
    pub fn charge_seconds(&self, seconds: f64) {
        self.charge(seconds.max(0.0));
    }

    /// Run a sequential section (runs on one thread; charged at full cost).
    pub fn sequential<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.charge(t0.elapsed().as_secs_f64());
        r
    }

    /// [`sequential`](Self::sequential) with a labeled span on the node's
    /// timeline (e.g. `"unpack"`/`"pack"` with category `"prep"`).
    pub fn sequential_labeled<R>(
        &self,
        name: &'static str,
        cat: &'static str,
        f: impl FnOnce() -> R,
    ) -> R {
        let t0 = self.elapsed();
        let r = self.sequential(f);
        self.trace.span(name, cat, self.node_track(), t0, self.elapsed(), vec![]);
        r
    }

    /// Run a payload deserialization on this node's clock, emitting an
    /// `"unpack"` span annotated with how many payload bytes were memcpy'd
    /// vs aliased in place ([`PodView`](triolet_serial::PodView) fields alias
    /// the received buffer; everything else copies). The counters are
    /// thread-local, and both the closure and the delta reads run on this
    /// thread, so concurrent node tasks cannot bleed into each other.
    pub fn unpack_sequential<R>(&self, f: impl FnOnce() -> R) -> R {
        let (c0, a0) = triolet_serial::unpack_counters();
        let t0 = self.elapsed();
        let r = self.sequential(f);
        let (c1, a1) = triolet_serial::unpack_counters();
        self.trace.span(
            "unpack",
            "prep",
            self.node_track(),
            t0,
            self.elapsed(),
            vec![("copied", c1.wrapping_sub(c0).into()), ("aliased", a1.wrapping_sub(a0).into())],
        );
        r
    }

    /// Map `leaf` over explicit chunks in parallel, preserving order.
    ///
    /// The chunk list is the thread-level work decomposition (the paper's
    /// second level, §3.4); pass ~4 chunks per thread so stealing can balance
    /// irregular chunk costs.
    pub fn map_chunks<P, T>(&self, chunks: Vec<P>, leaf: impl Fn(&P) -> T + Sync) -> Vec<T>
    where
        P: Send,
        T: Send,
    {
        match self.mode {
            ExecMode::Measured => {
                let pool = self.pool.expect("Measured mode has a pool");
                let base = self.elapsed();
                let t0 = Instant::now();
                let out = if self.trace.enabled() {
                    let trace = self.trace.clone();
                    let rank = self.rank;
                    let traced = |c: &P| {
                        let s = t0.elapsed().as_secs_f64();
                        let r = leaf(c);
                        let e = t0.elapsed().as_secs_f64();
                        let w = current_worker_index().unwrap_or(0);
                        trace.span(
                            "chunk",
                            "compute",
                            Track::Worker { rank, worker: w },
                            base + s,
                            base + e,
                            vec![],
                        );
                        r
                    };
                    map_parts_ordered(pool, chunks, &traced)
                } else {
                    map_parts_ordered(pool, chunks, &leaf)
                };
                self.charge(t0.elapsed().as_secs_f64());
                out
            }
            ExecMode::Virtual => {
                let mut durations = Vec::with_capacity(chunks.len());
                let mut out = Vec::with_capacity(chunks.len());
                for c in &chunks {
                    let t0 = Instant::now();
                    out.push(leaf(c));
                    durations.push(t0.elapsed().as_secs_f64());
                }
                let sched = greedy_schedule(&durations, self.threads);
                self.trace_schedule(&sched, &durations, &sched.worker_loads, sched.makespan);
                self.charge(sched.makespan);
                out
            }
        }
    }

    /// Emit per-chunk compute spans and per-worker idle spans for a virtual
    /// schedule, placed on the node's timeline starting at the current
    /// virtual clock. Span *names* and ordering are schedule-independent
    /// (chunk order, then worker order) so golden traces stay deterministic;
    /// only the timestamps and worker assignments follow the measured
    /// durations.
    fn trace_schedule(
        &self,
        sched: &triolet_pool::Schedule,
        durations: &[f64],
        final_loads: &[f64],
        span_end: f64,
    ) {
        if !self.trace.enabled() {
            return;
        }
        let base = self.elapsed();
        for (c, &d) in durations.iter().enumerate() {
            let w = sched.assignment[c];
            let s = sched.start_times[c];
            self.trace.span(
                "chunk",
                "compute",
                self.worker_track(w),
                base + s,
                base + s + d,
                vec![("chunk", c.into())],
            );
        }
        for (w, &load) in final_loads.iter().enumerate() {
            self.trace.span(
                "idle",
                "idle",
                self.worker_track(w),
                base + load,
                base + span_end,
                vec![],
            );
        }
    }

    /// Map chunks to private partial results and merge them: the paper's
    /// per-thread private accumulation (each thread builds its own sum or
    /// histogram) followed by a per-node merge.
    ///
    /// The merge always folds partials in chunk order, in both modes. The
    /// virtual schedule (like a real work-stealing pool) is timing-dependent,
    /// so it only decides what the merges *cost*, never the merge tree —
    /// otherwise floating-point results would vary run to run, and fault
    /// recovery could not promise bit-identical output.
    pub fn map_reduce_chunks<P, T>(
        &self,
        chunks: Vec<P>,
        leaf: impl Fn(&P) -> T + Sync,
        mut merge: impl FnMut(T, T) -> T,
    ) -> Option<T>
    where
        P: Send,
        T: Send,
    {
        if chunks.is_empty() {
            return None;
        }
        match self.mode {
            ExecMode::Measured => {
                let pool = self.pool.expect("Measured mode has a pool");
                let base = self.elapsed();
                let t0 = Instant::now();
                let partials = if self.trace.enabled() {
                    let trace = self.trace.clone();
                    let rank = self.rank;
                    let traced = |c: &P| {
                        let s = t0.elapsed().as_secs_f64();
                        let r = leaf(c);
                        let e = t0.elapsed().as_secs_f64();
                        let w = current_worker_index().unwrap_or(0);
                        trace.span(
                            "chunk",
                            "compute",
                            Track::Worker { rank, worker: w },
                            base + s,
                            base + e,
                            vec![],
                        );
                        r
                    };
                    map_parts_ordered(pool, chunks, &traced)
                } else {
                    map_parts_ordered(pool, chunks, &leaf)
                };
                let m0 = t0.elapsed().as_secs_f64();
                let out = partials.into_iter().reduce(&mut merge);
                let m1 = t0.elapsed().as_secs_f64();
                self.trace.span("merge", "merge", self.node_track(), base + m0, base + m1, vec![]);
                self.charge(t0.elapsed().as_secs_f64());
                out
            }
            ExecMode::Virtual => {
                // Phase 1: run and time each chunk.
                let mut durations = Vec::with_capacity(chunks.len());
                let mut results: Vec<Option<T>> = Vec::with_capacity(chunks.len());
                for c in &chunks {
                    let t0 = Instant::now();
                    let r = leaf(c);
                    durations.push(t0.elapsed().as_secs_f64());
                    results.push(Some(r));
                }
                // Phase 2: merge partials in chunk order, charging each
                // merge to the virtual thread the schedule assigned that
                // chunk to. The merge order must not follow the schedule:
                // the greedy assignment depends on *measured* durations, so
                // a schedule-shaped merge tree would reassociate
                // floating-point merges from run to run.
                let sched = greedy_schedule(&durations, self.threads);
                let mut worker_loads = sched.worker_loads.clone();
                let mut acc: Option<T> = None;
                let mut merge_bounds = Vec::new();
                for (task, slot) in results.iter_mut().enumerate() {
                    let value = slot.take().expect("each chunk merged once");
                    let t0 = Instant::now();
                    acc = Some(match acc {
                        None => value,
                        Some(a) => merge(a, value),
                    });
                    let w = sched.assignment[task];
                    let pre = worker_loads[w];
                    worker_loads[w] += t0.elapsed().as_secs_f64();
                    merge_bounds.push((w, pre, worker_loads[w]));
                }
                let thread_span = worker_loads.iter().cloned().fold(0.0, f64::max);
                self.trace_schedule(&sched, &durations, &worker_loads, thread_span);
                if self.trace.enabled() {
                    let base = self.elapsed();
                    for (w, pre, post) in merge_bounds {
                        self.trace.span(
                            "merge",
                            "merge",
                            self.worker_track(w),
                            base + pre,
                            base + post,
                            vec![],
                        );
                    }
                }
                self.charge(thread_span);
                acc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet_domain::{Domain, Part, Seq, SeqPart};

    fn vctx(threads: usize) -> NodeCtx<'static> {
        NodeCtx::new(0, threads, ExecMode::Virtual, None)
    }

    #[test]
    fn sequential_charges_time() {
        let ctx = vctx(4);
        let r = ctx.sequential(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(r, 42);
        assert!(ctx.elapsed() >= 0.004);
    }

    #[test]
    fn virtual_map_chunks_results_in_order() {
        let ctx = vctx(4);
        let chunks = Seq::new(100).split_parts(10);
        let firsts = ctx.map_chunks(chunks.clone(), |p: &SeqPart| p.start);
        assert_eq!(firsts, chunks.iter().map(|p| p.start).collect::<Vec<_>>());
    }

    #[test]
    fn virtual_map_reduce_matches_sequential() {
        let ctx = vctx(3);
        let xs: Vec<u64> = (0..1000).collect();
        let chunks = Seq::new(xs.len()).split_parts(12);
        let total = ctx
            .map_reduce_chunks(
                chunks,
                |p: &SeqPart| p.range().map(|i| xs[i]).sum::<u64>(),
                |a, b| a + b,
            )
            .unwrap();
        assert_eq!(total, xs.iter().sum::<u64>());
    }

    #[test]
    fn virtual_merge_tree_ignores_the_schedule() {
        // The greedy schedule is built from measured durations, which
        // jitter run to run. If the merge tree followed it, this f64 fold
        // would reassociate and the bits would disagree across repeats.
        let xs: Vec<f64> = (0..4096).map(|i| (i as f64) * 0.1 + 0.3).collect();
        let run = || {
            let ctx = vctx(3);
            let chunks = Seq::new(xs.len()).split_parts(24);
            ctx.map_reduce_chunks(
                chunks,
                |p: &SeqPart| p.range().map(|i| xs[i]).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let bits: Vec<u64> = (0..8).map(|_| run().to_bits()).collect();
        assert!(
            bits.iter().all(|&b| b == bits[0]),
            "virtual-mode merge must be bit-deterministic, got {bits:?}"
        );
    }

    #[test]
    fn more_virtual_threads_less_charged_time() {
        // Charge a deliberate per-chunk cost and check modeled scaling.
        let busy = |_p: &SeqPart| {
            let t0 = Instant::now();
            let mut x = 0u64;
            while t0.elapsed().as_secs_f64() < 0.002 {
                x = x.wrapping_add(1);
                std::hint::black_box(x);
            }
            x
        };
        // The per-chunk costs are wall-measured, so a shared-tenancy host
        // can skew one arm of the comparison; the modeled speedup only has
        // to be achievable, not hit on every single attempt.
        let chunks = Seq::new(64).split_parts(16);
        let (mut best1, mut best8) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            let ctx1 = vctx(1);
            ctx1.map_chunks(chunks.clone(), busy);
            let ctx8 = vctx(8);
            ctx8.map_chunks(chunks.clone(), busy);
            best1 = best1.min(ctx1.elapsed());
            best8 = best8.min(ctx8.elapsed());
            if best8 < best1 / 4.0 {
                break;
            }
        }
        assert!(
            best8 < best1 / 4.0,
            "8 virtual threads must model at least 4x speedup over 1 ({best8} vs {best1})"
        );
    }

    #[test]
    fn measured_mode_map_reduce() {
        let pool = ThreadPool::new(2);
        let ctx = NodeCtx::new(0, 2, ExecMode::Measured, Some(&pool));
        let chunks = Seq::new(100).split_parts(8);
        let total =
            ctx.map_reduce_chunks(chunks, |p: &SeqPart| p.count() as u64, |a, b| a + b).unwrap();
        assert_eq!(total, 100);
        assert!(ctx.elapsed() > 0.0);
    }

    #[test]
    fn empty_chunk_list_is_none() {
        let ctx = vctx(2);
        let r = ctx.map_reduce_chunks(Vec::<SeqPart>::new(), |_| 1u32, |a, b| a + b);
        assert!(r.is_none());
    }

    #[test]
    #[should_panic(expected = "Measured mode requires")]
    fn measured_without_pool_panics() {
        let _ = NodeCtx::new(0, 2, ExecMode::Measured, None);
    }
}
