//! Binomial broadcast/reduce tree over relative ranks.
//!
//! MPI implementations route small- and medium-message collectives over a
//! binomial tree: the root hands the payload to `log2(N)` children, each of
//! which relays it to its own subtree, so the root's serialized send time —
//! O(N) in a naive loop — drops to O(log N) while every relay happens in
//! parallel on ranks that already hold the data.
//!
//! The shape used here is the *contiguous-subtree* binomial tree over
//! relative ranks `0..m` (relative rank = `(rank - root) mod n`):
//!
//! * `parent(v)` clears `v`'s lowest set bit;
//! * `children(v)` are `v + 2^k` for every `2^k` below `v`'s lowest set bit
//!   (every power of two for the root), bounded by `m`;
//! * the subtree rooted at `v` covers exactly the contiguous relative ranks
//!   `[v, v + lowbit(v))`.
//!
//! That contiguity is what lets tree `gather`/`reduce` preserve *rank order*:
//! a node's own value followed by its children's blocks in ascending-child
//! order is precisely the rank-ordered run of its subtree, so concatenations
//! (gather) and left-to-right folds (reduce) over the tree agree with the
//! linear, root-centric collectives bit for bit.

/// Parent of relative rank `v > 0`: clear the lowest set bit.
pub fn parent(v: usize) -> usize {
    debug_assert!(v > 0, "the root has no parent");
    v & (v - 1)
}

/// Depth of relative rank `v` (root = 0): its set-bit count.
pub fn depth(v: usize) -> u32 {
    v.count_ones()
}

/// Children of relative rank `v` in a tree of `m` participants, ascending.
///
/// For `v = 0` these are the powers of two below `m`; otherwise `v + 2^k`
/// for each `2^k` smaller than `v`'s lowest set bit. The subtree under child
/// `c` covers the contiguous range `[c, min(c + lowbit(c), m))`.
pub fn children(v: usize, m: usize) -> Vec<usize> {
    let lowbit = if v == 0 { usize::MAX } else { v & v.wrapping_neg() };
    let mut out = Vec::new();
    let mut k = 1usize;
    while k < lowbit {
        let c = v + k;
        if c >= m {
            break;
        }
        out.push(c);
        k <<= 1;
    }
    out
}

/// Number of children of relative rank `v` in a tree of `m` participants —
/// [`children`]`.len()` without materializing the list, so per-edge callers
/// (fan-out annotations on every broadcast edge) stay allocation-free.
pub fn fanout(v: usize, m: usize) -> usize {
    let lowbit = if v == 0 { usize::MAX } else { v & v.wrapping_neg() };
    let mut n = 0usize;
    let mut k = 1usize;
    while k < lowbit {
        if v + k >= m {
            break;
        }
        n += 1;
        k <<= 1;
    }
    n
}

/// Arrival offsets of every participant relative to the root starting its
/// first send at time 0, with per-edge costs supplied by `edge_cost(sender,
/// child)`.
///
/// Each sender's NIC serializes its own sends — children are sent
/// largest-subtree-first (descending), the order that minimizes the critical
/// path — while different senders transmit concurrently. `arrival[0]` is 0.
pub fn broadcast_arrivals(m: usize, mut edge_cost: impl FnMut(usize, usize) -> f64) -> Vec<f64> {
    let mut arrival = vec![0.0f64; m];
    // Parents have smaller relative ranks than their children, so a single
    // ascending pass sees every arrival before it is needed.
    for v in 0..m {
        let mut clock = arrival[v];
        for &c in children(v, m).iter().rev() {
            clock += edge_cost(v, c);
            arrival[c] = clock;
        }
    }
    arrival
}

/// Every (sender, child) edge of the tree over `m` participants, in the
/// order senders transmit them (ascending sender, descending child).
pub fn edges(m: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(m.saturating_sub(1));
    for v in 0..m {
        for &c in children(v, m).iter().rev() {
            out.push((v, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_clears_lowest_bit() {
        assert_eq!(parent(1), 0);
        assert_eq!(parent(2), 0);
        assert_eq!(parent(3), 2);
        assert_eq!(parent(6), 4);
        assert_eq!(parent(7), 6);
        assert_eq!(parent(12), 8);
    }

    #[test]
    fn children_are_ascending_and_bounded() {
        assert_eq!(children(0, 8), vec![1, 2, 4]);
        assert_eq!(children(0, 6), vec![1, 2, 4]);
        assert_eq!(children(0, 2), vec![1]);
        assert_eq!(children(4, 8), vec![5, 6]);
        assert_eq!(children(6, 8), vec![7]);
        assert_eq!(children(1, 8), Vec::<usize>::new());
        assert_eq!(children(0, 1), Vec::<usize>::new());
    }

    #[test]
    fn every_nonroot_has_its_parent_listing_it() {
        for m in 1..40 {
            for v in 1..m {
                let p = parent(v);
                assert!(children(p, m).contains(&v), "m={m} v={v} parent={p}");
            }
        }
    }

    #[test]
    fn subtrees_are_contiguous_and_partition_the_ranks() {
        // Walking the tree depth-first, children ascending, visits 0..m in
        // order — the property rank-ordered gather/reduce rest on.
        fn visit(v: usize, m: usize, out: &mut Vec<usize>) {
            out.push(v);
            for c in children(v, m) {
                visit(c, m, out);
            }
        }
        for m in 1..70 {
            let mut seen = Vec::new();
            visit(0, m, &mut seen);
            assert_eq!(seen, (0..m).collect::<Vec<_>>(), "m={m}");
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        assert_eq!(depth(0), 0);
        assert_eq!(depth(1), 1);
        assert_eq!(depth(6), 2);
        assert_eq!(depth(7), 3);
        // Max depth over m participants never exceeds ceil(log2(m)) and
        // reaches it exactly at powers of two (rank m-1 is all ones).
        for m in 2..100usize {
            let max_depth = (0..m).map(depth).max().unwrap();
            let ceil_log2 = usize::BITS - (m - 1).leading_zeros();
            assert!(max_depth <= ceil_log2, "m={m}");
            if m.is_power_of_two() {
                assert_eq!(max_depth, ceil_log2, "m={m}");
            }
        }
    }

    #[test]
    fn uniform_arrivals_scale_with_depth() {
        // With unit edge cost, a power-of-two tree delivers rank v no later
        // than depth(v) + (fan-out serialization) and the farthest rank in
        // 16 participants is reached in 4 time units, not 15.
        let a = broadcast_arrivals(16, |_, _| 1.0);
        assert_eq!(a[0], 0.0);
        let worst = a.iter().cloned().fold(0.0, f64::max);
        assert_eq!(worst, 4.0);
        // Linear root-serialized sends would need 15 units for the last rank.
        assert!(worst < 15.0);
    }

    #[test]
    fn edges_cover_every_nonroot_once() {
        for m in 1..32 {
            let es = edges(m);
            assert_eq!(es.len(), m - 1, "m={m}");
            let mut dests: Vec<usize> = es.iter().map(|&(_, c)| c).collect();
            dests.sort_unstable();
            assert_eq!(dests, (1..m).collect::<Vec<_>>(), "m={m}");
        }
    }
}
