//! Property tests for the cluster: results and traffic accounting must be
//! exact for arbitrary payload shapes and cluster sizes, and the comm layer
//! must deliver under arbitrary interleavings.

use std::sync::Arc;

use proptest::prelude::*;
use triolet_cluster::{Cluster, ClusterConfig, Comm, CostModel, FaultPlan, TrafficStats};
use triolet_serial::Wire;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn run_roundtrips_arbitrary_payloads(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..64),
            1..8,
        ),
    ) {
        let n = payloads.len();
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(n, 2));
        let expect: Vec<u64> =
            payloads.iter().map(|p| p.iter().fold(0u64, |a, b| a.wrapping_add(*b))).collect();
        let out = cluster.run(payloads, |_ctx, v: Vec<u64>| {
            v.iter().fold(0u64, |a, b| a.wrapping_add(*b))
        });
        prop_assert_eq!(out.results, expect);
    }

    #[test]
    fn traffic_accounts_exact_bytes(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<f32>().prop_filter("finite", |x| x.is_finite()), 0..64),
            1..6,
        ),
    ) {
        let n = payloads.len();
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(n, 1));
        let expect_out: u64 = payloads.iter().map(|p| p.packed_size() as u64).sum();
        let out = cluster.run(payloads, |_ctx, v: Vec<f32>| v.len() as u64);
        prop_assert_eq!(out.timing.bytes_out, expect_out);
        // Each result is one u64 (8 bytes).
        prop_assert_eq!(out.timing.bytes_back, 8 * n as u64);
        prop_assert_eq!(cluster.stats().messages(), 2 * n as u64);
    }

    #[test]
    fn virtual_comm_time_matches_model(
        sizes in proptest::collection::vec(1usize..5000, 1..6),
        latency_us in 0u64..200,
    ) {
        let cost = CostModel::flat(latency_us as f64 * 1e-6, 1e9);
        let n = sizes.len();
        let cluster = Cluster::new(ClusterConfig::virtual_cluster(n, 1).with_cost(cost));
        let payloads: Vec<Vec<u8>> = sizes.iter().map(|&s| vec![0u8; s]).collect();
        let out = cluster.run(payloads, |_ctx, v: Vec<u8>| v.len() as u64);
        // comm_s = sum over all 2n messages of latency + bytes/bw.
        let mut expect = 0.0;
        for &s in &sizes {
            expect += cost.transfer_time((vec![0u8; s]).packed_size());
        }
        for _ in 0..n {
            expect += cost.transfer_time(8);
        }
        prop_assert!((out.timing.comm_s - expect).abs() < 1e-9);
    }
}

#[test]
fn comm_all_to_all_delivery() {
    // Every rank sends to every other rank with a distinct tag; all arrive.
    let n = 4;
    let handles = Comm::create_with(n, None, Arc::new(TrafficStats::new()), FaultPlan::none());
    let results: Vec<u64> = std::thread::scope(|s| {
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                s.spawn(move || {
                    let me = h.rank();
                    for to in 0..h.size() {
                        if to != me {
                            h.send(to, me as u32, &(me as u64 * 100)).unwrap();
                        }
                    }
                    let mut sum = 0u64;
                    for from in 0..h.size() {
                        if from != me {
                            sum += h.recv::<u64>(from, from as u32).unwrap();
                        }
                    }
                    sum
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    // Each rank receives 100*sum(others).
    let total: u64 = (0..n as u64).map(|r| r * 100).sum();
    for (me, sum) in results.into_iter().enumerate() {
        assert_eq!(sum, total - me as u64 * 100);
    }
}

#[test]
fn comm_reduce_then_broadcast_chain() {
    // A two-phase collective sequence like the paper's histogram pipeline.
    let n = 3;
    let handles = Comm::create(n);
    let results: Vec<Vec<u64>> = std::thread::scope(|s| {
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                s.spawn(move || {
                    let mine = vec![h.rank() as u64; 4];
                    let summed = h
                        .all_reduce(mine, 1, |a, b| a.iter().zip(b).map(|(x, y)| x + y).collect())
                        .unwrap();
                    // Follow-up broadcast of a scalar derived from it.
                    let total = summed.iter().sum::<u64>();
                    h.broadcast(0, Some(total), 10).unwrap();
                    summed
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    for r in results {
        assert_eq!(r, vec![3, 3, 3, 3]); // 0+1+2 per cell
    }
}
