//! Failure injection: corrupt payloads, panicking node tasks, disconnected
//! peers — failures must surface as errors or propagated panics, never as
//! silent corruption or hangs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use triolet_cluster::{Cluster, ClusterConfig, Comm, CommError, FaultPlan, TrafficStats};
use triolet_serial::{packed, unpack_all, WireError};

#[test]
fn corrupt_payload_is_detected_not_misread() {
    // Flip bytes in a packed vector: unpack must error (or, if the
    // corruption hits element bytes only, still produce a same-length
    // vector — never UB or a bogus length).
    let original = vec![1.0f64, 2.0, 3.0, 4.0];
    let bytes = packed(&original);
    for flip_at in 0..bytes.len() {
        let mut corrupt: Vec<u8> = bytes.to_vec();
        corrupt[flip_at] ^= 0xFF;
        match unpack_all::<Vec<f64>>(bytes::Bytes::from(corrupt)) {
            Ok(v) => assert_eq!(v.len(), original.len(), "flip at {flip_at}"),
            Err(
                WireError::BadLength { .. }
                | WireError::UnexpectedEof { .. }
                | WireError::TrailingBytes { .. }
                | WireError::BadTag { .. }
                | WireError::BadUtf8,
            ) => {}
        }
    }
}

#[test]
fn truncated_payload_every_prefix_is_safe() {
    let original = (0..50u64).collect::<Vec<u64>>();
    let bytes = packed(&original);
    for cut in 0..bytes.len() {
        let prefix = bytes.slice(0..cut);
        assert!(
            unpack_all::<Vec<u64>>(prefix).is_err(),
            "every strict prefix must fail to decode (cut={cut})"
        );
    }
}

#[test]
fn node_task_panic_propagates_in_virtual_mode() {
    let cluster = Cluster::new(ClusterConfig::virtual_cluster(3, 2));
    let result = catch_unwind(AssertUnwindSafe(|| {
        cluster.run(vec![1u64, 2, 3], |_ctx, x: u64| {
            if x == 2 {
                panic!("injected node failure");
            }
            x
        })
    }));
    assert!(result.is_err(), "node panic must reach the caller");
    // The cluster must remain usable afterwards.
    let out = cluster.run(vec![10u64, 20, 30], |_ctx, x: u64| x + 1);
    assert_eq!(out.results, vec![11, 21, 31]);
}

#[test]
fn node_task_panic_propagates_in_measured_mode() {
    let cluster = Cluster::new(ClusterConfig::measured(2, 1));
    let result = catch_unwind(AssertUnwindSafe(|| {
        cluster.run(vec![0u64, 1], |_ctx, x: u64| {
            if x == 1 {
                panic!("injected node failure");
            }
            x
        })
    }));
    assert!(result.is_err());
}

#[test]
fn disconnected_peer_surfaces_as_error() {
    let mut handles = Comm::create_with(2, None, Arc::new(TrafficStats::new()), FaultPlan::none());
    let h1 = handles.pop().expect("rank 1");
    let mut h0 = handles.pop().expect("rank 0");
    // Drop rank 1 entirely: its receiver disappears.
    drop(h1);
    // Sending to a dropped rank reports Disconnected (crossbeam channel
    // closed), not a hang or panic.
    let r = h0.send(1, 0, &42u64);
    assert_eq!(r, Err(CommError::Disconnected));
    // Receiving from a dropped rank that never sent: all senders to rank 0
    // still exist (h0 holds clones), so this would block forever — instead
    // verify the buffered-path error shape via an immediate self-check:
    // rank 0 can still talk to itself through the buffer.
    h0.send(0, 7, &7u32).unwrap();
    assert_eq!(h0.recv::<u32>(0, 7).unwrap(), 7);
}

#[test]
fn oversized_message_rejected_before_transport() {
    let handles = Comm::create_with(2, Some(16), Arc::new(TrafficStats::new()), FaultPlan::none());
    let h0 = &handles[0];
    let big = vec![0u8; 1024];
    match h0.send(1, 0, &big) {
        Err(CommError::MessageTooLarge { bytes, limit }) => {
            assert!(bytes > limit);
            assert_eq!(limit, 16);
        }
        other => panic!("expected MessageTooLarge, got {other:?}"),
    }
    // Small messages still pass.
    assert!(h0.send(1, 0, &1u8).is_ok());
}

#[test]
fn zero_size_payloads_roundtrip() {
    let cluster = Cluster::new(ClusterConfig::virtual_cluster(2, 1));
    let out = cluster.run(vec![Vec::<u8>::new(), Vec::new()], |_ctx, v: Vec<u8>| v.len() as u64);
    assert_eq!(out.results, vec![0, 0]);
    // Empty payloads still count as messages (with their 8-byte length
    // frames).
    assert_eq!(out.timing.messages, 4);
    assert_eq!(out.timing.bytes_out, 16);
}
