//! Property tests: the tree-structured collectives are bit-identical to the
//! linear ones — for arbitrary payloads, rank counts, roots, and
//! non-commutative operators, with and without a seeded fault schedule.

use std::sync::Arc;

use proptest::prelude::*;
use triolet_cluster::{Comm, CommHandle, FaultPlan, TrafficStats};

/// Run `body` on every rank of a fresh `n`-rank communicator under `plan`
/// and return the per-rank results in rank order.
fn run_ranks<T, F>(n: usize, plan: FaultPlan, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut CommHandle) -> T + Send + Sync,
{
    let handles = Comm::create_with(n, None, Arc::new(TrafficStats::new()), plan);
    let body = &body;
    std::thread::scope(|s| {
        let joins: Vec<_> =
            handles.into_iter().map(|mut h| s.spawn(move || body(&mut h))).collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    })
}

fn lossy(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed).with_drop(0.25).with_duplication(0.2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tree_broadcast_matches_linear(
        payload in proptest::collection::vec(any::<u64>(), 0..96),
        n in 1usize..9,
        root_pick in 0usize..8,
        seed in any::<u64>(),
    ) {
        let root = root_pick % n;
        for plan in [FaultPlan::none(), lossy(seed)] {
            let p = payload.clone();
            let tree = run_ranks(n, plan, |h| {
                let v = (h.rank() == root).then(|| p.clone());
                h.broadcast(root, v, 3).unwrap()
            });
            let p = payload.clone();
            let linear = run_ranks(n, plan, |h| {
                let v = (h.rank() == root).then(|| p.clone());
                h.broadcast_linear(root, v, 3).unwrap()
            });
            prop_assert_eq!(&tree, &linear);
            prop_assert!(tree.iter().all(|v| *v == payload));
        }
    }

    #[test]
    fn tree_gather_matches_linear(
        per_rank_len in 0usize..24,
        n in 1usize..9,
        root_pick in 0usize..8,
        seed in any::<u64>(),
    ) {
        let root = root_pick % n;
        for plan in [FaultPlan::none(), lossy(seed)] {
            let tree = run_ranks(n, plan, |h| {
                let mine: Vec<u64> =
                    (0..per_rank_len).map(|i| (h.rank() * 1000 + i) as u64).collect();
                h.gather(root, mine, 5).unwrap()
            });
            let linear = run_ranks(n, plan, |h| {
                let mine: Vec<u64> =
                    (0..per_rank_len).map(|i| (h.rank() * 1000 + i) as u64).collect();
                h.gather_linear(root, mine, 5).unwrap()
            });
            prop_assert_eq!(&tree, &linear);
            // The root sees every rank's block in absolute rank order.
            let expect: Vec<Vec<u64>> = (0..n)
                .map(|r| (0..per_rank_len).map(|i| (r * 1000 + i) as u64).collect())
                .collect();
            prop_assert_eq!(tree[root].as_ref().unwrap(), &expect);
            for (r, got) in tree.iter().enumerate() {
                prop_assert_eq!(got.is_some(), r == root);
            }
        }
    }

    #[test]
    fn tree_all_reduce_matches_linear_for_noncommutative_ops(
        n in 1usize..9,
        seed in any::<u64>(),
    ) {
        // String concatenation is associative but NOT commutative: any
        // reordering (not just reassociation) would change the answer.
        let expect: String = (0..n).map(|r| r.to_string()).collect();
        for plan in [FaultPlan::none(), lossy(seed)] {
            let tree = run_ranks(n, plan, |h| {
                h.all_reduce(h.rank().to_string(), 7, |a, b| a + &b).unwrap()
            });
            let linear = run_ranks(n, plan, |h| {
                h.all_reduce_linear(h.rank().to_string(), 7, |a, b| a + &b).unwrap()
            });
            prop_assert_eq!(&tree, &linear);
            prop_assert!(tree.iter().all(|s| *s == expect));
        }
    }

    #[test]
    fn tree_broadcast_survives_a_crashed_leaf(
        payload in proptest::collection::vec(any::<u64>(), 0..32),
        seed in any::<u64>(),
    ) {
        // Rank 3 is a leaf of the 4-rank binomial tree rooted at 0; crashing
        // it must not stop the broadcast from reaching the live ranks.
        let n = 4;
        let crashed = 3;
        let plan = FaultPlan::seeded(seed).with_drop(0.2).with_crash(crashed);
        let mut handles = Comm::create_with(n, None, Arc::new(TrafficStats::new()), plan);
        // The crashed rank never participates, but its handle stays alive for
        // the duration (a dead node, not a deallocated one).
        let dead = handles.pop().unwrap();
        let p = &payload;
        let out: Vec<Vec<u64>> = std::thread::scope(|s| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|mut h| {
                    s.spawn(move || {
                        let v = (h.rank() == 0).then(|| p.clone());
                        h.broadcast(0, v, 9).unwrap()
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        drop(dead);
        for got in out {
            prop_assert_eq!(got, payload.clone());
        }
    }
}
