//! Property and stress tests for the work-stealing pool: results must be
//! independent of thread count, grain size, and scheduling order.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use triolet_domain::{Dim2, Domain, Part, Seq, SeqPart};
use triolet_pool::parallel::{map_parts_ordered, map_reduce_part, parallel_for_part};
use triolet_pool::vtime::greedy_schedule;
use triolet_pool::ThreadPool;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn map_reduce_invariant_under_threads_and_grain(
        xs in proptest::collection::vec(any::<i64>(), 1..2000),
        threads in 1usize..6,
        grain in 1usize..200,
    ) {
        let pool = ThreadPool::new(threads);
        let expect: i64 = xs.iter().map(|x| x.wrapping_mul(3)).fold(0, i64::wrapping_add);
        let got = map_reduce_part(
            &pool,
            Seq::new(xs.len()).whole_part(),
            grain,
            &|p: &SeqPart| p.range().map(|i| xs[i].wrapping_mul(3)).fold(0, i64::wrapping_add),
            &|a, b| a.wrapping_add(b),
        )
        .unwrap();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn parallel_for_visits_each_exactly_once(
        len in 1usize..1500,
        threads in 1usize..5,
        grain in 1usize..100,
    ) {
        let pool = ThreadPool::new(threads);
        let hits: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        parallel_for_part(&pool, Seq::new(len).whole_part(), grain, &|p: &SeqPart| {
            for i in p.range() {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dim2_reduce_matches_reference(
        rows in 1usize..40,
        cols in 1usize..40,
        threads in 1usize..4,
    ) {
        let pool = ThreadPool::new(threads);
        let d = Dim2::new(rows, cols);
        let expect: u64 = (0..rows).flat_map(|r| (0..cols).map(move |c| (r * 7 + c) as u64)).sum();
        let got = map_reduce_part(
            &pool,
            d.whole_part(),
            5,
            &|b| {
                let mut acc = 0u64;
                for k in 0..b.count() {
                    let (r, c) = b.index_at(k);
                    acc += (r * 7 + c) as u64;
                }
                acc
            },
            &|a, b| a + b,
        )
        .unwrap();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn ordered_map_is_order_stable(
        lens in proptest::collection::vec(1usize..50, 1..30),
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        let parts: Vec<SeqPart> = {
            let mut out = Vec::new();
            let mut start = 0;
            for l in lens {
                out.push(SeqPart::new(start, l));
                start += l;
            }
            out
        };
        let starts = map_parts_ordered(&pool, parts.clone(), &|p: &SeqPart| p.start);
        prop_assert_eq!(starts, parts.iter().map(|p| p.start).collect::<Vec<_>>());
    }

    #[test]
    fn greedy_schedule_invariants(
        durations in proptest::collection::vec(0.0f64..0.1, 0..100),
        workers in 1usize..32,
    ) {
        let s = greedy_schedule(&durations, workers);
        let work: f64 = durations.iter().sum();
        let span = durations.iter().cloned().fold(0.0, f64::max);
        // Graham bounds for greedy list scheduling.
        prop_assert!(s.makespan <= work / workers as f64 + span + 1e-9);
        prop_assert!(s.makespan + 1e-9 >= work / workers as f64);
        prop_assert!(s.makespan + 1e-9 >= span);
        // Loads account for all work.
        prop_assert!((s.work() - work).abs() < 1e-9);
    }
}

#[test]
fn deep_nested_scopes_stress() {
    let pool = ThreadPool::new(3);
    let total = AtomicU64::new(0);
    pool.scope(|s| {
        for _ in 0..8 {
            s.spawn(|s| {
                for _ in 0..8 {
                    s.spawn(|s| {
                        for _ in 0..8 {
                            s.spawn(|_| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 512);
}

#[test]
fn many_small_scopes_stress() {
    let pool = ThreadPool::new(4);
    let mut sum = 0u64;
    for i in 0..500u64 {
        let (a, b) = pool.join(move || i * 2, move || i * 3);
        sum += a + b;
    }
    assert_eq!(sum, 5 * (0..500u64).sum::<u64>());
}
