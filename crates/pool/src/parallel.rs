//! Data-parallel loops over domain [`Part`]s.
//!
//! These are the low-level threaded skeletons the high-level library invokes
//! for `localpar` iterators (paper §3.4): recursive part splitting down to a
//! grain size, executed with work stealing, with per-task private
//! accumulation for reductions.

use std::cell::UnsafeCell;

use parking_lot::Mutex;
use triolet_domain::Part;

use crate::pool::{Scope, ThreadPool};

/// Default number of leaf tasks per worker thread. Oversubscribing by this
/// factor gives the stealer enough slack to balance irregular leaves (the
/// paper's tpacf triangular loops) without measurable scheduling overhead.
pub const CHUNKS_PER_THREAD: usize = 4;

/// Compute a grain size so `part` splits into roughly
/// `threads * CHUNKS_PER_THREAD` leaves.
pub fn default_grain<P: Part>(part: &P, threads: usize) -> usize {
    (part.count() / (threads.max(1) * CHUNKS_PER_THREAD)).max(1)
}

/// Run `body` over sub-parts of `part`, splitting recursively until each leaf
/// holds at most `grain` index points. Leaves execute in parallel with work
/// stealing.
pub fn parallel_for_part<P, F>(pool: &ThreadPool, part: P, grain: usize, body: &F)
where
    P: Part,
    F: Fn(&P) + Sync,
{
    if part.is_empty() {
        return;
    }
    let grain = grain.max(1);
    pool.scope(|s| split_for(s, part, grain, body));
}

fn split_for<'scope, P, F>(s: &Scope<'scope>, part: P, grain: usize, body: &'scope F)
where
    P: Part,
    F: Fn(&P) + Sync,
{
    if part.count() <= grain {
        body(&part);
        return;
    }
    match part.split_half() {
        Some((a, b)) => {
            s.spawn(move |s| split_for(s, a, grain, body));
            split_for(s, b, grain, body);
        }
        None => body(&part),
    }
}

/// Map each leaf part through `leaf` and merge the results with `merge`.
///
/// Each leaf computes a private value (the paper's per-thread private sums
/// and histograms); merging is done pairwise as leaves finish. Returns `None`
/// for an empty part.
pub fn map_reduce_part<P, T, L, M>(
    pool: &ThreadPool,
    part: P,
    grain: usize,
    leaf: &L,
    merge: &M,
) -> Option<T>
where
    P: Part,
    T: Send,
    L: Fn(&P) -> T + Sync,
    M: Fn(T, T) -> T + Sync,
{
    if part.is_empty() {
        return None;
    }
    let grain = grain.max(1);
    let acc: Mutex<Option<T>> = Mutex::new(None);
    pool.scope(|s| split_reduce(s, part, grain, leaf, merge, &acc));
    acc.into_inner()
}

fn split_reduce<'scope, P, T, L, M>(
    s: &Scope<'scope>,
    part: P,
    grain: usize,
    leaf: &'scope L,
    merge: &'scope M,
    acc: &'scope Mutex<Option<T>>,
) where
    P: Part,
    T: Send,
    L: Fn(&P) -> T + Sync,
    M: Fn(T, T) -> T + Sync,
{
    if part.count() <= grain || part.split_half().is_none() {
        // Merge outside the lock: take the current partial, combine, retry
        // the insert. Each retry consumes another leaf's contribution, so the
        // loop is bounded by the number of leaves.
        let mut to_merge = Some(leaf(&part));
        while let Some(v) = to_merge.take() {
            let mut guard = acc.lock();
            match guard.take() {
                None => *guard = Some(v),
                Some(prev) => {
                    drop(guard);
                    to_merge = Some(merge(prev, v));
                }
            }
        }
    } else {
        let (a, b) = part.split_half().expect("checked above");
        s.spawn(move |s| split_reduce(s, a, grain, leaf, merge, acc));
        split_reduce(s, b, grain, leaf, merge, acc);
    }
}

/// Rank-indexed result slots where each task owns exactly one index.
///
/// No slot is written twice and no slot is read until the pool scope has
/// joined every task, so plain unsynchronized writes are sound: the scope
/// join is the happens-before edge between each write and the final read.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

// SAFETY: every cell is written by exactly one task (its own index) and only
// read after `pool.scope` returns, which joins all tasks.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(n: usize) -> Self {
        Slots((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// Store `value` at `i`. Caller must be the unique writer of slot `i`.
    unsafe fn fill(&self, i: usize, value: T) {
        *self.0[i].get() = Some(value);
    }

    fn into_values(self) -> impl Iterator<Item = T> {
        self.0.into_iter().map(|c| c.into_inner().expect("every slot filled by its task"))
    }
}

/// Run `leaf` over an explicit list of work items in parallel, returning
/// results in input order. Items are opaque (domain parts, data chunks, …);
/// used when chunk boundaries must match the virtual-time executor exactly.
///
/// Each task writes its result into a slot it exclusively owns, so no lock
/// is taken per write; ordering comes from the scope join.
pub fn map_parts_ordered<P, T, L>(pool: &ThreadPool, parts: Vec<P>, leaf: &L) -> Vec<T>
where
    P: Send,
    T: Send,
    L: Fn(&P) -> T + Sync,
{
    let slots = Slots::new(parts.len());
    pool.scope(|s| {
        for (i, p) in parts.into_iter().enumerate() {
            let slots = &slots;
            s.spawn(move |_| {
                let value = leaf(&p);
                // SAFETY: task `i` is the only writer of slot `i`, and reads
                // happen only after the scope joins.
                unsafe { slots.fill(i, value) };
            });
        }
    });
    slots.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use triolet_domain::{Dim2, Domain, Seq, SeqPart};

    #[test]
    fn parallel_for_visits_every_index_once() {
        let pool = ThreadPool::new(4);
        let n = 1000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for_part(&pool, Seq::new(n).whole_part(), 16, &|p: &SeqPart| {
            for i in p.range() {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_part_is_noop() {
        let pool = ThreadPool::new(2);
        parallel_for_part(&pool, SeqPart::new(0, 0), 4, &|_: &SeqPart| {
            panic!("must not be called")
        });
    }

    #[test]
    fn map_reduce_sums_like_sequential() {
        let pool = ThreadPool::new(4);
        let xs: Vec<u64> = (0..10_000).collect();
        let total = map_reduce_part(
            &pool,
            Seq::new(xs.len()).whole_part(),
            64,
            &|p: &SeqPart| p.range().map(|i| xs[i]).sum::<u64>(),
            &|a, b| a + b,
        )
        .unwrap();
        assert_eq!(total, xs.iter().sum::<u64>());
    }

    #[test]
    fn map_reduce_empty_is_none() {
        let pool = ThreadPool::new(2);
        let r = map_reduce_part(
            &pool,
            SeqPart::new(0, 0),
            4,
            &|_: &SeqPart| 1u32,
            &|a: u32, b: u32| a + b,
        );
        assert!(r.is_none());
    }

    #[test]
    fn map_reduce_2d_blocks() {
        let pool = ThreadPool::new(3);
        let d = Dim2::new(37, 23);
        let total = map_reduce_part(
            &pool,
            d.whole_part(),
            10,
            &|b| b.indices().iter().map(|&(r, c)| (r * 1000 + c) as u64).sum::<u64>(),
            &|a, b| a + b,
        )
        .unwrap();
        let expect: u64 = (0..37).flat_map(|r| (0..23).map(move |c| (r * 1000 + c) as u64)).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn map_parts_ordered_preserves_order() {
        let pool = ThreadPool::new(4);
        let parts = Seq::new(100).split_parts(7);
        let firsts = map_parts_ordered(&pool, parts.clone(), &|p: &SeqPart| p.start);
        assert_eq!(firsts, parts.iter().map(|p| p.start).collect::<Vec<_>>());
    }

    #[test]
    fn grain_of_one_still_correct() {
        let pool = ThreadPool::new(2);
        let total = map_reduce_part(
            &pool,
            Seq::new(100).whole_part(),
            1,
            &|p: &SeqPart| p.count() as u64,
            &|a, b| a + b,
        )
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn default_grain_reasonable() {
        let part = Seq::new(1600).whole_part();
        let g = default_grain(&part, 4);
        assert_eq!(g, 100);
        assert_eq!(default_grain(&SeqPart::new(0, 1), 8), 1);
    }
}
