//! Virtual-time scheduling: deterministic replay of measured task durations.
//!
//! The paper evaluates on a 128-core cluster; this reproduction runs on hosts
//! with far fewer cores, so scaling figures are regenerated in *virtual
//! time*: leaf tasks are executed (and timed) sequentially, then replayed
//! through a greedy earliest-available-worker schedule. Greedy list
//! scheduling is the textbook model of dynamic work stealing (Graham's bound:
//! makespan <= work/p + span), so the virtual makespan has the same shape —
//! including load-imbalance effects from irregular tasks — as a real
//! work-stealing execution.
//!
//! The earliest-free worker comes off a binary min-heap keyed `(free time,
//! worker index)` — `O(n log p)` for `n` tasks on `p` workers instead of the
//! old `O(n·p)` scan, the same event-heap discipline the cluster's
//! discrete-event simulator uses — with `total_cmp` time ordering and the
//! index tie-break reproducing the scan's first-minimum choice exactly, so
//! schedules are bit-identical to the linear version.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One worker's availability on the heap. Ordering is `(free_at, worker)`
/// via `total_cmp`, matching the linear scan's first-minimum tie-break
/// (lowest worker index among equally free workers).
struct Slot {
    free_at: f64,
    worker: usize,
}

impl PartialEq for Slot {
    fn eq(&self, other: &Self) -> bool {
        self.free_at.to_bits() == other.free_at.to_bits() && self.worker == other.worker
    }
}

impl Eq for Slot {}

impl PartialOrd for Slot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Slot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.free_at.total_cmp(&other.free_at).then(self.worker.cmp(&other.worker))
    }
}

/// Result of scheduling a task list onto `workers` identical workers.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Completion time of the last task (seconds).
    pub makespan: f64,
    /// Worker index each task was assigned to, in submission order.
    pub assignment: Vec<usize>,
    /// Modeled start time of each task (seconds), in submission order.
    /// Tracing uses these to place per-chunk spans on worker timelines.
    pub start_times: Vec<f64>,
    /// Total busy time per worker (seconds).
    pub worker_loads: Vec<f64>,
}

impl Schedule {
    /// Total work across all tasks (seconds).
    pub fn work(&self) -> f64 {
        self.worker_loads.iter().sum()
    }

    /// Fraction of `makespan * workers` spent busy; 1.0 is a perfect
    /// balance.
    pub fn efficiency(&self) -> f64 {
        let p = self.worker_loads.len() as f64;
        if self.makespan <= 0.0 || p == 0.0 {
            return 1.0;
        }
        self.work() / (self.makespan * p)
    }
}

/// Greedy earliest-available-worker scheduling of `durations` (seconds) onto
/// `workers` workers, in submission order.
///
/// This models a dynamic scheduler: each task goes to the worker that frees
/// up first, which is what a work-stealing pool converges to when tasks
/// substantially outnumber workers.
pub fn greedy_schedule(durations: &[f64], workers: usize) -> Schedule {
    let workers = workers.max(1);
    let mut heap: BinaryHeap<Reverse<Slot>> =
        (0..workers).map(|worker| Reverse(Slot { free_at: 0.0, worker })).collect();
    let mut assignment = Vec::with_capacity(durations.len());
    let mut start_times = Vec::with_capacity(durations.len());
    for &d in durations {
        let Reverse(Slot { free_at, worker }) = heap.pop().expect("workers >= 1");
        start_times.push(free_at);
        heap.push(Reverse(Slot { free_at: free_at + d.max(0.0), worker }));
        assignment.push(worker);
    }
    let makespan = heap.iter().map(|Reverse(s)| s.free_at).fold(0.0f64, f64::max);
    let mut worker_loads = vec![0.0f64; workers];
    for (task, &w) in assignment.iter().enumerate() {
        worker_loads[w] += durations[task].max(0.0);
    }
    Schedule { makespan, assignment, start_times, worker_loads }
}

/// Group task indices by assigned worker, preserving submission order within
/// each worker. Used to replay per-worker sequential merging in virtual mode
/// (each virtual thread folds its own chunks into one private accumulator).
pub fn tasks_by_worker(schedule: &Schedule) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); schedule.worker_loads.len()];
    for (task, &w) in schedule.assignment.iter().enumerate() {
        groups[w].push(task);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_sums_durations() {
        let s = greedy_schedule(&[1.0, 2.0, 3.0], 1);
        assert!((s.makespan - 6.0).abs() < 1e-12);
        assert_eq!(s.assignment, vec![0, 0, 0]);
    }

    #[test]
    fn perfect_split_halves_makespan() {
        let s = greedy_schedule(&[1.0, 1.0, 1.0, 1.0], 2);
        assert!((s.makespan - 2.0).abs() < 1e-12);
        assert!((s.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalanced_tail_dominates() {
        // One long task at the end: greedy places it on a free worker, the
        // makespan is bounded below by its duration.
        let s = greedy_schedule(&[0.1, 0.1, 0.1, 5.0], 4);
        assert!((s.makespan - 5.0).abs() < 1e-12);
        assert!(s.efficiency() < 0.5);
    }

    #[test]
    fn graham_bound_holds() {
        let durations: Vec<f64> = (1..=50).map(|i| (i % 7) as f64 * 0.01 + 0.001).collect();
        for p in [1usize, 2, 4, 8, 16] {
            let s = greedy_schedule(&durations, p);
            let work: f64 = durations.iter().sum();
            let span = durations.iter().cloned().fold(0.0, f64::max);
            assert!(s.makespan <= work / p as f64 + span + 1e-9, "p={p}");
            assert!(s.makespan >= work / p as f64 - 1e-9, "p={p}");
            assert!(s.makespan >= span - 1e-9, "p={p}");
        }
    }

    #[test]
    fn more_workers_never_slower() {
        let durations: Vec<f64> = (0..40).map(|i| ((i * 13) % 11) as f64 * 0.01 + 0.001).collect();
        let mut prev = f64::INFINITY;
        for p in [1usize, 2, 4, 8, 16, 32] {
            let m = greedy_schedule(&durations, p).makespan;
            assert!(m <= prev + 1e-9, "p={p}: {m} > {prev}");
            prev = m;
        }
    }

    #[test]
    fn empty_task_list() {
        let s = greedy_schedule(&[], 4);
        assert_eq!(s.makespan, 0.0);
        assert!(s.assignment.is_empty());
    }

    #[test]
    fn tasks_by_worker_partition() {
        let s = greedy_schedule(&[1.0; 10], 3);
        let groups = tasks_by_worker(&s);
        let mut all: Vec<usize> = groups.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn start_times_follow_worker_availability() {
        let s = greedy_schedule(&[1.0, 1.0, 1.0, 1.0], 2);
        // Two workers: tasks 0/1 start at 0, tasks 2/3 when a worker frees.
        assert_eq!(s.start_times, vec![0.0, 0.0, 1.0, 1.0]);
        for (task, &w) in s.assignment.iter().enumerate() {
            assert!(s.start_times[task] <= s.worker_loads[w] + 1e-12);
        }
    }

    #[test]
    fn heap_matches_linear_scan_bitwise() {
        // The pre-heap implementation, kept as the reference: linear
        // first-minimum scan over worker free times.
        fn linear(durations: &[f64], workers: usize) -> Schedule {
            let workers = workers.max(1);
            let mut free_at = vec![0.0f64; workers];
            let mut assignment = Vec::new();
            let mut start_times = Vec::new();
            for &d in durations {
                let (best, _) = free_at
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .expect("workers >= 1");
                start_times.push(free_at[best]);
                free_at[best] += d.max(0.0);
                assignment.push(best);
            }
            let makespan = free_at.iter().cloned().fold(0.0f64, f64::max);
            let mut worker_loads = vec![0.0f64; workers];
            for (task, &w) in assignment.iter().enumerate() {
                worker_loads[w] += durations[task].max(0.0);
            }
            Schedule { makespan, assignment, start_times, worker_loads }
        }
        // Irregular durations with plenty of exact ties (repeated values)
        // so the tie-break path is genuinely exercised.
        let durations: Vec<f64> =
            (0..200).map(|i| ((i * 7) % 5) as f64 * 0.125 + ((i % 3) as f64) * 0.25).collect();
        for p in [1usize, 2, 3, 7, 16, 64] {
            let a = linear(&durations, p);
            let b = greedy_schedule(&durations, p);
            assert_eq!(a.assignment, b.assignment, "p={p}");
            assert_eq!(
                a.start_times.iter().map(|t| t.to_bits()).collect::<Vec<_>>(),
                b.start_times.iter().map(|t| t.to_bits()).collect::<Vec<_>>(),
                "p={p}"
            );
            assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "p={p}");
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let s = greedy_schedule(&[1.0, 1.0], 0);
        assert_eq!(s.worker_loads.len(), 1);
        assert!((s.makespan - 2.0).abs() < 1e-12);
    }
}
