//! Work-stealing thread pool: triolet-rs's intra-node parallelism substrate.
//!
//! The Triolet paper (§3.4) uses Threading Building Blocks for thread
//! parallelism inside each cluster node, with "work-stealing thread
//! parallelism in each node" and per-thread private accumulators for
//! reductions. This crate is that substrate:
//!
//! * [`ThreadPool`] — fixed-size pool of workers with Chase–Lev work-stealing
//!   deques ([`crossbeam_deque`]) and a shared injector. Blocked threads help
//!   by stealing, so nested `scope`s cannot deadlock the pool.
//! * [`ThreadPool::scope`] — structured task parallelism: spawn borrowing
//!   tasks; the scope does not return until every task (and every task they
//!   transitively spawn) has finished. Panics inside tasks are propagated to
//!   the caller.
//! * [`ThreadPool::join`] — binary fork-join.
//! * [`parallel`] — data-parallel loops over [`triolet_domain::Part`]s with
//!   recursive splitting down to a grain size, plus `map_reduce` with
//!   per-thread private accumulation.
//! * [`vtime`] — the *virtual-time* scheduler used for reproducing the
//!   paper's scaling figures on a host with fewer cores than the paper's
//!   cluster: leaf task durations are measured sequentially and replayed
//!   through a greedy earliest-available-worker schedule, which models
//!   work-stealing execution (greedy list scheduling) deterministically.
//!
//! # Example
//!
//! ```
//! use triolet_pool::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let (a, b) = pool.join(|| (0..1000).sum::<u64>(), || 21 * 2);
//! assert_eq!(a, 499500);
//! assert_eq!(b, 42);
//! ```

mod latch;
pub mod parallel;
mod pool;
pub mod vtime;

pub use parallel::{map_reduce_part, parallel_for_part};
pub use pool::{current_worker_index, Scope, ThreadPool};
pub use vtime::{greedy_schedule, Schedule};
