//! The work-stealing pool itself.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_deque::{Injector, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};

use crate::latch::{CountLatch, PanicStore};

type Job = Box<dyn FnOnce() + Send>;

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    sleep_lock: Mutex<()>,
    sleep_cond: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Find a runnable job: local deque first, then the injector, then steal
    /// from siblings.
    fn find_job(&self, local: Option<&Deque<Job>>) -> Option<Job> {
        if let Some(local) = local {
            if let Some(job) = local.pop() {
                return Some(job);
            }
        }
        loop {
            let steal = self.injector.steal();
            if let crossbeam_deque::Steal::Success(job) = steal {
                return Some(job);
            }
            if steal.is_empty() {
                break;
            }
        }
        for stealer in &self.stealers {
            loop {
                let steal = stealer.steal();
                if let crossbeam_deque::Steal::Success(job) = steal {
                    return Some(job);
                }
                if steal.is_empty() {
                    break;
                }
            }
        }
        None
    }

    /// Push a job, preferring the calling worker's own deque when the caller
    /// belongs to this pool, and wake a sleeping worker either way.
    fn push(self: &Arc<Self>, job: Job) {
        let mut slot = Some(job);
        WORKER.with(|w| {
            if let Some(ctx) = w.borrow().as_ref() {
                if Arc::ptr_eq(&ctx.shared, self) {
                    ctx.local.push(slot.take().expect("job present before local push"));
                }
            }
        });
        if let Some(job) = slot {
            self.injector.push(job);
        }
        self.notify();
    }

    fn notify(&self) {
        let _guard = self.sleep_lock.lock();
        self.sleep_cond.notify_all();
    }
}

thread_local! {
    /// Set for the lifetime of a worker thread: the pool it belongs to and
    /// its local deque. Lets `push` go to the local deque and `wait_latch`
    /// help by stealing instead of blocking (preventing nested-scope
    /// deadlock).
    static WORKER: std::cell::RefCell<Option<WorkerCtx>> = const { std::cell::RefCell::new(None) };
}

struct WorkerCtx {
    shared: Arc<Shared>,
    local: Deque<Job>,
    index: usize,
}

/// The calling thread's worker index within its pool, or `None` off-pool.
///
/// Tracing uses this to place per-chunk spans on the right worker timeline
/// in measured mode; stolen work reports the thread that actually ran it.
pub fn current_worker_index() -> Option<usize> {
    WORKER.with(|w| w.borrow().as_ref().map(|ctx| ctx.index))
}

/// A fixed-size work-stealing thread pool (the paper's per-node TBB runtime).
///
/// Dropping the pool shuts down its workers; every `scope` waits for its own
/// tasks before returning, so no user work can be lost by the shutdown.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let deques: Vec<Deque<Job>> = (0..threads).map(|_| Deque::new_fifo()).collect();
        let stealers = deques.iter().map(Deque::stealer).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            sleep_lock: Mutex::new(()),
            sleep_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("triolet-worker-{i}"))
                    .spawn(move || worker_main(shared, local, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles, threads }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute jobs or block until `latch` clears.
    fn wait_latch(&self, latch: &CountLatch) {
        let is_local_worker = WORKER.with(|w| {
            w.borrow().as_ref().is_some_and(|ctx| Arc::ptr_eq(&ctx.shared, &self.shared))
        });
        if is_local_worker {
            // Help-first waiting: keep the CPU busy with other tasks until
            // this scope's tasks are all done.
            while !latch.is_clear() {
                let job = WORKER.with(|w| {
                    let ctx = w.borrow();
                    let ctx = ctx.as_ref().expect("worker ctx");
                    self.shared.find_job(Some(&ctx.local))
                });
                match job {
                    Some(job) => job(),
                    None => std::thread::yield_now(),
                }
            }
        } else {
            latch.wait_blocking();
        }
    }

    /// Structured fork-join region.
    ///
    /// The closure may spawn tasks on the scope; `scope` returns only after
    /// every spawned task (transitively) completes. The first panic raised by
    /// any task is re-thrown here.
    pub fn scope<'scope, R>(&self, op: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let latch = CountLatch::new();
        let panics = PanicStore::new();
        let scope = Scope {
            pool: self as *const ThreadPool,
            latch: &latch as *const CountLatch,
            panics: &panics as *const PanicStore,
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        self.wait_latch(&latch);
        panics.propagate();
        match result {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }

    /// Run two closures, potentially in parallel, returning both results.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let mut ra = None;
        let mut rb = None;
        {
            let ra = &mut ra;
            let rb = &mut rb;
            self.scope(|s| {
                s.spawn(move |_| *rb = Some(b()));
                *ra = Some(a());
            });
        }
        (ra.expect("task a completed"), rb.expect("task b completed"))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.notify();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_main(shared: Arc<Shared>, local: Deque<Job>, index: usize) {
    // Install the worker context; the deque lives in the thread-local for the
    // rest of the thread's life.
    WORKER.with(|w| {
        *w.borrow_mut() = Some(WorkerCtx { shared: Arc::clone(&shared), local, index });
    });
    loop {
        let job = WORKER.with(|w| {
            let ctx = w.borrow();
            let ctx = ctx.as_ref().expect("worker ctx installed above");
            shared.find_job(Some(&ctx.local))
        });
        match job {
            Some(job) => job(),
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Park with a timeout: a lost wakeup only costs one tick.
                let mut guard = shared.sleep_lock.lock();
                shared.sleep_cond.wait_for(&mut guard, Duration::from_millis(1));
            }
        }
    }
    WORKER.with(|w| *w.borrow_mut() = None);
}

/// Handle for spawning tasks inside a [`ThreadPool::scope`] region.
///
/// Internally holds raw pointers to scope-local state; this is sound because
/// `scope` waits for its latch (all tasks done) before the stack frame — and
/// thus the pointed-to latch/panic store — is torn down.
pub struct Scope<'scope> {
    pool: *const ThreadPool,
    latch: *const CountLatch,
    panics: *const PanicStore,
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

// SAFETY: all pointed-to state (pool, latch, panic store) is itself Sync and
// outlives every task by the scope protocol described above.
unsafe impl Sync for Scope<'_> {}
unsafe impl Send for Scope<'_> {}

impl<'scope> Scope<'scope> {
    /// Spawn a task that may borrow data outliving the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let (pool, latch, panics) = (self.pool, self.latch, self.panics);
        // SAFETY: the latch is live for the whole scope; incrementing before
        // the push guarantees `scope` cannot return before this task runs.
        unsafe { (*latch).increment() };
        let scope_copy =
            Scope { pool, latch, panics, _marker: PhantomData::<fn(&'scope ()) -> &'scope ()> };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| f(&scope_copy)));
            // SAFETY: pointers live until the latch clears; decrement last.
            unsafe {
                if let Err(p) = result {
                    (*scope_copy.panics).capture(p);
                }
                (*scope_copy.latch).decrement();
            }
        });
        // SAFETY: the lifetime is erased, but the scope protocol (wait before
        // return) guarantees every borrow in the job outlives the job.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        // SAFETY: the pool outlives the scope that borrows it.
        let pool_ref = unsafe { &*pool };
        pool_ref.shared.push(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_tasks_can_borrow_stack_data() {
        let pool = ThreadPool::new(2);
        let data = vec![1u64, 2, 3, 4, 5];
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for &x in &data {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(x, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        let pool = ThreadPool::new(3);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..10 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..10 {
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 110);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    // A task that itself opens a scope on the same pool: the
                    // waiting worker must help, not block.
                    let pool2 = WORKER
                        .with(|w| w.borrow().as_ref().map(|ctx| Arc::clone(&ctx.shared)).is_some());
                    assert!(pool2);
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| "left", || 7u32);
        assert_eq!(a, "left");
        assert_eq!(b, 7);
    }

    #[test]
    fn join_nests() {
        let pool = ThreadPool::new(4);
        fn fib(pool: &ThreadPool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib_seq(n - 1), || fib_seq(n - 2));
            a + b
        }
        fn fib_seq(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                fib_seq(n - 1) + fib_seq(n - 2)
            }
        }
        assert_eq!(fib(&pool, 20), 6765);
    }

    #[test]
    fn panic_in_task_propagates() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // Pool must still be usable afterwards.
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..50 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn worker_index_visible_inside_tasks_only() {
        assert_eq!(current_worker_index(), None, "caller thread is not a pool worker");
        let pool = ThreadPool::new(3);
        let seen = Mutex::new(Vec::new());
        pool.scope(|s| {
            for _ in 0..30 {
                s.spawn(|_| {
                    let idx = current_worker_index().expect("tasks run on pool workers");
                    seen.lock().push(idx);
                });
            }
        });
        let seen = seen.lock();
        assert_eq!(seen.len(), 30);
        assert!(seen.iter().all(|&i| i < 3));
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (a, _) = pool.join(|| 5, || ());
        assert_eq!(a, 5);
    }

    #[test]
    fn many_scopes_sequentially() {
        let pool = ThreadPool::new(2);
        let mut total = 0u64;
        for i in 0..100u64 {
            let (a, b) = pool.join(move || i, move || i * 2);
            total += a + b;
        }
        assert_eq!(total, 3 * (0..100u64).sum::<u64>());
    }
}
