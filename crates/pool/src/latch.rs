//! Counting latch + panic collection for structured scopes.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts outstanding tasks of a scope; the scope owner blocks (or steals
/// work) until the count returns to zero.
pub(crate) struct CountLatch {
    count: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl CountLatch {
    pub fn new() -> Self {
        CountLatch { count: AtomicUsize::new(0), lock: Mutex::new(()), cond: Condvar::new() }
    }

    /// Register a new outstanding task.
    pub fn increment(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    /// Mark one task done, waking the waiter if it was the last.
    pub fn decrement(&self) {
        if self.count.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.lock.lock();
            self.cond.notify_all();
        }
    }

    /// Whether all tasks have completed.
    pub fn is_clear(&self) -> bool {
        self.count.load(Ordering::SeqCst) == 0
    }

    /// Block the calling (non-worker) thread until the count is zero.
    pub fn wait_blocking(&self) {
        let mut guard = self.lock.lock();
        while self.count.load(Ordering::SeqCst) != 0 {
            self.cond.wait(&mut guard);
        }
    }
}

/// First panic payload observed among a scope's tasks; re-thrown on the
/// scope owner's thread so failures are never silently swallowed.
pub(crate) struct PanicStore {
    slot: Mutex<Option<Box<dyn Any + Send>>>,
}

impl PanicStore {
    pub fn new() -> Self {
        PanicStore { slot: Mutex::new(None) }
    }

    pub fn capture(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Re-throw the captured panic, if any.
    pub fn propagate(&self) {
        let payload = self.slot.lock().take();
        if let Some(p) = payload {
            std::panic::resume_unwind(p);
        }
    }
}
