//! Property tests on the domain algebra: linearization must be a bijection,
//! partitioning must cover every index exactly once at every level of the
//! two-level (node -> thread -> sequential chunk) splitting hierarchy.

use proptest::prelude::*;
use triolet_domain::{chunk_ranges, near_square_grid, Dim2, Dim3, Domain, Part, Seq};

fn covers_exactly<D: Domain>(d: &D, parts: &[D::Part]) -> Result<(), TestCaseError>
where
    D::Index: std::hash::Hash + Eq,
{
    let mut seen = std::collections::HashSet::new();
    for p in parts {
        prop_assert!(!p.is_empty(), "no empty parts allowed");
        for k in 0..p.count() {
            let idx = p.index_at(k);
            prop_assert!(d.contains(idx));
            prop_assert!(seen.insert(idx), "index covered twice");
        }
    }
    prop_assert_eq!(seen.len(), d.count());
    Ok(())
}

proptest! {
    #[test]
    fn seq_bijection(len in 0usize..500, k in 0usize..500) {
        let d = Seq::new(len);
        if k < len {
            prop_assert_eq!(d.linear_of(d.index_at(k)), k);
        }
    }

    #[test]
    fn dim2_bijection(rows in 1usize..40, cols in 1usize..40) {
        let d = Dim2::new(rows, cols);
        for k in 0..d.count() {
            prop_assert_eq!(d.linear_of(d.index_at(k)), k);
        }
    }

    #[test]
    fn dim3_bijection(nx in 1usize..12, ny in 1usize..12, nz in 1usize..12) {
        let d = Dim3::new(nx, ny, nz);
        for k in 0..d.count() {
            prop_assert_eq!(d.linear_of(d.index_at(k)), k);
        }
    }

    #[test]
    fn seq_split_covers(len in 0usize..300, n in 1usize..20) {
        let d = Seq::new(len);
        covers_exactly(&d, &d.split_parts(n))?;
    }

    #[test]
    fn dim2_split_covers(rows in 1usize..30, cols in 1usize..30, n in 1usize..20) {
        let d = Dim2::new(rows, cols);
        covers_exactly(&d, &d.split_parts(n))?;
    }

    #[test]
    fn dim3_split_covers(nx in 1usize..10, ny in 1usize..8, nz in 1usize..8, n in 1usize..12) {
        let d = Dim3::new(nx, ny, nz);
        covers_exactly(&d, &d.split_parts(n))?;
    }

    #[test]
    fn two_level_split_covers(rows in 1usize..24, cols in 1usize..24, nodes in 1usize..8, threads in 1usize..8) {
        // Node-level blocks, each further split across threads: the union of
        // all thread parts must still cover the domain exactly once.
        let d = Dim2::new(rows, cols);
        let mut leaf_parts = Vec::new();
        for node_part in d.split_parts(nodes) {
            leaf_parts.extend(node_part.split(threads));
        }
        covers_exactly(&d, &leaf_parts)?;
    }

    #[test]
    fn recursive_halving_covers(len in 2usize..400) {
        // Fully unfold split_half like the work-stealing scheduler does.
        let d = Seq::new(len);
        let mut stack = vec![d.whole_part()];
        let mut leaves = Vec::new();
        while let Some(p) = stack.pop() {
            if p.count() <= 3 {
                leaves.push(p);
            } else {
                let (a, b) = p.split_half().expect("count > 3 must split");
                stack.push(a);
                stack.push(b);
            }
        }
        covers_exactly(&d, &leaves)?;
    }

    #[test]
    fn intersect_commutes_dim2(a_r in 0usize..50, a_c in 0usize..50, b_r in 0usize..50, b_c in 0usize..50) {
        let a = Dim2::new(a_r, a_c);
        let b = Dim2::new(b_r, b_c);
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert!(a.intersect(&b).count() <= a.count());
        prop_assert!(a.intersect(&b).count() <= b.count());
    }

    #[test]
    fn near_square_grid_invariants(n in 1usize..64, rows in 1usize..200, cols in 1usize..200) {
        let (pr, pc) = near_square_grid(n, rows, cols);
        prop_assert!(pr >= 1 && pc >= 1);
        prop_assert!(pr * pc <= n, "never more parts than workers");
        prop_assert!(pr <= rows && pc <= cols, "no empty rows/cols of blocks");
        // When the space allows it, all n workers are used.
        if rows * cols >= n {
            let mut best_used = 0;
            for cand_pr in 1..=n.min(rows) {
                let cand_pc = (n / cand_pr).min(cols);
                best_used = best_used.max(cand_pr * cand_pc);
            }
            prop_assert_eq!(pr * pc, best_used, "must maximize used workers");
        }
    }

    #[test]
    fn chunk_ranges_is_partition(len in 0usize..1000, n in 0usize..40) {
        let chunks = chunk_ranges(len, n);
        let total: usize = chunks.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(total, len);
        let mut pos = 0usize;
        for &(s, l) in &chunks {
            prop_assert_eq!(s, pos);
            prop_assert!(l > 0);
            pos += l;
        }
    }
}
