//! Index-space algebra for triolet-rs.
//!
//! The Triolet paper (§3.3) introduces a `Domain` type class to characterize
//! iteration spaces so that skeletons can be overloaded over one-, two- and
//! three-dimensional loops without flattening overhead (no division/modulus to
//! recover 2-D indices, no pointer indirection from arrays-of-arrays).
//!
//! This crate provides:
//!
//! * [`Domain`] — the trait: index type, counting, (de)linearization,
//!   intersection (for `zip`), and partitioning into [`Domain::Part`]s.
//! * [`Seq`] — one-dimensional domains (an array length), the paper's `Seq`.
//! * [`Dim2`] / [`Dim3`] — dense rectangular/box domains, the paper's `Dim2`
//!   generalized one dimension further for cutcp's 3-D potential grid.
//! * Parts — contiguous chunks ([`SeqPart`]), 2-D blocks ([`Dim2Part`]) and
//!   3-D boxes ([`Dim3Part`]) used for both *work* distribution (which tasks a
//!   node runs) and *data* distribution (which array slice it is sent). The
//!   same part value drives both, which is exactly the paper's separation of
//!   concerns: skeletons pick how to split the domain, indexers know how to
//!   slice their data sources for a given part.
//!
//! # Example
//!
//! ```
//! use triolet_domain::{Domain, Dim2, Part};
//!
//! let d = Dim2::new(6, 8);
//! assert_eq!(d.count(), 48);
//! // 2-D block decomposition for 4 nodes: a 2x2 grid of 3x4 blocks.
//! let blocks = d.split_parts(4);
//! assert_eq!(blocks.len(), 4);
//! assert_eq!(blocks.iter().map(|b| b.count()).sum::<usize>(), 48);
//! ```

mod dim2;
mod dim3;
mod part;
mod seq;
mod split;

pub use dim2::{Dim2, Dim2Part};
pub use dim3::{Dim3, Dim3Part};
pub use part::Part;
pub use seq::{Seq, SeqPart};
pub use split::{chunk_ranges, near_square_grid};

use std::fmt::Debug;
use triolet_serial::Wire;

/// An iteration space: the paper's `Domain` type class (§3.3).
///
/// A domain knows how many points it contains, how to enumerate them in a
/// canonical (row-major) order, how to intersect with another domain of the
/// same shape (used by `zip`), and how to split itself into parts for
/// distribution.
pub trait Domain: Clone + PartialEq + Eq + Debug + Send + Sync + Wire + 'static {
    /// The paper's associated `Index d` type: `usize` for [`Seq`],
    /// `(usize, usize)` for [`Dim2`], `(usize, usize, usize)` for [`Dim3`].
    type Index: Copy + Debug + PartialEq + Send + Sync + 'static;

    /// The part type produced by distribution: a contiguous chunk, 2-D block,
    /// or 3-D box of this domain.
    type Part: Part<Index = Self::Index>;

    /// Total number of index points.
    fn count(&self) -> usize;

    /// The `k`-th index in canonical row-major order, `k < count()`.
    fn index_at(&self, k: usize) -> Self::Index;

    /// Inverse of [`Domain::index_at`].
    fn linear_of(&self, idx: Self::Index) -> usize;

    /// Whether `idx` lies inside the domain.
    fn contains(&self, idx: Self::Index) -> bool;

    /// Pointwise minimum of extents: the domain visited when zipping two
    /// collections (the paper's `zipWith` "visits all points in the
    /// intersection of two domains").
    fn intersect(&self, other: &Self) -> Self;

    /// The whole domain as a single part.
    fn whole_part(&self) -> Self::Part;

    /// Split into at most `n` non-empty parts that exactly cover the domain.
    ///
    /// [`Seq`] yields balanced contiguous chunks; [`Dim2`] yields a
    /// near-square grid of blocks (the 2-D block decomposition used by sgemm);
    /// [`Dim3`] splits along the outermost axis.
    fn split_parts(&self, n: usize) -> Vec<Self::Part>;

    /// True when the domain has no points.
    fn is_empty(&self) -> bool {
        self.count() == 0
    }
}
