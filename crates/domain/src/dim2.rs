//! Two-dimensional domains: the paper's `Dim2`.

use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

use crate::part::Part;
use crate::split::{chunk_ranges, near_square_grid};
use crate::Domain;

/// A dense two-dimensional iteration space of `rows x cols` points
/// (`data Dim2 = Dim2 Int Int` in the paper, §3.3). Indices are
/// `(row, col)` pairs enumerated row-major.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub struct Dim2 {
    /// Number of rows (outer extent).
    pub rows: usize,
    /// Number of columns (inner extent).
    pub cols: usize,
}

impl Dim2 {
    /// Domain over `rows x cols` points.
    pub fn new(rows: usize, cols: usize) -> Self {
        Dim2 { rows, cols }
    }
}

/// A rectangular block of a [`Dim2`] domain: rows `row0 .. row0+rows` crossed
/// with columns `col0 .. col0+cols`.
///
/// Blocks are the unit of sgemm's 2-D decomposition: a block of the output
/// matrix determines the input rows of `A` (vertical extent) and rows of
/// `B^T` (horizontal extent) the computing node must receive (paper §2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Dim2Part {
    /// First row of the block.
    pub row0: usize,
    /// Number of rows.
    pub rows: usize,
    /// First column of the block.
    pub col0: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Dim2Part {
    /// Block covering `(row0..row0+rows) x (col0..col0+cols)`.
    pub fn new(row0: usize, rows: usize, col0: usize, cols: usize) -> Self {
        Dim2Part { row0, rows, col0, cols }
    }

    /// The row range covered by the block.
    pub fn row_range(&self) -> std::ops::Range<usize> {
        self.row0..self.row0 + self.rows
    }

    /// The column range covered by the block.
    pub fn col_range(&self) -> std::ops::Range<usize> {
        self.col0..self.col0 + self.cols
    }
}

impl Part for Dim2Part {
    type Index = (usize, usize);

    fn count(&self) -> usize {
        self.rows * self.cols
    }

    fn index_at(&self, k: usize) -> (usize, usize) {
        debug_assert!(k < self.count());
        (self.row0 + k / self.cols, self.col0 + k % self.cols)
    }

    fn split(&self, n: usize) -> Vec<Self> {
        if self.count() == 0 || n == 0 {
            return Vec::new();
        }
        let (pr, pc) = near_square_grid(n, self.rows, self.cols);
        let row_chunks = chunk_ranges(self.rows, pr);
        let col_chunks = chunk_ranges(self.cols, pc);
        let mut out = Vec::with_capacity(row_chunks.len() * col_chunks.len());
        for &(r0, nr) in &row_chunks {
            for &(c0, nc) in &col_chunks {
                out.push(Dim2Part::new(self.row0 + r0, nr, self.col0 + c0, nc));
            }
        }
        out
    }

    fn split_half(&self) -> Option<(Self, Self)> {
        // Split the longer axis to keep blocks near-square (better locality).
        if self.rows >= self.cols && self.rows >= 2 {
            let mid = self.rows / 2;
            Some((
                Dim2Part::new(self.row0, mid, self.col0, self.cols),
                Dim2Part::new(self.row0 + mid, self.rows - mid, self.col0, self.cols),
            ))
        } else if self.cols >= 2 {
            let mid = self.cols / 2;
            Some((
                Dim2Part::new(self.row0, self.rows, self.col0, mid),
                Dim2Part::new(self.row0, self.rows, self.col0 + mid, self.cols - mid),
            ))
        } else {
            None
        }
    }
}

impl Domain for Dim2 {
    type Index = (usize, usize);
    type Part = Dim2Part;

    fn count(&self) -> usize {
        self.rows * self.cols
    }

    fn index_at(&self, k: usize) -> (usize, usize) {
        debug_assert!(k < self.count());
        (k / self.cols, k % self.cols)
    }

    fn linear_of(&self, (r, c): (usize, usize)) -> usize {
        r * self.cols + c
    }

    fn contains(&self, (r, c): (usize, usize)) -> bool {
        r < self.rows && c < self.cols
    }

    fn intersect(&self, other: &Self) -> Self {
        Dim2::new(self.rows.min(other.rows), self.cols.min(other.cols))
    }

    fn whole_part(&self) -> Dim2Part {
        Dim2Part::new(0, self.rows, 0, self.cols)
    }

    fn split_parts(&self, n: usize) -> Vec<Dim2Part> {
        self.whole_part().split(n)
    }
}

impl Wire for Dim2 {
    fn pack(&self, w: &mut WireWriter) {
        self.rows.pack(w);
        self.cols.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(Dim2 { rows: usize::unpack(r)?, cols: usize::unpack(r)? })
    }
    fn packed_size(&self) -> usize {
        16
    }
}

impl Wire for Dim2Part {
    fn pack(&self, w: &mut WireWriter) {
        self.row0.pack(w);
        self.rows.pack(w);
        self.col0.pack(w);
        self.cols.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(Dim2Part {
            row0: usize::unpack(r)?,
            rows: usize::unpack(r)?,
            col0: usize::unpack(r)?,
            cols: usize::unpack(r)?,
        })
    }
    fn packed_size(&self) -> usize {
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use triolet_serial::{packed, unpack_all};

    #[test]
    fn linearization_bijection() {
        let d = Dim2::new(5, 7);
        for k in 0..d.count() {
            let idx = d.index_at(k);
            assert!(d.contains(idx));
            assert_eq!(d.linear_of(idx), k);
        }
    }

    #[test]
    fn row_major_order() {
        let d = Dim2::new(2, 3);
        let idxs: Vec<_> = (0..6).map(|k| d.index_at(k)).collect();
        assert_eq!(idxs, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn intersect_pointwise_min() {
        let a = Dim2::new(5, 9);
        let b = Dim2::new(7, 3);
        assert_eq!(a.intersect(&b), Dim2::new(5, 3));
    }

    #[test]
    fn blocks_partition_domain() {
        let d = Dim2::new(10, 12);
        for n in [1usize, 2, 3, 4, 6, 8, 16] {
            let blocks = d.split_parts(n);
            let mut seen = HashSet::new();
            for b in &blocks {
                assert!(!b.is_empty());
                for idx in b.indices() {
                    assert!(seen.insert(idx), "duplicate index {idx:?} with n={n}");
                    assert!(d.contains(idx));
                }
            }
            assert_eq!(seen.len(), d.count(), "n={n} must cover the domain");
        }
    }

    #[test]
    fn block_index_enumeration_is_local_row_major() {
        let b = Dim2Part::new(2, 2, 5, 3);
        assert_eq!(b.indices(), vec![(2, 5), (2, 6), (2, 7), (3, 5), (3, 6), (3, 7)]);
    }

    #[test]
    fn split_half_covers_and_prefers_long_axis() {
        let b = Dim2Part::new(0, 8, 0, 2);
        let (t, u) = b.split_half().unwrap();
        assert_eq!(t.count() + u.count(), 16);
        assert_eq!(t.cols, 2, "rows axis (longer) must be the split axis");
        assert!(Dim2Part::new(0, 1, 0, 1).split_half().is_none());
    }

    #[test]
    fn four_way_split_of_square_is_2x2() {
        let d = Dim2::new(100, 100);
        let blocks = d.split_parts(4);
        assert_eq!(blocks.len(), 4);
        assert!(blocks.iter().all(|b| b.rows == 50 && b.cols == 50));
    }

    #[test]
    fn wire_roundtrip() {
        let d = Dim2::new(3, 4);
        assert_eq!(unpack_all::<Dim2>(packed(&d)).unwrap(), d);
        let b = Dim2Part::new(1, 2, 3, 4);
        assert_eq!(unpack_all::<Dim2Part>(packed(&b)).unwrap(), b);
    }
}
