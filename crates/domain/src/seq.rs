//! One-dimensional domains: the paper's `Seq`.

use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

use crate::part::Part;
use crate::split::chunk_ranges;
use crate::Domain;

/// A one-dimensional iteration space holding an array length
/// (`data Seq = Seq Int` in the paper, §3.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub struct Seq(pub usize);

impl Seq {
    /// Domain over `len` points `0..len`.
    pub fn new(len: usize) -> Self {
        Seq(len)
    }

    /// The length of the underlying collection.
    pub fn len(&self) -> usize {
        self.0
    }

    /// True when the domain has no points.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

/// A contiguous range of a [`Seq`] domain: `start .. start + len`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct SeqPart {
    /// First index covered by the part.
    pub start: usize,
    /// Number of indices covered.
    pub len: usize,
}

impl SeqPart {
    /// Part covering `start .. start + len`.
    pub fn new(start: usize, len: usize) -> Self {
        SeqPart { start, len }
    }

    /// One-past-the-end index.
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// The half-open range covered.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end()
    }
}

impl Part for SeqPart {
    type Index = usize;

    fn count(&self) -> usize {
        self.len
    }

    fn index_at(&self, k: usize) -> usize {
        debug_assert!(k < self.len);
        self.start + k
    }

    fn split(&self, n: usize) -> Vec<Self> {
        chunk_ranges(self.len, n)
            .into_iter()
            .map(|(off, l)| SeqPart::new(self.start + off, l))
            .collect()
    }

    fn split_half(&self) -> Option<(Self, Self)> {
        if self.len < 2 {
            return None;
        }
        let mid = self.len / 2;
        Some((SeqPart::new(self.start, mid), SeqPart::new(self.start + mid, self.len - mid)))
    }
}

impl Domain for Seq {
    type Index = usize;
    type Part = SeqPart;

    fn count(&self) -> usize {
        self.0
    }

    fn index_at(&self, k: usize) -> usize {
        debug_assert!(k < self.0);
        k
    }

    fn linear_of(&self, idx: usize) -> usize {
        idx
    }

    fn contains(&self, idx: usize) -> bool {
        idx < self.0
    }

    fn intersect(&self, other: &Self) -> Self {
        Seq(self.0.min(other.0))
    }

    fn whole_part(&self) -> SeqPart {
        SeqPart::new(0, self.0)
    }

    fn split_parts(&self, n: usize) -> Vec<SeqPart> {
        self.whole_part().split(n)
    }
}

impl Wire for Seq {
    fn pack(&self, w: &mut WireWriter) {
        self.0.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(Seq(usize::unpack(r)?))
    }
    fn packed_size(&self) -> usize {
        8
    }
}

impl Wire for SeqPart {
    fn pack(&self, w: &mut WireWriter) {
        self.start.pack(w);
        self.len.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(SeqPart { start: usize::unpack(r)?, len: usize::unpack(r)? })
    }
    fn packed_size(&self) -> usize {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet_serial::{packed, unpack_all};

    #[test]
    fn seq_linearization_is_identity() {
        let d = Seq::new(10);
        for k in 0..10 {
            assert_eq!(d.index_at(k), k);
            assert_eq!(d.linear_of(k), k);
        }
    }

    #[test]
    fn seq_intersect_is_min() {
        assert_eq!(Seq::new(5).intersect(&Seq::new(9)), Seq::new(5));
        assert_eq!(Seq::new(9).intersect(&Seq::new(5)), Seq::new(5));
    }

    #[test]
    fn part_split_covers() {
        let p = SeqPart::new(10, 25);
        let subs = p.split(4);
        assert_eq!(subs.iter().map(Part::count).sum::<usize>(), 25);
        assert_eq!(subs[0].start, 10);
        let all: Vec<usize> = subs.iter().flat_map(|s| s.indices()).collect();
        assert_eq!(all, (10..35).collect::<Vec<_>>());
    }

    #[test]
    fn part_split_half() {
        let p = SeqPart::new(0, 7);
        let (a, b) = p.split_half().unwrap();
        assert_eq!(a.count() + b.count(), 7);
        assert_eq!(a.end(), b.start);
        assert!(SeqPart::new(3, 1).split_half().is_none());
        assert!(SeqPart::new(3, 0).split_half().is_none());
    }

    #[test]
    fn wire_roundtrip() {
        let d = Seq::new(42);
        assert_eq!(unpack_all::<Seq>(packed(&d)).unwrap(), d);
        let p = SeqPart::new(7, 12);
        assert_eq!(unpack_all::<SeqPart>(packed(&p)).unwrap(), p);
    }

    #[test]
    fn split_parts_no_empty_parts() {
        // More workers than points: only 3 parts come back.
        let d = Seq::new(3);
        let parts = d.split_parts(16);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.count() == 1));
    }
}
