//! Three-dimensional domains, used by cutcp's potential grid.

use triolet_serial::{Wire, WireReader, WireResult, WireWriter};

use crate::part::Part;
use crate::split::chunk_ranges;
use crate::Domain;

/// A dense three-dimensional iteration space of `nx x ny x nz` points.
/// Indices are `(x, y, z)` triples enumerated with `z` innermost.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub struct Dim3 {
    /// Outermost extent.
    pub nx: usize,
    /// Middle extent.
    pub ny: usize,
    /// Innermost extent.
    pub nz: usize,
}

impl Dim3 {
    /// Domain over `nx x ny x nz` points.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Dim3 { nx, ny, nz }
    }
}

/// A box-shaped part of a [`Dim3`] domain: slabs along the outermost axis
/// crossed with full extent in `y`/`z` (sufficient for grid distribution —
/// slab decomposition is what cutcp-style grid codes use).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Dim3Part {
    /// First x-plane of the slab.
    pub x0: usize,
    /// Number of x-planes.
    pub nx: usize,
    /// Full y extent of the parent domain.
    pub ny: usize,
    /// Full z extent of the parent domain.
    pub nz: usize,
}

impl Dim3Part {
    /// Slab covering x-planes `x0 .. x0+nx` at full `ny x nz` extent.
    pub fn new(x0: usize, nx: usize, ny: usize, nz: usize) -> Self {
        Dim3Part { x0, nx, ny, nz }
    }

    /// The x range covered by the slab.
    pub fn x_range(&self) -> std::ops::Range<usize> {
        self.x0..self.x0 + self.nx
    }
}

impl Part for Dim3Part {
    type Index = (usize, usize, usize);

    fn count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    fn index_at(&self, k: usize) -> (usize, usize, usize) {
        debug_assert!(k < self.count());
        let plane = self.ny * self.nz;
        let x = self.x0 + k / plane;
        let rem = k % plane;
        (x, rem / self.nz, rem % self.nz)
    }

    fn split(&self, n: usize) -> Vec<Self> {
        chunk_ranges(self.nx, n)
            .into_iter()
            .map(|(off, l)| Dim3Part::new(self.x0 + off, l, self.ny, self.nz))
            .collect()
    }

    fn split_half(&self) -> Option<(Self, Self)> {
        if self.nx < 2 {
            return None;
        }
        let mid = self.nx / 2;
        Some((
            Dim3Part::new(self.x0, mid, self.ny, self.nz),
            Dim3Part::new(self.x0 + mid, self.nx - mid, self.ny, self.nz),
        ))
    }
}

impl Domain for Dim3 {
    type Index = (usize, usize, usize);
    type Part = Dim3Part;

    fn count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    fn index_at(&self, k: usize) -> (usize, usize, usize) {
        debug_assert!(k < self.count());
        let plane = self.ny * self.nz;
        (k / plane, (k % plane) / self.nz, k % self.nz)
    }

    fn linear_of(&self, (x, y, z): (usize, usize, usize)) -> usize {
        (x * self.ny + y) * self.nz + z
    }

    fn contains(&self, (x, y, z): (usize, usize, usize)) -> bool {
        x < self.nx && y < self.ny && z < self.nz
    }

    fn intersect(&self, other: &Self) -> Self {
        Dim3::new(self.nx.min(other.nx), self.ny.min(other.ny), self.nz.min(other.nz))
    }

    fn whole_part(&self) -> Dim3Part {
        Dim3Part::new(0, self.nx, self.ny, self.nz)
    }

    fn split_parts(&self, n: usize) -> Vec<Dim3Part> {
        self.whole_part().split(n)
    }
}

impl Wire for Dim3 {
    fn pack(&self, w: &mut WireWriter) {
        self.nx.pack(w);
        self.ny.pack(w);
        self.nz.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(Dim3 { nx: usize::unpack(r)?, ny: usize::unpack(r)?, nz: usize::unpack(r)? })
    }
    fn packed_size(&self) -> usize {
        24
    }
}

impl Wire for Dim3Part {
    fn pack(&self, w: &mut WireWriter) {
        self.x0.pack(w);
        self.nx.pack(w);
        self.ny.pack(w);
        self.nz.pack(w);
    }
    fn unpack(r: &mut WireReader) -> WireResult<Self> {
        Ok(Dim3Part {
            x0: usize::unpack(r)?,
            nx: usize::unpack(r)?,
            ny: usize::unpack(r)?,
            nz: usize::unpack(r)?,
        })
    }
    fn packed_size(&self) -> usize {
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use triolet_serial::{packed, unpack_all};

    #[test]
    fn linearization_bijection() {
        let d = Dim3::new(3, 4, 5);
        for k in 0..d.count() {
            let idx = d.index_at(k);
            assert!(d.contains(idx));
            assert_eq!(d.linear_of(idx), k);
        }
    }

    #[test]
    fn z_is_innermost() {
        let d = Dim3::new(2, 2, 2);
        assert_eq!(d.index_at(0), (0, 0, 0));
        assert_eq!(d.index_at(1), (0, 0, 1));
        assert_eq!(d.index_at(2), (0, 1, 0));
        assert_eq!(d.index_at(4), (1, 0, 0));
    }

    #[test]
    fn slabs_partition_domain() {
        let d = Dim3::new(7, 3, 2);
        let parts = d.split_parts(3);
        let mut seen = HashSet::new();
        for p in &parts {
            for idx in p.indices() {
                assert!(seen.insert(idx));
            }
        }
        assert_eq!(seen.len(), d.count());
    }

    #[test]
    fn slab_enumeration_matches_domain_subset() {
        let d = Dim3::new(4, 2, 3);
        let p = Dim3Part::new(1, 2, 2, 3);
        let expect: Vec<_> =
            (0..d.count()).map(|k| d.index_at(k)).filter(|&(x, _, _)| x == 1 || x == 2).collect();
        assert_eq!(p.indices(), expect);
    }

    #[test]
    fn intersect_pointwise_min() {
        assert_eq!(Dim3::new(3, 9, 5).intersect(&Dim3::new(7, 2, 5)), Dim3::new(3, 2, 5));
    }

    #[test]
    fn split_half() {
        let p = Dim3Part::new(0, 5, 2, 2);
        let (a, b) = p.split_half().unwrap();
        assert_eq!(a.count() + b.count(), 20);
        assert!(Dim3Part::new(0, 1, 4, 4).split_half().is_none());
    }

    #[test]
    fn wire_roundtrip() {
        let d = Dim3::new(2, 3, 4);
        assert_eq!(unpack_all::<Dim3>(packed(&d)).unwrap(), d);
        let p = Dim3Part::new(1, 1, 3, 4);
        assert_eq!(unpack_all::<Dim3Part>(packed(&p)).unwrap(), p);
    }
}
