//! Shared splitting arithmetic.

/// Balanced contiguous chunking of `len` items into at most `n` non-empty
/// ranges `(start, len)`. The first `len % n` chunks get one extra element,
/// so chunk sizes differ by at most one.
pub fn chunk_ranges(len: usize, n: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    // A worker count of zero is treated as one: callers always want the work
    // done, and silently dropping the range would be a footgun.
    let n = n.max(1).min(len);
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let sz = base + usize::from(i < extra);
        out.push((start, sz));
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

/// Choose a near-square process grid `(pr, pc)` with `pr * pc <= n` and
/// `pr * pc` maximal, preferring shapes whose aspect ratio matches
/// `rows / cols`. This drives the paper's 2-D block decomposition of dense
/// matrices: with 8 nodes and a square matrix it picks a 4x2 or 2x4 grid.
pub fn near_square_grid(n: usize, rows: usize, cols: usize) -> (usize, usize) {
    if n <= 1 || rows == 0 || cols == 0 {
        return (1, 1);
    }
    let mut best = (1, n.min(cols).max(1).min(cols));
    let mut best_score = f64::MIN;
    for pr in 1..=n.min(rows) {
        // Clamp the column count to the available extent instead of
        // discarding the candidate: with few columns, tall grids still use
        // every worker they can.
        let pc = (n / pr).min(cols);
        if pc == 0 {
            break;
        }
        let used = (pr * pc) as f64;
        // Prefer using all n workers; tiebreak on squareness of the blocks.
        let block_r = rows as f64 / pr as f64;
        let block_c = cols as f64 / pc as f64;
        let aspect = if block_r > block_c { block_c / block_r } else { block_r / block_c };
        let score = used * 1000.0 + aspect;
        if score > best_score {
            best_score = score;
            best = (pr, pc);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly() {
        for len in [0usize, 1, 7, 100, 101] {
            for n in [1usize, 2, 3, 8, 200] {
                let chunks = chunk_ranges(len, n);
                let total: usize = chunks.iter().map(|&(_, l)| l).sum();
                assert_eq!(total, len, "len={len} n={n}");
                let mut pos = 0;
                for &(s, l) in &chunks {
                    assert_eq!(s, pos);
                    assert!(l > 0, "no empty chunks");
                    pos += l;
                }
                assert!(chunks.len() <= n.max(1));
            }
        }
    }

    #[test]
    fn chunks_balanced_within_one() {
        let chunks = chunk_ranges(103, 8);
        let min = chunks.iter().map(|&(_, l)| l).min().unwrap();
        let max = chunks.iter().map(|&(_, l)| l).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn grid_square_case() {
        let (pr, pc) = near_square_grid(4, 100, 100);
        assert_eq!(pr * pc, 4);
        assert_eq!(pr, 2);
        assert_eq!(pc, 2);
    }

    #[test]
    fn grid_uses_all_workers_when_possible() {
        let (pr, pc) = near_square_grid(8, 4096, 4096);
        assert_eq!(pr * pc, 8);
    }

    #[test]
    fn grid_respects_small_extents() {
        // Only 2 rows available: cannot have more than 2 row-parts.
        let (pr, pc) = near_square_grid(16, 2, 1000);
        assert!(pr <= 2);
        assert!(pr * pc <= 16);
    }

    #[test]
    fn grid_degenerate() {
        assert_eq!(near_square_grid(1, 10, 10), (1, 1));
        assert_eq!(near_square_grid(0, 10, 10), (1, 1));
        assert_eq!(near_square_grid(4, 0, 10), (1, 1));
    }
}
