//! The [`Part`] trait: a rectangular piece of a domain.

use std::fmt::Debug;
use triolet_serial::Wire;

/// A piece of a [`crate::Domain`], produced by work distribution.
///
/// A part enumerates its own index points in row-major order, and can split
/// itself further — the two-level distribution of the paper (§3.4) first
/// splits a domain into node parts, then splits each node part again across
/// worker threads, then threads may split once more for sequential chunking.
pub trait Part: Clone + PartialEq + Debug + Send + Sync + Wire + 'static {
    /// Index type of the parent domain.
    type Index: Copy + Debug + PartialEq + Send + Sync + 'static;

    /// Number of index points in this part.
    fn count(&self) -> usize;

    /// The `k`-th index of this part in row-major order, `k < count()`.
    fn index_at(&self, k: usize) -> Self::Index;

    /// Split into at most `n` non-empty sub-parts covering this part exactly.
    fn split(&self, n: usize) -> Vec<Self>;

    /// Split into two halves for recursive divide-and-conquer scheduling
    /// (work stealing). Returns `None` when the part is too small to split
    /// (fewer than 2 points).
    fn split_half(&self) -> Option<(Self, Self)>;

    /// True when the part has no points.
    fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Convenience: collect all indices (test/debug helper; production code
    /// iterates via `index_at` to stay allocation-free).
    fn indices(&self) -> Vec<Self::Index> {
        (0..self.count()).map(|k| self.index_at(k)).collect()
    }
}
