//! Ablation: two-level distribution (paper §3.4) vs a flat process-per-core
//! view of the machine.
//!
//! The same tpacf-style reduction on the same 32-core machine, organized as
//! 2 nodes x 16 shared-memory threads (Triolet) vs 32 single-threaded
//! message-passing processes (flat, Eden-like). Flat parallelism pays
//! per-process data copies and per-process result messages where the
//! two-level version uses shared memory.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use triolet::prelude::*;
use triolet_apps::tpacf;
use triolet_baselines::{EdenRt, LowLevelRt};

fn two_level_vs_flat(c: &mut Criterion) {
    let input = tpacf::generate(128, 32, 16, 7);
    let mut g = c.benchmark_group("ablation_twolevel");
    g.sample_size(10);

    // Two-level: 2 nodes x 16 threads (32 cores).
    g.bench_function("two_level_2x16", |b| {
        b.iter(|| {
            let rt = Triolet::new(ClusterConfig::virtual_cluster(2, 16));
            black_box(tpacf::run_triolet(&rt, &input).stats.total_s)
        })
    });

    // Flat skeletons: 32 nodes x 1 thread — every "core" is a remote rank.
    g.bench_function("flat_32x1_lowlevel", |b| {
        b.iter(|| {
            let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(32, 1));
            black_box(tpacf::run_lowlevel(&rt, &input).1.total_s)
        })
    });

    // Flat Eden processes: 32 processes, intra-node copies everywhere.
    g.bench_function("flat_eden_2x16", |b| {
        b.iter(|| {
            let rt = EdenRt::new(2, 16);
            black_box(tpacf::run_eden(&rt, &input).expect("fits buffers").1.total_s)
        })
    });

    g.finish();
}

criterion_group!(benches, two_level_vs_flat);
criterion_main!(benches);
