//! Ablation: linear vs tree-structured collectives on the distributed
//! hot path.
//!
//! ```text
//! cargo bench --bench ablation_collectives -- [--smoke] [--out FILE]
//! ```
//!
//! Runs the same environment-broadcasting `fold_reduce` under
//! `Topology::Linear` and `Topology::Tree` at N ∈ {2, 4, 8, 16} nodes and
//! reports the modeled virtual-time makespan. The virtual-time scheduler is
//! deterministic, so one run per point is exact — no statistics needed.
//! `--out` additionally writes the table as JSON (BENCH_collectives.json is
//! the committed capture); `--smoke` shrinks the workload for CI.

use std::io::Write;

use triolet::prelude::*;

struct Point {
    nodes: usize,
    topology: &'static str,
    total_s: f64,
    comm_s: f64,
    env_packs: u64,
}

fn run_point(nodes: usize, topology: Topology, env: &Vec<f64>, xs: &[f64]) -> Point {
    let cfg = ClusterConfig::virtual_cluster(nodes, 4).with_topology(topology);
    let rt = Triolet::new(cfg);
    let run = rt.fold_reduce(
        from_vec(xs.to_vec()).par(),
        env,
        || 0.0f64,
        |env, acc, x: f64| acc + x * env[(x as usize) % env.len()],
        |a, b| a + b,
    );
    assert!(run.value.is_finite());
    Point {
        nodes,
        topology: match topology {
            Topology::Linear => "linear",
            Topology::Tree => "tree",
        },
        total_s: run.stats.total_s,
        comm_s: run.stats.comm_s,
        env_packs: rt.cluster().stats().env_packs(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();

    // ~1 MiB broadcast environment: big enough that its transport dominates
    // the makespan; the per-element work stays tiny.
    let env_len = if smoke { 16_384 } else { 131_072 };
    let n_items = if smoke { 1_024 } else { 8_192 };
    let env: Vec<f64> = (0..env_len).map(|i| (i as f64) * 0.5 - 1.0).collect();
    let xs: Vec<f64> = (0..n_items).map(|i| i as f64).collect();

    println!("# Ablation: linear vs tree collectives");
    println!(
        "env {} bytes | {} items | cost model {:?} | virtual-time execution",
        env_len * 8,
        n_items,
        CostModel::default()
    );
    println!("| nodes | topology | makespan (s) | comm (s) | env packs |");
    println!("|------:|----------|-------------:|---------:|----------:|");

    let mut points = Vec::new();
    for nodes in [2usize, 4, 8, 16] {
        for topology in [Topology::Linear, Topology::Tree] {
            let p = run_point(nodes, topology, &env, &xs);
            println!(
                "| {} | {} | {:.6} | {:.6} | {} |",
                p.nodes, p.topology, p.total_s, p.comm_s, p.env_packs
            );
            points.push(p);
        }
    }

    // The point of the exercise: the tree must win where the linear root
    // serializes many copies.
    for nodes in [8usize, 16] {
        let get = |topo: &str| {
            points.iter().find(|p| p.nodes == nodes && p.topology == topo).expect("point present")
        };
        let (lin, tree) = (get("linear"), get("tree"));
        assert!(
            tree.total_s < lin.total_s,
            "tree must beat linear at {nodes} nodes: {} vs {}",
            tree.total_s,
            lin.total_s
        );
        println!("tree/linear makespan at {} nodes: {:.3}", nodes, tree.total_s / lin.total_s);
    }

    if let Some(path) = out_path {
        let mut json = String::from("{\n  \"bench\": \"ablation_collectives\",\n");
        json.push_str(&format!(
            "  \"env_bytes\": {},\n  \"items\": {},\n  \"points\": [\n",
            env_len * 8,
            n_items
        ));
        for (i, p) in points.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"nodes\": {}, \"topology\": \"{}\", \"total_s\": {:.9}, \"comm_s\": {:.9}, \"env_packs\": {}}}{}\n",
                p.nodes,
                p.topology,
                p.total_s,
                p.comm_s,
                p.env_packs,
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        let mut f = std::fs::File::create(&path).expect("create --out file");
        f.write_all(json.as_bytes()).expect("write --out file");
        println!("wrote {path}");
    }
}
