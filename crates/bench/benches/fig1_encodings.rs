//! Figure 1 bench: the cost of each fusible encoding on the same loops.
//!
//! Regenerates the paper's encoding-capability story as timings: the
//! indexer, stepper, fold, and collector encodings all computing the same
//! flat sum; then the nested-traversal case where the stepper encoding is
//! the documented "slow" cell and the fold/hybrid encoding is not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use triolet::prelude::*;
use triolet::StepFlat;
use triolet_iter::foldenc::FoldEnc;
use triolet_iter::indexer::{ArrayIdx, Indexer as _};
use triolet_iter::stepper::IdxStepper;

fn bench_flat_sum(c: &mut Criterion) {
    let n = 100_000usize;
    let xs: Vec<i64> = (0..n as i64).collect();
    let mut g = c.benchmark_group("fig1_flat_sum");

    g.bench_function("indexer", |b| {
        let idx = ArrayIdx::new(xs.clone());
        b.iter(|| {
            let dom = idx.domain();
            let mut acc = 0i64;
            for k in 0..dom.count() {
                acc += idx.get(k);
            }
            black_box(acc)
        })
    });

    g.bench_function("stepper", |b| {
        let idx = ArrayIdx::new(xs.clone());
        b.iter(|| {
            let s = IdxStepper::over_all(idx.clone());
            black_box(s.sum::<i64>())
        })
    });

    g.bench_function("fold", |b| {
        let idx = ArrayIdx::new(xs.clone());
        b.iter(|| {
            let f = FoldEnc::from_indexer(idx.clone(), idx.domain().whole_part());
            black_box(f.fold(0i64, |a, x| a + x))
        })
    });

    g.bench_function("collector", |b| {
        let idx = ArrayIdx::new(xs.clone());
        b.iter(|| {
            let f = FoldEnc::from_indexer(idx.clone(), idx.domain().whole_part());
            let s = f.into_collector(triolet_iter::SumCollector::<i64>::new());
            black_box(triolet::Collector::finish(s))
        })
    });

    g.finish();
}

fn bench_nested_traversal(c: &mut Criterion) {
    // The "slow" cell: nested traversal through the stepper encoding vs the
    // hybrid shapes' fold consumption of the same loop nest.
    let n = 20_000i64;
    let make = move || {
        from_vec((0..n).collect::<Vec<i64>>())
            .concat_map(|x: i64| StepFlat::new((0..x % 23).map(move |y| x ^ y)))
    };
    let mut g = c.benchmark_group("fig1_nested_traversal");
    for (name, stepper) in [("fold_hybrid", false), ("stepper_chain", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &stepper, |b, &stepper| {
            b.iter(|| {
                if stepper {
                    black_box(make().into_step().fold(0i64, |a, b| a ^ b))
                } else {
                    black_box(make().fold_items(0i64, &mut |a, b| a ^ b))
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_flat_sum, bench_nested_traversal);
criterion_main!(benches);
