//! Ablation: pipelined (streamed) vs barrier dispatch on the distributed
//! hot path.
//!
//! ```text
//! cargo bench --bench ablation_pipeline -- [--smoke] [--out FILE]
//! ```
//!
//! Runs an mri-q-style environment-broadcasting `fold_reduce` — every task
//! folds into a large accumulation grid, so the root's per-result
//! unpack+merge work is substantial — under `PipelineMode::Streamed` and
//! `PipelineMode::Barrier` at N ∈ {2, 4, 8, 16} nodes and reports the
//! modeled virtual-time makespan. Streamed mode unpacks and merges each
//! node's partial the moment it arrives, overlapping root work with later
//! nodes still computing; barrier mode defers all of it past the last
//! arrival. The virtual-time scheduler is deterministic, so one run per
//! point is exact — no statistics needed. `--out` additionally writes the
//! table as JSON (BENCH_pipeline.json is the committed capture); `--smoke`
//! shrinks the workload for CI.

use std::io::Write;

use triolet::prelude::*;

struct Point {
    nodes: usize,
    pipeline: &'static str,
    total_s: f64,
    root_s: f64,
    value_bits: u64,
}

fn run_point(
    nodes: usize,
    pipeline: PipelineMode,
    env: &Vec<f64>,
    xs: &[f64],
    grid: usize,
) -> Point {
    let cfg = ClusterConfig::virtual_cluster(nodes, 4).with_pipeline(pipeline);
    let rt = Triolet::new(cfg);
    let run = rt.fold_reduce(
        from_vec(xs.to_vec()).par(),
        env,
        move || vec![0.0f64; grid],
        |env, mut acc: Vec<f64>, x: f64| {
            let i = (x as usize) % acc.len();
            acc[i] += x * env[(x as usize) % env.len()];
            acc
        },
        |mut a, b| {
            for (ai, bi) in a.iter_mut().zip(&b) {
                *ai += bi;
            }
            a
        },
    );
    let checksum: f64 = run.value.iter().sum();
    Point {
        nodes,
        pipeline: match pipeline {
            PipelineMode::Streamed => "streamed",
            PipelineMode::Barrier => "barrier",
        },
        total_s: run.stats.total_s,
        root_s: run.stats.root_s,
        value_bits: checksum.to_bits(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();

    // Each node returns a `grid`-element partial (~1 MiB full-size), so the
    // root has real unpack+merge work per result — the time the pipeline
    // hides behind later arrivals.
    let grid = if smoke { 65_536 } else { 131_072 };
    let env_len = if smoke { 4_096 } else { 32_768 };
    let n_items = if smoke { 262_144 } else { 1_048_576 };
    let env: Vec<f64> = (0..env_len).map(|i| (i as f64) * 0.5 - 1.0).collect();
    let xs: Vec<f64> = (0..n_items).map(|i| i as f64).collect();

    println!("# Ablation: pipelined vs barrier dispatch");
    println!(
        "grid {} bytes | env {} bytes | {} items | cost model {:?} | virtual-time execution",
        grid * 8,
        env_len * 8,
        n_items,
        CostModel::default()
    );
    println!("| nodes | pipeline | makespan (s) | root busy (s) |");
    println!("|------:|----------|-------------:|--------------:|");

    // One discarded run to warm the allocator and page in the inputs, so
    // the first measured point doesn't absorb one-time host costs.
    let _ = run_point(2, PipelineMode::Streamed, &env, &xs, grid);

    let mut points = Vec::new();
    for nodes in [2usize, 4, 8, 16] {
        for pipeline in [PipelineMode::Streamed, PipelineMode::Barrier] {
            let p = run_point(nodes, pipeline, &env, &xs, grid);
            println!("| {} | {} | {:.6} | {:.6} |", p.nodes, p.pipeline, p.total_s, p.root_s);
            points.push(p);
        }
    }

    // Equivalence: the two modes must agree bit-for-bit at every node count.
    for nodes in [2usize, 4, 8, 16] {
        let get = |mode: &str| {
            points.iter().find(|p| p.nodes == nodes && p.pipeline == mode).expect("point present")
        };
        assert_eq!(
            get("streamed").value_bits,
            get("barrier").value_bits,
            "modes must agree bit-for-bit at {nodes} nodes"
        );
    }

    // The point of the exercise: streaming must win where the barrier
    // serializes many per-result unpack+merge steps past the last arrival.
    for nodes in [8usize, 16] {
        let get = |mode: &str| {
            points.iter().find(|p| p.nodes == nodes && p.pipeline == mode).expect("point present")
        };
        let (s, b) = (get("streamed"), get("barrier"));
        assert!(
            s.total_s < b.total_s,
            "streamed must beat barrier at {nodes} nodes: {} vs {}",
            s.total_s,
            b.total_s
        );
        println!("streamed/barrier makespan at {} nodes: {:.3}", nodes, s.total_s / b.total_s);
    }

    if let Some(path) = out_path {
        let mut json = String::from("{\n  \"bench\": \"ablation_pipeline\",\n");
        json.push_str(&format!(
            "  \"grid_bytes\": {},\n  \"env_bytes\": {},\n  \"items\": {},\n  \"points\": [\n",
            grid * 8,
            env_len * 8,
            n_items
        ));
        for (i, p) in points.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"nodes\": {}, \"pipeline\": \"{}\", \"total_s\": {:.9}, \"root_s\": {:.9}}}{}\n",
                p.nodes,
                p.pipeline,
                p.total_s,
                p.root_s,
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        let mut f = std::fs::File::create(&path).expect("create --out file");
        f.write_all(json.as_bytes()).expect("write --out file");
        println!("wrote {path}");
    }
}
