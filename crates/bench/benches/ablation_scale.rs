//! Ablation: event-driven vs eager virtual-time core at 64–4096 ranks.
//!
//! ```text
//! cargo bench --bench ablation_scale -- [--smoke] [--out FILE]
//! ```
//!
//! Runs an environment-broadcasting `fold_reduce` across N ∈ {64, 256,
//! 1024, 4096} simulated ranks (the eager core still finishes at every
//! point, so both cores are measured everywhere) and reports, per point:
//! the simulator's host wall-clock for the whole virtual dispatch, the
//! event core's heap throughput (events/second), and its peak resident
//! heap length — the `O(ranks)` state bound that distinguishes the event
//! core from the eager walk's full-vector passes. A final pass per rank
//! count re-runs with [`ClusterConfig::with_sim_check`], which executes
//! *both* cores on every dispatch and panics unless their timelines agree
//! to the bit, so cross-core identity is asserted in-bench, not assumed.
//! `--out` writes the table as JSON (BENCH_scale.json is the committed
//! capture); `--smoke` shrinks the workload and rank sweep for CI while
//! keeping the 1024-rank point.

use std::io::Write;
use std::time::Instant;

use triolet::prelude::*;

struct Point {
    ranks: usize,
    core: &'static str,
    wall_s: f64,
    total_s: f64,
    events: u64,
    events_per_s: f64,
    peak_heap: u64,
    value_bits: u64,
}

fn workload(ranks: usize, items_per_rank: usize) -> (Vec<f64>, Vec<f64>) {
    let n_items = ranks * items_per_rank;
    let env: Vec<f64> = (0..512).map(|i| (i as f64) * 0.5 - 1.0).collect();
    let xs: Vec<f64> = (0..n_items).map(|i| (i % 8191) as f64 * 0.25).collect();
    (env, xs)
}

fn run_point(ranks: usize, core: SimCore, sim_check: bool, env: &Vec<f64>, xs: &[f64]) -> Point {
    let cfg =
        ClusterConfig::virtual_cluster(ranks, 2).with_sim_core(core).with_sim_check(sim_check);
    let rt = Triolet::new(cfg);
    let t0 = Instant::now();
    let run = rt.fold_reduce(
        from_vec(xs.to_vec()).par(),
        env,
        || 0.0f64,
        |env, acc: f64, x: f64| acc + x * env[(x as usize) % env.len()],
        |a, b| a + b,
    );
    let wall_s = t0.elapsed().as_secs_f64();
    let events = rt.cluster().stats().sim_events();
    let peak_heap = rt.cluster().stats().sim_peak_heap();
    Point {
        ranks,
        core: match core {
            SimCore::Event => "event",
            SimCore::Eager => "eager",
        },
        wall_s,
        total_s: run.stats.total_s,
        events,
        events_per_s: if wall_s > 0.0 { events as f64 / wall_s } else { 0.0 },
        peak_heap,
        value_bits: run.value.to_bits(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();

    let rank_sweep: &[usize] = if smoke { &[64, 1024] } else { &[64, 256, 1024, 4096] };
    let items_per_rank = if smoke { 16 } else { 64 };

    println!("# Ablation: event-driven vs eager virtual-time core");
    println!(
        "{items_per_rank} items/rank | env broadcast 4096 bytes | cost model {:?}",
        CostModel::default()
    );
    println!("| ranks | core | sim wall (s) | events | events/s | peak heap | makespan (s) |");
    println!("|------:|------|-------------:|-------:|---------:|----------:|-------------:|");

    // One discarded run to warm the allocator and page in the inputs.
    {
        let (env, xs) = workload(64, items_per_rank);
        let _ = run_point(64, SimCore::Event, false, &env, &xs);
    }

    let mut points = Vec::new();
    for &ranks in rank_sweep {
        let (env, xs) = workload(ranks, items_per_rank);
        for core in [SimCore::Event, SimCore::Eager] {
            let p = run_point(ranks, core, false, &env, &xs);
            println!(
                "| {} | {} | {:.6} | {} | {:.0} | {} | {:.6} |",
                p.ranks, p.core, p.wall_s, p.events, p.events_per_s, p.peak_heap, p.total_s
            );
            points.push(p);
        }
    }

    for &ranks in rank_sweep {
        let get = |core: &str| {
            points.iter().find(|p| p.ranks == ranks && p.core == core).expect("point present")
        };
        let (event, eager) = (get("event"), get("eager"));
        // Identical results whichever core laid the timeline.
        assert_eq!(
            event.value_bits, eager.value_bits,
            "cores must agree bit-for-bit at {ranks} ranks"
        );
        // The heap discipline: every timed piece pops as an event, while
        // resident state stays O(ranks) — far below the event total.
        assert!(event.events > 0, "event core must process heap events at {ranks} ranks");
        assert_eq!(eager.events, 0, "eager core must pop no heap events");
        assert!(
            event.peak_heap <= 4 * ranks as u64 + 16,
            "peak heap {} must stay O(ranks) at {ranks} ranks",
            event.peak_heap
        );

        // In-bench bit-identity: run both cores on the *same* dispatch and
        // assert every span bound and arrival agrees to the bit (panics on
        // the first divergence).
        let (env, xs) = workload(ranks, items_per_rank);
        let checked = run_point(ranks, SimCore::Event, true, &env, &xs);
        assert_eq!(
            checked.value_bits, event.value_bits,
            "sim-check run must reproduce the value at {ranks} ranks"
        );
        println!("sim-check at {ranks} ranks: timelines bit-identical");
    }

    if let Some(path) = out_path {
        let mut json = String::from("{\n  \"bench\": \"ablation_scale\",\n");
        json.push_str(&format!("  \"items_per_rank\": {items_per_rank},\n  \"points\": [\n"));
        for (i, p) in points.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"ranks\": {}, \"core\": \"{}\", \"sim_wall_s\": {:.9}, \"events\": {}, \
                 \"events_per_s\": {:.0}, \"peak_heap\": {}, \"total_s\": {:.9}}}{}\n",
                p.ranks,
                p.core,
                p.wall_s,
                p.events,
                p.events_per_s,
                p.peak_heap,
                p.total_s,
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        let mut f = std::fs::File::create(&path).expect("create --out file");
        f.write_all(json.as_bytes()).expect("write --out file");
        println!("wrote {path}");
    }
}
