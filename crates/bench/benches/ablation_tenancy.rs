//! Ablation: multi-tenant fair-share scheduling in the skeleton job service.
//!
//! ```text
//! cargo bench --bench ablation_tenancy -- [--smoke] [--out FILE]
//! ```
//!
//! Queues 1407 mixed-size `sum` jobs from 3 tenants (weights 1:2:4, job
//! quotas proportional to weight so every tenant stays backlogged) into one
//! [`JobService`] over an 8×2 virtual cluster, then drains the queue under
//! each scheduling policy — FIFO, fair-share, strict priority — and
//! reports, per tenant: the achieved share of completed declared cost and
//! of modeled busy time against the configured weight share, p50/p99 job
//! latency on the service clock, and overall cluster utilization.
//!
//! In-bench asserts: under fair-share every tenant's cost share lands
//! within 2% of its weight share and its busy share within 10% (the
//! acceptance bound); the schedule is bit-deterministic (a second
//! identical run completes jobs in the same order); under strict priority
//! the top tenant's p99 latency beats the bottom tenant's p50. `--smoke`
//! keeps the full 1407-job queue but shrinks job sizes for CI; `--out`
//! writes the table as JSON (BENCH_tenancy.json is the committed capture).

use std::io::Write;

use triolet::prelude::*;
use triolet::service::percentile;
use triolet::JobId;

const NODES: usize = 8;
const THREADS: usize = 2;
const TENANTS: usize = 3;
const WEIGHTS: [f64; TENANTS] = [1.0, 2.0, 4.0];
// Divisible by the 3-step size cycle so each tenant sees the same size mix
// and total declared cost is exactly proportional to its quota.
const QUOTAS: [usize; TENANTS] = [201, 402, 804];
const QUEUE_CAP: usize = 2048;

struct Point {
    policy: &'static str,
    tenant: u32,
    weight: f64,
    jobs: u64,
    share_cost: f64,
    share_busy: f64,
    share_err: f64,
    p50_s: f64,
    p99_s: f64,
    utilization: f64,
}

fn policy_for(name: &str) -> SchedPolicy {
    match name {
        "fifo" => SchedPolicy::Fifo,
        "fair" => SchedPolicy::FairShare { weights: WEIGHTS.to_vec() },
        "priority" => SchedPolicy::Priority { levels: vec![0, 1, 2] },
        other => unreachable!("unknown policy {other}"),
    }
}

/// Drain the full job mix under one policy; return per-tenant points plus
/// the completion order (for the determinism gate).
fn run_policy(name: &'static str, base_items: usize) -> (Vec<Point>, Vec<JobId>) {
    let rt = Triolet::new(ClusterConfig::virtual_cluster(NODES, THREADS));
    let svc = rt.into_service(ServiceConfig::new(policy_for(name)).with_queue_cap(QUEUE_CAP));

    // Round-robin submission with a per-tenant 1x/2x/4x size cycle: every
    // tenant gets the same size mix, so cost shares are exactly quota
    // shares while all tenants are backlogged.
    let mut submitted = [0usize; TENANTS];
    let mut job_index = 0u64;
    loop {
        let mut any = false;
        for t in 0..TENANTS {
            if submitted[t] >= QUOTAS[t] {
                continue;
            }
            any = true;
            let items = base_items << (submitted[t] % 3);
            submitted[t] += 1;
            let seed = 1u64.wrapping_add(job_index.wrapping_mul(0x9e37_79b9));
            job_index += 1;
            let xs: Vec<f64> =
                (0..items).map(|i| ((i as u64).wrapping_mul(seed) % 8191) as f64 * 0.25).collect();
            svc.submit(Tenant(t as u32), items as f64, move |rt: &Triolet| {
                rt.sum(from_vec(xs).par())
            })
            .expect("queue sized to hold the full mix");
        }
        if !any {
            break;
        }
    }
    svc.drain();

    let stats = svc.service_stats();
    let usage = svc.usage();
    assert_eq!(stats.completed as usize, QUOTAS.iter().sum::<usize>());
    assert_eq!(stats.rejected, 0);
    let total_cost: f64 = usage.iter().map(|u| u.cost).sum();
    let total_busy: f64 = usage.iter().map(|u| u.busy_s).sum();
    let weight_sum: f64 = WEIGHTS.iter().sum();
    let points = usage
        .iter()
        .map(|u| {
            let configured = WEIGHTS[u.tenant.idx()] / weight_sum;
            let share_cost = u.cost / total_cost;
            Point {
                policy: name,
                tenant: u.tenant.0,
                weight: WEIGHTS[u.tenant.idx()],
                jobs: u.completed,
                share_cost,
                share_busy: u.busy_s / total_busy,
                share_err: (share_cost - configured).abs() / configured,
                p50_s: u.latency_percentile_s(0.50),
                p99_s: u.latency_percentile_s(0.99),
                utilization: stats.utilization(),
            }
        })
        .collect();
    (points, svc.completion_order())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();

    // Smoke keeps the full ≥1000-job queue — the fairness math needs the
    // backlog — and shrinks only the per-job work.
    let base_items = if smoke { 64 } else { 512 };
    let total_jobs: usize = QUOTAS.iter().sum();

    println!("# Ablation: multi-tenant fair-share job service");
    println!(
        "cluster {NODES}x{THREADS} | {TENANTS} tenants, weights {WEIGHTS:?}, quotas {QUOTAS:?} \
         ({total_jobs} jobs) | sizes {base_items}x(1|2|4) | queue cap {QUEUE_CAP}"
    );
    println!(
        "| policy | tenant | weight | jobs | share(cost) | share(busy) | share err | p50 (s) | \
         p99 (s) | util |"
    );
    println!(
        "|--------|-------:|-------:|-----:|------------:|------------:|----------:|--------:|\
         --------:|-----:|"
    );

    let mut points: Vec<Point> = Vec::new();
    let mut fair_order = Vec::new();
    for policy in ["fifo", "fair", "priority"] {
        let (ps, order) = run_policy(policy, base_items);
        for p in &ps {
            println!(
                "| {} | {} | {:.0} | {} | {:.4} | {:.4} | {:.4} | {:.6} | {:.6} | {:.3} |",
                p.policy,
                p.tenant,
                p.weight,
                p.jobs,
                p.share_cost,
                p.share_busy,
                p.share_err,
                p.p50_s,
                p.p99_s,
                p.utilization
            );
        }
        if policy == "fair" {
            fair_order = order;
        }
        points.extend(ps);
    }

    // Gate 1: fair-share holds every tenant's achieved share to its weight.
    for p in points.iter().filter(|p| p.policy == "fair") {
        assert!(
            p.share_err <= 0.02,
            "fair tenant {} cost share {:.4} drifts {:.4} from its weight share",
            p.tenant,
            p.share_cost,
            p.share_err
        );
        let configured = p.weight / WEIGHTS.iter().sum::<f64>();
        let busy_err = (p.share_busy - configured).abs() / configured;
        assert!(
            busy_err <= 0.10,
            "fair tenant {} busy share {:.4} off configured {:.4} by {:.4}",
            p.tenant,
            p.share_busy,
            configured,
            busy_err
        );
    }
    println!("fair-share gate: all cost shares within 2%, busy shares within 10% of weights");

    // Gate 2: the schedule is deterministic — an identical service run
    // completes jobs in the identical order.
    let (_, order_again) = run_policy("fair", base_items);
    assert_eq!(fair_order, order_again, "fair-share schedule must be bit-deterministic");
    println!("determinism gate: identical completion order across {total_jobs}-job re-run");

    // Gate 3: strict priority actually cuts the queue — the top tenant's
    // worst latency beats the bottom tenant's median.
    let pri = |tenant: u32| {
        points.iter().find(|p| p.policy == "priority" && p.tenant == tenant).expect("point")
    };
    assert!(
        pri(2).p99_s < pri(0).p50_s,
        "priority tenant 2 p99 {:.6} must beat tenant 0 p50 {:.6}",
        pri(2).p99_s,
        pri(0).p50_s
    );
    println!("priority gate: top tenant p99 beats bottom tenant p50");

    let all_lat_check: Vec<f64> = points.iter().map(|p| p.p99_s).collect();
    assert!(percentile(&all_lat_check, 1.0) > 0.0, "latencies must be on the service clock");

    if let Some(path) = out_path {
        let mut json = String::from("{\n  \"bench\": \"ablation_tenancy\",\n");
        json.push_str(&format!(
            "  \"nodes\": {NODES},\n  \"queue_cap\": {QUEUE_CAP},\n  \"points\": [\n"
        ));
        for (i, p) in points.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"policy\": \"{}\", \"tenant\": {}, \"weight\": {:.1}, \"jobs\": {}, \
                 \"share_cost\": {:.6}, \"share_busy\": {:.6}, \"share_err\": {:.6}, \
                 \"p50_s\": {:.9}, \"p99_s\": {:.9}, \"utilization\": {:.6}}}{}\n",
                p.policy,
                p.tenant,
                p.weight,
                p.jobs,
                p.share_cost,
                p.share_busy,
                p.share_err,
                p.p50_s,
                p.p99_s,
                p.utilization,
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        let mut f = std::fs::File::create(&path).expect("create --out file");
        f.write_all(json.as_bytes()).expect("write --out file");
        println!("wrote {path}");
    }
}
