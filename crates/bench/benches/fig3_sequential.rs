//! Figure 3 bench: sequential execution time of each benchmark in each
//! programming model (the paper's Figure 3 bar chart).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use triolet::prelude::*;
use triolet_apps::{cutcp, mriq, sgemm, tpacf};
use triolet_baselines::EdenRt;
use triolet_bench::apps::{workloads, BenchSet};
use triolet_bench::Scale;

fn quick() -> BenchSet {
    workloads(Scale::Quick)
}

fn bench_app(
    c: &mut Criterion,
    name: &str,
    mut seq: impl FnMut() + 'static,
    mut triolet: impl FnMut() + 'static,
    mut eden: impl FnMut() + 'static,
) {
    let mut g = c.benchmark_group(format!("fig3_{name}"));
    g.sample_size(10);
    g.bench_function("seq_c", |b| b.iter(&mut seq));
    g.bench_function("triolet", |b| b.iter(&mut triolet));
    g.bench_function("eden", |b| b.iter(&mut eden));
    g.finish();
}

fn fig3(c: &mut Criterion) {
    // mri-q
    {
        let set = quick();
        let i1 = set.mriq.clone();
        let i2 = set.mriq.clone();
        let i3 = set.mriq.clone();
        bench_app(
            c,
            "mriq",
            move || {
                black_box(mriq::run_seq(&i1));
            },
            move || {
                let rt = Triolet::sequential();
                black_box(mriq::run_triolet(&rt, &i2).value);
            },
            move || {
                let rt = EdenRt::new(1, 1);
                black_box(mriq::run_eden(&rt, &i3).unwrap().0);
            },
        );
    }
    // sgemm
    {
        let set = quick();
        let i1 = set.sgemm.clone();
        let i2 = set.sgemm.clone();
        let i3 = set.sgemm.clone();
        bench_app(
            c,
            "sgemm",
            move || {
                black_box(sgemm::run_seq(&i1));
            },
            move || {
                let rt = Triolet::sequential();
                black_box(sgemm::run_triolet(&rt, &i2).value);
            },
            move || {
                let rt = EdenRt::new(1, 1);
                black_box(sgemm::run_eden(&rt, &i3).unwrap().0);
            },
        );
    }
    // tpacf
    {
        let set = quick();
        let i1 = set.tpacf.clone();
        let i2 = set.tpacf.clone();
        let i3 = set.tpacf.clone();
        bench_app(
            c,
            "tpacf",
            move || {
                black_box(tpacf::run_seq(&i1));
            },
            move || {
                let rt = Triolet::sequential();
                black_box(tpacf::run_triolet(&rt, &i2).value);
            },
            move || {
                let rt = EdenRt::new(1, 1);
                black_box(tpacf::run_eden(&rt, &i3).unwrap().0);
            },
        );
    }
    // cutcp
    {
        let set = quick();
        let i1 = set.cutcp.clone();
        let i2 = set.cutcp.clone();
        let i3 = set.cutcp.clone();
        bench_app(
            c,
            "cutcp",
            move || {
                black_box(cutcp::run_seq(&i1));
            },
            move || {
                let rt = Triolet::sequential();
                black_box(cutcp::run_triolet(&rt, &i2).value);
            },
            move || {
                let rt = EdenRt::new(1, 1);
                black_box(cutcp::run_eden(&rt, &i3).unwrap().0);
            },
        );
    }
}

criterion_group!(benches, fig3);
criterion_main!(benches);
