//! Figure 8 (cutcp) bench: the three implementations at increasing cluster sizes
//! (virtual-time execution), quick scale. The `repro` binary produces the
//! full paper-shaped series; this Criterion bench tracks regressions on
//! three representative points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use triolet::prelude::*;
use triolet_apps::cutcp as app;
use triolet_baselines::{EdenRt, LowLevelRt};
use triolet_bench::apps::workloads;
use triolet_bench::Scale;

const SHAPES: &[(usize, usize)] = &[(1, 16), (4, 16), (8, 16)];

fn sweep(c: &mut Criterion) {
    let input = workloads(Scale::Quick).cutcp;
    let mut g = c.benchmark_group("fig8_cutcp");
    g.sample_size(10);
    for &(nodes, tpn) in SHAPES {
        let cores = nodes * tpn;
        g.bench_with_input(BenchmarkId::new("triolet", cores), &(nodes, tpn), |b, &(n, t)| {
            let input = input.clone();
            b.iter(|| {
                let rt = Triolet::new(ClusterConfig::virtual_cluster(n, t));
                black_box(app::run_triolet(&rt, &input).stats.total_s)
            })
        });
        g.bench_with_input(BenchmarkId::new("lowlevel", cores), &(nodes, tpn), |b, &(n, t)| {
            let input = input.clone();
            b.iter(|| {
                let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(n, t));
                black_box(app::run_lowlevel(&rt, &input).1.total_s)
            })
        });
        g.bench_with_input(BenchmarkId::new("eden", cores), &(nodes, tpn), |b, &(n, t)| {
            let input = input.clone();
            b.iter(|| {
                let rt = EdenRt::new(n, t);
                black_box(app::run_eden(&rt, &input).map(|(_, s)| s.total_s).ok())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, sweep);
criterion_main!(benches);
