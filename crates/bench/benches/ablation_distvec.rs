//! Ablation: resident `DistVec` segments vs per-sweep re-broadcast on an
//! iterative workload.
//!
//! ```text
//! cargo bench --bench ablation_distvec -- [--smoke] [--out FILE]
//! ```
//!
//! Runs iterative k-means (Lloyd sweeps over a fixed point set) two ways at
//! N ∈ {2, 4, 8, 16} nodes:
//!
//! * **resident** — `rt.scatter(points)` once, then every sweep is a
//!   `fold_reduce` over the resident segments; only the centroid table
//!   crosses the wire per sweep.
//! * **rebroadcast** — every sweep ships the full point set again (the
//!   pre-residency behavior, kept as the control arm).
//!
//! The report is bytes-on-wire per sweep (the headline residency number),
//! the one-time scatter cost it buys, and the modeled makespan. The
//! virtual-time scheduler is deterministic, so one run per point is exact.
//! `--out` writes the table as JSON (BENCH_distvec.json is the committed
//! capture); `--smoke` shrinks the workload for CI.

use std::io::Write;

use triolet::prelude::*;
use triolet_apps::kmeans::{self, KmeansInput};

struct Point {
    nodes: usize,
    strategy: &'static str,
    scatter_bytes: u64,
    bytes_per_iter: f64,
    total_s: f64,
    resident_hits: u64,
    value_bits: Vec<(u64, u64)>,
}

fn run_point(nodes: usize, resident: bool, input: &KmeansInput) -> Point {
    let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, 4));
    let run = if resident {
        kmeans::run_resident(&rt, input)
    } else {
        kmeans::run_rebroadcast(&rt, input)
    };
    Point {
        nodes,
        strategy: if resident { "resident" } else { "rebroadcast" },
        scatter_bytes: run.value.scatter_bytes,
        bytes_per_iter: run.value.bytes_per_iter(),
        total_s: run.stats.total_s,
        resident_hits: run.stats.resident_hits,
        value_bits: run.value.centroids.iter().map(|c| (c.0.to_bits(), c.1.to_bits())).collect(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();

    let n_points = if smoke { 8_192 } else { 65_536 };
    let k = 16;
    let iters = if smoke { 6 } else { 20 };
    let input = kmeans::generate(n_points, k, iters, 7);

    println!("# Ablation: resident DistVec vs per-sweep re-broadcast (k-means)");
    println!(
        "{} points ({} bytes) | k={} | {} sweeps | cost model {:?} | virtual-time execution",
        n_points,
        n_points * 16,
        k,
        iters,
        CostModel::default()
    );
    println!("| nodes | input | scatter (B) | per-sweep (B) | makespan (s) | resident hits |");
    println!("|------:|-------|------------:|--------------:|-------------:|--------------:|");

    // One discarded run to warm the allocator and page in the inputs.
    let _ = run_point(2, true, &input);

    let mut points = Vec::new();
    for nodes in [2usize, 4, 8, 16] {
        for resident in [true, false] {
            let p = run_point(nodes, resident, &input);
            println!(
                "| {} | {} | {} | {:.1} | {:.6} | {} |",
                p.nodes, p.strategy, p.scatter_bytes, p.bytes_per_iter, p.total_s, p.resident_hits
            );
            points.push(p);
        }
    }

    let get = |nodes: usize, strategy: &str| {
        points.iter().find(|p| p.nodes == nodes && p.strategy == strategy).expect("point present")
    };

    // Equivalence: both strategies must agree bit-for-bit at every shape.
    for nodes in [2usize, 4, 8, 16] {
        assert_eq!(
            get(nodes, "resident").value_bits,
            get(nodes, "rebroadcast").value_bits,
            "strategies must agree bit-for-bit at {nodes} nodes"
        );
    }

    // The point of the exercise: resident sweeps must move at least 5x
    // fewer bytes per iteration (the ISSUE's acceptance gate) — in
    // practice the ratio is the points/centroids size ratio, far higher.
    for nodes in [8usize, 16] {
        let (r, b) = (get(nodes, "resident"), get(nodes, "rebroadcast"));
        assert!(
            b.bytes_per_iter >= 5.0 * r.bytes_per_iter.max(1.0),
            "resident sweeps must move >=5x fewer bytes at {nodes} nodes: {} vs {}",
            r.bytes_per_iter,
            b.bytes_per_iter
        );
        println!(
            "rebroadcast/resident bytes per sweep at {} nodes: {:.1}x",
            nodes,
            b.bytes_per_iter / r.bytes_per_iter.max(1.0)
        );
    }

    if let Some(path) = out_path {
        let mut json = String::from("{\n  \"bench\": \"ablation_distvec\",\n");
        json.push_str(&format!(
            "  \"points_bytes\": {},\n  \"k\": {},\n  \"iters\": {},\n  \"points\": [\n",
            n_points * 16,
            k,
            iters
        ));
        for (i, p) in points.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"nodes\": {}, \"input\": \"{}\", \"scatter_bytes\": {}, \
                 \"bytes_per_iter\": {:.1}, \"total_s\": {:.9}, \"resident_hits\": {}}}{}\n",
                p.nodes,
                p.strategy,
                p.scatter_bytes,
                p.bytes_per_iter,
                p.total_s,
                p.resident_hits,
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        let mut f = std::fs::File::create(&path).expect("create --out file");
        f.write_all(json.as_bytes()).expect("write --out file");
        println!("wrote {path}");
    }
}
