//! Ablation: data slicing (paper §3.5) vs Eden-style full-copy shipping.
//!
//! Isolates the design choice: the same map-reduce over the same data, once
//! with per-node slices (Triolet), once with one full copy per node (naive
//! Eden). The modeled time gap is pure communication.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use triolet::prelude::*;
use triolet_baselines::EdenRt;

const N: usize = 200_000;
const NODES: usize = 8;

fn workload() -> Vec<f32> {
    (0..N).map(|i| (i % 1000) as f32 * 0.001).collect()
}

fn slicing_vs_full_copy(c: &mut Criterion) {
    let data = workload();
    let mut g = c.benchmark_group("ablation_slicing");
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::new("sliced", NODES), &data, |b, data| {
        b.iter(|| {
            let rt = Triolet::new(ClusterConfig::virtual_cluster(NODES, 2));
            let run = rt.sum(from_vec(data.clone()).map(|x: f32| x as f64).par());
            black_box((run.value, run.stats.total_s))
        })
    });

    g.bench_with_input(BenchmarkId::new("full_copy", NODES), &data, |b, data| {
        b.iter(|| {
            let rt = EdenRt::new(NODES, 2).with_msg_limit(usize::MAX);
            let n = data.len();
            let (s, stats) = rt
                .map_reduce_full_copy(
                    data.clone(),
                    NODES * 2,
                    move |d, tid| {
                        let chunk = n / (NODES * 2);
                        d[tid * chunk..(tid + 1) * chunk].iter().map(|&x| x as f64).sum::<f64>()
                    },
                    |a, b| a + b,
                    || 0.0f64,
                )
                .expect("limit disabled");
            black_box((s, stats.total_s))
        })
    });

    g.finish();
}

criterion_group!(benches, slicing_vs_full_copy);
criterion_main!(benches);
