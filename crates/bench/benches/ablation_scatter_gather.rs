//! Ablation: cutcp scatter vs gather decomposition.
//!
//! The paper's cutcp scatters (parallel over atoms, per-node grid partials
//! merged — the cause of its early saturation, §4.5). The gather variant
//! (parallel over grid points, binned atoms broadcast) removes the grid
//! reduction at the cost of shipping the atoms everywhere. This bench
//! isolates the trade at two cluster sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use triolet::prelude::*;
use triolet_apps::cutcp;

fn scatter_vs_gather(c: &mut Criterion) {
    let input = cutcp::generate(2_000, 24, 11);
    let mut g = c.benchmark_group("ablation_scatter_gather");
    g.sample_size(10);
    for nodes in [2usize, 8] {
        g.bench_with_input(BenchmarkId::new("scatter", nodes), &nodes, |b, &n| {
            let input = input.clone();
            b.iter(|| {
                let rt = Triolet::new(ClusterConfig::virtual_cluster(n, 4));
                black_box(cutcp::run_triolet(&rt, &input).stats.total_s)
            })
        });
        g.bench_with_input(BenchmarkId::new("gather", nodes), &nodes, |b, &n| {
            let input = input.clone();
            b.iter(|| {
                let rt = Triolet::new(ClusterConfig::virtual_cluster(n, 4));
                black_box(cutcp::run_triolet_gather(&rt, &input).stats.total_s)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, scatter_vs_gather);
criterion_main!(benches);
