//! Ablation: register-blocked tiled node kernels + zero-copy POD unpack.
//!
//! ```text
//! cargo bench --bench ablation_kernels -- [--smoke] [--out FILE]
//! ```
//!
//! Three arms, each asserting bit-identity while measuring the optimization:
//!
//! 1. **sgemm node kernel** — the naive per-element dot-product loop vs the
//!    cache-blocked, register-blocked tiled kernel on one node-sized block.
//!    The tiled kernel preserves the ascending-k accumulation chain, so the
//!    outputs are bit-identical; the full-size run must show >= 2x.
//! 2. **tpacf histogram kernel** — naive vs i-tiled correlation loops; the
//!    histograms are exactly equal (same pair multiset).
//! 3. **POD unpack** — decoding the same wire bytes as a copying `Vec<f32>`
//!    vs a zero-copy `PodView<f32>`, with the serial layer's byte counters
//!    showing the memcpy traffic collapsing to zero; plus a distributed
//!    sgemm run reporting the end-to-end `RunStats` unpack split.
//!
//! `--out` writes the table as JSON (BENCH_kernels.json is the committed
//! capture); `--smoke` shrinks the workload for CI and skips the speedup
//! floor (tiny kernels fit in L1 either way, so the ratio is noisy there).

use std::io::Write;
use std::time::Instant;

use triolet::prelude::*;
use triolet_apps::{sgemm, tpacf};
use triolet_baselines::LowLevelRt;
use triolet_serial::{packed, reset_unpack_counters, unpack_all, unpack_counters, PodView};

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1)).cloned();
    let reps = if smoke { 3 } else { 5 };

    println!("# Ablation: tiled node kernels + zero-copy POD unpack");

    // --- Arm 1: sgemm node kernel, naive vs tiled ------------------------
    let dim = if smoke { 96 } else { 288 };
    let input = sgemm::generate(dim, 11);
    let bt = sgemm::transpose_seq(&input.b);
    let (a_rows, bt_rows, k) = (input.a.as_slice(), bt.as_slice(), input.a.cols());

    let (naive_s, naive_out) =
        best_of(reps, || sgemm::gemm_naive(a_rows, bt_rows, k, dim, dim, input.alpha));
    let (tiled_s, tiled_out) =
        best_of(reps, || sgemm::gemm_tiled(a_rows, bt_rows, k, dim, dim, input.alpha));
    for (x, y) in naive_out.iter().zip(&tiled_out) {
        assert_eq!(x.to_bits(), y.to_bits(), "tiled sgemm kernel must be bit-identical");
    }
    let sgemm_speedup = naive_s / tiled_s;
    println!("| sgemm {dim}x{dim}x{dim} | naive {naive_s:.6}s | tiled {tiled_s:.6}s | speedup {sgemm_speedup:.2}x |");
    if !smoke {
        assert!(
            sgemm_speedup >= 2.0,
            "tiled sgemm kernel must be >= 2x at {dim}^3: got {sgemm_speedup:.2}x"
        );
    }

    // --- Arm 2: tpacf histogram kernel, naive vs tiled -------------------
    let n_pts = if smoke { 400 } else { 1600 };
    let tp = tpacf::generate(n_pts, 1, tpacf::DEFAULT_BINS, 7);
    let bins = tpacf::hist_len(&tp);
    let (tpacf_naive_s, h_naive) = best_of(reps, || {
        let mut h = vec![0u64; bins];
        tpacf::self_correlation(&tp.bin_edges, &tp.obs, &mut h);
        tpacf::cross_correlation(&tp.bin_edges, &tp.obs, &tp.rands[0], &mut h);
        h
    });
    let (tpacf_tiled_s, h_tiled) = best_of(reps, || {
        let mut h = vec![0u64; bins];
        tpacf::self_correlation_tiled(&tp.bin_edges, &tp.obs, &mut h);
        tpacf::cross_correlation_tiled(&tp.bin_edges, &tp.obs, &tp.rands[0], &mut h);
        h
    });
    assert_eq!(h_naive, h_tiled, "tiled tpacf kernels must produce identical histograms");
    let tpacf_speedup = tpacf_naive_s / tpacf_tiled_s;
    println!(
        "| tpacf {n_pts} pts | naive {tpacf_naive_s:.6}s | tiled {tpacf_tiled_s:.6}s | speedup {tpacf_speedup:.2}x |"
    );

    // --- Arm 3: POD unpack, copying Vec vs zero-copy PodView -------------
    let n_floats = if smoke { 1 << 16 } else { 1 << 22 };
    let payload: Vec<f32> = (0..n_floats).map(|i| i as f32 * 0.25).collect();
    let bytes = packed(&payload);
    let decode_reps = if smoke { 8 } else { 16 };

    reset_unpack_counters();
    let (vec_s, vec_out) = best_of(decode_reps, || -> Vec<f32> {
        unpack_all(bytes.clone()).expect("payload roundtrip")
    });
    let (vec_copied, vec_aliased) = unpack_counters();
    assert_eq!(vec_aliased, 0, "Vec decode never aliases");

    reset_unpack_counters();
    let (view_s, view_out) = best_of(decode_reps, || -> PodView<f32> {
        unpack_all(bytes.clone()).expect("payload roundtrip")
    });
    let (view_copied, view_aliased) = unpack_counters();

    assert_eq!(vec_out.len(), view_out.len());
    for (x, y) in vec_out.iter().zip(view_out.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "zero-copy unpack must be bit-identical");
    }
    assert!(view_out.is_aliased(), "whole-payload f32 window is 4-aligned");
    assert_eq!(view_copied, 0, "aliased decode must memcpy nothing");
    assert!(
        vec_copied >= (n_floats * 4 * decode_reps) as u64,
        "copying decode must memcpy the payload every rep"
    );
    let unpack_speedup = vec_s / view_s;
    println!(
        "| unpack {} MiB | vec {:.6}s ({} B copied) | view {:.6}s ({} B aliased) | speedup {:.2}x |",
        (n_floats * 4) >> 20,
        vec_s,
        vec_copied,
        view_s,
        view_aliased,
        unpack_speedup
    );

    // End-to-end: a distributed sgemm whose node payloads and results ride
    // PodView; the RunStats split shows where the memcpys went.
    let e2e_dim = if smoke { 64 } else { 192 };
    let e2e = sgemm::generate(e2e_dim, 3);
    let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(4, 2));
    let (c_ll, ll_stats) = sgemm::run_lowlevel(&rt, &e2e);
    let trt = Triolet::new(ClusterConfig::virtual_cluster(4, 2));
    let run = sgemm::run_triolet_tiled(&trt, &e2e);
    for (x, y) in c_ll.as_slice().iter().zip(run.value.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits(), "lowlevel and triolet tiled paths must agree");
    }
    assert!(
        ll_stats.unpack_aliased > 0,
        "root unpack of flat POD results must alias: {:?}",
        (ll_stats.unpack_copied, ll_stats.unpack_aliased)
    );
    let aliased_frac =
        ll_stats.unpack_aliased as f64 / (ll_stats.unpack_copied + ll_stats.unpack_aliased) as f64;
    println!(
        "| e2e lowlevel sgemm {e2e_dim}^2 | root unpack copied {} B | aliased {} B ({:.1}% aliased) |",
        ll_stats.unpack_copied,
        ll_stats.unpack_aliased,
        100.0 * aliased_frac
    );
    println!(
        "| e2e triolet tiled sgemm {e2e_dim}^2 | root unpack copied {} B | aliased {} B |",
        run.stats.unpack_copied, run.stats.unpack_aliased
    );
    assert!(aliased_frac > 0.5, "most root-unpack bytes must be zero-copy: {:.3}", aliased_frac);

    if let Some(path) = out_path {
        let mut json = String::from("{\n  \"bench\": \"ablation_kernels\",\n");
        json.push_str(&format!("  \"smoke\": {},\n", smoke));
        json.push_str(&format!(
            "  \"sgemm\": {{\"dim\": {}, \"naive_s\": {:.9}, \"tiled_s\": {:.9}, \"speedup\": {:.3}, \"bit_identical\": true}},\n",
            dim, naive_s, tiled_s, sgemm_speedup
        ));
        json.push_str(&format!(
            "  \"tpacf\": {{\"points\": {}, \"naive_s\": {:.9}, \"tiled_s\": {:.9}, \"speedup\": {:.3}, \"hist_identical\": true}},\n",
            n_pts, tpacf_naive_s, tpacf_tiled_s, tpacf_speedup
        ));
        json.push_str(&format!(
            "  \"unpack\": {{\"payload_bytes\": {}, \"vec_s\": {:.9}, \"vec_copied_bytes\": {}, \"view_s\": {:.9}, \"view_aliased_bytes\": {}, \"speedup\": {:.3}, \"bit_identical\": true}},\n",
            n_floats * 4, vec_s, vec_copied, view_s, view_aliased, unpack_speedup
        ));
        json.push_str(&format!(
            "  \"e2e_sgemm\": {{\"dim\": {}, \"lowlevel_unpack_copied_bytes\": {}, \"lowlevel_unpack_aliased_bytes\": {}, \"lowlevel_aliased_frac\": {:.3}, \"triolet_tiled_unpack_copied_bytes\": {}, \"triolet_tiled_unpack_aliased_bytes\": {}}}\n",
            e2e_dim,
            ll_stats.unpack_copied,
            ll_stats.unpack_aliased,
            aliased_frac,
            run.stats.unpack_copied,
            run.stats.unpack_aliased
        ));
        json.push_str("}\n");
        let mut f = std::fs::File::create(&path).expect("create --out file");
        f.write_all(json.as_bytes()).expect("write --out file");
        println!("wrote {path}");
    }
}
