//! Ablation: fused hybrid-iterator pipelines (paper §3.2) vs materializing
//! every intermediate collection.
//!
//! The same map→filter→map→sum computation three ways: fused through the
//! hybrid shapes, materialized Vec-per-stage (what a skeleton library
//! without fusion executes), and through a dyn-dispatch stepper chain (an
//! unoptimized stepper pipeline).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use triolet::prelude::*;
use triolet_baselines::boxed_pipeline;

const N: i64 = 1_000_000;

fn data() -> Vec<i64> {
    (0..N).map(|i| (i * 2654435761) % 1009 - 500).collect()
}

fn fusion(c: &mut Criterion) {
    let xs = data();
    let mut g = c.benchmark_group("ablation_fusion");

    g.bench_function("fused_hybrid", |b| {
        b.iter(|| {
            let s: i64 = from_vec(xs.clone())
                .map(|x: i64| x * 3 + 1)
                .filter(|v: &i64| v % 2 == 0)
                .map(|v: i64| v >> 1)
                .sum_scalar();
            black_box(s)
        })
    });

    g.bench_function("materialized_stages", |b| {
        b.iter(|| {
            // One full temporary collection per skeleton call.
            let s1: Vec<i64> = xs.iter().map(|&x| x * 3 + 1).collect();
            let s2: Vec<i64> = s1.into_iter().filter(|v| v % 2 == 0).collect();
            let s3: Vec<i64> = s2.into_iter().map(|v| v >> 1).collect();
            black_box(s3.into_iter().sum::<i64>())
        })
    });

    g.bench_function("dyn_stepper_chain", |b| {
        b.iter(|| {
            let p1 = boxed_pipeline(xs.iter().map(|&x| x * 3 + 1));
            let p2 = boxed_pipeline(p1.filter(|v| v % 2 == 0));
            let p3 = boxed_pipeline(p2.map(|v| v >> 1));
            black_box(p3.sum::<i64>())
        })
    });

    g.finish();
}

criterion_group!(benches, fusion);
criterion_main!(benches);
