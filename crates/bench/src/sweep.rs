//! Sweep machinery: core-count grids, timing helpers, speedup rows.

use std::time::Instant;

/// Workload scale: `Quick` for CI-speed smoke runs, `Paper` for the
/// evaluation-shaped runs recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long total runtime; tiny inputs.
    Quick,
    /// Minutes-long total runtime; the scaled-down Parboil shapes.
    Paper,
}

impl Scale {
    /// Parse from a CLI flag.
    pub fn from_flag(quick: bool) -> Self {
        if quick {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }
}

/// The paper's x-axis: core counts up to 8 nodes x 16 cores. Points below
/// 16 cores use one node with that many threads; beyond, full 16-thread
/// nodes.
pub fn core_points() -> Vec<(usize, usize)> {
    vec![(1, 1), (1, 2), (1, 4), (1, 8), (1, 16), (2, 16), (4, 16), (6, 16), (8, 16)]
}

/// Median of `reps` timed runs of `f` (seconds). The first run warms up
/// caches and is discarded when `reps > 1`.
pub fn median_seconds(reps: usize, mut f: impl FnMut()) -> f64 {
    let reps = reps.max(1);
    let mut times = Vec::with_capacity(reps);
    for i in 0..=reps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        if i > 0 || reps == 1 {
            times.push(dt);
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// One row of a scaling figure: modeled times per implementation at one
/// core count.
///
/// Each row carries its own contemporaneous sequential reference: on a
/// shared host whose effective CPU speed drifts over minutes, dividing by a
/// reference measured at the same moment cancels the drift row-wise.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Total cores (nodes x threads).
    pub cores: usize,
    /// Nodes used.
    pub nodes: usize,
    /// Threads per node used.
    pub threads: usize,
    /// Sequential reference measured alongside this row.
    pub seq_s: f64,
    /// Modeled seconds for the low-level (C+MPI+OpenMP) version.
    pub lowlevel_s: f64,
    /// Modeled seconds for the Triolet version.
    pub triolet_s: f64,
    /// Modeled seconds for the Eden version; `None` when Eden failed (e.g.
    /// sgemm's buffer overflow at >= 2 nodes).
    pub eden_s: Option<f64>,
}

impl SweepRow {
    /// Speedups over this row's own sequential reference.
    pub fn speedups(&self) -> (f64, f64, Option<f64>) {
        (
            self.seq_s / self.lowlevel_s,
            self.seq_s / self.triolet_s,
            self.eden_s.map(|e| self.seq_s / e),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_points_cover_paper_axis() {
        let pts = core_points();
        assert_eq!(pts.first(), Some(&(1, 1)));
        assert_eq!(pts.last(), Some(&(8, 16)));
        assert!(pts.iter().all(|&(n, t)| n * t <= 128));
    }

    #[test]
    fn median_is_robust() {
        let mut calls = 0;
        let m = median_seconds(3, || {
            calls += 1;
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert_eq!(calls, 4, "warmup + reps");
        assert!(m >= 0.002);
    }

    #[test]
    fn speedups_divide() {
        let row = SweepRow {
            cores: 4,
            nodes: 1,
            threads: 4,
            seq_s: 4.0,
            lowlevel_s: 1.0,
            triolet_s: 2.0,
            eden_s: None,
        };
        let (ll, t, e) = row.speedups();
        assert_eq!(ll, 4.0);
        assert_eq!(t, 2.0);
        assert!(e.is_none());
    }
}
