//! Regenerate the Triolet paper's tables and figures.
//!
//! ```text
//! repro [--quick] [fig1] [fig3] [fig4] [fig5] [fig7] [fig8] [phases] [summary] [all]
//! ```
//!
//! With no figure argument, `all` is assumed. `--quick` shrinks workloads
//! for smoke runs. Output is markdown; EXPERIMENTS.md records a captured
//! run alongside the paper's reported values.

use triolet::prelude::*;
use triolet_bench::apps::{self, App, BenchSet};
use triolet_bench::{
    median_seconds, print_phase_breakdown, print_series, print_table, Scale, Series, SweepRow,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = Scale::from_flag(quick);
    let mut figs: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    if figs.is_empty() {
        figs.push("all");
    }
    let all = figs.contains(&"all");

    println!("# Triolet-rs paper reproduction");
    println!(
        "scale: {:?} | cost model: {:?} (EC2 10GbE approximation) | virtual-time execution",
        scale,
        CostModel::default()
    );
    let set = apps::workloads(scale);

    if all || figs.contains(&"fig1") {
        fig1();
    }
    if all || figs.contains(&"fig3") {
        fig3(&set);
    }
    let mut sweeps: Vec<(App, &str)> = Vec::new();
    if all || figs.contains(&"fig4") {
        sweeps.push((App::Mriq, "Figure 4: mri-q scalability"));
    }
    if all || figs.contains(&"fig5") {
        sweeps.push((App::Sgemm, "Figure 5: sgemm scalability"));
    }
    if all || figs.contains(&"fig7") {
        sweeps.push((App::Tpacf, "Figure 7: tpacf scalability"));
    }
    if all || figs.contains(&"fig8") {
        sweeps.push((App::Cutcp, "Figure 8: cutcp scalability"));
    }
    let mut collected: Vec<(App, f64, Vec<SweepRow>)> = Vec::new();
    for (app, title) in sweeps {
        let seq = apps::seq_seconds(app, &set, 2);
        let rows = apps::sweep_app(app, &set);
        print_series(&Series { title, seq_s: seq, rows: &rows });
        collected.push((app, seq, rows));
    }
    if all || figs.contains(&"phases") {
        phases(&set);
    }
    if all || figs.contains(&"summary") {
        summary(&collected);
    }
}

/// Where the modeled time goes: per-phase span totals from the recorded
/// traces of two representative benchmarks on the reference cluster.
fn phases(set: &BenchSet) {
    let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 4).with_trace(true));
    let mriq = triolet_apps::mriq::run_triolet(&rt, &set.mriq);
    print_phase_breakdown("Phase breakdown: mri-q (4x4 virtual cluster)", &mriq.trace);
    let cutcp = triolet_apps::cutcp::run_triolet(&rt, &set.cutcp);
    print_phase_breakdown("Phase breakdown: cutcp (4x4 virtual cluster)", &cutcp.trace);
}

/// Figure 1: the capability matrix of fusible encodings, with the "slow"
/// cell (stepper nested traversal) actually measured.
fn fig1() {
    print_table(
        "Figure 1: features of fusible virtual data structure encodings",
        &["encoding", "parallel", "zip", "filter", "nested traversal", "mutation"],
        &[
            vec![
                "indexer".into(),
                "yes".into(),
                "yes".into(),
                "no".into(),
                "no".into(),
                "no".into(),
            ],
            vec![
                "stepper".into(),
                "no".into(),
                "yes".into(),
                "yes".into(),
                "slow".into(),
                "no".into(),
            ],
            vec!["fold".into(), "no".into(), "no".into(), "yes".into(), "yes".into(), "no".into()],
            vec![
                "collector".into(),
                "no".into(),
                "no".into(),
                "yes".into(),
                "yes".into(),
                "yes".into(),
            ],
            vec![
                "**hybrid (Triolet)**".into(),
                "yes".into(),
                "yes".into(),
                "yes".into(),
                "yes".into(),
                "via collector".into(),
            ],
        ],
    );

    // Measure the "slow" cell. In the paper, GHC fails to optimize nested
    // stepper traversals into loop nests; the honest Rust analogue of an
    // unoptimized stepper is a dynamic-dispatch iterator chain (the compiler
    // cannot see through it), versus the hybrid shapes' fold consumption
    // which monomorphizes into the loop nest.
    let n = 200_000i64;
    let xs: Vec<i64> = (0..n).collect();
    let fused = {
        let xs = xs.clone();
        move || {
            let s = from_vec(xs.clone())
                .concat_map(|x: i64| triolet::StepFlat::new((0..x % 37).map(move |y| x ^ y)))
                .fold_items(0i64, &mut |a, b| a ^ b);
            std::hint::black_box(s);
        }
    };
    let boxed = move || {
        let outer = triolet_baselines::boxed_pipeline(xs.iter().copied());
        let nested = triolet_baselines::boxed_pipeline(
            outer.flat_map(|x| triolet_baselines::boxed_pipeline((0..x % 37).map(move |y| x ^ y))),
        );
        let s = nested.fold(0i64, |a, b| a ^ b);
        std::hint::black_box(s);
    };
    let fold_s = median_seconds(3, fused);
    let step_s = median_seconds(3, boxed);
    println!(
        "\nnested traversal, hybrid/fold (fused): {:.2} ms | unoptimized stepper (dyn): {:.2} ms | ratio {:.2}x",
        fold_s * 1e3,
        step_s * 1e3,
        step_s / fold_s
    );
    println!("(the paper reports unoptimized steppers \"roughly a factor of two to five slower\")");
}

/// Figure 3: sequential execution time per benchmark and language.
fn fig3(set: &BenchSet) {
    let mut rows = Vec::new();
    for app in App::ALL {
        let c = apps::seq_seconds(app, set, 2);
        // Triolet "sequential": the skeleton code on a 1x1 cluster.
        let triolet = apps::triolet_seconds(app, set, 1, 1);
        // Eden "sequential": the Eden runtime with a single process.
        let eden = apps::eden_seconds(app, set, 1, 1).expect("1 node never hits buffers");
        rows.push(vec![
            app.name().to_string(),
            format!("{:.3}", c),
            format!("{:.3} ({:.2}x)", eden, eden / c),
            format!("{:.3} ({:.2}x)", triolet, triolet / c),
        ]);
    }
    print_table(
        "Figure 3: sequential execution time (seconds, ratio vs C)",
        &["benchmark", "CPU (seq C)", "Eden", "Triolet"],
        &rows,
    );
}

/// The §4 headline claims, checked against the collected sweeps.
fn summary(collected: &[(App, f64, Vec<SweepRow>)]) {
    if collected.is_empty() {
        return;
    }
    let mut rows = Vec::new();
    for (app, seq, sweep) in collected {
        let last = sweep.last().expect("non-empty sweep");
        let _ = seq;
        let (ll, tr, ed) = last.speedups();
        // The paper's claim concerns distributed execution; within a single
        // node Eden-style plain loops can match (its costs are messages and
        // stragglers). Check the multi-node points.
        let eden_beaten = sweep.iter().filter(|r| r.nodes >= 2).all(|r| {
            let (_, t, e) = r.speedups();
            match e {
                Some(e) => t >= e * 0.98,
                None => true, // Eden failed outright
            }
        });
        rows.push(vec![
            app.name().to_string(),
            format!("{tr:.1}x"),
            format!("{ll:.1}x"),
            format!("{:.0}%", 100.0 * tr / ll),
            match ed {
                Some(e) => format!("{e:.1}x"),
                None => "FAIL".into(),
            },
            if eden_beaten { "yes".into() } else { "NO".into() },
        ]);
    }
    print_table(
        "Summary at 128 cores (paper §4: Triolet 23-100% of C+MPI+OpenMP, 9.6-99x over seq C, always >= Eden)",
        &[
            "benchmark",
            "Triolet speedup",
            "low-level speedup",
            "Triolet/low-level",
            "Eden speedup",
            "Triolet >= Eden everywhere",
        ],
        &rows,
    );
}
