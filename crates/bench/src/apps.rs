//! Per-application adapters: uniform timing entry points for the sweeps.

use triolet::prelude::*;
use triolet_apps::{cutcp, mriq, sgemm, tpacf};
use triolet_baselines::{EdenRt, LowLevelRt};

use crate::sweep::{core_points, median_seconds, Scale, SweepRow};

/// The four benchmark inputs at one scale.
pub struct BenchSet {
    /// mri-q instance.
    pub mriq: mriq::MriqInput,
    /// sgemm instance.
    pub sgemm: sgemm::SgemmInput,
    /// tpacf instance.
    pub tpacf: tpacf::TpacfInput,
    /// cutcp instance.
    pub cutcp: cutcp::CutcpInput,
}

/// Build the benchmark inputs.
///
/// `Paper` scale mirrors the computational shape of the Parboil datasets the
/// paper selected ("sequential C running time between 20 and 200 seconds"),
/// scaled down ~100x so a full sweep finishes in minutes: the kernels are
/// identical, only the element counts shrink.
pub fn workloads(scale: Scale) -> BenchSet {
    match scale {
        Scale::Quick => BenchSet {
            mriq: mriq::generate(512, 128, 1),
            sgemm: sgemm::generate(64, 2),
            tpacf: tpacf::generate(192, 4, 32, 3),
            cutcp: cutcp::generate(256, 16, 4),
        },
        Scale::Paper => BenchSet {
            mriq: mriq::generate(16_384, 2_048, 1),
            sgemm: sgemm::generate(384, 2),
            // 128 random sets (the paper used 100): the outer loop must
            // expose at least 128-way parallelism for the 128-core sweep.
            tpacf: tpacf::generate(512, 128, 32, 3),
            // Enough atoms that compute dominates until the per-node grid
            // reduction bites (the paper's saturation), not before.
            cutcp: cutcp::generate(65_536, 48, 4),
        },
    }
}

/// The four applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// Non-uniform inverse FFT.
    Mriq,
    /// Scaled matrix multiply.
    Sgemm,
    /// Angular correlation.
    Tpacf,
    /// Cutoff Coulombic potential.
    Cutcp,
}

impl App {
    /// All four, in the paper's Figure 3 order.
    pub const ALL: [App; 4] = [App::Tpacf, App::Mriq, App::Sgemm, App::Cutcp];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            App::Mriq => "mri-q",
            App::Sgemm => "sgemm",
            App::Tpacf => "tpacf",
            App::Cutcp => "cutcp",
        }
    }
}

/// Median wall time of the plain sequential ("C") version.
pub fn seq_seconds(app: App, set: &BenchSet, reps: usize) -> f64 {
    match app {
        App::Mriq => median_seconds(reps, || {
            std::hint::black_box(mriq::run_seq(&set.mriq));
        }),
        App::Sgemm => median_seconds(reps, || {
            std::hint::black_box(sgemm::run_seq(&set.sgemm));
        }),
        App::Tpacf => median_seconds(reps, || {
            std::hint::black_box(tpacf::run_seq(&set.tpacf));
        }),
        App::Cutcp => median_seconds(reps, || {
            std::hint::black_box(cutcp::run_seq(&set.cutcp));
        }),
    }
}

/// Modeled seconds of the Triolet version on a `nodes x threads` cluster.
pub fn triolet_seconds(app: App, set: &BenchSet, nodes: usize, threads: usize) -> f64 {
    let rt = Triolet::new(ClusterConfig::virtual_cluster(nodes, threads));
    match app {
        App::Mriq => mriq::run_triolet(&rt, &set.mriq).stats.total_s,
        App::Sgemm => sgemm::run_triolet(&rt, &set.sgemm).stats.total_s,
        App::Tpacf => tpacf::run_triolet(&rt, &set.tpacf).stats.total_s,
        App::Cutcp => cutcp::run_triolet(&rt, &set.cutcp).stats.total_s,
    }
}

/// Modeled seconds of the low-level (C+MPI+OpenMP) version.
pub fn lowlevel_seconds(app: App, set: &BenchSet, nodes: usize, threads: usize) -> f64 {
    let rt = LowLevelRt::new(ClusterConfig::virtual_cluster(nodes, threads));
    match app {
        App::Mriq => mriq::run_lowlevel(&rt, &set.mriq).1.total_s,
        App::Sgemm => sgemm::run_lowlevel(&rt, &set.sgemm).1.total_s,
        App::Tpacf => tpacf::run_lowlevel(&rt, &set.tpacf).1.total_s,
        App::Cutcp => cutcp::run_lowlevel(&rt, &set.cutcp).1.total_s,
    }
}

/// Modeled seconds of the Eden version; `None` when the runtime fails
/// (sgemm's buffer overflow beyond one node).
pub fn eden_seconds(app: App, set: &BenchSet, nodes: usize, procs: usize) -> Option<f64> {
    let rt = EdenRt::new(nodes, procs);
    let res = match app {
        App::Mriq => mriq::run_eden(&rt, &set.mriq).map(|(_, s)| s.total_s),
        App::Sgemm => sgemm::run_eden(&rt, &set.sgemm).map(|(_, s)| s.total_s),
        App::Tpacf => tpacf::run_eden(&rt, &set.tpacf).map(|(_, s)| s.total_s),
        App::Cutcp => cutcp::run_eden(&rt, &set.cutcp).map(|(_, s)| s.total_s),
    };
    res.ok()
}

/// Minimum over `reps` runs: modeled times are deterministic up to host
/// noise, which is strictly additive, so the minimum is the robust
/// estimator.
fn min_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps.max(1)).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// The full speedup sweep for one application: the data behind the paper's
/// Figures 4, 5, 7 and 8. Each point takes the best of three runs per
/// implementation *and* re-measures the sequential reference, so host CPU
/// drift cancels row-wise.
pub fn sweep_app(app: App, set: &BenchSet) -> Vec<SweepRow> {
    core_points()
        .into_iter()
        .map(|(nodes, threads)| SweepRow {
            cores: nodes * threads,
            nodes,
            threads,
            seq_s: min_of(2, || seq_seconds(app, set, 1)),
            lowlevel_s: min_of(3, || lowlevel_seconds(app, set, nodes, threads)),
            triolet_s: min_of(3, || triolet_seconds(app, set, nodes, threads)),
            eden_s: {
                let mut best: Option<f64> = None;
                for _ in 0..3 {
                    match eden_seconds(app, set, nodes, threads) {
                        Some(t) => best = Some(best.map_or(t, |b: f64| b.min(t))),
                        None => {
                            best = None;
                            break;
                        }
                    }
                }
                best
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workloads_run_everywhere() {
        let set = workloads(Scale::Quick);
        for app in App::ALL {
            let seq = seq_seconds(app, &set, 1);
            assert!(seq > 0.0);
            let t = triolet_seconds(app, &set, 2, 2);
            let ll = lowlevel_seconds(app, &set, 2, 2);
            assert!(t > 0.0 && ll > 0.0, "{}", app.name());
        }
    }

    #[test]
    fn eden_sgemm_fails_at_two_nodes_paper_scale_only() {
        let quick = workloads(Scale::Quick);
        // Quick sgemm (64x64) fits the buffers even at 2 nodes.
        assert!(eden_seconds(App::Sgemm, &quick, 2, 4).is_some());
    }

    #[test]
    fn sweep_produces_all_core_points() {
        let set = workloads(Scale::Quick);
        let rows = sweep_app(App::Cutcp, &set);
        assert_eq!(rows.len(), core_points().len());
        assert!(rows.iter().all(|r| r.triolet_s > 0.0));
    }
}
