//! Markdown-ish table and series printing for the `repro` binary.

use triolet::TraceData;

use crate::sweep::SweepRow;

/// A labelled scaling series for one figure.
pub struct Series<'a> {
    /// Figure title (e.g. "Figure 4: mri-q").
    pub title: &'a str,
    /// Sequential reference time in seconds.
    pub seq_s: f64,
    /// One row per core count.
    pub rows: &'a [SweepRow],
}

/// Print a figure's speedup series as a markdown table: the regenerated
/// equivalent of the paper's speedup-vs-cores plots.
pub fn print_series(s: &Series<'_>) {
    println!("\n### {}", s.title);
    println!("sequential reference (overall): {:.3} s", s.seq_s);
    println!("| cores | linear | C+MPI+OpenMP | Triolet | Eden | Triolet/low-level |");
    println!("|---:|---:|---:|---:|---:|---:|");
    for row in s.rows {
        let (ll, tr, ed) = row.speedups();
        let eden = match ed {
            Some(e) => format!("{e:.1}"),
            None => "FAIL".to_string(),
        };
        println!(
            "| {} | {} | {:.1} | {:.1} | {} | {:.0}% |",
            row.cores,
            row.cores,
            ll,
            tr,
            eden,
            100.0 * tr / ll
        );
    }
}

/// Print the per-phase breakdown of a recorded trace: total span-seconds
/// per category (prep, comm, compute, merge, idle, ...) with the share of
/// the summed span time. Spans overlap across tracks, so shares describe
/// where the cluster's aggregate time went, not wall-clock fractions.
pub fn print_phase_breakdown(title: &str, trace: &TraceData) {
    let totals = trace.phase_totals();
    let all: f64 = totals.iter().map(|&(_, t)| t).sum();
    if all <= 0.0 {
        println!("\n### {title}\n(no spans recorded — was tracing enabled?)");
        return;
    }
    let rows: Vec<Vec<String>> = totals
        .iter()
        .map(|&(cat, t)| {
            vec![cat.to_string(), format!("{t:.4}"), format!("{:.1}%", 100.0 * t / all)]
        })
        .collect();
    print_table(title, &["phase", "span seconds", "share"], &rows);
}

/// Print a generic table: header row plus string rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}");
    println!("| {} |", header.join(" | "));
    println!("|{}", "---|".repeat(header.len()));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_prints_without_panicking() {
        let rows = vec![SweepRow {
            cores: 16,
            nodes: 1,
            threads: 16,
            seq_s: 1.0,
            lowlevel_s: 0.1,
            triolet_s: 0.125,
            eden_s: Some(0.4),
        }];
        print_series(&Series { title: "test", seq_s: 1.0, rows: &rows });
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
