//! Benchmark harness: regenerates every table and figure of the Triolet
//! paper's evaluation (§4).
//!
//! The `repro` binary drives the harness; `benches/` holds Criterion
//! micro/meso benchmarks for the same kernels plus the design-choice
//! ablations called out in DESIGN.md.
//!
//! # What a "figure" means here
//!
//! The paper's scaling figures plot *speedup over sequential C* against
//! *core count* on a real 128-core cluster. This reproduction regenerates
//! the same series in **virtual time** (see `triolet-cluster`): node tasks
//! execute sequentially and are timed; the distributed makespan combines the
//! measured per-chunk times (replayed through a greedy work-stealing
//! schedule) with a communication model applied to the actually serialized
//! byte counts. Absolute numbers differ from the paper's testbed; the
//! *shape* — who wins, by what factor, where curves saturate — is the
//! reproduction target.

pub mod apps;
pub mod report;
pub mod sweep;

pub use report::{print_phase_breakdown, print_series, print_table, Series};
pub use sweep::{core_points, median_seconds, Scale, SweepRow};
