//! The [`Run`] wrapper every skeleton returns: value + stats + trace.

use triolet_obs::TraceData;

use crate::report::RunStats;

/// The result of one skeleton execution.
///
/// Replaces the old `(T, RunStats)` tuple so a third field — the recorded
/// span timeline — can ride along without widening every signature again.
/// `trace` is empty unless the runtime's cluster was configured with
/// [`ClusterConfig::with_trace`](triolet_cluster::ClusterConfig::with_trace).
#[derive(Debug, Clone)]
pub struct Run<T> {
    /// The skeleton's result.
    pub value: T,
    /// Timing and traffic breakdown.
    pub stats: RunStats,
    /// Recorded span/event timeline (empty when tracing is off).
    pub trace: TraceData,
}

impl<T> Run<T> {
    /// Wrap a value and stats with an empty trace.
    pub fn new(value: T, stats: RunStats) -> Self {
        Run { value, stats, trace: TraceData::default() }
    }

    /// Attach a recorded timeline.
    pub fn with_trace(mut self, trace: TraceData) -> Self {
        self.trace = trace;
        self
    }

    /// Split back into the old `(value, stats)` pair, dropping the trace.
    pub fn into_inner(self) -> (T, RunStats) {
        (self.value, self.stats)
    }

    /// Transform the value, keeping stats and trace.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Run<U> {
        Run { value: f(self.value), stats: self.stats, trace: self.trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_inner_and_map_keep_stats() {
        let r = Run::new(21u64, RunStats::local(1.0));
        let doubled = r.map(|v| v * 2);
        assert_eq!(doubled.value, 42);
        assert!(doubled.trace.is_empty());
        let (v, stats) = doubled.into_inner();
        assert_eq!(v, 42);
        assert_eq!(stats.total_s, 1.0);
    }
}
