//! The [`Triolet`] runtime: hint-directed skeleton execution.
//!
//! "A skeleton in the library consists of code that, depending on the input
//! iterator's parallelism hint, invokes low-level skeletons for distributing
//! work across nodes, cores within a node, and/or sequential loop iterations
//! in a task" (paper §2). This module is that dispatch layer:
//!
//! * `Sequential` — fold on the calling thread.
//! * `LocalPar` — split across the local node's threads only; no data ships.
//! * `Par` — split the outer domain across nodes (slicing each node's data,
//!   §3.5), split each node's part across its threads, fold with per-thread
//!   private accumulators, merge per node, merge node partials at the root
//!   (§3.4's distributed → threaded → sequential reduction chain).
//! * Resident — the input is a [`DistVec`]/[`DistArray2`] view whose
//!   segments were scattered once by [`Triolet::scatter`]; tasks dispatch to
//!   the ranks already holding their data and ship zero input bytes.
//!
//! Every skeleton takes one `input` (anything implementing
//! [`IntoDistInput`]) and, where it has an environment, one `env` (anything
//! implementing [`AsEnv`]). The argument's type — not the method's name —
//! selects the execution path.
//!
//! Every skeleton returns a [`Run`]: the value, its [`RunStats`], and — when
//! the cluster is built with
//! [`ClusterConfig::with_trace`](triolet_cluster::ClusterConfig::with_trace)
//! — a recorded span/event timeline rooted at a `skeleton:<name>` span.
//!
//! In virtual mode the dispatch timeline under every skeleton call is laid
//! by the cluster's discrete-event simulator core
//! ([`SimCore`](triolet_cluster::SimCore), selectable via
//! [`ClusterConfig::with_sim_core`](triolet_cluster::ClusterConfig::with_sim_core)),
//! which processes a call in `O(E log E)` heap events with `O(ranks)`
//! resident state — the property that makes 1k–10k-rank shapes usable from
//! the skeleton API. Results, [`RunStats`] accounting, and traces are
//! bit-identical between cores
//! ([`ClusterConfig::with_sim_check`](triolet_cluster::ClusterConfig::with_sim_check)
//! asserts it in-dispatch).

use std::sync::Arc;
use std::time::Instant;

use triolet_cluster::{
    Cluster, ClusterConfig, DistOutcome, NodeCtx, PipelineMode, RawTask, ResidentSpec, TraceData,
    TraceHandle, Track,
};
use triolet_domain::{Dim2, Domain, Part, Seq, SeqPart};
use triolet_iter::collector::Collector;
use triolet_iter::shapes::ParHint;
use triolet_iter::Array2;
use triolet_pool::parallel::CHUNKS_PER_THREAD;
use triolet_serial::{PackedPayload, PodView, Wire};

use crate::dist::{
    AsEnv, DistArray2, DistInput, DistIter, DistVec, EnvArg, IntoDistInput, PackedEnv, ResidentRun,
    Seg,
};
use crate::report::RunStats;
use crate::run::Run;

/// Model the rank-ordered streaming merge against the dispatch timeline.
///
/// `step(i)` folds task `i`'s result into the caller's accumulator and is
/// wall-measured here. On the modeled clock, step `i` cannot start before
/// task `i`'s result is unpacked at the root (`arrivals[i]`) nor before
/// step `i-1` finished — the completed prefix folds as it grows, in fixed
/// task order, so the merged value is bit-identical to the barrier path's
/// lump merge while most of its cost hides inside the arrival stream.
///
/// Returns `(merge_end, merge_busy_s, spans)`: when the last fold finished,
/// the root's busy seconds across all folds, and one `(t0, t1)` interval
/// per task (task-indexed, on the dispatch timeline) for tracing.
fn streamed_merge_clock(
    arrivals: &[f64],
    mut step: impl FnMut(usize),
) -> (f64, f64, Vec<(f64, f64)>) {
    let mut clock = 0.0f64;
    let mut busy = 0.0f64;
    let mut spans = Vec::with_capacity(arrivals.len());
    for (i, &arrival) in arrivals.iter().enumerate() {
        clock = clock.max(arrival);
        let t = Instant::now();
        step(i);
        let u = t.elapsed().as_secs_f64();
        spans.push((clock, clock + u));
        clock += u;
        busy += u;
    }
    (clock, busy, spans)
}

/// The Triolet runtime: a cluster plus the skeleton dispatch logic.
///
/// Construct one per program (like initializing MPI + the thread runtime)
/// and call skeletons on it. Every skeleton returns a [`Run`].
pub struct Triolet {
    cluster: Cluster,
}

impl Triolet {
    /// Bring up a runtime on the given cluster shape.
    pub fn new(config: ClusterConfig) -> Self {
        Triolet { cluster: Cluster::new(config) }
    }

    /// A degenerate single-node, single-thread runtime (for sequential
    /// reference runs).
    pub fn sequential() -> Self {
        Self::new(ClusterConfig::virtual_cluster(1, 1))
    }

    /// Wrap this runtime in a multi-tenant [`JobService`]: a bounded
    /// submission queue, policy-driven dispatch, and per-tenant accounting
    /// over this cluster. Consumes the runtime — all subsequent skeleton
    /// calls go through submitted jobs.
    pub fn into_service(self, config: crate::service::ServiceConfig) -> crate::service::JobService {
        crate::service::JobService::new(self, config)
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.cluster.nodes()
    }

    /// Threads per node.
    pub fn threads_per_node(&self) -> usize {
        self.cluster.threads_per_node()
    }

    /// Total cores (the x-axis of the paper's scaling figures).
    pub fn total_cores(&self) -> usize {
        self.nodes() * self.threads_per_node()
    }

    /// Is span/event recording on for this runtime's cluster?
    pub fn traced(&self) -> bool {
        self.cluster.config().trace
    }

    /// Pack a broadcast environment once, for reuse across skeleton calls:
    /// the returned [`PackedEnv`] is accepted anywhere a skeleton takes an
    /// environment. Counted in
    /// [`TrafficStats::env_packs`](triolet_cluster::TrafficStats::env_packs):
    /// with a `PackedEnv`, N consecutive skeleton calls over M nodes cost
    /// one serialization total, not N (let alone N·M).
    pub fn pack_env<E: Wire>(&self, env: E) -> PackedEnv<E> {
        let payload = PackedPayload::pack(&env);
        if !payload.is_empty() {
            self.cluster.stats().record_env_pack();
        }
        PackedEnv::new(env, payload)
    }

    // ======================================================================
    // Persistent distributed collections
    // ======================================================================

    /// Scatter a vector across the cluster once, returning a persistent
    /// [`DistVec`] whose segments stay resident on their home ranks.
    ///
    /// The vector splits into the same per-node parts the shipped path would
    /// use, so resident and re-broadcast executions fold in identical order
    /// (bit-identical results). Each segment ships exactly once here —
    /// counted as a `dist:scatter` — and every later skeleton call over the
    /// handle (or a view of it) moves only task descriptors, the
    /// environment, and any declared halo.
    pub fn scatter<T>(&self, data: Vec<T>) -> Run<DistVec<T>>
    where
        T: Wire + Clone + Send + Sync + 'static,
    {
        let t0 = Instant::now();
        let len = data.len();
        let id = self.cluster.resident_store().alloc_id();
        let segs: Vec<Seg<T>> = Seq::new(len)
            .split_parts(self.nodes())
            .into_iter()
            .enumerate()
            .map(|(rank, part)| {
                let seg: Vec<T> = data[part.range()].to_vec();
                let bytes = seg.packed_size();
                Seg { home: rank, part, data: Arc::new(seg), bytes }
            })
            .collect();
        let pack_s = t0.elapsed().as_secs_f64();
        let sizes: Vec<(usize, usize)> = segs.iter().map(|s| (s.home, s.bytes)).collect();
        let (timing, dist_trace) = self.cluster.scatter_segments(id, &sizes);
        let trace = self.skeleton_trace("scatter", Some(pack_s), dist_trace, timing.total_s, None);
        Run::new(DistVec::from_segments(id, len, segs), RunStats::from_dist(timing, pack_s))
            .with_trace(trace)
    }

    /// Scatter a matrix across the cluster once as row slabs, returning a
    /// persistent [`DistArray2`] (see [`Triolet::scatter`]).
    pub fn scatter_array2<T>(&self, m: Array2<T>) -> Run<DistArray2<T>>
    where
        T: Wire + Clone + Send + Sync + 'static,
    {
        let t0 = Instant::now();
        let rows = m.rows();
        let cols = m.cols();
        let data = m.into_vec();
        let id = self.cluster.resident_store().alloc_id();
        let segs: Vec<Seg<T>> = Seq::new(rows)
            .split_parts(self.nodes())
            .into_iter()
            .enumerate()
            .map(|(rank, part)| {
                let slab: Vec<T> = data[part.start * cols..part.end() * cols].to_vec();
                let bytes = slab.packed_size();
                Seg { home: rank, part, data: Arc::new(slab), bytes }
            })
            .collect();
        let pack_s = t0.elapsed().as_secs_f64();
        let sizes: Vec<(usize, usize)> = segs.iter().map(|s| (s.home, s.bytes)).collect();
        let (timing, dist_trace) = self.cluster.scatter_segments(id, &sizes);
        let trace = self.skeleton_trace("scatter", Some(pack_s), dist_trace, timing.total_s, None);
        Run::new(
            DistArray2::from_segments(id, rows, cols, segs),
            RunStats::from_dist(timing, pack_s),
        )
        .with_trace(trace)
    }

    // ======================================================================
    // Trace assembly
    // ======================================================================

    /// Timeline for a root-only (sequential) execution: one skeleton span.
    fn local_trace(&self, name: &str, total_s: f64) -> TraceData {
        if !self.traced() {
            return TraceData::default();
        }
        let h = TraceHandle::recording();
        h.span(format!("skeleton:{name}"), "skeleton", Track::Root, 0.0, total_s, vec![]);
        h.take()
    }

    /// Assemble the skeleton-level timeline around a cluster dispatch:
    /// root-side slicing (`root:slice`), the dispatch trace rebased past it,
    /// root-side assembly (`root:merge`), all under one covering
    /// `skeleton:<name>` span. `prep`/`post` are `None` for hints that do no
    /// root-side work (so those spans are absent, not zero-width).
    fn skeleton_trace(
        &self,
        name: &str,
        prep: Option<f64>,
        mut dist: TraceData,
        dist_total_s: f64,
        post: Option<f64>,
    ) -> TraceData {
        if !self.traced() {
            return TraceData::default();
        }
        let prep_s = prep.unwrap_or(0.0);
        let total = prep_s + dist_total_s + post.unwrap_or(0.0);
        let h = TraceHandle::recording();
        h.span(format!("skeleton:{name}"), "skeleton", Track::Root, 0.0, total, vec![]);
        if prep.is_some() {
            h.span("root:slice", "prep", Track::Root, 0.0, prep_s, vec![]);
        }
        if post.is_some() {
            h.span("root:merge", "merge", Track::Root, prep_s + dist_total_s, total, vec![]);
        }
        dist.shift(prep_s);
        h.absorb(dist);
        h.take()
    }

    /// [`skeleton_trace`](Self::skeleton_trace) for the streamed pipeline:
    /// instead of one lump `root:merge` after the dispatch, each task's fold
    /// is its own `root:merge:streamed` span interleaved with the dispatch
    /// timeline (`end_s` already covers the last fold, so the skeleton span
    /// still encloses everything).
    fn skeleton_trace_streamed(
        &self,
        name: &str,
        prep: Option<f64>,
        mut dist: TraceData,
        end_s: f64,
        merge_spans: &[(f64, f64)],
    ) -> TraceData {
        if !self.traced() {
            return TraceData::default();
        }
        let prep_s = prep.unwrap_or(0.0);
        let total = prep_s + end_s;
        let h = TraceHandle::recording();
        h.span(format!("skeleton:{name}"), "skeleton", Track::Root, 0.0, total, vec![]);
        if prep.is_some() {
            h.span("root:slice", "prep", Track::Root, 0.0, prep_s, vec![]);
        }
        for (i, &(s0, s1)) in merge_spans.iter().enumerate() {
            h.span(
                "root:merge:streamed",
                "merge",
                Track::Root,
                prep_s + s0,
                prep_s + s1,
                vec![("task", i.into())],
            );
        }
        dist.shift(prep_s);
        h.absorb(dist);
        h.take()
    }

    /// Is the cluster's dispatch pipeline streamed (vs barrier)?
    fn streamed(&self) -> bool {
        self.cluster.config().pipeline == PipelineMode::Streamed
    }

    // ======================================================================
    // Root-side epilogues (shared by the iterator and resident paths)
    // ======================================================================

    /// Fold task partials at the root: streamed prefix merge under the
    /// streamed pipeline, lump reduce under the barrier — both in task
    /// order, so the value is identical either way.
    fn fold_epilogue<B, Empty, Merge>(
        &self,
        name: &str,
        root_prep_s: f64,
        out: DistOutcome<B>,
        empty: Empty,
        merge: Merge,
    ) -> Run<B>
    where
        B: Wire + Send,
        Empty: Fn() -> B,
        Merge: Fn(B, B) -> B,
    {
        if self.streamed() {
            let mut results = out.results.into_iter();
            let mut acc: Option<B> = None;
            let (merge_end, merge_busy, spans) = streamed_merge_clock(&out.arrivals, |_| {
                let r = results.next().expect("one result per task");
                acc = Some(match acc.take() {
                    None => r,
                    Some(a) => merge(a, r),
                });
            });
            let value = acc.unwrap_or_else(empty);
            let end_s = out.timing.total_s.max(merge_end);
            let trace =
                self.skeleton_trace_streamed(name, Some(root_prep_s), out.trace, end_s, &spans);
            Run::new(
                value,
                RunStats::overlapped(out.timing, root_prep_s + merge_busy, root_prep_s + end_s),
            )
            .with_trace(trace)
        } else {
            let t1 = Instant::now();
            let value = out.results.into_iter().reduce(merge).unwrap_or_else(empty);
            let root_merge_s = t1.elapsed().as_secs_f64();
            let trace = self.skeleton_trace(
                name,
                Some(root_prep_s),
                out.trace,
                out.timing.total_s,
                Some(root_merge_s),
            );
            Run::new(value, RunStats::from_dist(out.timing, root_prep_s + root_merge_s))
                .with_trace(trace)
        }
    }

    /// Concatenate ordered per-task fragments at the root (build_vec-style
    /// assembly): streamed extension or lump concatenation — identical
    /// bytes either way, since fragments extend in task order.
    ///
    /// Fragments arrive as [`PodView`]s: for pod element types the root-side
    /// unpack aliased the received buffer, so the only copy left is this
    /// merge's `extend_from_slice` into the final vector.
    fn concat_epilogue<U>(
        &self,
        name: &str,
        root_prep_s: f64,
        out: DistOutcome<PodView<U>>,
    ) -> Run<Vec<U>>
    where
        U: Wire + Send + Sync + Clone,
    {
        if self.streamed() {
            let total: usize = out.results.iter().map(PodView::len).sum();
            let mut frags = out.results.into_iter();
            let mut value = Vec::with_capacity(total);
            let (merge_end, merge_busy, spans) = streamed_merge_clock(&out.arrivals, |_| {
                value.extend_from_slice(&frags.next().expect("one fragment per task"));
            });
            let end_s = out.timing.total_s.max(merge_end);
            let trace =
                self.skeleton_trace_streamed(name, Some(root_prep_s), out.trace, end_s, &spans);
            Run::new(
                value,
                RunStats::overlapped(out.timing, root_prep_s + merge_busy, root_prep_s + end_s),
            )
            .with_trace(trace)
        } else {
            let t1 = Instant::now();
            let total: usize = out.results.iter().map(PodView::len).sum();
            let mut value = Vec::with_capacity(total);
            for frag in out.results {
                value.extend_from_slice(&frag);
            }
            let root_merge_s = t1.elapsed().as_secs_f64();
            let trace = self.skeleton_trace(
                name,
                Some(root_prep_s),
                out.trace,
                out.timing.total_s,
                Some(root_merge_s),
            );
            Run::new(value, RunStats::from_dist(out.timing, root_prep_s + root_merge_s))
                .with_trace(trace)
        }
    }

    // ======================================================================
    // The master skeleton
    // ======================================================================

    /// Parallel fold-reduce: the skeleton every consumer is built on.
    ///
    /// Each leaf task folds a chunk of the outer domain into a private `B`
    /// started from `seed()`; partials merge pairwise with `merge` up the
    /// thread → node → root hierarchy. `B` must be serializable (node
    /// partials cross the network).
    ///
    /// `input` is anything implementing [`IntoDistInput`]: a local iterator
    /// (sliced and shipped per node, §3.5) or a resident collection view
    /// (`&DistVec`, a slice/zip/enumerate/halo view, `&DistArray2`) whose
    /// segments already live on their home ranks and ship nothing.
    ///
    /// `env` is a broadcast read-only *environment*: data every task needs
    /// in full (mri-q's k-space samples, tpacf's observed dataset). The
    /// paper's runtime reaches such data through serialized closure captures
    /// ("serializing an object transitively serializes all objects that it
    /// references", §3.4); here the environment is explicit so its bytes are
    /// accounted: one copy ships to every node. Pass `&e` to pack per call,
    /// a [`PackedEnv`] (from [`Triolet::pack_env`]) to pack once across
    /// calls, or `&()` when there is no shared data (zero wire bytes).
    ///
    /// `merge` must be associative and commutative: partials combine in
    /// schedule order, not chunk order. For order-sensitive assembly use
    /// [`Triolet::build_vec`] / [`Triolet::build_array2`], which preserve
    /// element order at every level.
    pub fn fold_reduce<In, Env, B, Seed, Step, Merge>(
        &self,
        input: In,
        env: Env,
        seed: Seed,
        step: Step,
        merge: Merge,
    ) -> Run<B>
    where
        In: IntoDistInput,
        Env: AsEnv,
        B: Wire + Send,
        Seed: Fn() -> B + Send + Sync,
        Step: Fn(&Env::Env, B, In::Item) -> B + Send + Sync,
        Merge: Fn(B, B) -> B + Send + Sync,
    {
        self.fold_reduce_named(
            "fold_reduce",
            input.into_dist_input(),
            env.env_arg(),
            seed,
            step,
            merge,
        )
    }

    /// [`Triolet::fold_reduce`] with an explicit skeleton name, so derived
    /// consumers label their traces `skeleton:sum`, `skeleton:histogram`, …
    fn fold_reduce_named<It, E, B, Seed, Step, Merge>(
        &self,
        name: &str,
        input: DistInput<It>,
        env: EnvArg<'_, E>,
        seed: Seed,
        step: Step,
        merge: Merge,
    ) -> Run<B>
    where
        It: DistIter,
        E: Wire + Send + Sync,
        B: Wire + Send,
        Seed: Fn() -> B + Send + Sync,
        Step: Fn(&E, B, It::Item) -> B + Send + Sync,
        Merge: Fn(B, B) -> B + Send + Sync,
    {
        let it = match input {
            DistInput::Resident(run) => {
                return self.fold_reduce_resident(name, run, env, seed, step, merge);
            }
            DistInput::Iter(it) => it,
        };
        match it.hint() {
            ParHint::Sequential => {
                let env = env.value();
                let t0 = Instant::now();
                let dom = it.outer_domain();
                let mut g = |b: B, x: It::Item| step(env, b, x);
                let out = it.fold_outer_part(&dom.whole_part(), seed(), &mut g);
                let total_s = t0.elapsed().as_secs_f64();
                Run::new(out, RunStats::local(total_s)).with_trace(self.local_trace(name, total_s))
            }
            ParHint::LocalPar => {
                // No node boundary: use the environment in place.
                let env = env.value();
                let dom = it.outer_domain();
                let chunks = dom.whole_part().split(self.threads_per_node() * CHUNKS_PER_THREAD);
                let out = self.cluster.run_raw(vec![RawTask {
                    wire_bytes: 0, // local execution: nothing ships
                    pack_s: 0.0,
                    resident: None,
                    work: Box::new(move |ctx: &NodeCtx<'_>| {
                        ctx.map_reduce_chunks(
                            chunks,
                            |chunk| {
                                let mut g = |b: B, x: It::Item| step(env, b, x);
                                it.fold_outer_part(chunk, seed(), &mut g)
                            },
                            &merge,
                        )
                        .unwrap_or_else(&seed)
                    }),
                }]);
                let trace = self.skeleton_trace(name, None, out.trace, out.timing.total_s, None);
                let mut results = out.results;
                let value = results.pop().expect("one local task");
                Run::new(value, RunStats::from_dist(out.timing, 0.0)).with_trace(trace)
            }
            ParHint::Par => {
                let dom = it.outer_domain();
                let parts = dom.split_parts(self.nodes());
                // Root side: the environment is packed at most once here
                // (charged as root prep); every task shares the buffer, and
                // the cluster charges its transport per broadcast edge
                // rather than per task. Slicing each node's data (paper
                // §3.5) is measured per task into `pack_s`, so the streamed
                // dispatcher can overlap task k+1's slice/pack with task
                // k's compute.
                let t0 = Instant::now();
                let env_payload = env.payload(self.cluster.stats());
                let env_bytes = env_payload.len();
                let root_prep_s = t0.elapsed().as_secs_f64();
                let tasks: Vec<RawTask<'_, B>> = parts
                    .into_iter()
                    .map(|part| {
                        let tp = Instant::now();
                        let sub = it.slice_outer(&part);
                        let wire_bytes = sub.source_bytes() + part.packed_size();
                        let pack_s = tp.elapsed().as_secs_f64();
                        let penv = env_payload.clone();
                        let seed = &seed;
                        let step = &step;
                        let merge = &merge;
                        RawTask {
                            wire_bytes,
                            pack_s,
                            resident: None,
                            work: Box::new(move |ctx: &NodeCtx<'_>| {
                                // Node side: data arrives as bytes.
                                let sub = ctx.sequential(|| sub.roundtrip());
                                let env: E = ctx
                                    .sequential(|| penv.unpack().expect("environment roundtrip"));
                                let chunks = part.split(ctx.threads() * CHUNKS_PER_THREAD);
                                ctx.map_reduce_chunks(
                                    chunks,
                                    |chunk| {
                                        let mut g = |b: B, x: It::Item| step(&env, b, x);
                                        sub.fold_outer_part(chunk, seed(), &mut g)
                                    },
                                    merge,
                                )
                                .unwrap_or_else(seed)
                            }),
                        }
                    })
                    .collect();
                let out = self.cluster.run_raw_with_broadcast(tasks, env_bytes);
                self.fold_epilogue(name, root_prep_s, out, &seed, &merge)
            }
        }
    }

    /// The resident dispatch arm: one task per [`ResidentPart`], sent to the
    /// rank already holding that part's segment. Tasks declare zero wire
    /// bytes (the descriptor is control-plane); the environment still
    /// broadcasts, and a crash that forces a task off its home rank re-ships
    /// the segment (counted by the cluster as a `dist:resident-miss`).
    ///
    /// Each part splits into the same chunks the shipped path would use
    /// (`part.split(threads × CHUNKS_PER_THREAD)` depends only on the index
    /// range), and partials merge in chunk then task order — so resident
    /// results are bit-identical to re-broadcast results.
    fn fold_reduce_resident<T, E, B, Seed, Step, Merge>(
        &self,
        name: &str,
        run: ResidentRun<T>,
        env: EnvArg<'_, E>,
        seed: Seed,
        step: Step,
        merge: Merge,
    ) -> Run<B>
    where
        E: Wire + Send + Sync,
        B: Wire + Send,
        Seed: Fn() -> B + Send + Sync,
        Step: Fn(&E, B, T) -> B + Send + Sync,
        Merge: Fn(B, B) -> B + Send + Sync,
    {
        let t0 = Instant::now();
        let env_payload = env.payload(self.cluster.stats());
        let env_bytes = env_payload.len();
        let root_prep_s = t0.elapsed().as_secs_f64();
        let id = run.id;
        let tasks: Vec<RawTask<'_, B>> = run
            .parts
            .into_iter()
            .map(|p| {
                let penv = env_payload.clone();
                let fold = p.fold;
                let part = p.part;
                let seed = &seed;
                let step = &step;
                let merge = &merge;
                RawTask {
                    wire_bytes: 0,
                    pack_s: 0.0,
                    resident: Some(ResidentSpec {
                        id,
                        home: p.home,
                        seg_bytes: p.seg_bytes,
                        halo_bytes: p.halo_bytes,
                    }),
                    work: Box::new(move |ctx: &NodeCtx<'_>| {
                        let env: E =
                            ctx.sequential(|| penv.unpack().expect("environment roundtrip"));
                        let chunks = part.split(ctx.threads() * CHUNKS_PER_THREAD);
                        ctx.map_reduce_chunks(
                            chunks,
                            |chunk| {
                                let mut acc = Some(seed());
                                fold(chunk.start, chunk.len, &mut |x| {
                                    let a = acc.take().expect("accumulator present");
                                    acc = Some(step(&env, a, x));
                                });
                                acc.expect("accumulator present")
                            },
                            merge,
                        )
                        .unwrap_or_else(seed)
                    }),
                }
            })
            .collect();
        let out = self.cluster.run_raw_with_broadcast(tasks, env_bytes);
        self.fold_epilogue(name, root_prep_s, out, &seed, &merge)
    }

    // ======================================================================
    // Derived consumers (the paper's user-facing skeletons)
    // ======================================================================

    /// Parallel sum (mri-q's inner reduction, dot products, …).
    pub fn sum<In>(&self, input: In) -> Run<In::Item>
    where
        In: IntoDistInput,
        In::Item: Wire + Send + Default + std::ops::Add<Output = In::Item>,
    {
        self.fold_reduce_named(
            "sum",
            input.into_dist_input(),
            EnvArg::Plain(&()),
            In::Item::default,
            |_, a, x| a + x,
            |a, b| a + b,
        )
    }

    /// Parallel reduction with an arbitrary associative operator.
    pub fn reduce<In, Op>(&self, input: In, op: Op) -> Run<Option<In::Item>>
    where
        In: IntoDistInput,
        In::Item: Wire + Send,
        Op: Fn(In::Item, In::Item) -> In::Item + Send + Sync,
    {
        self.reduce_named("reduce", input, op)
    }

    fn reduce_named<In, Op>(&self, name: &str, input: In, op: Op) -> Run<Option<In::Item>>
    where
        In: IntoDistInput,
        In::Item: Wire + Send,
        Op: Fn(In::Item, In::Item) -> In::Item + Send + Sync,
    {
        self.fold_reduce_named(
            name,
            input.into_dist_input(),
            EnvArg::Plain(&()),
            || None,
            |_, acc: Option<In::Item>, x| match acc {
                None => Some(x),
                Some(a) => Some(op(a, x)),
            },
            |a, b| match (a, b) {
                (Some(a), Some(b)) => Some(op(a, b)),
                (a, None) => a,
                (None, b) => b,
            },
        )
    }

    /// Parallel element count (useful for filtered iterators).
    pub fn count<In>(&self, input: In) -> Run<u64>
    where
        In: IntoDistInput,
    {
        self.fold_reduce_named(
            "count",
            input.into_dist_input(),
            EnvArg::Plain(&()),
            || 0u64,
            |_, n, _| n + 1,
            |a, b| a + b,
        )
    }

    /// Parallel minimum (by `PartialOrd`; NaNs lose).
    pub fn min<In>(&self, input: In) -> Run<Option<In::Item>>
    where
        In: IntoDistInput,
        In::Item: Wire + Send + PartialOrd,
    {
        self.reduce_named("min", input, |a, b| if b < a { b } else { a })
    }

    /// Parallel maximum (by `PartialOrd`; NaNs lose).
    pub fn max<In>(&self, input: In) -> Run<Option<In::Item>>
    where
        In: IntoDistInput,
        In::Item: Wire + Send + PartialOrd,
    {
        self.reduce_named("max", input, |a, b| if b > a { b } else { a })
    }

    /// Parallel arithmetic mean of an `f64` input; `None` when empty.
    pub fn mean<In>(&self, input: In) -> Run<Option<f64>>
    where
        In: IntoDistInput<Item = f64>,
    {
        self.fold_reduce_named(
            "mean",
            input.into_dist_input(),
            EnvArg::Plain(&()),
            || (0.0f64, 0u64),
            |_, (s, n), x| (s + x, n + 1),
            |(s1, n1), (s2, n2)| (s1 + s2, n1 + n2),
        )
        .map(|(sum, count)| if count == 0 { None } else { Some(sum / count as f64) })
    }

    /// Drain the input into per-task private collectors and merge them:
    /// the generic mutation skeleton (paper §3.4: "a distributed-parallel
    /// histogram performs a distributed reduction, which performs one
    /// threaded reduction per node, which sequentially builds one histogram
    /// per thread"). `env` is broadcast to every node like
    /// [`Triolet::fold_reduce`]'s; pass `&()` when there is none.
    pub fn collect<In, Env, C, Make>(&self, input: In, env: Env, make: Make) -> Run<C::Out>
    where
        In: IntoDistInput,
        Env: AsEnv,
        C: Collector<Item = In::Item> + Wire + Send,
        Make: Fn() -> C + Send + Sync,
    {
        self.collect_named("collect", input.into_dist_input(), env.env_arg(), make)
    }

    fn collect_named<It, E, C, Make>(
        &self,
        name: &str,
        input: DistInput<It>,
        env: EnvArg<'_, E>,
        make: Make,
    ) -> Run<C::Out>
    where
        It: DistIter,
        E: Wire + Send + Sync,
        C: Collector<Item = It::Item> + Wire + Send,
        Make: Fn() -> C + Send + Sync,
    {
        self.fold_reduce_named(
            name,
            input,
            env,
            make,
            |_env, mut c: C, x| {
                c.feed(x);
                c
            },
            |mut a, b| {
                a.merge(b);
                a
            },
        )
        .map(|c| c.finish())
    }

    /// Integer-count histogram over `bins` buckets (tpacf's skeleton).
    pub fn histogram<In>(&self, bins: usize, input: In) -> Run<Vec<u64>>
    where
        In: IntoDistInput<Item = usize>,
    {
        self.collect_named("histogram", input.into_dist_input(), EnvArg::Plain(&()), || {
            triolet_iter::CountHist::new(bins)
        })
    }

    /// Floating-point scatter-add over `cells` cells (cutcp's skeleton: a
    /// "floating-point histogram").
    pub fn scatter_add<In>(&self, cells: usize, input: In) -> Run<Vec<f64>>
    where
        In: IntoDistInput<Item = (usize, f64)>,
    {
        self.collect_named("scatter_add", input.into_dist_input(), EnvArg::Plain(&()), || {
            triolet_iter::WeightHist::new(cells)
        })
    }

    /// Materialize a 1-D input into a vector of `f(env, item)`, preserving
    /// element order (mri-q's pixel map).
    ///
    /// Works for irregular iterators too: each node packs its variable-length
    /// fragment (the paper's variable-length output packing) and the root
    /// concatenates fragments in part order. Unlike [`Triolet::fold_reduce`]
    /// — whose merge order follows the dynamic schedule — fragments are
    /// reassembled in chunk order at every level. Identity materialization
    /// is `build_vec(it, &(), |_, x| x)`.
    pub fn build_vec<In, Env, U, F>(&self, input: In, env: Env, f: F) -> Run<Vec<U>>
    where
        In: IntoDistInput,
        In::Iter: DistIter<OuterDom = Seq>,
        Env: AsEnv,
        U: Wire + Send + Sync + Clone,
        F: Fn(&Env::Env, In::Item) -> U + Send + Sync,
    {
        self.build_vec_named(input.into_dist_input(), env.env_arg(), f)
    }

    fn build_vec_named<It, E, U, F>(
        &self,
        input: DistInput<It>,
        env: EnvArg<'_, E>,
        f: F,
    ) -> Run<Vec<U>>
    where
        It: DistIter<OuterDom = Seq>,
        E: Wire + Send + Sync,
        U: Wire + Send + Sync + Clone,
        F: Fn(&E, It::Item) -> U + Send + Sync,
    {
        fn node_fragment<It, E, U>(
            ctx: &NodeCtx<'_>,
            sub: &It,
            env: &E,
            part: &SeqPart,
            f: &(impl Fn(&E, It::Item) -> U + Send + Sync),
        ) -> Vec<U>
        where
            It: DistIter<OuterDom = Seq>,
            U: Send,
            E: Sync,
        {
            let chunks = part.split(ctx.threads() * CHUNKS_PER_THREAD);
            let pieces = ctx.map_chunks(chunks, |chunk| {
                let mut v = Vec::with_capacity(chunk.count());
                sub.fold_outer_part(chunk, (), &mut |(), x| v.push(f(env, x)));
                v
            });
            // Concatenate in chunk order (sequential packing on the node).
            ctx.sequential(|| {
                let total = pieces.iter().map(Vec::len).sum();
                let mut out = Vec::with_capacity(total);
                for p in pieces {
                    out.extend(p);
                }
                out
            })
        }

        let it = match input {
            DistInput::Resident(run) => {
                // Resident assembly: each home rank materializes its part's
                // fragment in place; only fragments travel back.
                let t0 = Instant::now();
                let env_payload = env.payload(self.cluster.stats());
                let env_bytes = env_payload.len();
                let root_prep_s = t0.elapsed().as_secs_f64();
                let id = run.id;
                let f = &f;
                let tasks: Vec<RawTask<'_, PodView<U>>> = run
                    .parts
                    .into_iter()
                    .map(|p| {
                        let penv = env_payload.clone();
                        let fold = p.fold;
                        let part = p.part;
                        RawTask {
                            wire_bytes: 0,
                            pack_s: 0.0,
                            resident: Some(ResidentSpec {
                                id,
                                home: p.home,
                                seg_bytes: p.seg_bytes,
                                halo_bytes: p.halo_bytes,
                            }),
                            work: Box::new(move |ctx: &NodeCtx<'_>| {
                                let env: E = ctx.unpack_sequential(|| {
                                    penv.unpack().expect("environment roundtrip")
                                });
                                let chunks = part.split(ctx.threads() * CHUNKS_PER_THREAD);
                                let pieces = ctx.map_chunks(chunks, |chunk| {
                                    let mut v = Vec::with_capacity(chunk.count());
                                    fold(chunk.start, chunk.len, &mut |x| v.push(f(&env, x)));
                                    v
                                });
                                ctx.sequential(|| {
                                    let total = pieces.iter().map(Vec::len).sum();
                                    let mut out = Vec::with_capacity(total);
                                    for piece in pieces {
                                        out.extend(piece);
                                    }
                                    PodView::from_vec(out)
                                })
                            }),
                        }
                    })
                    .collect();
                let out = self.cluster.run_raw_with_broadcast(tasks, env_bytes);
                return self.concat_epilogue("build_vec", root_prep_s, out);
            }
            DistInput::Iter(it) => it,
        };
        let dom = it.outer_domain();
        match it.hint() {
            ParHint::Sequential => {
                let env = env.value();
                let t0 = Instant::now();
                let mut out = Vec::with_capacity(dom.count());
                it.fold_outer_part(&dom.whole_part(), (), &mut |(), x| out.push(f(env, x)));
                let total_s = t0.elapsed().as_secs_f64();
                Run::new(out, RunStats::local(total_s))
                    .with_trace(self.local_trace("build_vec", total_s))
            }
            ParHint::LocalPar => {
                let env = env.value();
                let part = dom.whole_part();
                let f = &f;
                let out = self.cluster.run_raw(vec![RawTask {
                    wire_bytes: 0,
                    pack_s: 0.0,
                    resident: None,
                    work: Box::new(move |ctx: &NodeCtx<'_>| node_fragment(ctx, &it, env, &part, f)),
                }]);
                let trace =
                    self.skeleton_trace("build_vec", None, out.trace, out.timing.total_s, None);
                let mut results = out.results;
                let value = results.pop().expect("one local task");
                Run::new(value, RunStats::from_dist(out.timing, 0.0)).with_trace(trace)
            }
            ParHint::Par => {
                let parts = dom.split_parts(self.nodes());
                let t0 = Instant::now();
                let env_payload = env.payload(self.cluster.stats());
                let env_bytes = env_payload.len();
                let root_prep_s = t0.elapsed().as_secs_f64();
                let f = &f;
                let tasks: Vec<RawTask<'_, PodView<U>>> = parts
                    .into_iter()
                    .map(|part| {
                        let tp = Instant::now();
                        let sub = it.slice_outer(&part);
                        let wire_bytes = sub.source_bytes() + part.packed_size();
                        let pack_s = tp.elapsed().as_secs_f64();
                        let penv = env_payload.clone();
                        RawTask {
                            wire_bytes,
                            pack_s,
                            resident: None,
                            work: Box::new(move |ctx: &NodeCtx<'_>| {
                                let sub = ctx.unpack_sequential(|| sub.roundtrip());
                                let env: E = ctx.unpack_sequential(|| {
                                    penv.unpack().expect("environment roundtrip")
                                });
                                PodView::from_vec(node_fragment(ctx, &sub, &env, &part, f))
                            }),
                        }
                    })
                    .collect();
                let out = self.cluster.run_raw_with_broadcast(tasks, env_bytes);
                self.concat_epilogue("build_vec", root_prep_s, out)
            }
        }
    }

    /// Materialize a 3-D iterator into a dense grid (cutcp-style outputs
    /// when computed per grid point rather than scatter-added).
    ///
    /// [`Dim3`](triolet_domain::Dim3) distribution uses slab parts, which
    /// are contiguous in row-major linearization, so assembly is ordered
    /// concatenation like [`Triolet::build_vec`].
    pub fn build_array3<It>(&self, it: It) -> Run<triolet_iter::Array3<It::Item>>
    where
        It: DistIter<OuterDom = triolet_domain::Dim3>,
        It::Item: Wire + Send + Sync + Clone,
    {
        let dom = it.outer_domain();
        match it.hint() {
            ParHint::Sequential => {
                let t0 = Instant::now();
                let mut data = Vec::with_capacity(dom.count());
                it.fold_outer_part(&dom.whole_part(), (), &mut |(), x| data.push(x));
                let total_s = t0.elapsed().as_secs_f64();
                Run::new(triolet_iter::Array3::from_vec(data, dom), RunStats::local(total_s))
                    .with_trace(self.local_trace("build_array3", total_s))
            }
            ParHint::LocalPar | ParHint::Par => {
                let parts = if it.hint() == ParHint::Par {
                    dom.split_parts(self.nodes())
                } else {
                    vec![dom.whole_part()]
                };
                let local = it.hint() == ParHint::LocalPar;
                let t0 = Instant::now();
                let tasks: Vec<RawTask<'_, PodView<It::Item>>> = parts
                    .into_iter()
                    .map(|part| {
                        let tp = Instant::now();
                        let sub = it.slice_outer(&part);
                        let wire_bytes =
                            if local { 0 } else { sub.source_bytes() + part.packed_size() };
                        let pack_s = if local { 0.0 } else { tp.elapsed().as_secs_f64() };
                        RawTask {
                            wire_bytes,
                            pack_s,
                            resident: None,
                            work: Box::new(move |ctx: &NodeCtx<'_>| {
                                let sub = if local {
                                    sub
                                } else {
                                    ctx.unpack_sequential(|| sub.roundtrip())
                                };
                                let chunks = part.split(ctx.threads() * CHUNKS_PER_THREAD);
                                let pieces = ctx.map_chunks(chunks, |chunk| {
                                    let mut v = Vec::with_capacity(chunk.count());
                                    sub.fold_outer_part(chunk, (), &mut |(), x| v.push(x));
                                    v
                                });
                                ctx.sequential(|| {
                                    let total = pieces.iter().map(Vec::len).sum();
                                    let mut out = Vec::with_capacity(total);
                                    for p in pieces {
                                        out.extend(p);
                                    }
                                    PodView::from_vec(out)
                                })
                            }),
                        }
                    })
                    .collect();
                let root_prep_s =
                    t0.elapsed().as_secs_f64() - tasks.iter().map(|t| t.pack_s).sum::<f64>();
                let out = self.cluster.run_raw(tasks);
                self.concat_epilogue("build_array3", root_prep_s, out)
                    .map(|data| triolet_iter::Array3::from_vec(data, dom))
            }
        }
    }

    /// Materialize a 2-D iterator into a dense matrix (sgemm's output
    /// assembly): nodes compute rectangular blocks, the root places them.
    pub fn build_array2<It>(&self, it: It) -> Run<Array2<It::Item>>
    where
        It: DistIter<OuterDom = Dim2>,
        It::Item: Wire + Send + Sync + Clone + Default,
    {
        /// Compute one block's row-major contents from ordered chunk pieces.
        fn assemble_block<It>(
            ctx: &NodeCtx<'_>,
            sub: &It,
            part: &triolet_domain::Dim2Part,
        ) -> Vec<It::Item>
        where
            It: DistIter<OuterDom = Dim2>,
            It::Item: Send + Clone + Default,
        {
            let chunks = part.split(ctx.threads() * CHUNKS_PER_THREAD);
            let pieces = ctx.map_chunks(chunks.clone(), |chunk| {
                let mut v = Vec::with_capacity(chunk.count());
                sub.fold_outer_part(chunk, (), &mut |(), x| v.push(x));
                v
            });
            // Place chunk pieces into the block (sequential on the node).
            ctx.sequential(|| {
                let mut block = vec![It::Item::default(); part.count()];
                for (chunk, piece) in chunks.iter().zip(pieces) {
                    for (k, x) in piece.into_iter().enumerate() {
                        let (r, c) = chunk.index_at(k);
                        let local = (r - part.row0) * part.cols + (c - part.col0);
                        block[local] = x;
                    }
                }
                block
            })
        }

        /// Place one row-major block at its part's coordinates with row-wise
        /// slice copies (no per-element index arithmetic).
        fn place_block<T: Clone>(
            result: &mut Array2<T>,
            result_cols: usize,
            part: &triolet_domain::Dim2Part,
            block: &[T],
        ) {
            let data = result.as_mut_slice();
            for rr in 0..part.rows {
                let src = &block[rr * part.cols..(rr + 1) * part.cols];
                let d0 = (part.row0 + rr) * result_cols + part.col0;
                data[d0..d0 + part.cols].clone_from_slice(src);
            }
        }

        let dom = it.outer_domain();
        match it.hint() {
            ParHint::Sequential => {
                // Elements arrive in row-major order; fill directly.
                let t0 = Instant::now();
                let mut data = Vec::with_capacity(dom.count());
                it.fold_outer_part(&dom.whole_part(), (), &mut |(), x| data.push(x));
                let total_s = t0.elapsed().as_secs_f64();
                Run::new(Array2::from_vec(data, dom.rows, dom.cols), RunStats::local(total_s))
                    .with_trace(self.local_trace("build_array2", total_s))
            }
            ParHint::LocalPar => {
                let part = dom.whole_part();
                let out = self.cluster.run_raw(vec![RawTask {
                    wire_bytes: 0,
                    pack_s: 0.0,
                    resident: None,
                    work: Box::new(move |ctx: &NodeCtx<'_>| assemble_block(ctx, &it, &part)),
                }]);
                let trace =
                    self.skeleton_trace("build_array2", None, out.trace, out.timing.total_s, None);
                let mut results = out.results;
                let data = results.pop().expect("one local task");
                Run::new(
                    Array2::from_vec(data, dom.rows, dom.cols),
                    RunStats::from_dist(out.timing, 0.0),
                )
                .with_trace(trace)
            }
            ParHint::Par => {
                let parts = dom.split_parts(self.nodes());
                let t0 = Instant::now();
                let tasks: Vec<RawTask<'_, (triolet_domain::Dim2Part, PodView<It::Item>)>> = parts
                    .into_iter()
                    .map(|part| {
                        let tp = Instant::now();
                        let sub = it.slice_outer(&part);
                        let wire_bytes = sub.source_bytes() + part.packed_size();
                        let pack_s = tp.elapsed().as_secs_f64();
                        RawTask {
                            wire_bytes,
                            pack_s,
                            resident: None,
                            work: Box::new(move |ctx: &NodeCtx<'_>| {
                                let sub = ctx.unpack_sequential(|| sub.roundtrip());
                                let block = assemble_block(ctx, &sub, &part);
                                (part, PodView::from_vec(block))
                            }),
                        }
                    })
                    .collect();
                let root_prep_s =
                    t0.elapsed().as_secs_f64() - tasks.iter().map(|t| t.pack_s).sum::<f64>();
                let out = self.cluster.run_raw(tasks);
                if self.streamed() {
                    // Blocks land at disjoint coordinates, so placing each
                    // as it arrives is byte-identical to the lump placement.
                    let mut blocks = out.results.into_iter();
                    let mut result = Array2::zeros(dom.rows, dom.cols);
                    let (merge_end, merge_busy, spans) =
                        streamed_merge_clock(&out.arrivals, |_| {
                            let (part, block) = blocks.next().expect("one block per task");
                            place_block(&mut result, dom.cols, &part, &block);
                        });
                    let end_s = out.timing.total_s.max(merge_end);
                    let trace = self.skeleton_trace_streamed(
                        "build_array2",
                        Some(root_prep_s),
                        out.trace,
                        end_s,
                        &spans,
                    );
                    Run::new(
                        result,
                        RunStats::overlapped(
                            out.timing,
                            root_prep_s + merge_busy,
                            root_prep_s + end_s,
                        ),
                    )
                    .with_trace(trace)
                } else {
                    let t1 = Instant::now();
                    let mut result = Array2::zeros(dom.rows, dom.cols);
                    for (part, block) in out.results {
                        place_block(&mut result, dom.cols, &part, &block);
                    }
                    let root_merge_s = t1.elapsed().as_secs_f64();
                    let trace = self.skeleton_trace(
                        "build_array2",
                        Some(root_prep_s),
                        out.trace,
                        out.timing.total_s,
                        Some(root_merge_s),
                    );
                    Run::new(result, RunStats::from_dist(out.timing, root_prep_s + root_merge_s))
                        .with_trace(trace)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet_iter::prelude::*;
    use triolet_iter::sources::from_vec;

    fn rt(nodes: usize, tpn: usize) -> Triolet {
        Triolet::new(ClusterConfig::virtual_cluster(nodes, tpn))
    }

    #[test]
    fn sum_matches_sequential_all_hints() {
        let xs: Vec<i64> = (0..10_000).collect();
        let expect: i64 = xs.iter().sum();
        let rt = rt(4, 4);
        for hinted in
            [from_vec(xs.clone()), from_vec(xs.clone()).localpar(), from_vec(xs.clone()).par()]
        {
            assert_eq!(rt.sum(hinted).value, expect);
        }
    }

    #[test]
    fn distributed_sum_ships_sliced_data() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let rt = rt(4, 2);
        let full_bytes = from_vec(xs.clone()).source_bytes() as u64;
        let stats = rt.sum(from_vec(xs).par()).stats;
        // Each node receives ~1/4 of the data; the total outgoing bytes are
        // about one full copy (plus part headers), NOT nodes x full copy.
        assert!(
            stats.bytes_out < full_bytes + 1024,
            "bytes_out={} full={}",
            stats.bytes_out,
            full_bytes
        );
        assert!(stats.bytes_out as f64 > 0.9 * full_bytes as f64);
        assert_eq!(stats.messages, 8);
    }

    #[test]
    fn sum_of_filtered_distributes() {
        let xs: Vec<i64> = (0..999).collect();
        let expect: i64 = xs.iter().filter(|&&x| x % 7 == 0).sum();
        let s = rt(3, 2).sum(from_vec(xs).filter(|x: &i64| x % 7 == 0).par()).value;
        assert_eq!(s, expect);
    }

    #[test]
    fn fold_reduce_with_environment() {
        let xs: Vec<i64> = (0..200).collect();
        let scale: i64 = 3;
        let expect: i64 = xs.iter().map(|x| x * scale).sum();
        let run = rt(4, 2).fold_reduce(
            from_vec(xs).par(),
            &scale,
            || 0i64,
            |k, a, x| a + k * x,
            |a, b| a + b,
        );
        assert_eq!(run.value, expect);
        // The environment ships once per node on top of the sliced data.
        assert!(run.stats.bytes_out > 0);
    }

    #[test]
    fn unit_environment_ships_no_extra_bytes() {
        let xs: Vec<i64> = (0..256).collect();
        let rt = rt(2, 2);
        let plain = rt.sum(from_vec(xs.clone()).par()).stats.bytes_out;
        let with_unit = rt
            .fold_reduce(from_vec(xs).par(), &(), || 0i64, |(), a, x| a + x, |a, b| a + b)
            .stats
            .bytes_out;
        assert_eq!(plain, with_unit);
    }

    #[test]
    fn packed_env_is_accepted_by_the_same_signature() {
        let xs: Vec<i64> = (0..200).collect();
        let rt = rt(3, 2);
        let packed = rt.pack_env(5i64);
        let a = rt
            .fold_reduce(
                from_vec(xs.clone()).par(),
                &packed,
                || 0i64,
                |k, a, x| a + k * x,
                |a, b| a + b,
            )
            .value;
        let b = rt
            .fold_reduce(from_vec(xs).par(), &5i64, || 0i64, |k, a, x| a + k * x, |a, b| a + b)
            .value;
        assert_eq!(a, b);
    }

    #[test]
    fn reduce_max() {
        let xs: Vec<i64> = (0..500).map(|i| (i * 37) % 251).collect();
        let expect = xs.iter().copied().max();
        assert_eq!(rt(4, 2).reduce(from_vec(xs).par(), i64::max).value, expect);
    }

    #[test]
    fn reduce_empty_is_none() {
        let m = rt(2, 2).reduce(from_vec(Vec::<i64>::new()).par(), i64::max).value;
        assert!(m.is_none());
    }

    #[test]
    fn count_filtered() {
        let n = rt(4, 4).count(range(1000).filter(|i: &usize| i.is_multiple_of(3)).par()).value;
        assert_eq!(n, 334);
    }

    #[test]
    fn histogram_matches_sequential() {
        let xs: Vec<u32> = (0..5000).map(|i| (i * 31 + 7) % 10).collect();
        let it = from_vec(xs.clone()).map(|x: u32| x as usize);
        let hist = rt(4, 4).histogram(10, it.par()).value;
        let mut expect = vec![0u64; 10];
        for x in xs {
            expect[x as usize] += 1;
        }
        assert_eq!(hist, expect);
    }

    #[test]
    fn scatter_add_matches_sequential() {
        let pairs: Vec<(usize, f64)> = (0..2000).map(|i| (i % 16, (i as f64) * 0.25)).collect();
        let grid = rt(2, 4).scatter_add(16, from_vec(pairs.clone()).par()).value;
        let mut expect = vec![0.0f64; 16];
        for (b, w) in pairs {
            expect[b] += w;
        }
        for (a, b) in grid.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn build_vec_preserves_order() {
        let v = rt(4, 2).build_vec(range(100).map(|i: usize| i * 3).par(), &(), |_, x| x).value;
        assert_eq!(v, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn build_vec_irregular_preserves_order() {
        let it = range(50).map(|i: usize| i as i64).filter(|x: &i64| x % 2 == 0).par();
        let v = rt(4, 2).build_vec(it, &(), |_, x| x).value;
        assert_eq!(v, (0..50).filter(|x| x % 2 == 0).map(|x| x as i64).collect::<Vec<_>>());
    }

    #[test]
    fn build_array2_blocks_assemble() {
        let it = range2d(8, 6).map(|(r, c): (usize, usize)| (r * 100 + c) as i64).par();
        let m = rt(4, 2).build_array2(it).value;
        assert_eq!(m.rows(), 8);
        assert_eq!(m.cols(), 6);
        for r in 0..8 {
            for c in 0..6 {
                assert_eq!(m[(r, c)], (r * 100 + c) as i64);
            }
        }
    }

    #[test]
    fn localpar_does_not_ship_bytes() {
        let xs: Vec<f32> = (0..512).map(|i| i as f32).collect();
        let stats = rt(4, 4).sum(from_vec(xs).localpar()).stats;
        assert_eq!(stats.bytes_out, 0);
    }

    #[test]
    fn measured_mode_agrees_with_virtual() {
        let xs: Vec<i64> = (0..4000).collect();
        let expect: i64 = xs.iter().sum();
        let m = Triolet::new(ClusterConfig::measured(2, 2));
        let (s, stats) = m.sum(from_vec(xs).par()).into_inner();
        assert_eq!(s, expect);
        assert!(stats.total_s > 0.0);
    }

    #[test]
    fn more_nodes_than_elements() {
        let s = rt(8, 2).sum(from_vec(vec![1i64, 2, 3]).par()).value;
        assert_eq!(s, 6);
    }

    #[test]
    fn build_array3_direct_potential() {
        // A per-grid-point (gather-style) computation over a Dim3 domain.
        let dom = triolet_domain::Dim3::new(4, 3, 5);
        let engine = rt(3, 2);
        let g = engine
            .build_array3(
                triolet_iter::indices(dom)
                    .map(|(x, y, z): (usize, usize, usize)| (x * 100 + y * 10 + z) as i64)
                    .par(),
            )
            .value;
        for x in 0..4 {
            for y in 0..3 {
                for z in 0..5 {
                    assert_eq!(g[(x, y, z)], (x * 100 + y * 10 + z) as i64);
                }
            }
        }
        // LocalPar agrees.
        let run = engine.build_array3(
            triolet_iter::indices(dom)
                .map(|(x, y, z): (usize, usize, usize)| (x * 100 + y * 10 + z) as i64)
                .localpar(),
        );
        assert_eq!(g, run.value);
        assert_eq!(run.stats.bytes_out, 0);
    }

    #[test]
    fn min_max_mean() {
        let engine = rt(3, 2);
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 101) as f64).collect();
        assert_eq!(engine.min(from_vec(xs.clone()).par()).value, Some(0.0));
        assert_eq!(engine.max(from_vec(xs.clone()).par()).value, Some(100.0));
        let avg = engine.mean(from_vec(xs.clone()).par()).value;
        let expect = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((avg.unwrap() - expect).abs() < 1e-12);
        assert!(engine.mean(from_vec(Vec::<f64>::new()).par()).value.is_none());
    }

    #[test]
    fn empty_input_par_sum_is_zero() {
        let s = rt(4, 4).sum(from_vec(Vec::<i64>::new()).par()).value;
        assert_eq!(s, 0);
    }

    #[test]
    fn untraced_run_has_empty_trace() {
        let run = rt(4, 2).sum(from_vec((0..100i64).collect::<Vec<_>>()).par());
        assert!(run.trace.is_empty());
    }

    #[test]
    fn traced_sum_records_skeleton_hierarchy() {
        let engine = Triolet::new(ClusterConfig::virtual_cluster(3, 2).with_trace(true));
        assert!(engine.traced());
        let xs: Vec<i64> = (0..3000).collect();
        let run = engine.sum(from_vec(xs.clone()).par());
        assert_eq!(run.value, xs.iter().sum::<i64>());
        let names = run.trace.span_names();
        for want in
            ["skeleton:sum", "root:slice", "root:merge:streamed", "send", "node:task", "chunk"]
        {
            assert!(names.contains(&want), "missing span {want:?} in {names:?}");
        }
        // The skeleton span opens the trace and covers every other span.
        let skel = &run.trace.spans[0];
        assert_eq!(skel.name, "skeleton:sum");
        assert_eq!(skel.t0, 0.0);
        for s in &run.trace.spans {
            assert!(s.t0 >= -1e-12 && s.t1 <= skel.t1 + 1e-9, "{s:?} outside skeleton span");
        }
        // The trace agrees with the aggregate stats on total time.
        assert!((skel.t1 - run.stats.total_s).abs() < 1e-9);
    }

    #[test]
    fn traced_sequential_run_records_one_span() {
        let engine = Triolet::new(ClusterConfig::virtual_cluster(2, 2).with_trace(true));
        let run = engine.sum(from_vec((0..50i64).collect::<Vec<_>>()));
        assert_eq!(run.trace.span_names(), vec!["skeleton:sum"]);
    }

    #[test]
    fn barrier_mode_keeps_lump_merge_span() {
        let engine = Triolet::new(
            ClusterConfig::virtual_cluster(3, 2)
                .with_trace(true)
                .with_pipeline(PipelineMode::Barrier),
        );
        let run = engine.sum(from_vec((0..3000i64).collect::<Vec<_>>()).par());
        let names = run.trace.span_names();
        assert!(names.contains(&"root:merge"), "barrier keeps root:merge: {names:?}");
        assert!(!names.contains(&"root:merge:streamed"), "{names:?}");
    }

    #[test]
    fn pipeline_modes_agree_on_skeleton_values() {
        // One engine-level sanity pass over the order-sensitive skeletons;
        // the proptest gate covers the space, this pins the obvious cases.
        let xs: Vec<f64> = (0..2500).map(|i| (i as f64) * 0.37 - 100.0).collect();
        let s = Triolet::new(ClusterConfig::virtual_cluster(4, 2));
        let b =
            Triolet::new(ClusterConfig::virtual_cluster(4, 2).with_pipeline(PipelineMode::Barrier));
        assert_eq!(
            s.sum(from_vec(xs.clone()).par()).value.to_bits(),
            b.sum(from_vec(xs.clone()).par()).value.to_bits(),
        );
        assert_eq!(
            s.build_vec(from_vec(xs.clone()).map(|x: f64| x * 1.5).par(), &(), |_, x| x).value,
            b.build_vec(from_vec(xs).map(|x: f64| x * 1.5).par(), &(), |_, x| x).value,
        );
    }

    #[test]
    fn scatter_then_sum_matches_iterator_path() {
        let xs: Vec<i64> = (0..1000).collect();
        let rt = rt(4, 2);
        let dv = rt.scatter(xs.clone()).value;
        assert_eq!(dv.len(), 1000);
        assert_eq!(dv.segments(), 4);
        assert_eq!(rt.sum(&dv).value, xs.iter().sum::<i64>());
        assert_eq!(rt.sum(from_vec(xs).par()).value, rt.sum(&dv).value);
    }

    #[test]
    fn resident_calls_ship_no_input_bytes() {
        let xs: Vec<i64> = (0..2000).collect();
        let rt = rt(4, 2);
        let dv = rt.scatter(xs).value;
        let run = rt.sum(&dv);
        // Unit environment + resident input: nothing crosses the wire out.
        assert_eq!(run.stats.bytes_out, 0);
        assert_eq!(run.stats.resident_hits, 4);
        assert_eq!(run.stats.resident_misses, 0);
    }

    #[test]
    fn resident_build_vec_preserves_order() {
        let xs: Vec<i64> = (0..300).collect();
        let rt = rt(4, 2);
        let dv = rt.scatter(xs.clone()).value;
        let doubled = rt.build_vec(&dv, &(), |_, x: i64| x * 2).value;
        assert_eq!(doubled, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Views feed the same unified signature.
        let mid = rt.build_vec(dv.slice(100..200), &(), |_, x| x).value;
        assert_eq!(mid, (100..200).collect::<Vec<i64>>());
    }

    #[test]
    fn resident_fold_is_bit_identical_to_rebroadcast() {
        let xs: Vec<f64> = (0..4321).map(|i| (i as f64) * 0.123 - 17.0).collect();
        let rt = rt(4, 2);
        let dv = rt.scatter(xs.clone()).value;
        let a = rt.sum(&dv).value;
        let b = rt.sum(from_vec(xs).par()).value;
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn scatter_of_empty_vec_works() {
        let rt = rt(4, 2);
        let dv = rt.scatter(Vec::<i64>::new()).value;
        assert!(dv.is_empty());
        assert_eq!(rt.sum(&dv).value, 0);
    }
}
