//! Multi-tenant job service: admission control and fair-share scheduling
//! over one shared skeleton runtime.
//!
//! The ROADMAP's north star is a *service* shape: many tenants submitting
//! skeleton jobs against a shared simulated cluster, not one caller running
//! one skeleton at a time. [`JobService`] provides that layer:
//!
//! - **Submission queue with backpressure.** [`JobService::submit`] admits a
//!   job (a closure over the shared [`Triolet`] runtime) into a bounded
//!   queue; at saturation it rejects with [`AdmissionError::Saturated`],
//!   while [`JobService::submit_blocking`] instead runs queued work until a
//!   slot frees — the two admission disciplines of a loaded service.
//! - **Policy-driven dispatch.** The next job is chosen by a
//!   [`SchedPolicy`] value — FIFO, weighted fair share (stride scheduling
//!   over declared job costs), or strict priority. Selection is a pure
//!   function of queue contents and accumulated per-tenant virtual runtime
//!   (`f64::total_cmp`, tenant/seq tie-breaks), so the schedule of a given
//!   submission sequence is bit-identical across runs and hosts.
//! - **A job-level virtual clock.** Skeleton jobs are gang-scheduled: each
//!   runs over the whole cluster through the event-driven virtual-time
//!   core, and its modeled makespan (`Run::stats.total_s`) advances the
//!   service clock. Job latency = completion vtime − submission vtime, so
//!   queueing delay is measured on the same timeline the simulator lays.
//! - **Per-tenant accounting.** Cluster traffic is metered by snapshot
//!   deltas around each job ([`TrafficSnapshot`]), busy seconds and
//!   latencies accumulate per tenant ([`TenantUsage`]), and when tracing is
//!   on every span/event of a job's timeline is tagged with
//!   `tenant`/`job` args and rebased onto the service clock, under a
//!   `service:job` umbrella span.
//!
//! Because cluster dispatch is stateless across calls — fault decisions are
//! pure hashes of `(seed, edge, tag, seq, attempt)`, and `run_raw` takes
//! `&self` — a job's *result* is bit-identical to running it alone on an
//! identically configured runtime, whatever the interleaving. The
//! `proptest_service` suite holds the service to exactly that.

mod policy;

pub use policy::{SchedPolicy, Tenant};

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::Mutex;

use triolet_cluster::TrafficSnapshot;
use triolet_obs::{ArgValue, TraceData, TraceHandle, Track};

use crate::engine::Triolet;
use crate::report::RunStats;
use crate::run::Run;

/// Default bound on the submission queue.
pub const DEFAULT_QUEUE_CAP: usize = 256;

/// Service configuration: the scheduling policy plus the admission bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Queue bound: submissions beyond this many pending jobs are rejected
    /// (or block, via [`JobService::submit_blocking`]).
    pub queue_cap: usize,
    /// How the next job is chosen.
    pub policy: SchedPolicy,
}

impl ServiceConfig {
    /// A config with the given policy and the default queue bound.
    pub fn new(policy: SchedPolicy) -> Self {
        ServiceConfig { queue_cap: DEFAULT_QUEUE_CAP, policy }
    }

    /// Override the admission bound (clamped to at least 1).
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::new(SchedPolicy::Fifo)
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded queue is full: `cap` jobs are already pending.
    Saturated {
        /// The configured queue bound at rejection time.
        cap: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Saturated { cap } => {
                write!(f, "job service saturated: {cap} jobs already queued")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Identifier of an admitted job: its global submission sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Typed receipt for an admitted job; redeem with [`JobService::wait`].
#[derive(Debug)]
pub struct JobHandle<T> {
    /// The admitted job's id.
    pub id: JobId,
    _value: PhantomData<fn() -> T>,
}

/// Scheduling record of one completed job (value carried separately in
/// [`JobOutput`]). All times are service-clock seconds.
#[derive(Debug, Clone)]
pub struct JobReport {
    pub id: JobId,
    pub tenant: Tenant,
    /// The declared cost charged to the tenant's virtual runtime.
    pub cost: f64,
    pub submitted_s: f64,
    pub started_s: f64,
    pub finished_s: f64,
    /// The job's own skeleton stats (modeled makespan, traffic, ...).
    pub stats: RunStats,
    /// Cluster traffic metered across exactly this job's dispatches.
    pub traffic: TrafficSnapshot,
}

impl JobReport {
    /// Submission-to-completion seconds on the service clock.
    pub fn latency_s(&self) -> f64 {
        self.finished_s - self.submitted_s
    }

    /// Seconds the job sat in the queue before starting.
    pub fn queue_wait_s(&self) -> f64 {
        self.started_s - self.submitted_s
    }
}

/// A completed job: the typed value plus its scheduling record.
#[derive(Debug)]
pub struct JobOutput<T> {
    pub value: T,
    pub report: JobReport,
}

/// Cumulative per-tenant accounting.
#[derive(Debug, Clone)]
pub struct TenantUsage {
    pub tenant: Tenant,
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
    /// Total declared cost of completed jobs.
    pub cost: f64,
    /// Total modeled makespan seconds of completed jobs.
    pub busy_s: f64,
    /// Sum over completed jobs of their per-node compute seconds.
    pub node_busy_s: f64,
    /// Cluster traffic metered across this tenant's jobs.
    pub traffic: TrafficSnapshot,
    /// Per-job latencies, in completion order.
    pub latencies_s: Vec<f64>,
}

impl TenantUsage {
    fn new(tenant: Tenant) -> Self {
        TenantUsage {
            tenant,
            submitted: 0,
            completed: 0,
            rejected: 0,
            cost: 0.0,
            busy_s: 0.0,
            node_busy_s: 0.0,
            traffic: TrafficSnapshot::default(),
            latencies_s: Vec::new(),
        }
    }

    /// The `q`-quantile (0.0..=1.0) of this tenant's job latencies
    /// (nearest-rank on a sorted copy; 0.0 with no completed jobs).
    pub fn latency_percentile_s(&self, q: f64) -> f64 {
        percentile(&self.latencies_s, q)
    }

    /// Mean job latency (0.0 with no completed jobs).
    pub fn mean_latency_s(&self) -> f64 {
        if self.latencies_s.is_empty() {
            0.0
        } else {
            self.latencies_s.iter().sum::<f64>() / self.latencies_s.len() as f64
        }
    }
}

/// Nearest-rank percentile over an unsorted sample (total_cmp sort).
pub fn percentile(sample: &[f64], q: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// Service-wide aggregates.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Current service-clock time (the last completion).
    pub now_s: f64,
    /// Total modeled makespan seconds of completed jobs.
    pub busy_s: f64,
    /// Sum of per-node compute seconds across completed jobs.
    pub node_busy_s: f64,
    /// Cluster width the utilization is measured against.
    pub nodes: usize,
    pub completed: u64,
    pub rejected: u64,
    /// Jobs currently pending in the queue.
    pub queued: usize,
}

impl ServiceStats {
    /// Fraction of node-seconds spent computing: `node_busy_s /
    /// (nodes * now_s)`. The remainder is communication, root-side
    /// assembly, and stragglers — dispatch overhead the service cannot
    /// hide at job granularity.
    pub fn utilization(&self) -> f64 {
        if self.now_s <= 0.0 || self.nodes == 0 {
            0.0
        } else {
            (self.node_busy_s / (self.nodes as f64 * self.now_s)).min(1.0)
        }
    }
}

type BoxedValue = Box<dyn Any + Send>;
type BoxedWork = Box<dyn FnOnce(&Triolet) -> (BoxedValue, RunStats, TraceData) + Send>;

struct QueuedJob {
    seq: u64,
    tenant: Tenant,
    cost: f64,
    submitted_s: f64,
    work: BoxedWork,
}

struct CompletedJob {
    value: BoxedValue,
    report: JobReport,
}

#[derive(Default)]
struct ServiceState {
    now_s: f64,
    next_seq: u64,
    pending: VecDeque<QueuedJob>,
    /// Per-tenant accumulated virtual runtime (fair-share stride clock).
    vruntime: Vec<f64>,
    usage: Vec<TenantUsage>,
    completed: Vec<Option<CompletedJob>>, // indexed by seq
    order: Vec<JobId>,
    busy_s: f64,
    node_busy_s: f64,
    rejected: u64,
}

impl ServiceState {
    fn usage_mut(&mut self, tenant: Tenant) -> &mut TenantUsage {
        let idx = tenant.idx();
        while self.usage.len() <= idx {
            let t = Tenant(self.usage.len() as u32);
            self.usage.push(TenantUsage::new(t));
        }
        if self.vruntime.len() <= idx {
            // A tenant joining late starts at the floor of the active
            // tenants' clocks, not at zero — otherwise it would monopolize
            // the cluster until it caught up on virtual runtime.
            let floor = self
                .usage
                .iter()
                .filter(|u| u.submitted > 0)
                .map(|u| self.vruntime.get(u.tenant.idx()).copied().unwrap_or(0.0))
                .fold(f64::INFINITY, f64::min);
            let floor = if floor.is_finite() { floor } else { 0.0 };
            self.vruntime.resize(idx + 1, floor);
        }
        &mut self.usage[idx]
    }
}

/// The long-running multi-tenant job service. See the module docs.
pub struct JobService {
    rt: Triolet,
    config: ServiceConfig,
    trace: TraceHandle,
    state: Mutex<ServiceState>,
    /// Serializes [`step`](Self::step): one job runs at a time, so the
    /// virtual clock advances atomically with the job that moved it.
    run_lock: Mutex<()>,
}

impl JobService {
    /// Wrap a runtime in a service. Span recording follows the runtime's
    /// cluster config (`with_trace(true)`).
    pub fn new(rt: Triolet, config: ServiceConfig) -> Self {
        let trace = if rt.cluster().config().trace {
            TraceHandle::recording()
        } else {
            TraceHandle::disabled()
        };
        JobService { rt, config, trace, state: Mutex::default(), run_lock: Mutex::new(()) }
    }

    /// The shared runtime jobs execute against.
    pub fn runtime(&self) -> &Triolet {
        &self.rt
    }

    /// The active scheduling policy.
    pub fn policy(&self) -> &SchedPolicy {
        &self.config.policy
    }

    /// Current service-clock seconds.
    pub fn now_s(&self) -> f64 {
        self.lock().now_s
    }

    /// Jobs currently pending.
    pub fn queue_len(&self) -> usize {
        self.lock().pending.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ServiceState> {
        self.state.lock().expect("service state mutex")
    }

    /// Submit a job for `tenant` with a declared `cost` (the fair-share
    /// charge, in arbitrary-but-consistent units — e.g. input items).
    /// Rejects with [`AdmissionError::Saturated`] when the queue is full.
    pub fn submit<T, F>(
        &self,
        tenant: Tenant,
        cost: f64,
        work: F,
    ) -> Result<JobHandle<T>, AdmissionError>
    where
        T: Send + 'static,
        F: FnOnce(&Triolet) -> Run<T> + Send + 'static,
    {
        match self.try_enqueue(tenant, cost, box_work(work), true) {
            Ok(id) => Ok(JobHandle { id, _value: PhantomData }),
            Err((err, _work)) => Err(err),
        }
    }

    /// Submit, running queued jobs to make room when the queue is full —
    /// the blocking flavor of admission control. "Blocking" is virtual
    /// too: the caller's wait shows up as queueing delay on the service
    /// clock, not as host wall time.
    pub fn submit_blocking<T, F>(&self, tenant: Tenant, cost: f64, work: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&Triolet) -> Run<T> + Send + 'static,
    {
        let mut boxed = box_work(work);
        loop {
            // A blocking submission stalled by backpressure is not a
            // rejection: only `submit` counts those.
            match self.try_enqueue(tenant, cost, boxed, false) {
                Ok(id) => return JobHandle { id, _value: PhantomData },
                Err((_, back)) => {
                    boxed = back;
                    // Saturated with nothing running means pending work
                    // exists by definition; drain one job and retry.
                    let ran = self.step();
                    assert!(ran.is_some(), "saturated queue must have runnable jobs");
                }
            }
        }
    }

    fn try_enqueue(
        &self,
        tenant: Tenant,
        cost: f64,
        work: BoxedWork,
        count_reject: bool,
    ) -> Result<JobId, (AdmissionError, BoxedWork)> {
        let mut st = self.lock();
        if st.pending.len() >= self.config.queue_cap {
            let now = st.now_s;
            if count_reject {
                st.rejected += 1;
                st.usage_mut(tenant).rejected += 1;
            }
            if count_reject && self.trace.enabled() {
                self.trace.event(
                    "service:reject",
                    "service",
                    Track::Root,
                    now,
                    vec![
                        ("tenant", ArgValue::U64(tenant.0 as u64)),
                        ("queue", ArgValue::U64(self.config.queue_cap as u64)),
                    ],
                );
            }
            return Err((AdmissionError::Saturated { cap: self.config.queue_cap }, work));
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let now = st.now_s;
        let usage = st.usage_mut(tenant);
        usage.submitted += 1;
        st.pending.push_back(QueuedJob { seq, tenant, cost, submitted_s: now, work });
        if self.trace.enabled() {
            self.trace.event(
                "service:admit",
                "service",
                Track::Root,
                now,
                vec![
                    ("tenant", ArgValue::U64(tenant.0 as u64)),
                    ("job", ArgValue::U64(seq)),
                    ("queued", ArgValue::U64(st.pending.len() as u64)),
                ],
            );
        }
        Ok(JobId(seq))
    }

    /// Run the next scheduled job to completion (None when the queue is
    /// empty). The policy picks the job; its modeled makespan advances the
    /// service clock; its tenant is charged `cost / weight` of virtual
    /// runtime.
    pub fn step(&self) -> Option<JobId> {
        let _running = self.run_lock.lock().expect("service run mutex");
        let (job, start) = {
            let mut st = self.lock();
            if st.pending.is_empty() {
                return None;
            }
            let metas: Vec<(Tenant, u64)> = st.pending.iter().map(|j| (j.tenant, j.seq)).collect();
            let vr = &st.vruntime;
            let idx =
                self.config.policy.select(&metas, |t| vr.get(t.idx()).copied().unwrap_or(0.0));
            let job = st.pending.remove(idx).expect("selected job index in range");
            (job, st.now_s)
        };

        let before = self.rt.cluster().stats().snapshot();
        let (value, stats, mut job_trace) = (job.work)(&self.rt);
        let traffic = self.rt.cluster().stats().snapshot().since(&before);

        let duration = stats.total_s.max(0.0);
        let finish = start + duration;
        let node_compute: f64 = stats.node_compute_s.iter().sum();

        let mut st = self.lock();
        st.now_s = finish;
        st.busy_s += duration;
        st.node_busy_s += node_compute;
        let weight = self.config.policy.weight_of(job.tenant);
        st.vruntime[job.tenant.idx()] += job.cost / weight;
        let report = JobReport {
            id: JobId(job.seq),
            tenant: job.tenant,
            cost: job.cost,
            submitted_s: job.submitted_s,
            started_s: start,
            finished_s: finish,
            stats,
            traffic,
        };
        {
            let usage = st.usage_mut(job.tenant);
            usage.completed += 1;
            usage.cost += job.cost;
            usage.busy_s += duration;
            usage.node_busy_s += node_compute;
            usage.traffic = usage.traffic.plus(&traffic);
            usage.latencies_s.push(report.latency_s());
        }
        if self.trace.enabled() {
            // Rebase the job's own timeline onto the service clock and
            // stamp every record with its tenant/job attribution.
            job_trace.shift(start);
            job_trace.tag("tenant", ArgValue::U64(job.tenant.0 as u64));
            job_trace.tag("job", ArgValue::U64(job.seq));
            self.trace.absorb(job_trace);
            self.trace.span(
                "service:job",
                "service",
                Track::Root,
                start,
                finish,
                vec![
                    ("tenant", ArgValue::U64(job.tenant.0 as u64)),
                    ("job", ArgValue::U64(job.seq)),
                    ("cost", ArgValue::F64(job.cost)),
                    ("policy", ArgValue::Str(self.config.policy.name().to_string())),
                ],
            );
        }
        let seq = job.seq as usize;
        if st.completed.len() <= seq {
            st.completed.resize_with(seq + 1, || None);
        }
        st.completed[seq] = Some(CompletedJob { value, report });
        st.order.push(JobId(job.seq));
        Some(JobId(job.seq))
    }

    /// Run queued jobs until the queue is empty.
    pub fn drain(&self) {
        while self.step().is_some() {}
    }

    /// Drive the service until `handle`'s job completes, then return its
    /// typed value and scheduling record.
    ///
    /// Panics if the handle's job is not queued or completed (impossible
    /// for handles obtained from this service's `submit*`).
    pub fn wait<T: Send + 'static>(&self, handle: JobHandle<T>) -> JobOutput<T> {
        loop {
            if let Some(done) = self.take_completed(handle.id) {
                let value = *done
                    .value
                    .downcast::<T>()
                    .expect("job handle type matches the submitted closure");
                return JobOutput { value, report: done.report };
            }
            assert!(
                self.step().is_some(),
                "job {:?} neither completed nor queued (double wait?)",
                handle.id
            );
        }
    }

    fn take_completed(&self, id: JobId) -> Option<CompletedJob> {
        let mut st = self.lock();
        st.completed.get_mut(id.0 as usize).and_then(Option::take)
    }

    /// Scheduling record of a completed job, without consuming its value.
    pub fn report(&self, id: JobId) -> Option<JobReport> {
        let st = self.lock();
        st.completed.get(id.0 as usize).and_then(|c| c.as_ref()).map(|c| c.report.clone())
    }

    /// Per-tenant accounting, indexed by tenant id.
    pub fn usage(&self) -> Vec<TenantUsage> {
        self.lock().usage.clone()
    }

    /// Completion order so far (the deterministic schedule).
    pub fn completion_order(&self) -> Vec<JobId> {
        self.lock().order.clone()
    }

    /// Service-wide aggregates.
    pub fn service_stats(&self) -> ServiceStats {
        let st = self.lock();
        ServiceStats {
            now_s: st.now_s,
            busy_s: st.busy_s,
            node_busy_s: st.node_busy_s,
            nodes: self.rt.nodes(),
            completed: st.order.len() as u64,
            rejected: st.rejected,
            queued: st.pending.len(),
        }
    }

    /// Drain the recorded service timeline (empty when the runtime was
    /// built without `with_trace(true)`).
    pub fn take_trace(&self) -> TraceData {
        self.trace.take()
    }
}

fn box_work<T, F>(work: F) -> BoxedWork
where
    T: Send + 'static,
    F: FnOnce(&Triolet) -> Run<T> + Send + 'static,
{
    Box::new(move |rt: &Triolet| {
        let run = work(rt);
        (Box::new(run.value) as BoxedValue, run.stats, run.trace)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet_cluster::ClusterConfig;
    use triolet_iter::{from_vec, TrioIter};

    fn service(policy: SchedPolicy, cap: usize) -> JobService {
        let rt = Triolet::new(ClusterConfig::virtual_cluster(2, 2));
        JobService::new(rt, ServiceConfig::new(policy).with_queue_cap(cap))
    }

    fn sum_job(n: u64) -> impl FnOnce(&Triolet) -> Run<u64> + Send + 'static {
        move |rt| rt.sum(from_vec((0..n).collect::<Vec<u64>>()).par())
    }

    #[test]
    fn submit_wait_returns_typed_value_and_report() {
        let svc = service(SchedPolicy::Fifo, 8);
        let h = svc.submit(Tenant(0), 1.0, sum_job(100)).expect("admitted");
        let out = svc.wait(h);
        assert_eq!(out.value, 4950);
        assert!(out.report.finished_s > 0.0);
        assert!(out.report.latency_s() >= 0.0);
        assert!(out.report.traffic.messages > 0, "dispatch traffic metered");
    }

    #[test]
    fn saturation_rejects_then_blocking_admission_drains() {
        let svc = service(SchedPolicy::Fifo, 2);
        let h0 = svc.submit(Tenant(0), 1.0, sum_job(10)).expect("admitted");
        let _h1 = svc.submit(Tenant(1), 1.0, sum_job(10)).expect("admitted");
        let err = svc.submit(Tenant(0), 1.0, sum_job(10)).expect_err("queue full");
        assert_eq!(err, AdmissionError::Saturated { cap: 2 });
        // Blocking admission runs queued work to make room.
        let h3 = svc.submit_blocking(Tenant(1), 1.0, sum_job(10));
        assert_eq!(svc.wait(h0).value, 45);
        svc.drain();
        assert_eq!(svc.wait(h3).value, 45);
        let stats = svc.service_stats();
        assert_eq!(stats.completed, 3, "3 admitted jobs, 1 rejected");
        assert_eq!(stats.rejected, 1);
        let usage = svc.usage();
        assert_eq!(usage[0].rejected, 1);
        assert_eq!(usage[1].completed, 2);
    }

    #[test]
    fn fifo_completes_in_submission_order() {
        let svc = service(SchedPolicy::Fifo, 16);
        let ids: Vec<JobId> = (0..6)
            .map(|i| svc.submit(Tenant((i % 3) as u32), 1.0, sum_job(10 + i)).unwrap().id)
            .collect();
        svc.drain();
        assert_eq!(svc.completion_order(), ids);
    }

    #[test]
    fn priority_runs_high_levels_first() {
        let svc = service(SchedPolicy::Priority { levels: vec![0, 5] }, 16);
        let low = svc.submit(Tenant(0), 1.0, sum_job(10)).unwrap().id;
        let hi_a = svc.submit(Tenant(1), 1.0, sum_job(10)).unwrap().id;
        let hi_b = svc.submit(Tenant(1), 1.0, sum_job(10)).unwrap().id;
        svc.drain();
        assert_eq!(svc.completion_order(), vec![hi_a, hi_b, low]);
    }

    #[test]
    fn fair_share_interleaves_by_weight() {
        // Tenant 1 weighs 3x tenant 0; with unit-cost jobs the stride
        // schedule must complete 3 of tenant 1's jobs per 1 of tenant 0's.
        let svc = service(SchedPolicy::FairShare { weights: vec![1.0, 3.0] }, 64);
        for _ in 0..4 {
            svc.submit(Tenant(0), 1.0, sum_job(10)).unwrap();
        }
        for _ in 0..12 {
            svc.submit(Tenant(1), 1.0, sum_job(10)).unwrap();
        }
        svc.drain();
        let order = svc.completion_order();
        // First 4 completions: tenant 0 once (vruntime 0 tie-break by id),
        // then tenant 1 three times before tenant 0's clock is lowest again.
        let tenants: Vec<u32> = order.iter().map(|id| svc.report(*id).unwrap().tenant.0).collect();
        let t1_in_first_8 = tenants[..8].iter().filter(|&&t| t == 1).count();
        assert_eq!(t1_in_first_8, 6, "3:1 interleave expected, got {tenants:?}");
        let usage = svc.usage();
        assert_eq!(usage[0].completed, 4);
        assert_eq!(usage[1].completed, 12);
    }

    #[test]
    fn virtual_clock_advances_by_modeled_makespans() {
        let svc = service(SchedPolicy::Fifo, 8);
        let h0 = svc.submit(Tenant(0), 1.0, sum_job(1000)).unwrap();
        let h1 = svc.submit(Tenant(0), 1.0, sum_job(1000)).unwrap();
        let a = svc.wait(h0);
        let b = svc.wait(h1);
        // Job 1 starts exactly when job 0 finishes, and the clock is the
        // running sum of makespans.
        assert_eq!(b.report.started_s.to_bits(), a.report.finished_s.to_bits());
        assert!((svc.now_s() - (a.report.stats.total_s + b.report.stats.total_s)).abs() < 1e-12);
        // Queueing delay: job 1 waited for job 0's makespan.
        assert!(b.report.queue_wait_s() >= a.report.stats.total_s - 1e-12);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert_eq!(percentile(&xs, 0.75), 3.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
