//! Scheduling policies as data.
//!
//! Following Mapple's lead, a policy is a *value* handed to the service,
//! not a trait object full of code: `SchedPolicy::FairShare { weights }`
//! carries the per-tenant weights, `Priority { levels }` the strict
//! levels. Selection is a pure function of the queue contents and the
//! accumulated per-tenant virtual runtimes, totally ordered by
//! `f64::total_cmp` with `(tenant, seq)` tie-breaks — so two runs of the
//! same submission sequence schedule bit-identically, whatever the host's
//! wall clock did.

/// A tenant of the job service, identified by a small dense id. Weights
/// (fair share) and levels (priority) are looked up by this id in the
/// active [`SchedPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tenant(pub u32);

impl Tenant {
    /// Index into per-tenant tables.
    pub fn idx(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// How the service picks the next queued job. Policies are plain data so
/// they can be constructed, logged, and compared without touching code.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedPolicy {
    /// Global submission order, tenants ignored.
    Fifo,
    /// Weighted fair sharing (stride scheduling): each completed job
    /// charges its tenant `cost / weight` of virtual runtime, and the
    /// tenant with the *least* accumulated virtual runtime runs next.
    /// `weights[tenant.idx()]`; tenants beyond the vector (or with a
    /// non-positive entry) weigh 1.0.
    FairShare { weights: Vec<f64> },
    /// Strict priority: the highest level with queued work runs first,
    /// submission order within a level. `levels[tenant.idx()]`; tenants
    /// beyond the vector have level 0.
    Priority { levels: Vec<u32> },
}

impl SchedPolicy {
    /// Short name for tables and span args.
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::FairShare { .. } => "fair",
            SchedPolicy::Priority { .. } => "priority",
        }
    }

    /// The fair-share weight of `tenant` under this policy (1.0 unless a
    /// positive `FairShare` weight is configured).
    pub fn weight_of(&self, tenant: Tenant) -> f64 {
        match self {
            SchedPolicy::FairShare { weights } => match weights.get(tenant.idx()) {
                Some(&w) if w > 0.0 => w,
                _ => 1.0,
            },
            _ => 1.0,
        }
    }

    /// The strict priority level of `tenant` (0 unless configured).
    pub fn level_of(&self, tenant: Tenant) -> u32 {
        match self {
            SchedPolicy::Priority { levels } => levels.get(tenant.idx()).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Pick the index of the next job to run from `queue` (entries are
    /// `(tenant, seq)` in arbitrary order; `seq` is the global submission
    /// counter). `vruntime(tenant)` is the tenant's accumulated virtual
    /// runtime (fair share only). Deterministic: every comparison is
    /// `u64`/`u32` order or `f64::total_cmp`, ties broken by tenant id
    /// then submission seq.
    pub fn select(&self, queue: &[(Tenant, u64)], vruntime: impl Fn(Tenant) -> f64) -> usize {
        assert!(!queue.is_empty(), "select on an empty queue");
        match self {
            SchedPolicy::Fifo => {
                let mut best = 0;
                for (i, cand) in queue.iter().enumerate().skip(1) {
                    if cand.1 < queue[best].1 {
                        best = i;
                    }
                }
                best
            }
            SchedPolicy::Priority { .. } => {
                // Highest level first; (seq) within a level. The key is
                // (level desc, seq asc) — tenant id never decides because
                // seqs are globally unique.
                let key = |&(t, seq): &(Tenant, u64)| (std::cmp::Reverse(self.level_of(t)), seq);
                let mut best = 0;
                for (i, cand) in queue.iter().enumerate().skip(1) {
                    if key(cand) < key(&queue[best]) {
                        best = i;
                    }
                }
                best
            }
            SchedPolicy::FairShare { .. } => {
                // The tenant with the least virtual runtime runs next;
                // within that tenant, oldest submission first.
                let key = |&(t, seq): &(Tenant, u64)| (vruntime(t), t.0, seq);
                let mut best = 0;
                for (i, cand) in queue.iter().enumerate().skip(1) {
                    let (av, at, aseq) = key(cand);
                    let (bv, bt, bseq) = key(&queue[best]);
                    if av.total_cmp(&bv).then(at.cmp(&bt)).then(aseq.cmp(&bseq)).is_lt() {
                        best = i;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_picks_min_seq() {
        let q = vec![(Tenant(2), 7), (Tenant(0), 3), (Tenant(1), 5)];
        assert_eq!(SchedPolicy::Fifo.select(&q, |_| 0.0), 1);
    }

    #[test]
    fn priority_picks_highest_level_then_seq() {
        let p = SchedPolicy::Priority { levels: vec![0, 2, 2] };
        let q = vec![(Tenant(0), 1), (Tenant(2), 4), (Tenant(1), 2)];
        // Tenants 1 and 2 share the top level; tenant 1's seq 2 is older.
        assert_eq!(p.select(&q, |_| 0.0), 2);
        assert_eq!(p.level_of(Tenant(9)), 0, "unlisted tenants get level 0");
    }

    #[test]
    fn fair_share_picks_least_vruntime_with_tenant_tiebreak() {
        let p = SchedPolicy::FairShare { weights: vec![1.0, 3.0] };
        let q = vec![(Tenant(0), 10), (Tenant(1), 11), (Tenant(1), 9)];
        // Equal vruntimes: lowest tenant id wins.
        assert_eq!(p.select(&q, |_| 0.5), 0);
        // Tenant 1 behind on vruntime: its *oldest* queued job (seq 9) wins.
        assert_eq!(p.select(&q, |t| if t.0 == 1 { 0.1 } else { 0.5 }), 2);
        assert_eq!(p.weight_of(Tenant(1)), 3.0);
        assert_eq!(p.weight_of(Tenant(7)), 1.0, "unlisted tenants weigh 1.0");
    }

    #[test]
    fn zero_or_negative_weights_are_clamped() {
        let p = SchedPolicy::FairShare { weights: vec![0.0, -2.0] };
        assert_eq!(p.weight_of(Tenant(0)), 1.0);
        assert_eq!(p.weight_of(Tenant(1)), 1.0);
    }
}
