//! Triolet-rs: algorithmic skeletons for high-performance cluster computing.
//!
//! A Rust reproduction of *"Triolet: A Programming System that Unifies
//! Algorithmic Skeleton Interfaces for High-Performance Cluster Computing"*
//! (Rodrigues, Jablin, Dakkak, Hwu — PPoPP 2014). The library unifies three
//! ideas the paper shows must coexist for skeletons to be fast:
//!
//! 1. **Hybrid fusible iterators** ([`triolet_iter`]) — loops compose
//!    (`map`, `zip`, `filter`, `concat_map`) without materializing
//!    intermediates, and irregular producers keep a partitionable outer
//!    loop.
//! 2. **Data distribution separated from work distribution**
//!    ([`triolet_iter::indexer`], [`triolet_domain`]) — slicing an iterator
//!    by a domain part extracts exactly the data that part's tasks read.
//! 3. **Two-level parallelism** ([`triolet_cluster`], [`triolet_pool`]) —
//!    message passing across nodes, work stealing within a node, private
//!    per-thread accumulation, per-node combining.
//!
//! The [`Triolet`] runtime exposes the paper's skeletons: `sum`, `reduce`,
//! `histogram`, `scatter_add`, `collect`, `build_vec`, `build_array2` —
//! each inspecting the iterator's `par`/`localpar` hint and picking the
//! sequential, threaded, or distributed implementation (paper §3.4).
//!
//! # Quickstart: the paper's dot product (§2)
//!
//! ```
//! use triolet::prelude::*;
//!
//! // def dot(xs, ys): return sum(x*y for (x, y) in par(zip(xs, ys)))
//! let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
//! let ys: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
//!
//! let rt = Triolet::new(ClusterConfig::virtual_cluster(4, 4));
//! let run = rt.sum(
//!     zip(from_vec(xs.clone()), from_vec(ys.clone()))
//!         .map(|(x, y): (f64, f64)| x * y)
//!         .par(),
//! );
//!
//! let expect: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
//! assert!((run.value - expect).abs() < 1e-9);
//! assert!(run.stats.total_s >= 0.0);
//! ```
//!
//! Every skeleton returns a [`Run`]: the value, its [`RunStats`], and — when
//! the cluster is configured with `with_trace(true)` — a [`TraceData`]
//! timeline exportable to chrome://tracing JSON.

pub mod dist;
pub mod engine;
pub mod report;
pub mod run;
pub mod service;

pub use dist::{
    AsEnv, DistArray2, DistInput, DistIter, DistVec, EnumView, HaloView, IntoDistInput, PackedEnv,
    ResidentPart, ResidentRun, RowsView, SliceView, ZipView,
};
pub use engine::Triolet;
pub use report::RunStats;
pub use run::Run;
pub use service::{
    AdmissionError, JobHandle, JobId, JobOutput, JobReport, JobService, SchedPolicy, ServiceConfig,
    ServiceStats, Tenant, TenantUsage,
};

// Re-export the substrate crates under the facade.
pub use triolet_cluster::{
    Cluster, ClusterConfig, CostModel, DispatchError, DistTiming, ExecMode, FaultPlan, NodeCtx,
    PipelineMode, SimCore, Topology, TraceData, TraceHandle, Track, TrafficSnapshot, TrafficStats,
};
pub use triolet_domain::{Dim2, Dim2Part, Dim3, Dim3Part, Domain, Part, Seq, SeqPart};
pub use triolet_iter::{
    array_iter, from_vec, indices, outerproduct, range, range2d, rows, zip, zip3, Array2, Array3,
    Collector, CountHist, IdxFlat, IdxNest, ParHint, StepFlat, StepNest, TrioIter, VecCollector,
    WeightHist,
};
pub use triolet_pool::ThreadPool;
pub use triolet_serial::Wire;

/// Everything an application typically needs.
pub mod prelude {
    pub use crate::dist::{AsEnv, DistArray2, DistIter, DistVec, IntoDistInput, PackedEnv};
    pub use crate::engine::Triolet;
    pub use crate::report::RunStats;
    pub use crate::run::Run;
    pub use crate::service::{AdmissionError, JobService, SchedPolicy, ServiceConfig, Tenant};
    pub use triolet_cluster::{
        ClusterConfig, CostModel, ExecMode, FaultPlan, PipelineMode, SimCore, Topology, TraceData,
    };
    pub use triolet_domain::{Dim2, Dim3, Domain, Part, Seq};
    pub use triolet_iter::prelude::*;
}
