//! Distributed data: partitionable iterators, persistent collections, and
//! the unified skeleton-input abstraction.
//!
//! Three layers build on each other:
//!
//! * [`DistIter`] — iterators whose outer loop can be partitioned and whose
//!   data sources can be sliced per part (the paper's §3.2/§3.5 machinery).
//! * [`DistVec`] / [`DistArray2`] — *persistent* collections whose segments
//!   are scattered once ([`Triolet::scatter`](crate::Triolet::scatter)) and
//!   stay resident in node-local stores across skeleton calls, with views
//!   ([`DistVec::slice`], [`DistVec::zip`], [`DistVec::enumerate`],
//!   [`DistVec::halo`]) that describe per-rank subranges without moving data.
//! * [`IntoDistInput`] / [`AsEnv`] — the unified input abstraction: every
//!   skeleton entry point has exactly one signature, accepting a local
//!   iterator, a resident collection view, and either a plain `&E`
//!   environment or a pre-packed [`PackedEnv`].

mod input;
mod iter;
mod vec;

pub(crate) use input::EnvArg;
pub use input::{AsEnv, DistInput, IntoDistInput, PackedEnv, ResidentPart, ResidentRun};
pub use iter::DistIter;
pub(crate) use vec::Seg;
pub use vec::{DistArray2, DistVec, EnumView, HaloView, RowsView, SliceView, ZipView};
