//! Persistent distributed collections: [`DistVec`], [`DistArray2`], and
//! their views.
//!
//! A `DistVec<T>` is created by
//! [`Triolet::scatter`](crate::Triolet::scatter): the vector splits into the
//! same per-node parts the shipped path would use
//! ([`Seq::split_parts`](triolet_domain::Domain::split_parts)), each segment
//! is sent once to its home rank, and the handle then feeds any number of
//! skeleton calls without moving input data again — a resident call ships
//! only a zero-byte task descriptor per node (plus the environment, plus any
//! halo a view declares). Views are cheap descriptions over the resident
//! segments; none of them move or copy segment data at construction.
//!
//! Residency is cooperative with fault injection: a crash that forces a
//! task off its home rank re-ships that segment to the survivor (a
//! `dist:resident-miss`), and the result is bit-identical because parts and
//! chunk boundaries depend only on lengths, never on the executing rank.

use std::ops::Range;
use std::sync::Arc;

use triolet_domain::SeqPart;
use triolet_iter::indexer::ArrayIdx;
use triolet_iter::shapes::IdxFlat;
use triolet_serial::Wire;

use super::input::{DistInput, IntoDistInput, ResidentPart, ResidentRun};

/// One resident segment: the contiguous rows of a collection that live on
/// `home`.
pub(crate) struct Seg<T> {
    pub(crate) home: usize,
    pub(crate) part: SeqPart,
    pub(crate) data: Arc<Vec<T>>,
    pub(crate) bytes: usize,
}

impl<T> Clone for Seg<T> {
    fn clone(&self) -> Self {
        Seg { home: self.home, part: self.part, data: Arc::clone(&self.data), bytes: self.bytes }
    }
}

impl<T> Seg<T> {
    /// Estimated wire bytes per element (for pro-rata slice/halo costs).
    fn elem_bytes(&self) -> usize {
        self.bytes / self.part.len.max(1)
    }
}

/// The element at global index `i`, looked up across segments (segments are
/// sorted by `part.start` and tile the index space).
fn element_at<T: Clone>(segs: &[Seg<T>], i: usize) -> T {
    let k = segs.partition_point(|s| s.part.end() <= i);
    let seg = &segs[k];
    seg.data[i - seg.part.start].clone()
}

/// A persistent distributed vector: segments scattered once, resident on
/// their home ranks across skeleton calls.
///
/// Pass `&dv` anywhere a skeleton takes an input, or build a view first:
/// [`slice`](DistVec::slice), [`enumerate`](DistVec::enumerate),
/// [`zip`](DistVec::zip), [`halo`](DistVec::halo).
pub struct DistVec<T> {
    id: u64,
    len: usize,
    segs: Arc<Vec<Seg<T>>>,
}

impl<T> Clone for DistVec<T> {
    fn clone(&self) -> Self {
        DistVec { id: self.id, len: self.len, segs: Arc::clone(&self.segs) }
    }
}

impl<T> DistVec<T> {
    pub(crate) fn from_segments(id: u64, len: usize, segs: Vec<Seg<T>>) -> Self {
        debug_assert!(segs.windows(2).all(|w| w[0].part.end() == w[1].part.start));
        DistVec { id, len, segs: Arc::new(segs) }
    }

    /// The resident-store id of this collection.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Total elements across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the collection holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of resident segments (one per participating rank).
    pub fn segments(&self) -> usize {
        self.segs.len()
    }

    /// Total bytes resident across all segments.
    pub fn resident_bytes(&self) -> usize {
        self.segs.iter().map(|s| s.bytes).sum()
    }

    /// A view over `range` of the index space. Only segments overlapping
    /// the range participate in calls over the view; no data moves.
    pub fn slice(&self, range: Range<usize>) -> SliceView<T> {
        assert!(range.start <= range.end && range.end <= self.len, "slice out of bounds");
        SliceView { id: self.id, segs: Arc::clone(&self.segs), range }
    }

    /// A view yielding `(global_index, element)` pairs.
    pub fn enumerate(&self) -> EnumView<T> {
        EnumView { id: self.id, len: self.len, segs: Arc::clone(&self.segs) }
    }

    /// Zip with another resident vector of identical segmentation (same
    /// length, scattered on the same runtime). Panics when the
    /// segmentations differ — elements would not be rank-aligned.
    pub fn zip<U>(&self, other: &DistVec<U>) -> ZipView<T, U> {
        assert_eq!(self.len, other.len, "zip of different-length collections");
        assert!(
            self.segs.len() == other.segs.len()
                && self
                    .segs
                    .iter()
                    .zip(other.segs.iter())
                    .all(|(a, b)| a.part == b.part && a.home == b.home),
            "zip requires identical segmentation (scatter both on the same runtime)"
        );
        ZipView {
            id: self.id,
            len: self.len,
            a: Arc::clone(&self.segs),
            b: Arc::clone(&other.segs),
        }
    }

    /// A ghost-cell view for stencils: yields `(global_index, window)` where
    /// `window` holds the elements at `i - radius ..= i + radius`, clamped
    /// to the collection bounds. Elements within `radius` of a segment
    /// boundary come from the neighboring segment; each call ships that
    /// halo (`~2 * radius` elements per boundary) — counted as input bytes,
    /// unlike the zero-byte interior.
    pub fn halo(&self, radius: usize) -> HaloView<T> {
        HaloView { id: self.id, len: self.len, radius, segs: Arc::clone(&self.segs) }
    }

    /// Assemble the full vector at the root (verification/debug only: the
    /// root retains segment references, so this models no gather traffic).
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.len);
        for seg in self.segs.iter() {
            out.extend(seg.data.iter().cloned());
        }
        out
    }
}

/// Build the full-collection resident parts, mapping each element through
/// per-segment closure factory `make` (shared by the whole-vec and
/// enumerated views, whose parts differ only in the emitted item).
fn whole_parts<T, Item>(
    segs: &Arc<Vec<Seg<T>>>,
    halo_bytes: impl Fn(&Seg<T>) -> usize,
    make: impl Fn(&Seg<T>) -> Arc<dyn Fn(usize, usize, &mut dyn FnMut(Item)) + Send + Sync>,
) -> Vec<ResidentPart<Item>> {
    segs.iter()
        .map(|seg| ResidentPart {
            home: seg.home,
            part: seg.part,
            seg_bytes: seg.bytes,
            halo_bytes: halo_bytes(seg),
            fold: make(seg),
        })
        .collect()
}

impl<T: Wire + Clone + Send + Sync + 'static> IntoDistInput for &DistVec<T> {
    type Item = T;
    type Iter = IdxFlat<ArrayIdx<T>>;

    fn into_dist_input(self) -> DistInput<Self::Iter> {
        let parts = whole_parts(
            &self.segs,
            |_| 0,
            |seg| {
                let data = Arc::clone(&seg.data);
                let base = seg.part.start;
                Arc::new(move |start, len, f: &mut dyn FnMut(T)| {
                    for x in &data[start - base..start - base + len] {
                        f(x.clone());
                    }
                })
            },
        );
        DistInput::Resident(ResidentRun { id: self.id, len: self.len, parts })
    }
}

/// A contiguous-range view of a [`DistVec`] (see [`DistVec::slice`]).
pub struct SliceView<T> {
    id: u64,
    segs: Arc<Vec<Seg<T>>>,
    range: Range<usize>,
}

impl<T: Wire + Clone + Send + Sync + 'static> IntoDistInput for SliceView<T> {
    type Item = T;
    type Iter = IdxFlat<ArrayIdx<T>>;

    fn into_dist_input(self) -> DistInput<Self::Iter> {
        let (a, b) = (self.range.start, self.range.end);
        let mut parts = Vec::new();
        for seg in self.segs.iter() {
            let lo = seg.part.start.max(a);
            let hi = seg.part.end().min(b);
            if lo >= hi {
                continue;
            }
            let data = Arc::clone(&seg.data);
            let base = seg.part.start;
            // View index v maps to global index a + v.
            parts.push(ResidentPart {
                home: seg.home,
                part: SeqPart::new(lo - a, hi - lo),
                seg_bytes: (seg.elem_bytes() * (hi - lo)).max(1),
                halo_bytes: 0,
                fold: Arc::new(move |start, len, f: &mut dyn FnMut(T)| {
                    let off = a + start - base;
                    for x in &data[off..off + len] {
                        f(x.clone());
                    }
                }),
            });
        }
        DistInput::Resident(ResidentRun { id: self.id, len: b - a, parts })
    }
}

/// An index-carrying view of a [`DistVec`] (see [`DistVec::enumerate`]).
pub struct EnumView<T> {
    id: u64,
    len: usize,
    segs: Arc<Vec<Seg<T>>>,
}

impl<T: Wire + Clone + Send + Sync + 'static> IntoDistInput for EnumView<T> {
    type Item = (usize, T);
    type Iter = IdxFlat<ArrayIdx<(usize, T)>>;

    fn into_dist_input(self) -> DistInput<Self::Iter> {
        let parts = whole_parts(
            &self.segs,
            |_| 0,
            |seg| {
                let data = Arc::clone(&seg.data);
                let base = seg.part.start;
                Arc::new(move |start, len, f: &mut dyn FnMut((usize, T))| {
                    for (k, x) in data[start - base..start - base + len].iter().enumerate() {
                        f((start + k, x.clone()));
                    }
                })
            },
        );
        DistInput::Resident(ResidentRun { id: self.id, len: self.len, parts })
    }
}

/// An element-aligned pairing of two identically-segmented [`DistVec`]s
/// (see [`DistVec::zip`]). A redispatch off-home re-ships both segments.
pub struct ZipView<T, U> {
    id: u64,
    len: usize,
    a: Arc<Vec<Seg<T>>>,
    b: Arc<Vec<Seg<U>>>,
}

impl<T, U> IntoDistInput for ZipView<T, U>
where
    T: Wire + Clone + Send + Sync + 'static,
    U: Wire + Clone + Send + Sync + 'static,
{
    type Item = (T, U);
    type Iter = IdxFlat<ArrayIdx<(T, U)>>;

    fn into_dist_input(self) -> DistInput<Self::Iter> {
        let parts = self
            .a
            .iter()
            .zip(self.b.iter())
            .map(|(sa, sb)| {
                let da = Arc::clone(&sa.data);
                let db = Arc::clone(&sb.data);
                let base = sa.part.start;
                ResidentPart {
                    home: sa.home,
                    part: sa.part,
                    seg_bytes: sa.bytes + sb.bytes,
                    halo_bytes: 0,
                    fold: Arc::new(move |start, len, f: &mut dyn FnMut((T, U))| {
                        let off = start - base;
                        for k in off..off + len {
                            f((da[k].clone(), db[k].clone()));
                        }
                    }),
                }
            })
            .collect();
        DistInput::Resident(ResidentRun { id: self.id, len: self.len, parts })
    }
}

/// A ghost-cell stencil view of a [`DistVec`] (see [`DistVec::halo`]).
pub struct HaloView<T> {
    id: u64,
    len: usize,
    radius: usize,
    segs: Arc<Vec<Seg<T>>>,
}

impl<T: Wire + Clone + Send + Sync + 'static> IntoDistInput for HaloView<T> {
    type Item = (usize, Vec<T>);
    type Iter = IdxFlat<ArrayIdx<(usize, Vec<T>)>>;

    fn into_dist_input(self) -> DistInput<Self::Iter> {
        let radius = self.radius;
        let n = self.len;
        let all = Arc::clone(&self.segs);
        let parts = whole_parts(
            &self.segs,
            // Each boundary needs up to `radius` ghost elements per side.
            |seg| 2 * radius * seg.elem_bytes(),
            |_seg| {
                let all = Arc::clone(&all);
                Arc::new(move |start, len, f: &mut dyn FnMut((usize, Vec<T>))| {
                    for i in start..start + len {
                        let lo = i.saturating_sub(radius);
                        let hi = (i + radius + 1).min(n);
                        let window: Vec<T> = (lo..hi).map(|j| element_at(&all, j)).collect();
                        f((i, window));
                    }
                })
            },
        );
        DistInput::Resident(ResidentRun { id: self.id, len: self.len, parts })
    }
}

/// A persistent distributed matrix: row slabs scattered once, resident on
/// their home ranks. `&da` iterates elements in row-major order;
/// [`rows`](DistArray2::rows) yields whole rows with their indices.
pub struct DistArray2<T> {
    id: u64,
    rows: usize,
    cols: usize,
    /// Segments partition the *row* space; each holds its slab row-major.
    segs: Arc<Vec<Seg<T>>>,
}

impl<T> Clone for DistArray2<T> {
    fn clone(&self) -> Self {
        DistArray2 { id: self.id, rows: self.rows, cols: self.cols, segs: Arc::clone(&self.segs) }
    }
}

impl<T> DistArray2<T> {
    pub(crate) fn from_segments(id: u64, rows: usize, cols: usize, segs: Vec<Seg<T>>) -> Self {
        DistArray2 { id, rows, cols, segs: Arc::new(segs) }
    }

    /// The resident-store id of this collection.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of resident row slabs.
    pub fn segments(&self) -> usize {
        self.segs.len()
    }

    /// A view yielding `(row_index, row)` pairs, one per matrix row.
    pub fn row_view(&self) -> RowsView<T> {
        RowsView { id: self.id, rows: self.rows, cols: self.cols, segs: Arc::clone(&self.segs) }
    }

    /// Assemble the full matrix at the root (verification/debug only; no
    /// gather traffic is modeled).
    pub fn to_array2(&self) -> triolet_iter::Array2<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for seg in self.segs.iter() {
            out.extend(seg.data.iter().cloned());
        }
        triolet_iter::Array2::from_vec(out, self.rows, self.cols)
    }
}

impl<T: Wire + Clone + Send + Sync + 'static> IntoDistInput for &DistArray2<T> {
    type Item = T;
    type Iter = IdxFlat<ArrayIdx<T>>;

    fn into_dist_input(self) -> DistInput<Self::Iter> {
        let cols = self.cols;
        // View space is the row-major element space: a row slab covering
        // rows [r0, r0 + k) covers elements [r0 * cols, (r0 + k) * cols).
        let parts = self
            .segs
            .iter()
            .map(|seg| {
                let data = Arc::clone(&seg.data);
                let base = seg.part.start * cols;
                ResidentPart {
                    home: seg.home,
                    part: SeqPart::new(base, seg.part.len * cols),
                    seg_bytes: seg.bytes,
                    halo_bytes: 0,
                    fold: Arc::new(move |start, len, f: &mut dyn FnMut(T)| {
                        for x in &data[start - base..start - base + len] {
                            f(x.clone());
                        }
                    }),
                }
            })
            .collect();
        DistInput::Resident(ResidentRun { id: self.id, len: self.rows * self.cols, parts })
    }
}

/// A whole-row view of a [`DistArray2`] (see [`DistArray2::row_view`]).
pub struct RowsView<T> {
    id: u64,
    rows: usize,
    cols: usize,
    segs: Arc<Vec<Seg<T>>>,
}

impl<T: Wire + Clone + Send + Sync + 'static> IntoDistInput for RowsView<T> {
    type Item = (usize, Vec<T>);
    type Iter = IdxFlat<ArrayIdx<(usize, Vec<T>)>>;

    fn into_dist_input(self) -> DistInput<Self::Iter> {
        let cols = self.cols;
        let parts = self
            .segs
            .iter()
            .map(|seg| {
                let data = Arc::clone(&seg.data);
                let base = seg.part.start;
                ResidentPart {
                    home: seg.home,
                    part: seg.part,
                    seg_bytes: seg.bytes,
                    halo_bytes: 0,
                    fold: Arc::new(move |start, len, f: &mut dyn FnMut((usize, Vec<T>))| {
                        for r in start..start + len {
                            let off = (r - base) * cols;
                            f((r, data[off..off + cols].to_vec()));
                        }
                    }),
                }
            })
            .collect();
        DistInput::Resident(ResidentRun { id: self.id, len: self.rows, parts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triolet_domain::{Domain, Seq};

    /// A hand-built DistVec over `data` split into `n` segments (the engine
    /// normally does this through `Triolet::scatter`).
    fn dv(data: Vec<i64>, n: usize) -> DistVec<i64> {
        let len = data.len();
        let shared = Arc::new(data);
        let segs = Seq::new(len)
            .split_parts(n)
            .into_iter()
            .enumerate()
            .map(|(i, part)| Seg {
                home: i,
                part,
                data: Arc::new(shared[part.range()].to_vec()),
                bytes: part.len * 8,
            })
            .collect();
        DistVec::from_segments(7, len, segs)
    }

    fn collect_input<In: IntoDistInput>(input: In) -> Vec<In::Item> {
        let mut out = Vec::new();
        match input.into_dist_input() {
            DistInput::Iter(_) => unreachable!("resident view"),
            DistInput::Resident(run) => {
                for p in &run.parts {
                    (p.fold)(p.part.start, p.part.len, &mut |x| out.push(x));
                }
            }
        }
        out
    }

    #[test]
    fn whole_vec_enumerates_in_order() {
        let v = dv((0..100).collect(), 4);
        assert_eq!(collect_input(&v), (0..100).collect::<Vec<i64>>());
        assert_eq!(v.to_vec(), (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn slice_view_covers_exactly_the_range() {
        let v = dv((0..100).collect(), 4);
        let got = collect_input(v.slice(10..90));
        assert_eq!(got, (10..90).collect::<Vec<i64>>());
        // A slice inside one segment involves only that segment.
        if let DistInput::Resident(run) = v.slice(2..20).into_dist_input() {
            assert_eq!(run.parts.len(), 1);
            assert_eq!(run.len, 18);
        }
    }

    #[test]
    fn enumerate_and_zip_align() {
        let v = dv((0..50).collect(), 3);
        let w = dv((0..50).map(|x| x * 10).collect(), 3);
        let pairs = collect_input(v.enumerate());
        assert!(pairs.iter().all(|&(i, x)| x == i as i64));
        let zipped = collect_input(v.zip(&w));
        assert!(zipped.iter().all(|&(a, b)| b == a * 10));
    }

    #[test]
    #[should_panic(expected = "identical segmentation")]
    fn zip_rejects_mismatched_segmentation() {
        let v = dv((0..50).collect(), 3);
        let w = dv((0..50).collect(), 4);
        let _ = v.zip(&w);
    }

    #[test]
    fn halo_windows_cross_segment_boundaries() {
        let v = dv((0..40).collect(), 4);
        let wins = collect_input(v.halo(2));
        assert_eq!(wins.len(), 40);
        // Interior point: full window centered on i.
        let (i, w) = &wins[17];
        assert_eq!(*i, 17);
        assert_eq!(*w, vec![15, 16, 17, 18, 19]);
        // Clamped at the edges.
        assert_eq!(wins[0].1, vec![0, 1, 2]);
        assert_eq!(wins[39].1, vec![37, 38, 39]);
        // Nonzero halo bytes are declared for the ghost exchange.
        if let DistInput::Resident(run) = v.halo(2).into_dist_input() {
            assert!(run.parts.iter().all(|p| p.halo_bytes > 0));
        }
    }

    #[test]
    fn array2_iterates_row_major_and_by_rows() {
        let rows = 6;
        let cols = 4;
        let data: Vec<i64> = (0..(rows * cols) as i64).collect();
        let shared = Arc::new(data.clone());
        let segs = Seq::new(rows)
            .split_parts(3)
            .into_iter()
            .enumerate()
            .map(|(i, part)| Seg {
                home: i,
                part,
                data: Arc::new(shared[part.start * cols..part.end() * cols].to_vec()),
                bytes: part.len * cols * 8,
            })
            .collect();
        let m = DistArray2::from_segments(9, rows, cols, segs);
        assert_eq!(collect_input(&m), data);
        let row_pairs = collect_input(m.row_view());
        assert_eq!(row_pairs.len(), rows);
        for (r, row) in &row_pairs {
            assert_eq!(row.len(), cols);
            assert_eq!(row[0], (r * cols) as i64);
        }
        assert_eq!(m.to_array2().as_slice(), &data[..]);
    }
}
