//! The unified skeleton-input abstraction: [`IntoDistInput`] for data and
//! [`AsEnv`] for broadcast environments.
//!
//! Every skeleton entry point takes one `input` (anything convertible to a
//! [`DistInput`]: a [`DistIter`] runs through the slice-and-ship path, a
//! resident [`DistVec`](super::DistVec) view runs in place on its home
//! ranks) and one `env` (anything implementing [`AsEnv`]: a plain `&E`
//! packed once inside the call, or a [`PackedEnv`] packed once across many
//! calls). The `*_packed` / `_env` method families this replaces are gone —
//! the type of the argument, not the name of the method, selects the path.

use std::sync::Arc;

use triolet_cluster::TrafficStats;
use triolet_domain::SeqPart;
use triolet_serial::{PackedPayload, Wire};

use super::DistIter;

/// A broadcast environment serialized exactly once.
///
/// Skeletons with a `&E` environment pack it once per call; a `PackedEnv`
/// lifts that caching across *calls*: multi-phase apps (tpacf's DD/RR/DR
/// correlations share the observed dataset) pack the shared data once via
/// [`Triolet::pack_env`](crate::Triolet::pack_env) and hand the same
/// `PackedEnv` to each skeleton. Every per-node copy and retransmission
/// reuses the one buffer — the paper's "serialize the closure's captured
/// environment once" (§3.4) made explicit. The original value stays
/// available for root-local execution paths, which never touch the bytes.
pub struct PackedEnv<E> {
    value: E,
    payload: PackedPayload,
}

impl<E: Wire> PackedEnv<E> {
    pub(crate) fn new(value: E, payload: PackedPayload) -> Self {
        PackedEnv { value, payload }
    }

    /// The environment value (used by sequential/local execution).
    pub fn value(&self) -> &E {
        &self.value
    }

    /// Bytes one copy of the environment occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.payload.len()
    }
}

/// How a skeleton call received its environment: a plain reference (packed
/// once inside the call) or an already-packed [`PackedEnv`] (packed once
/// across many calls). Root-local paths read the value; the distributed
/// path ships the payload. Produced by [`AsEnv::env_arg`]; not constructed
/// directly.
pub enum EnvArg<'a, E> {
    /// A borrowed environment value, serialized inside the skeleton call.
    Plain(&'a E),
    /// A pre-packed environment whose bytes are reused across calls.
    Packed(&'a PackedEnv<E>),
}

impl<'a, E: Wire> EnvArg<'a, E> {
    pub(crate) fn value(&self) -> &'a E {
        match self {
            EnvArg::Plain(e) => e,
            EnvArg::Packed(p) => &p.value,
        }
    }

    /// The serialized environment, packing now (and counting it) only for
    /// plain references. The zero-byte unit environment is never counted:
    /// nothing ships.
    pub(crate) fn payload(&self, stats: &TrafficStats) -> PackedPayload {
        match self {
            EnvArg::Plain(e) => {
                let p = PackedPayload::pack(*e);
                if !p.is_empty() {
                    stats.record_env_pack();
                }
                p
            }
            EnvArg::Packed(pe) => pe.payload.clone(),
        }
    }
}

/// A broadcast environment argument: `&E` (packed per call) or
/// `&PackedEnv<E>` (packed once across calls). Every skeleton with an
/// environment takes `impl AsEnv`, so one signature covers both — callers
/// that previously reached for a `*_packed` variant now just pass the
/// packed handle to the same method.
pub trait AsEnv {
    /// The environment value type every task reads.
    type Env: Wire + Send + Sync;

    /// View this argument as the engine's internal environment handle.
    fn env_arg(&self) -> EnvArg<'_, Self::Env>;
}

impl<E: Wire + Send + Sync> AsEnv for &E {
    type Env = E;

    fn env_arg(&self) -> EnvArg<'_, E> {
        EnvArg::Plain(self)
    }
}

impl<E: Wire + Send + Sync> AsEnv for &PackedEnv<E> {
    type Env = E;

    fn env_arg(&self) -> EnvArg<'_, E> {
        EnvArg::Packed(self)
    }
}

/// One resident task: a contiguous range of the input's index space whose
/// backing segment lives on `home`.
///
/// `fold` enumerates the items at input-space indices `start .. start + len`
/// (a subrange of `part`) — the engine splits `part` into the same chunks
/// as the re-broadcast path, so a resident execution folds and merges in an
/// identical order and the result is bit-identical.
pub struct ResidentPart<T> {
    /// Rank holding this part's segment.
    pub home: usize,
    /// The input-space range this part covers.
    pub part: SeqPart,
    /// Bytes re-shipped if a crash forces this task off its home rank.
    pub seg_bytes: usize,
    /// Ghost/halo bytes a view needs from neighboring segments each call.
    pub halo_bytes: usize,
    /// Enumerate items at input-space indices `start .. start + len`.
    #[allow(clippy::type_complexity)]
    pub fold: Arc<dyn Fn(usize, usize, &mut dyn FnMut(T)) + Send + Sync>,
}

impl<T> Clone for ResidentPart<T> {
    fn clone(&self) -> Self {
        ResidentPart {
            home: self.home,
            part: self.part,
            seg_bytes: self.seg_bytes,
            halo_bytes: self.halo_bytes,
            fold: Arc::clone(&self.fold),
        }
    }
}

/// A resident execution plan: one [`ResidentPart`] per home rank, covering
/// the view's index space in order. Produced by resident collection views;
/// consumed by the engine's resident dispatch arm.
pub struct ResidentRun<T> {
    /// The backing collection's store id (for hit/miss accounting).
    pub id: u64,
    /// Total items in the view's index space.
    pub len: usize,
    /// Parts in index order; `parts[i].part` ranges tile `0..len`.
    pub parts: Vec<ResidentPart<T>>,
}

/// A skeleton input, resolved: either an iterator to slice and ship, or a
/// resident plan to run in place.
pub enum DistInput<It: DistIter> {
    /// Root-held data: slice per part and ship each node its share.
    Iter(It),
    /// Resident data: dispatch zero-byte descriptors to the home ranks.
    Resident(ResidentRun<It::Item>),
}

/// Anything a skeleton can consume as its data input: every [`DistIter`]
/// (local iterators, sliced and shipped per call) and every resident
/// collection view (`&DistVec`, [`SliceView`](super::SliceView), …, which
/// run on the ranks already holding their segments).
pub trait IntoDistInput {
    /// The element type the skeleton's closures receive.
    type Item;
    /// The iterator type of the shipped path. Resident inputs never
    /// construct one; the type only carries `Item` and the outer domain
    /// shape to the engine's bounds.
    type Iter: DistIter<Item = Self::Item>;

    /// Resolve to the concrete input the engine dispatches on.
    fn into_dist_input(self) -> DistInput<Self::Iter>;
}

impl<It: DistIter> IntoDistInput for It {
    type Item = It::Item;
    type Iter = It;

    fn into_dist_input(self) -> DistInput<It> {
        DistInput::Iter(self)
    }
}
