//! Run statistics returned beside every skeleton result.

use triolet_cluster::DistTiming;

/// Timing and traffic breakdown of one skeleton execution.
///
/// `total_s` is wall-clock in `Measured` mode and the modeled distributed
/// makespan in `Virtual` mode (see [`triolet_cluster`] for the model).
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// End-to-end seconds.
    pub total_s: f64,
    /// Seconds attributed to inter-node communication.
    pub comm_s: f64,
    /// Seconds spent at the root outside the distributed region (slicing
    /// inputs, merging node partials, assembling outputs).
    pub root_s: f64,
    /// Per-node compute seconds.
    pub node_compute_s: Vec<f64>,
    /// Bytes shipped root -> nodes.
    pub bytes_out: u64,
    /// Bytes shipped nodes -> root.
    pub bytes_back: u64,
    /// Messages in both directions.
    pub messages: u64,
    /// Retransmissions forced by injected faults (0 without a fault plan).
    pub retries: u64,
    /// Tasks moved to a surviving node after a failure (0 without faults).
    pub redispatches: u64,
    /// Resident tasks that executed on their segment's home rank.
    pub resident_hits: u64,
    /// Resident tasks whose segment was re-shipped to a survivor.
    pub resident_misses: u64,
    /// Result-unpack bytes memcpy'd out of received buffers at the root.
    pub unpack_copied: u64,
    /// Result-unpack bytes aliased in place (zero-copy views) at the root.
    pub unpack_aliased: u64,
}

impl RunStats {
    /// Stats for a purely sequential or purely local run.
    pub fn local(total_s: f64) -> Self {
        RunStats {
            total_s,
            comm_s: 0.0,
            root_s: 0.0,
            node_compute_s: vec![total_s],
            bytes_out: 0,
            bytes_back: 0,
            messages: 0,
            retries: 0,
            redispatches: 0,
            resident_hits: 0,
            resident_misses: 0,
            unpack_copied: 0,
            unpack_aliased: 0,
        }
    }

    /// Combine a distributed timing with root-side seconds.
    pub fn from_dist(d: DistTiming, root_s: f64) -> Self {
        RunStats {
            total_s: d.total_s + root_s,
            comm_s: d.comm_s,
            root_s,
            node_compute_s: d.node_compute_s,
            bytes_out: d.bytes_out,
            bytes_back: d.bytes_back,
            messages: d.messages,
            retries: d.retries,
            redispatches: d.redispatches,
            resident_hits: d.resident_hits,
            resident_misses: d.resident_misses,
            unpack_copied: d.unpack_copied,
            unpack_aliased: d.unpack_aliased,
        }
    }

    /// Combine a distributed timing with root-side work that *overlapped*
    /// the distributed region (the streamed pipeline's merge): `root_s`
    /// still reports the root's busy seconds, but the end-to-end total is
    /// the overlapped makespan rather than their sum.
    pub fn overlapped(d: DistTiming, root_s: f64, total_s: f64) -> Self {
        RunStats {
            total_s,
            comm_s: d.comm_s,
            root_s,
            node_compute_s: d.node_compute_s,
            bytes_out: d.bytes_out,
            bytes_back: d.bytes_back,
            messages: d.messages,
            retries: d.retries,
            redispatches: d.redispatches,
            resident_hits: d.resident_hits,
            resident_misses: d.resident_misses,
            unpack_copied: d.unpack_copied,
            unpack_aliased: d.unpack_aliased,
        }
    }

    /// Combine with the stats of a phase that ran *after* this one
    /// (totals add; per-node compute adds elementwise).
    pub fn then(mut self, other: RunStats) -> RunStats {
        self.total_s += other.total_s;
        self.comm_s += other.comm_s;
        self.root_s += other.root_s;
        self.bytes_out += other.bytes_out;
        self.bytes_back += other.bytes_back;
        self.messages += other.messages;
        self.retries += other.retries;
        self.redispatches += other.redispatches;
        self.resident_hits += other.resident_hits;
        self.resident_misses += other.resident_misses;
        self.unpack_copied += other.unpack_copied;
        self.unpack_aliased += other.unpack_aliased;
        if self.node_compute_s.len() < other.node_compute_s.len() {
            self.node_compute_s.resize(other.node_compute_s.len(), 0.0);
        }
        for (a, b) in self.node_compute_s.iter_mut().zip(&other.node_compute_s) {
            *a += b;
        }
        self
    }

    /// The slowest node's compute seconds.
    pub fn compute_span_s(&self) -> f64 {
        self.node_compute_s.iter().cloned().fold(0.0, f64::max)
    }

    /// Fraction of total time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        if self.total_s <= 0.0 {
            0.0
        } else {
            self.comm_s / self.total_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_stats_have_no_comm() {
        let s = RunStats::local(1.5);
        assert_eq!(s.comm_s, 0.0);
        assert_eq!(s.messages, 0);
        assert_eq!(s.compute_span_s(), 1.5);
    }

    #[test]
    fn from_dist_adds_root_time() {
        let d = DistTiming {
            total_s: 2.0,
            comm_s: 0.5,
            node_compute_s: vec![1.0, 1.4],
            bytes_out: 10,
            bytes_back: 20,
            messages: 4,
            retries: 3,
            redispatches: 1,
            resident_hits: 0,
            resident_misses: 0,
            unpack_copied: 0,
            unpack_aliased: 0,
        };
        let s = RunStats::from_dist(d, 0.25);
        assert!((s.total_s - 2.25).abs() < 1e-12);
        assert_eq!(s.root_s, 0.25);
        assert_eq!(s.retries, 3);
        assert_eq!(s.redispatches, 1);
        assert!((s.compute_span_s() - 1.4).abs() < 1e-12);
        assert!((s.comm_fraction() - 0.5 / 2.25).abs() < 1e-12);
    }
}
