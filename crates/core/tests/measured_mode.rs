//! Measured-mode (real OS threads) integration tests for the engine: the
//! same skeletons that run in virtual time must produce identical results
//! when every node is a live thread with a live work-stealing pool — and
//! concurrent reuse of one runtime must be safe.

use triolet::prelude::*;
use triolet::{Array2, CountHist};

fn measured(nodes: usize, tpn: usize) -> Triolet {
    Triolet::new(ClusterConfig::measured(nodes, tpn))
}

#[test]
fn all_consumers_agree_with_sequential() {
    let rt = measured(2, 2);
    let xs: Vec<i64> = (0..5000).map(|i| (i * 2654435761) % 997 - 498).collect();

    let sum = rt.sum(from_vec(xs.clone()).par());
    assert_eq!(sum.value, xs.iter().sum::<i64>());

    let cnt = rt.count(from_vec(xs.clone()).filter(|x: &i64| *x > 0).par());
    assert_eq!(cnt.value, xs.iter().filter(|&&x| x > 0).count() as u64);

    let mx = rt.max(from_vec(xs.clone()).par());
    assert_eq!(mx.value, xs.iter().copied().max());

    let v = rt.build_vec(from_vec(xs.clone()).map(|x: i64| x * 2).par(), &(), |_, x| x);
    assert_eq!(v.value, xs.iter().map(|x| x * 2).collect::<Vec<_>>());

    let hist = rt.histogram(64, from_vec(xs.clone()).map(|x: i64| x.rem_euclid(64) as usize).par());
    let mut expect = vec![0u64; 64];
    for x in &xs {
        expect[x.rem_euclid(64) as usize] += 1;
    }
    assert_eq!(hist.value, expect);
}

#[test]
fn build_array2_measured() {
    let rt = measured(2, 2);
    let m =
        rt.build_array2(range2d(13, 9).map(|(r, c): (usize, usize)| (r * 100 + c) as u32).par());
    let expect = Array2::from_fn(13, 9, |r, c| (r * 100 + c) as u32);
    assert_eq!(m.value, expect);
}

#[test]
fn env_skeletons_measured() {
    let rt = measured(2, 2);
    let weights: Vec<f64> = (0..32).map(|i| i as f64 * 0.25).collect();
    let v = rt.build_vec(range(200), &weights, |w: &Vec<f64>, i: usize| w[i % w.len()] * i as f64);
    let expect: Vec<f64> = (0..200).map(|i| weights[i % 32] * i as f64).collect();
    assert_eq!(v.value, expect);

    let h = rt.fold_reduce(
        range(1000).par(),
        &weights,
        || CountHist::new(32),
        |w: &Vec<f64>, mut h: CountHist, i: usize| {
            h.feed((w[i % w.len()] * 4.0) as usize % 32);
            h
        },
        |mut a, b| {
            a.merge(b);
            a
        },
    );
    assert_eq!(h.value.bins().iter().sum::<u64>(), 1000);
}

#[test]
fn runtime_is_reusable_across_many_operations() {
    // One runtime, many skeleton invocations back to back (no leaked state,
    // no pool exhaustion).
    let rt = measured(2, 2);
    let mut total = 0u64;
    for i in 0..50u64 {
        let s = rt.sum(range(100).map(move |k: usize| k as u64 + i).par());
        total += s.value;
    }
    let per_run: u64 = (0..100u64).sum();
    let expect: u64 = (0..50u64).map(|i| per_run + 100 * i).sum();
    assert_eq!(total, expect);
}

#[test]
fn runtime_shared_across_os_threads() {
    // The runtime is Sync: concurrent callers must not interfere.
    let rt = std::sync::Arc::new(measured(2, 2));
    let results: Vec<u64> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..4u64)
            .map(|t| {
                let rt = std::sync::Arc::clone(&rt);
                s.spawn(move || {
                    let c = rt.count(
                        range(400).filter(move |i: &usize| (*i as u64).is_multiple_of(t + 2)).par(),
                    );
                    c.value
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().expect("no panics")).collect()
    });
    for (t, c) in results.into_iter().enumerate() {
        let expect = (0..400u64).filter(|i| i % (t as u64 + 2) == 0).count() as u64;
        assert_eq!(c, expect);
    }
}

#[test]
fn virtual_and_measured_bytes_match() {
    // The traffic accounting must not depend on the execution mode.
    let xs: Vec<f32> = (0..3000).map(|i| i as f32).collect();
    let run = |rt: &Triolet| rt.sum(from_vec(xs.clone()).map(|x: f32| x as f64).par()).stats;
    let v = run(&Triolet::new(ClusterConfig::virtual_cluster(3, 2)));
    let m = run(&measured(3, 2));
    assert_eq!(v.bytes_out, m.bytes_out);
    assert_eq!(v.bytes_back, m.bytes_back);
    assert_eq!(v.messages, m.messages);
}
