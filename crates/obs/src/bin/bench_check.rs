//! Offline validator for the committed `BENCH_*.json` trajectory.
//!
//! ```text
//! bench_check BENCH_scale.json BENCH_tenancy.json ...
//! ```
//!
//! Every committed capture must stay loadable by downstream tooling, so
//! each file is checked for:
//!
//! - valid JSON with a top-level object and a `"bench"` name string;
//! - if a `"points"` array exists: non-empty, all elements objects, every
//!   point carrying exactly the same key set as the first (schema drift
//!   inside one capture is the classic silent-breakage mode), and only
//!   scalar values (numbers, strings, booleans);
//! - known benches additionally checked against a required-field registry,
//!   so renaming or dropping a reported metric fails CI instead of
//!   silently orphaning the plot scripts.
//!
//! Exits non-zero with a diagnostic naming the first offending file/field.

use std::process::ExitCode;

use triolet_obs::json::{parse, Value};

/// Required fields per known bench: `(bench_name, top_level, point_fields)`.
/// `point_fields` is checked against each element of `points`; benches
/// without a `points` array list their required top-level sections instead.
const REGISTRY: &[(&str, &[&str], &[&str])] = &[
    ("ablation_collectives", &["points"], &["nodes", "topology", "total_s", "comm_s", "env_packs"]),
    (
        "ablation_distvec",
        &["points"],
        &["nodes", "input", "total_s", "bytes_per_iter", "resident_hits", "scatter_bytes"],
    ),
    ("ablation_pipeline", &["points"], &["nodes", "pipeline", "total_s", "root_s"]),
    ("ablation_kernels", &["sgemm", "tpacf", "unpack", "e2e_sgemm"], &[]),
    (
        "ablation_scale",
        &["points"],
        &["ranks", "core", "sim_wall_s", "events", "events_per_s", "peak_heap", "total_s"],
    ),
    (
        "ablation_tenancy",
        &["nodes", "queue_cap", "points"],
        &[
            "policy",
            "tenant",
            "weight",
            "jobs",
            "share_cost",
            "share_busy",
            "share_err",
            "p50_s",
            "p99_s",
            "utilization",
        ],
    ),
];

fn is_scalar(v: &Value) -> bool {
    matches!(v, Value::Num(_) | Value::Str(_) | Value::Bool(_))
}

fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let Some(obj) = doc.as_object() else {
        return Err(format!("{path}: top level is not an object"));
    };
    let Some(bench) = doc.get("bench").and_then(Value::as_str) else {
        return Err(format!("{path}: missing \"bench\" name string"));
    };

    let mut n_points = 0usize;
    if let Some(points) = doc.get("points") {
        let Some(points) = points.as_array() else {
            return Err(format!("{path}: \"points\" is not an array"));
        };
        if points.is_empty() {
            return Err(format!("{path}: \"points\" is empty"));
        }
        let Some(first) = points[0].as_object() else {
            return Err(format!("{path}: points[0] is not an object"));
        };
        let mut schema: Vec<&str> = first.iter().map(|(k, _)| k.as_str()).collect();
        schema.sort_unstable();
        for (i, p) in points.iter().enumerate() {
            let Some(p) = p.as_object() else {
                return Err(format!("{path}: points[{i}] is not an object"));
            };
            let mut keys: Vec<&str> = p.iter().map(|(k, _)| k.as_str()).collect();
            keys.sort_unstable();
            if keys != schema {
                return Err(format!(
                    "{path}: schema drift at points[{i}]: {keys:?} != points[0] {schema:?}"
                ));
            }
            for (k, v) in p {
                if !is_scalar(v) {
                    return Err(format!("{path}: points[{i}].{k} is not a scalar"));
                }
            }
        }
        n_points = points.len();
    }

    if let Some(&(_, top, point_fields)) = REGISTRY.iter().find(|(name, _, _)| *name == bench) {
        for field in top {
            if doc.get(field).is_none() {
                return Err(format!("{path}: bench {bench:?} missing required field {field:?}"));
            }
        }
        if !point_fields.is_empty() {
            let points = doc.get("points").and_then(Value::as_array).expect("checked above");
            for (i, p) in points.iter().enumerate() {
                for field in point_fields {
                    if p.get(field).is_none() {
                        return Err(format!(
                            "{path}: bench {bench:?} missing point field {field:?} at points[{i}]"
                        ));
                    }
                }
            }
        }
    } else {
        // Unknown bench names still get the generic checks above, but the
        // registry should grow with the trajectory: say so loudly.
        eprintln!(
            "bench_check: note: {path}: bench {bench:?} not in registry (generic checks only)"
        );
    }
    let _ = obj;
    Ok(format!("{path}: bench {bench:?} ok ({n_points} points)"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: bench_check BENCH_FILE.json ...");
        return ExitCode::FAILURE;
    }
    for path in &args {
        match check_file(path) {
            Ok(msg) => println!("bench_check: OK: {msg}"),
            Err(msg) => {
                eprintln!("bench_check: FAIL: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
