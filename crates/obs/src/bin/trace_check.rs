//! Offline trace validator for CI: check that an exported chrome://tracing
//! file parses as JSON, has a non-empty `traceEvents` array, and contains
//! every required span/event name given on the command line.
//!
//! ```text
//! trace_check out.trace.json skeleton:build_vec dispatch chunk
//! trace_check out.trace.json --events retry redispatch
//! trace_check out.trace.json service:job --tagged service:job tenant
//! ```
//!
//! Names before `--events` must appear as spans (`ph: "X"`); names after it
//! must appear as instants (`ph: "i"`). `--tagged` takes NAME KEY pairs:
//! at least one span named NAME must exist and *every* such span must
//! carry KEY in its `args` object — how CI proves per-tenant attribution
//! survived the export. Exits non-zero with a diagnostic on the first
//! failure.

use std::process::ExitCode;

use triolet_obs::json::{parse, Value};

fn fail(msg: String) -> ExitCode {
    eprintln!("trace_check: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((path, rest)) = args.split_first() else {
        return fail(
            "usage: trace_check FILE [SPAN_NAME...] [--events EVENT_NAME...] \
             [--tagged SPAN_NAME ARG_KEY ...]"
                .into(),
        );
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(format!("cannot read {path}: {e}")),
    };
    let doc = match parse(&text) {
        Ok(v) => v,
        Err(e) => return fail(format!("{path} is not valid JSON: {e}")),
    };
    let Some(events) = doc.get("traceEvents").and_then(Value::as_array) else {
        return fail(format!("{path} has no traceEvents array"));
    };
    if events.is_empty() {
        return fail(format!("{path}: traceEvents is empty"));
    }
    let with_ph = |ph: &str| -> Vec<&Value> {
        events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some(ph)).collect()
    };
    let names_of = |pool: &[&Value]| -> Vec<String> {
        pool.iter()
            .filter_map(|e| e.get("name").and_then(Value::as_str))
            .map(str::to_string)
            .collect()
    };
    let span_records = with_ph("X");
    let spans = names_of(&span_records);
    let instants = names_of(&with_ph("i"));
    if spans.is_empty() {
        return fail(format!("{path}: no complete (ph=X) span events"));
    }

    #[derive(PartialEq)]
    enum Mode {
        Spans,
        Events,
        Tagged,
    }
    let mut mode = Mode::Spans;
    let mut rest = rest.iter();
    while let Some(name) = rest.next() {
        match name.as_str() {
            "--events" => {
                mode = Mode::Events;
                continue;
            }
            "--tagged" => {
                mode = Mode::Tagged;
                continue;
            }
            _ => {}
        }
        match mode {
            Mode::Spans | Mode::Events => {
                let (pool, kind) = if mode == Mode::Events {
                    (&instants, "instant event")
                } else {
                    (&spans, "span")
                };
                if !pool.iter().any(|n| n == name) {
                    return fail(format!("{path}: required {kind} {name:?} not found"));
                }
            }
            Mode::Tagged => {
                let Some(key) = rest.next() else {
                    return fail(format!("--tagged {name} is missing its ARG_KEY"));
                };
                let matching: Vec<&&Value> = span_records
                    .iter()
                    .filter(|e| e.get("name").and_then(Value::as_str) == Some(name))
                    .collect();
                if matching.is_empty() {
                    return fail(format!(
                        "{path}: no span named {name:?} to check for tag {key:?}"
                    ));
                }
                for span in matching {
                    if span.get("args").and_then(|a| a.get(key)).is_none() {
                        return fail(format!(
                            "{path}: span {name:?} found without required arg {key:?}"
                        ));
                    }
                }
            }
        }
    }
    println!(
        "trace_check: OK: {path}: {} events ({} spans, {} instants)",
        events.len(),
        spans.len(),
        instants.len()
    );
    ExitCode::SUCCESS
}
