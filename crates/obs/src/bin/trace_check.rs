//! Offline trace validator for CI: check that an exported chrome://tracing
//! file parses as JSON, has a non-empty `traceEvents` array, and contains
//! every required span/event name given on the command line.
//!
//! ```text
//! trace_check out.trace.json skeleton:build_vec dispatch chunk
//! trace_check out.trace.json --events retry redispatch
//! ```
//!
//! Names before `--events` must appear as spans (`ph: "X"`); names after it
//! must appear as instants (`ph: "i"`). Exits non-zero with a diagnostic on
//! the first failure.

use std::process::ExitCode;

use triolet_obs::json::{parse, Value};

fn fail(msg: String) -> ExitCode {
    eprintln!("trace_check: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((path, rest)) = args.split_first() else {
        return fail("usage: trace_check FILE [SPAN_NAME...] [--events EVENT_NAME...]".into());
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(format!("cannot read {path}: {e}")),
    };
    let doc = match parse(&text) {
        Ok(v) => v,
        Err(e) => return fail(format!("{path} is not valid JSON: {e}")),
    };
    let Some(events) = doc.get("traceEvents").and_then(Value::as_array) else {
        return fail(format!("{path} has no traceEvents array"));
    };
    if events.is_empty() {
        return fail(format!("{path}: traceEvents is empty"));
    }
    let names_with_ph = |ph: &str| -> Vec<&str> {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some(ph))
            .filter_map(|e| e.get("name").and_then(Value::as_str))
            .collect()
    };
    let spans = names_with_ph("X");
    let instants = names_with_ph("i");
    if spans.is_empty() {
        return fail(format!("{path}: no complete (ph=X) span events"));
    }

    let mut want_events = false;
    for name in rest {
        if name == "--events" {
            want_events = true;
            continue;
        }
        let (pool, kind) =
            if want_events { (&instants, "instant event") } else { (&spans, "span") };
        if !pool.contains(&name.as_str()) {
            return fail(format!("{path}: required {kind} {name:?} not found"));
        }
    }
    println!(
        "trace_check: OK: {path}: {} events ({} spans, {} instants)",
        events.len(),
        spans.len(),
        instants.len()
    );
    ExitCode::SUCCESS
}
