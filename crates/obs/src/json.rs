//! A minimal JSON parser — just enough to validate exported traces in
//! tests and in the offline CI gate (`trace_check`), with no external
//! dependency and no assumption that a Python interpreter exists on the CI
//! host.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The field list of an object value (None for non-objects). Fields
    /// keep document order.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing whitespace allowed, anything
/// else after the top-level value is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or_else(|| "unexpected end of input".to_string())?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, got '{}'",
                b as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Obj(fields)),
                c => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got '{}'",
                        self.pos - 1,
                        c as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Arr(items)),
                c => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got '{}'",
                        self.pos - 1,
                        c as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        self.pos += 4;
                        // Surrogate pairs are not needed for our traces;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("bad escape '\\{}'", c as char)),
                },
                c if c < 0x20 => return Err("raw control character in string".into()),
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str), Some("x\ny"));
        assert_eq!(v.get("b").and_then(|b| b.get("e")), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1}garbage"#).is_err());
        assert!(parse("0x12").is_err());
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        let v = parse(r#""é café ü""#).unwrap();
        assert_eq!(v.as_str(), Some("é café ü"));
    }
}
