//! chrome://tracing "JSON Object Format" export.
//!
//! One complete (`ph: "X"`) event per span, one instant (`ph: "i"`) per
//! point event, plus `process_name` metadata so Perfetto labels the root
//! and each node. Timestamps are microseconds; span times below 1 µs are
//! kept (fractional µs are legal in the format).

use crate::{ArgValue, TraceData, Track};

/// Escape a string for a JSON string literal (no surrounding quotes).
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Format an f64 so serde-less JSON stays valid (no NaN/inf literals).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn push_args(args: &[(&'static str, ArgValue)], out: &mut String) {
    if args.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape(k, out);
        out.push_str("\":");
        match v {
            ArgValue::U64(u) => out.push_str(&u.to_string()),
            ArgValue::F64(f) => out.push_str(&num(*f)),
            ArgValue::Str(s) => {
                out.push('"');
                escape(s, out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

fn push_common(name: &str, cat: &str, track: Track, out: &mut String) {
    out.push_str("{\"name\":\"");
    escape(name, out);
    out.push_str("\",\"cat\":\"");
    escape(cat, out);
    out.push_str("\",\"pid\":");
    out.push_str(&track.pid().to_string());
    out.push_str(",\"tid\":");
    out.push_str(&track.tid().to_string());
}

/// Serialize a [`TraceData`] to a chrome://tracing JSON document.
pub fn to_chrome_json(data: &TraceData) -> String {
    // Collect the processes in play so each gets a name row.
    let mut pids: Vec<(u64, String)> = Vec::new();
    let mut note = |track: Track| {
        let pid = track.pid();
        if !pids.iter().any(|(p, _)| *p == pid) {
            let label = if pid == 0 { "root".to_string() } else { format!("node {}", pid - 1) };
            pids.push((pid, label));
        }
    };
    for s in &data.spans {
        note(s.track);
    }
    for e in &data.events {
        note(e.track);
    }
    pids.sort_by_key(|(p, _)| *p);

    let mut out = String::with_capacity(128 * (data.spans.len() + data.events.len()) + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };
    for (pid, label) in &pids {
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{label}\"}}}}"
        ));
    }
    for s in &data.spans {
        sep(&mut out);
        push_common(&s.name, s.cat, s.track, &mut out);
        out.push_str(",\"ph\":\"X\",\"ts\":");
        out.push_str(&num(s.t0 * 1e6));
        out.push_str(",\"dur\":");
        out.push_str(&num(s.duration() * 1e6));
        push_args(&s.args, &mut out);
        out.push('}');
    }
    for e in &data.events {
        sep(&mut out);
        push_common(&e.name, e.cat, e.track, &mut out);
        out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
        out.push_str(&num(e.t * 1e6));
        push_args(&e.args, &mut out);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::{TraceHandle, Track};

    #[test]
    fn exported_json_parses_and_carries_every_record() {
        let h = TraceHandle::recording();
        h.span("skeleton:sum", "skeleton", Track::Root, 0.0, 1.5e-3, vec![]);
        h.span(
            "chunk",
            "compute",
            Track::Worker { rank: 0, worker: 1 },
            1e-4,
            9e-4,
            vec![("chunk", 3u64.into()), ("note", "a\"b\\c".into())],
        );
        h.event("retry", "fault", Track::Node(2), 5e-4, vec![]);
        let json = h.take().to_chrome_json();
        let doc = crate::json::parse(&json).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
        // 3 process_name rows (pids 0, 1, 3) + 2 spans + 1 instant.
        assert_eq!(events.len(), 6);
        let names: Vec<&str> =
            events.iter().filter_map(|e| e.get("name").and_then(|n| n.as_str())).collect();
        assert!(names.contains(&"skeleton:sum"));
        assert!(names.contains(&"retry"));
        assert!(names.contains(&"a\"b\\c") || json.contains("a\\\"b\\\\c"));
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("chunk"))
            .unwrap();
        assert_eq!(span.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(span.get("pid").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(span.get("tid").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(
            span.get("args").and_then(|a| a.get("chunk")).and_then(|v| v.as_f64()),
            Some(3.0)
        );
    }

    #[test]
    fn empty_trace_is_still_a_valid_document() {
        let json = TraceHandle::recording().take().to_chrome_json();
        let doc = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(doc.get("traceEvents").and_then(|v| v.as_array()).map(Vec::len), Some(0));
    }
}
