//! `triolet-obs`: span/event tracing for the Triolet runtime.
//!
//! The evaluation story of the paper (§4) is an attribution story: how much
//! of a run is compute, how much is communication, how much is root-side
//! assembly. `RunStats`-style aggregates answer that only in total; this
//! crate records the *timeline* — hierarchical spans
//! (skeleton → slice/pack → per-node dispatch → per-chunk leaf fold → merge →
//! unpack) plus point events (sends, acks, injected faults, retries,
//! redispatches) — stamped with either wall-clock or virtual time so both
//! execution modes produce comparable traces.
//!
//! The recording machinery is behind [`TraceHandle`]: a disabled handle is a
//! `None` and every record call is a single branch, so untraced runs pay
//! nothing measurable. Traces export to chrome://tracing JSON
//! ([`TraceData::to_chrome_json`]) loadable in Perfetto or
//! `chrome://tracing`.

pub mod chrome;
pub mod json;

use std::sync::{Arc, Mutex};

/// Where on the timeline a span or event lives. Maps to chrome://tracing's
/// process/thread tracks: the root is one process, each node another, and a
/// node's workers are threads within its process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// The root rank's own timeline (slicing, sends, unpack, merges).
    Root,
    /// A node's task-level timeline.
    Node(usize),
    /// One worker thread (real or virtual) inside a node.
    Worker { rank: usize, worker: usize },
}

impl Track {
    /// chrome://tracing process id for this track.
    pub fn pid(&self) -> u64 {
        match *self {
            Track::Root => 0,
            Track::Node(r) | Track::Worker { rank: r, .. } => r as u64 + 1,
        }
    }

    /// chrome://tracing thread id for this track.
    pub fn tid(&self) -> u64 {
        match *self {
            Track::Root | Track::Node(_) => 0,
            Track::Worker { worker, .. } => worker as u64 + 1,
        }
    }

    /// Stable label with the run-to-run varying part (the worker id, which
    /// follows the timing-derived schedule) removed. Golden-file tests
    /// compare these.
    pub fn canonical(&self) -> String {
        match *self {
            Track::Root => "root".into(),
            Track::Node(r) => format!("node{r}"),
            Track::Worker { rank, .. } => format!("node{rank}/worker"),
        }
    }
}

/// A typed span/event argument (exported into the chrome `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    U64(u64),
    F64(f64),
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Argument list for a `comm:tree` span/event: one edge of a tree-routed
/// collective. `depth` is the receiving rank's depth in the binomial tree
/// and `fanout` the sender's child count, so a trace shows both the O(log N)
/// critical path and each sender's serialized send burst.
pub fn tree_edge_args(
    peer: usize,
    tag: u32,
    depth: u32,
    fanout: usize,
) -> Vec<(&'static str, ArgValue)> {
    vec![
        ("peer", peer.into()),
        ("tag", (tag as u64).into()),
        ("depth", (depth as u64).into()),
        ("fanout", fanout.into()),
    ]
}

/// A completed interval on some track. Times are seconds on the run's
/// timeline (virtual or wall, depending on the execution mode); the engine
/// rebases child timelines so every span in one trace shares an origin.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub name: String,
    /// Coarse phase category: `"skeleton"`, `"prep"`, `"comm"`, `"compute"`,
    /// `"merge"`, `"idle"`. Per-phase rollups group by this.
    pub cat: &'static str,
    pub track: Track,
    pub t0: f64,
    pub t1: f64,
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Span {
    pub fn duration(&self) -> f64 {
        (self.t1 - self.t0).max(0.0)
    }
}

/// A point event (instant) on some track: a send attempt, an ack, an
/// injected fault, a retry, a redispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub name: String,
    pub cat: &'static str,
    pub track: Track,
    pub t: f64,
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Destination for trace records. The runtime only ever talks to this trait;
/// the default sink is [`NullSink`], whose methods are empty and inline away.
pub trait TraceSink: Send + Sync {
    fn record_span(&self, span: Span);
    fn record_event(&self, event: Event);
}

/// The no-op sink: recording disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record_span(&self, _: Span) {}
    #[inline(always)]
    fn record_event(&self, _: Event) {}
}

/// A sink that accumulates records for later export.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    data: Mutex<TraceData>,
}

impl SpanRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain everything recorded so far.
    pub fn take(&self) -> TraceData {
        std::mem::take(&mut *self.data.lock().expect("trace mutex"))
    }

    /// Append an already-shifted child timeline.
    pub fn absorb(&self, mut data: TraceData) {
        let mut d = self.data.lock().expect("trace mutex");
        d.spans.append(&mut data.spans);
        d.events.append(&mut data.events);
    }
}

impl TraceSink for SpanRecorder {
    fn record_span(&self, span: Span) {
        self.data.lock().expect("trace mutex").spans.push(span);
    }
    fn record_event(&self, event: Event) {
        self.data.lock().expect("trace mutex").events.push(event);
    }
}

/// Cheap cloneable handle the runtime threads through every layer.
///
/// `TraceHandle::disabled()` carries no allocation and makes every record
/// call a single `if let` on `None` — the "no-op default that compiles away".
/// `TraceHandle::recording()` shares one [`SpanRecorder`] across clones
/// (root, per-node contexts, worker threads).
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<SpanRecorder>>);

impl TraceHandle {
    /// The no-op handle: all record calls are single-branch no-ops.
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// A handle backed by a fresh shared recorder.
    pub fn recording() -> Self {
        TraceHandle(Some(Arc::new(SpanRecorder::new())))
    }

    /// Is anything listening? Use to skip argument construction.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record a completed span with explicit endpoints.
    #[inline]
    pub fn span(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        track: Track,
        t0: f64,
        t1: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(sink) = &self.0 {
            sink.record_span(Span { name: name.into(), cat, track, t0, t1, args });
        }
    }

    /// Record a point event.
    #[inline]
    pub fn event(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        track: Track,
        t: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(sink) = &self.0 {
            sink.record_event(Event { name: name.into(), cat, track, t, args });
        }
    }

    /// Append an already-shifted child timeline (no-op when disabled).
    pub fn absorb(&self, data: TraceData) {
        if let Some(sink) = &self.0 {
            sink.absorb(data);
        }
    }

    /// Drain the recorder (empty data for a disabled handle).
    pub fn take(&self) -> TraceData {
        match &self.0 {
            Some(sink) => sink.take(),
            None => TraceData::default(),
        }
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.enabled() { "TraceHandle(recording)" } else { "TraceHandle(off)" })
    }
}

/// A recorded timeline: spans and events sharing one time origin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    pub spans: Vec<Span>,
    pub events: Vec<Event>,
}

impl TraceData {
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.events.is_empty()
    }

    /// Latest timestamp in the trace (0.0 if empty).
    pub fn end(&self) -> f64 {
        let spans = self.spans.iter().map(|s| s.t1);
        let events = self.events.iter().map(|e| e.t);
        spans.chain(events).fold(0.0, f64::max)
    }

    /// Translate every timestamp by `dt` seconds (rebasing a child timeline
    /// onto the parent's origin).
    pub fn shift(&mut self, dt: f64) {
        for s in &mut self.spans {
            s.t0 += dt;
            s.t1 += dt;
        }
        for e in &mut self.events {
            e.t += dt;
        }
    }

    /// Append `other`, shifted to start where this trace ends — the trace
    /// analogue of `RunStats::then` for apps that chain skeleton calls.
    pub fn then(&mut self, mut other: TraceData) {
        other.shift(self.end());
        self.spans.append(&mut other.spans);
        self.events.append(&mut other.events);
    }

    /// Merge `other` onto the same origin (no shift).
    pub fn merge(&mut self, mut other: TraceData) {
        self.spans.append(&mut other.spans);
        self.events.append(&mut other.events);
    }

    /// Stamp every span and event with one extra argument — the job
    /// service's per-tenant attribution: a whole job timeline gets
    /// `("tenant", id)` / `("job", seq)` tags before it is absorbed into
    /// the service trace, so one merged timeline can still be filtered
    /// per tenant in chrome://tracing.
    pub fn tag(&mut self, key: &'static str, value: ArgValue) {
        for s in &mut self.spans {
            s.args.push((key, value.clone()));
        }
        for e in &mut self.events {
            e.args.push((key, value.clone()));
        }
    }

    /// How many spans carry this name.
    pub fn count_spans(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Distinct span names, in first-appearance order.
    pub fn span_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for s in &self.spans {
            if !names.contains(&s.name.as_str()) {
                names.push(&s.name);
            }
        }
        names
    }

    /// How many events carry this name.
    pub fn count_events(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }

    /// Total span seconds per category, in first-appearance order — the
    /// per-phase breakdown the bench report prints.
    pub fn phase_totals(&self) -> Vec<(&'static str, f64)> {
        let mut totals: Vec<(&'static str, f64)> = Vec::new();
        for s in &self.spans {
            match totals.iter_mut().find(|(c, _)| *c == s.cat) {
                Some((_, t)) => *t += s.duration(),
                None => totals.push((s.cat, s.duration())),
            }
        }
        totals
    }

    /// Schedule-independent dump for golden-file comparison: record kind,
    /// category, name, and canonical track, in recording order. All numeric
    /// times and worker assignments (both timing-derived) are dropped.
    pub fn canonical_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.spans.len() + self.events.len());
        for s in &self.spans {
            lines.push(format!("span {} {} @{}", s.cat, s.name, s.track.canonical()));
        }
        for e in &self.events {
            lines.push(format!("event {} {} @{}", e.cat, e.name, e.track.canonical()));
        }
        lines
    }

    /// Serialize to chrome://tracing "JSON Object Format".
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceData {
        let h = TraceHandle::recording();
        h.span("skeleton:sum", "skeleton", Track::Root, 0.0, 2.0, vec![("items", 10u64.into())]);
        h.span("chunk", "compute", Track::Worker { rank: 1, worker: 0 }, 0.5, 1.0, vec![]);
        h.event("retry", "fault", Track::Root, 0.75, vec![("attempt", 2u64.into())]);
        h.take()
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let h = TraceHandle::disabled();
        h.span("x", "compute", Track::Root, 0.0, 1.0, vec![]);
        h.event("y", "comm", Track::Root, 0.5, vec![]);
        assert!(!h.enabled());
        assert!(h.take().is_empty());
    }

    #[test]
    fn recording_handle_shares_one_sink_across_clones() {
        let h = TraceHandle::recording();
        let h2 = h.clone();
        h.span("a", "compute", Track::Root, 0.0, 1.0, vec![]);
        h2.span("b", "compute", Track::Node(1), 1.0, 2.0, vec![]);
        let data = h.take();
        assert_eq!(data.spans.len(), 2);
        assert!(h2.take().is_empty(), "take drains the shared recorder");
    }

    #[test]
    fn shift_and_then_rebase_timelines() {
        let mut a = sample();
        let b = sample();
        let end = a.end();
        a.then(b);
        assert_eq!(a.spans.len(), 4);
        assert!((a.end() - (end + 2.0)).abs() < 1e-12);
        let retry_times: Vec<f64> =
            a.events.iter().filter(|e| e.name == "retry").map(|e| e.t).collect();
        assert_eq!(retry_times.len(), 2);
        assert!((retry_times[1] - (end + 0.75)).abs() < 1e-12);
    }

    #[test]
    fn phase_totals_group_by_category() {
        let data = sample();
        let totals = data.phase_totals();
        assert_eq!(totals[0].0, "skeleton");
        assert!((totals[0].1 - 2.0).abs() < 1e-12);
        assert_eq!(totals[1].0, "compute");
        assert!((totals[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn canonical_lines_drop_worker_ids_and_times() {
        let data = sample();
        let lines = data.canonical_lines();
        assert_eq!(
            lines,
            vec![
                "span skeleton skeleton:sum @root",
                "span compute chunk @node1/worker",
                "event fault retry @root",
            ]
        );
    }

    #[test]
    fn span_names_and_event_counts() {
        let data = sample();
        assert_eq!(data.span_names(), vec!["skeleton:sum", "chunk"]);
        assert_eq!(data.count_spans("chunk"), 1);
        assert_eq!(data.count_spans("missing"), 0);
        assert_eq!(data.count_events("retry"), 1);
        assert_eq!(data.count_events("missing"), 0);
    }

    #[test]
    fn tag_stamps_every_span_and_event() {
        let mut data = sample();
        data.tag("tenant", 7u64.into());
        for s in &data.spans {
            assert!(s.args.iter().any(|(k, v)| *k == "tenant" && *v == ArgValue::U64(7)));
        }
        for e in &data.events {
            assert!(e.args.iter().any(|(k, v)| *k == "tenant" && *v == ArgValue::U64(7)));
        }
        // Pre-existing args survive the tagging pass.
        assert!(data.spans[0].args.iter().any(|(k, _)| *k == "items"));
    }
}
