//! Offline shim for `crossbeam-utils`.
//!
//! The workspace declares the dependency but currently only needs
//! [`CachePadded`]; the alignment wrapper is provided so future lock-free
//! counters can avoid false sharing without changing manifests.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) one cache line.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_transparent() {
        let p = CachePadded::new(7u8);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of_val(&p), 64);
        assert_eq!(p.into_inner(), 7);
    }
}
