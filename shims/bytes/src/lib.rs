//! Offline shim for the `bytes` crate.
//!
//! Implements the subset of the real API that triolet-rs uses: an immutable,
//! cheaply clonable [`Bytes`] handle backed by a shared allocation, a
//! growable [`BytesMut`] builder, and the [`BufMut`] write methods. Cloning
//! and [`Bytes::slice`] are O(1) reference-count operations, matching the
//! real crate's cost model (payloads are cloned for duplicate-delivery fault
//! injection and sliced for truncation tests).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable shared byte buffer: a refcounted allocation plus a view window.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static slice (copied once; the shim has no zero-copy statics).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds of {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Copy the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer that freezes into a [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable shared buffer without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Write-side extension methods (trait so `use bytes::BufMut` keeps working).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a native-endian `u64`.
    fn put_u64_ne(&mut self, v: u64);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u64_ne(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_ne_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_freeze() {
        let mut m = BytesMut::with_capacity(4);
        m.put_u8(1);
        m.put_u64_ne(0x0203);
        m.put_slice(&[9, 9]);
        let b = m.freeze();
        assert_eq!(b.len(), 11);
        assert_eq!(b[0], 1);
        assert_eq!(&b[9..], &[9, 9]);
    }

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(ss.to_vec(), vec![3, 4]);
        assert_eq!(b.slice(0..0).len(), 0);
    }

    #[test]
    fn clone_shares_allocation() {
        let b = Bytes::from(vec![7u8; 1024]);
        let c = b.clone();
        assert!(std::ptr::eq(b.as_ref().as_ptr(), c.as_ref().as_ptr()));
        assert_eq!(b, c);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        let b = Bytes::from(vec![1u8, 2]);
        let _ = b.slice(0..3);
    }
}
