//! Offline shim for `crossbeam-deque`.
//!
//! Provides the `Worker`/`Stealer`/`Injector` vocabulary the work-stealing
//! pool uses, implemented over mutex-protected queues instead of lock-free
//! deques. Correctness contract (each pushed job pops exactly once, stealers
//! may take from any worker) is identical; only the contention behavior
//! differs, which the pool's tests do not depend on.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// A race was lost; try again. (The shim never returns this, but the
    /// variant keeps match arms and retry loops source-compatible.)
    Retry,
}

impl<T> Steal<T> {
    /// True when the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

type Queue<T> = Arc<Mutex<VecDeque<T>>>;

fn lock<T>(q: &Queue<T>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    q.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A worker's own queue. FIFO discipline, matching `Worker::new_fifo`.
pub struct Worker<T> {
    queue: Queue<T>,
}

impl<T> Worker<T> {
    /// New FIFO worker queue.
    pub fn new_fifo() -> Self {
        Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// Push a task onto this worker's queue.
    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    /// Pop the next task in FIFO order.
    pub fn pop(&self) -> Option<T> {
        lock(&self.queue).pop_front()
    }

    /// A handle other threads can steal through.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }
}

/// Steal-side handle to a [`Worker`]'s queue.
pub struct Stealer<T> {
    queue: Queue<T>,
}

impl<T> Stealer<T> {
    /// Try to steal one task.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

/// Shared FIFO injection queue for tasks pushed from outside the pool.
pub struct Injector<T> {
    queue: Queue<T>,
}

impl<T> Injector<T> {
    /// New empty injector.
    pub fn new() -> Self {
        Injector { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// Push a task.
    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    /// Try to take one task.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_fifo_order() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_from_worker() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        assert!(s.steal().is_empty());
        w.push(9);
        assert_eq!(s.steal(), Steal::Success(9));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_shared_across_threads() {
        let inj = Arc::new(Injector::new());
        for i in 0..64 {
            inj.push(i);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let inj = Arc::clone(&inj);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Steal::Success(v) = inj.steal() {
                    got.push(v);
                }
                got
            }));
        }
        let mut all: Vec<i32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }
}
