//! Offline shim for `crossbeam-channel`.
//!
//! An unbounded MPMC channel built on a mutex-protected queue with a
//! condition variable. Disconnection semantics follow the real crate, which
//! the cluster's failure tests depend on:
//!
//! * `send` fails with [`SendError`] once every receiver is dropped (a dead
//!   peer must surface as `CommError::Disconnected`, not a hang);
//! * `recv` fails with [`RecvError`] once every sender is dropped and the
//!   queue has drained;
//! * [`Receiver::recv_timeout`] distinguishes [`RecvTimeoutError::Timeout`]
//!   from [`RecvTimeoutError::Disconnected`] — the primitive the comm
//!   layer's ack/retry protocol is built on.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the undelivered value.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when all senders are gone and the
/// queue is empty.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// All senders disconnected and the queue is empty.
    Disconnected,
}

/// Sending half; clonable across threads.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Enqueue `value`, failing if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.inner.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.inner.lock().push_back(value);
        self.inner.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::AcqRel);
        Sender { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they can error out.
            self.inner.ready.notify_all();
        }
    }
}

/// Receiving half.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Receiver<T> {
    /// Dequeue the next message, blocking until one arrives or all senders
    /// disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.inner.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self.inner.ready.wait(queue).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeue the next message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.inner.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, _res) = self
                .inner
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            queue = q;
        }
    }

    /// Dequeue without blocking; `None` when the queue is empty.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(3));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
