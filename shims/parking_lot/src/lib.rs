//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns a guard directly, and `Condvar::wait` takes `&mut
//! MutexGuard` instead of consuming it. Panics while holding a lock do not
//! poison it (the std poison flag is discarded), which matches parking_lot
//! semantics and is what the thread pool's panic-propagation tests rely on.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never errors: a poisoned
    /// std lock is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }
}

/// RAII guard for [`Mutex`].
///
/// Holds `Option` internally so [`Condvar::wait`] can move the std guard out
/// and back without re-borrowing the mutex.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// Result of a timed wait: whether the deadline elapsed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Block until notified, releasing the lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
