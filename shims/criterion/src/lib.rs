//! Offline shim for `criterion`.
//!
//! Keeps the bench sources compiling and runnable without the real crate.
//! Each registered benchmark executes its routine exactly once and prints
//! the wall time — enough for `cargo test` (which runs `harness = false`
//! bench targets) to smoke-test every bench path, and for `cargo bench` to
//! give a rough signal. No sampling, statistics, or HTML reports.

use std::fmt;
use std::time::Instant;

/// Identifies one benchmark within a group, e.g. `triolet/32`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), param) }
    }

    /// Just a parameter, rendered on its own.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    elapsed_s: f64,
}

impl Bencher {
    /// Run `routine` once, recording its wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed_s = start.elapsed().as_secs_f64();
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs one iteration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn run(&mut self, id: &str, b: &mut Bencher) {
        println!("bench {}/{}: {:.6} s (1 iter, shim)", self.name, id, b.elapsed_s);
    }

    /// Register and run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { elapsed_s: 0.0 };
        f(&mut b);
        self.run(&id.id, &mut b);
        self
    }

    /// Register and run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { elapsed_s: 0.0 };
        f(&mut b, input);
        self.run(&id.id, &mut b);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Register and run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_routine_once() {
        let mut calls = 0;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("direct", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut seen = 0u64;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("param", 32), &(3u64, 4u64), |b, &(x, y)| {
            b.iter(|| seen = x * y)
        });
        g.finish();
        assert_eq!(seen, 12);
    }
}
