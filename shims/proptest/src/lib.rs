//! Offline shim for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro, `prop_assert*`, `any::<T>()`, range and tuple strategies,
//! `collection::vec`, `option::of`, and `prop_filter`. Generation is seeded
//! from the test name, so every run of a given test sees the same inputs.
//! There is no shrinking: a failing case reports its case index and seed
//! instead of a minimized value.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    use super::fmt;

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected (e.g. a filter precondition failed).
        Reject(String),
        /// The property was falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// A falsified-property error.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected-case error.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "property falsified: {r}"),
            }
        }
    }

    /// Runner configuration; only `cases` is honored by the shim.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic splitmix64 stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from raw state.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Drives one test's cases. Created by the `proptest!` expansion.
    pub struct TestRunner {
        config: Config,
        rng: TestRng,
        seed: u64,
    }

    impl TestRunner {
        /// New runner; the RNG stream is a pure function of `name`.
        pub fn new(config: Config, name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRunner { config, rng: TestRng::from_seed(seed), seed }
        }

        /// Cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Seed derived from the test name (for failure reports).
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// The runner's RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Keep only values satisfying `pred`; regenerates on mismatch.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }
}

// A strategy behind a reference is still a strategy; lets helpers pass
// `&strategy` without consuming it.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}) rejected 10000 consecutive values", self.reason);
    }
}

/// Types with a canonical "anything" strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias toward small magnitudes half the time so sums and
                // lengths exercise interesting values, not just huge ones.
                let raw = rng.next_u64();
                if raw & 1 == 0 {
                    (raw >> 1) as $t
                } else {
                    ((raw >> 1) % 257) as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Full bit patterns: includes NaN and infinities, which tests filter.
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `A`; see [`any`].
pub struct Any<A> {
    _marker: PhantomData<A>,
}

/// The "anything" strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any { _marker: PhantomData }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

// String strategies are written as regex literals (`s in ".{0,32}"`). The
// shim understands the repetition forms the test suite uses — `.{m,n}` and
// `.*` over printable ASCII — and treats any other pattern as a literal.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let printable = |rng: &mut TestRng| (0x20 + rng.below(0x5f) as u8) as char;
        let bounds = if self == ".*" {
            Some((0usize, 32usize))
        } else {
            self.strip_prefix(".{")
                .and_then(|rest| rest.strip_suffix('}'))
                .and_then(|body| body.split_once(','))
                .and_then(|(lo, hi)| Some((lo.parse().ok()?, hi.parse().ok()?)))
        };
        match bounds {
            Some((lo, hi)) => {
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..n).map(|_| printable(rng)).collect()
            }
            None => self.to_string(),
        }
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A.0);
impl_strategy_tuple!(A.0, B.1);
impl_strategy_tuple!(A.0, B.1, C.2);
impl_strategy_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds on a generated collection's length. The
    /// concrete `From` impls pin untyped literals in `vec(_, 0..300)` to
    /// `usize`, matching the real crate's `Into<SizeRange>` parameter.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<T>`; see [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Vectors whose length is drawn from `len` and whose elements are drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.lo + rng.below((self.len.hi - self.len.lo) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`; see [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` a quarter of the time, otherwise `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Fail the current case unless `cond` holds. Must run inside a function
/// returning `Result<(), TestCaseError>` (which `proptest!` bodies do).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that generates inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                $(
                    let $pat = $crate::Strategy::generate(&($strat), runner.rng());
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err(e) => panic!(
                        "{} failed at case {}/{} (name seed {:#x}): {}",
                        stringify!($name),
                        case,
                        runner.cases(),
                        runner.seed(),
                        e
                    ),
                }
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5i64..5, y in 1usize..=8) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((1..=8).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b) in (0u32..10, 0u32..10),
            xs in crate::collection::vec(any::<i64>(), 0..50),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(xs.len() < 50);
        }

        #[test]
        fn filter_holds(x in any::<f32>().prop_filter("finite", |v| v.is_finite())) {
            prop_assert!(x.is_finite());
        }

        #[test]
        fn option_of_produces_both(mut seen_none in 0u8..1, v in crate::option::of(0u8..200)) {
            // Single-case smoke: just type-check and bound-check.
            seen_none += 0;
            let _ = seen_none;
            if let Some(x) = v {
                prop_assert!(x < 200);
            }
        }
    }

    #[test]
    fn same_name_means_same_stream() {
        use crate::test_runner::{Config, TestRunner};
        let mut a = TestRunner::new(Config::default(), "t");
        let mut b = TestRunner::new(Config::default(), "t");
        for _ in 0..32 {
            assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        }
    }

    #[test]
    fn question_mark_and_helpers_work() {
        use crate::test_runner::TestCaseError;
        fn helper(ok: bool) -> Result<(), TestCaseError> {
            prop_assert!(ok, "helper saw false");
            Ok(())
        }
        assert!(helper(true).is_ok());
        assert!(matches!(helper(false), Err(TestCaseError::Fail(_))));
    }
}
